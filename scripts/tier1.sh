#!/usr/bin/env bash
# Tier-1 pre-merge gate: release build, full workspace test suite (the test
# profile runs with overflow-checks on), clippy with warnings denied, then a
# telemetry smoke run — generate and train with --trace-json and validate
# both traces with trace_check (every line parses, spans well-nested, all
# instrumented phases present).
# Run from the repository root. Any failure fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings

smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
./target/release/logirec generate --dataset ciao --scale tiny --seed 7 \
  --out "$smoke/data" --trace-json "$smoke/generate.jsonl"
./target/release/logirec train --data "$smoke/data" --model "$smoke/m.logirec" \
  --epochs 5 --dim 8 --trace-json "$smoke/train.jsonl" --metrics-summary
./target/release/trace_check "$smoke/generate.jsonl" --require-kinds synth,dataset
./target/release/trace_check "$smoke/train.jsonl" \
  --require-kinds train,epoch,batch,loss,mining,checkpoint,eval --min-spans 10

# Span-profiling smoke: the offline profiler must attribute at least 90% of
# the training run's wall time to named spans — un-instrumented hot-path
# time fails the gate.
./target/release/trace_profile "$smoke/train.jsonl" --min-coverage 0.9

# Parallel-training determinism smoke: the sharded gradient path promises
# bit-identical models for every --train-threads value. Train twice and
# byte-compare the serialized models.
./target/release/logirec train --data "$smoke/data" --model "$smoke/m1.logirec" \
  --epochs 3 --dim 8 --train-threads 1
./target/release/logirec train --data "$smoke/data" --model "$smoke/m2.logirec" \
  --epochs 3 --dim 8 --train-threads 2
cmp "$smoke/m1.logirec" "$smoke/m2.logirec" \
  || { echo "tier1: train-threads determinism smoke FAILED (models differ)"; exit 1; }

# Serving smoke: start `logirec serve` with a trace, issue one healthy
# request (must be exact) and one deadline-starved request (must degrade to
# the popularity fallback, never an error), shut the server down cleanly,
# then validate the serve trace (serve/request/score spans present).
# Bind port 0 and read the chosen address back from the banner — no fixed
# port to collide with.
./target/release/logirec serve --data "$smoke/data" --model "$smoke/m.logirec" \
  --addr "127.0.0.1:0" --trace-json "$smoke/serve.jsonl" > "$smoke/serve.log" 2>&1 &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr=$(grep -o '127\.0\.0\.1:[0-9]*' "$smoke/serve.log" | head -n1 || true)
  [ -n "$serve_addr" ] && break
  sleep 0.1
done
[ -n "$serve_addr" ] \
  || { echo "tier1: serve smoke FAILED (server never came up)"; exit 1; }
exact_out=$(./target/release/logirec request --addr "$serve_addr" \
  --user 1 --k 5 --retries 40)
echo "$exact_out"
case "$exact_out" in
  *"served_by: exact"*) ;;
  *) echo "tier1: serve smoke FAILED (healthy request not served exact)"; exit 1 ;;
esac
starved_out=$(./target/release/logirec request --addr "$serve_addr" \
  --user 1 --k 5 --deadline-ms 0)
echo "$starved_out"
case "$starved_out" in
  *"served_by: fallback (deadline)"*) ;;
  *) echo "tier1: serve smoke FAILED (starved request did not degrade)"; exit 1 ;;
esac
# Metrics scrape smoke: the exposition must carry the request counters and
# the exact-path latency summary the two requests above produced.
metrics_out=$(./target/release/logirec metrics --addr "$serve_addr")
for series in \
  "# TYPE logirec_serve_requests_total counter" \
  "logirec_serve_requests_total 2" \
  "logirec_serve_exact_total 1" \
  "logirec_serve_fallback_total 1" \
  'logirec_serve_exact_latency_us{quantile="0.95"}'; do
  case "$metrics_out" in
    *"$series"*) ;;
    *) echo "tier1: metrics scrape FAILED (missing: $series)"; echo "$metrics_out"; exit 1 ;;
  esac
done
# Streaming fold-in smoke: a request for an unknown (not yet folded-in)
# user degrades to the popularity fallback; folding the user in from a few
# positives publishes the grown snapshot as a new model version off the
# request path; the folded user is then immediately served exact.
unknown_out=$(./target/release/logirec request --addr "$serve_addr" --user 60 --k 5)
echo "$unknown_out"
case "$unknown_out" in
  *"served_by: fallback (unknown_user)"*) ;;
  *) echo "tier1: fold-in smoke FAILED (unknown user did not degrade)"; exit 1 ;;
esac
fold_out=$(./target/release/logirec request --addr "$serve_addr" --fold-in 1,4,9)
echo "$fold_out"
case "$fold_out" in
  *"fold_in: swapped  entity: user  new_id: 60  model_version: 2"*) ;;
  *) echo "tier1: fold-in smoke FAILED (fold-in not swapped)"; exit 1 ;;
esac
folded_out=$(./target/release/logirec request --addr "$serve_addr" --user 60 --k 5)
echo "$folded_out"
case "$folded_out" in
  *"served_by: exact"*) ;;
  *) echo "tier1: fold-in smoke FAILED (folded user not served exact)"; exit 1 ;;
esac
./target/release/logirec request --addr "$serve_addr" --shutdown
wait "$serve_pid" \
  || { echo "tier1: serve smoke FAILED (server did not exit cleanly)"; exit 1; }
./target/release/trace_check "$smoke/serve.jsonl" --require-kinds serve,request,score

# Approx-serving smoke: a live server carrying the clustered retrieval
# index with --approx must tag every healthy request served_by: approx.
./target/release/logirec serve --data "$smoke/data" --model "$smoke/m.logirec" \
  --addr "127.0.0.1:0" --approx > "$smoke/approx.log" 2>&1 &
approx_pid=$!
approx_addr=""
for _ in $(seq 1 100); do
  approx_addr=$(grep -o '127\.0\.0\.1:[0-9]*' "$smoke/approx.log" | head -n1 || true)
  [ -n "$approx_addr" ] && break
  sleep 0.1
done
[ -n "$approx_addr" ] \
  || { echo "tier1: approx smoke FAILED (indexed server never came up)"; exit 1; }
approx_out=$(./target/release/logirec request --addr "$approx_addr" \
  --user 1 --k 5 --retries 40)
echo "$approx_out"
case "$approx_out" in
  *"served_by: approx (requested)"*) ;;
  *) echo "tier1: approx smoke FAILED (request not served by the index)"; exit 1 ;;
esac
./target/release/logirec request --addr "$approx_addr" --shutdown
wait "$approx_pid" \
  || { echo "tier1: approx smoke FAILED (indexed server did not exit cleanly)"; exit 1; }

# Approx recall gate, at paper scale: serve_bench measures recall@10 of the
# approx tier against the exact scan on the served snapshot (deterministic:
# fixed dataset, model, and index seeds) and prints the gated line.
recall_out=$(./target/release/serve_bench --scale paper --requests 100 --nprobe 16)
echo "$recall_out" | grep "approx recall@10"
echo "$recall_out" | awk '
  /approx recall@10 vs exact:/ {
    recall = $5 + 0; scanned = $7 + 0; found = 1
    if (recall < 0.95) { print "tier1: approx recall@10 " recall " < 0.95"; exit 1 }
    if (scanned >= 30) { print "tier1: approx scan " scanned "% >= 30%"; exit 1 }
  }
  END { if (!found) { print "tier1: recall line missing from serve_bench"; exit 1 } }
' || { echo "tier1: approx recall gate FAILED"; exit 1; }

# Single-precision smoke: generate → train 1 epoch → evaluate, all with
# --precision f32. Fails on divergence (trainer exit code) or any NaN
# leaking into the reported metrics.
./target/release/logirec train --data "$smoke/data" --model "$smoke/m32.logirec" \
  --epochs 1 --dim 8 --precision f32
f32_out=$(./target/release/logirec evaluate --data "$smoke/data" \
  --model "$smoke/m32.logirec" --precision f32)
echo "$f32_out"
case "$f32_out" in
  *NaN*|*nan*) echo "tier1: f32 smoke FAILED (NaN in metrics)"; exit 1 ;;
esac

# Perf-regression gate. The self-test (gate logic must flag a synthetic 2×
# slowdown) is a hard gate; the live measurement against the committed
# BENCH_<n>.json baseline is advisory here — shared CI machines are too
# noisy to block merges on wall time, so a regression prints loudly instead.
# --out points into the smoke dir so the committed baseline stays clean;
# perfgate runs from the repo root, so `auto` still finds that baseline.
./target/release/perfgate --self-test \
  || { echo "tier1: perfgate self-test FAILED"; exit 1; }
./target/release/perfgate --out "$smoke/bench.json" \
  || echo "tier1: perfgate ADVISORY — perf regressed vs committed baseline (not blocking)"
echo "tier1: all green"
