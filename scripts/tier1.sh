#!/usr/bin/env bash
# Tier-1 pre-merge gate: release build, full workspace test suite (the test
# profile runs with overflow-checks on), then clippy with warnings denied.
# Run from the repository root. Any failure fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test --workspace -q
cargo clippy --workspace -- -D warnings
echo "tier1: all green"
