//! The concurrent request loop: std TCP, thread per connection, a deadline
//! on every request, and the degradation matrix that turns trouble into
//! degraded responses instead of errors.
//!
//! | condition                                   | `served_by` | reason      |
//! |---------------------------------------------|-------------|-------------|
//! | healthy, within deadline                    | `exact`     | —           |
//! | tight deadline (≤ `approx_deadline_ms`)¹    | `approx`    | `deadline`  |
//! | `force_approx` configured¹                  | `approx`    | `requested` |
//! | inflight > `max_inflight` (soft overload)¹  | `approx`    | `overload`  |
//! | deadline already exceeded, or any scored    | `fallback`  | `deadline`  |
//! | result finished late                        |             |             |
//! | inflight > `max_inflight`, no index         | `fallback`  | `overload`  |
//! | inflight > `shed_limit` (hard overload)     | `shed`      | `overload`  |
//! | unknown user (e.g. not yet folded in)       | `fallback`  | `unknown_user` |
//! | malformed line                              | error reply | —           |
//!
//! ¹ when the live snapshot carries a retrieval index; without one these
//! rows keep the pre-index behavior (exact / fallback).
//!
//! The server never turns load or latency into an empty error: the
//! popularity prior always produces a valid response. An out-of-range user
//! — typically a signup that has not been folded in yet — degrades to the
//! unpersonalized popularity fallback rather than erroring, so clients can
//! show *something* while the `{"fold_in":..}` admin verb catches the
//! snapshot up. Only malformed JSON gets an `error` reply — and even that
//! leaves the connection open.
//!
//! Fold-in requests run off the request path: they optimize the single new
//! row against the frozen model, grow the serving context, rebuild the
//! index, and publish the result through the same validated
//! [`SnapshotStore`] swap as a reload. A rejected candidate (e.g. a
//! divergent row) keeps the last-good snapshot serving.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use logirec_obs::{rss, Counter, Exposition, Histogram, HistogramSnapshot, Telemetry};

use crate::protocol::{self, Message, Request, Response, ServedBy};
use crate::reload::{ReloadOutcome, Reloader};
use crate::snapshot::{ModelSnapshot, ServeContext, SnapshotStore};

/// Watch a file for hot-swap reloads.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Model or checkpoint file to watch (need not exist yet).
    pub path: std::path::PathBuf,
    /// Poll interval for change detection.
    pub poll: Duration,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back via
    /// [`Server::addr`]).
    pub addr: String,
    /// Soft concurrency limit: requests beyond it degrade to fallback.
    pub max_inflight: usize,
    /// Hard concurrency limit: requests beyond it are shed outright.
    pub shed_limit: usize,
    /// Deadline applied when a request does not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Upper bound on requested `k`.
    pub max_k: usize,
    /// Requests whose effective deadline is at or below this route to the
    /// `approx` tier (when the snapshot has an index) instead of gambling
    /// on a full scan they would likely miss.
    pub approx_deadline_ms: u64,
    /// Route every otherwise-exact request to the `approx` tier (when the
    /// snapshot has an index). Bench/CLI knob (`--approx`) for exercising
    /// and gating the tier deterministically.
    pub force_approx: bool,
    /// Hot-swap reload watching (off by default).
    pub watch: Option<WatchConfig>,
    /// Telemetry sink for the serve span hierarchy, counters, and latency
    /// histograms.
    pub telemetry: Telemetry,
    /// Deterministic serve-path faults (tests only).
    #[cfg(feature = "fault-injection")]
    pub faults: Option<crate::faults::ServeFaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 8,
            shed_limit: 64,
            default_deadline_ms: 250,
            max_k: 100,
            approx_deadline_ms: 25,
            force_approx: false,
            watch: None,
            telemetry: Telemetry::disabled(),
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }
}

/// Telemetry-independent request/reload counters, readable via the
/// `{"stats":true}` admin request or [`Server::stats`] even when telemetry
/// is disabled.
#[derive(Debug)]
struct Stats {
    requests: AtomicU64,
    exact: AtomicU64,
    approx: AtomicU64,
    fallback: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    reload_success: AtomicU64,
    reload_rejected: AtomicU64,
    fold_in_success: AtomicU64,
    fold_in_rejected: AtomicU64,
    conn_drops: AtomicU64,
    // Standalone (registry-free) latency histograms per served_by path, so
    // `{"stats":true}` percentiles work even with telemetry disabled.
    lat_exact: Histogram,
    lat_approx: Histogram,
    lat_fallback: Histogram,
    lat_shed: Histogram,
}

impl Default for Stats {
    fn default() -> Self {
        Self {
            requests: AtomicU64::new(0),
            exact: AtomicU64::new(0),
            approx: AtomicU64::new(0),
            fallback: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            reload_success: AtomicU64::new(0),
            reload_rejected: AtomicU64::new(0),
            fold_in_success: AtomicU64::new(0),
            fold_in_rejected: AtomicU64::new(0),
            conn_drops: AtomicU64::new(0),
            lat_exact: Histogram::standalone(),
            lat_approx: Histogram::standalone(),
            lat_fallback: Histogram::standalone(),
            lat_shed: Histogram::standalone(),
        }
    }
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Recommendation requests received.
    pub requests: u64,
    /// Responses served by full model scoring.
    pub exact: u64,
    /// Responses served by the clustered index + exact re-rank.
    pub approx: u64,
    /// Responses degraded to the popularity prior.
    pub fallback: u64,
    /// Requests shed under hard overload.
    pub shed: u64,
    /// Error replies (bad JSON, unknown user).
    pub errors: u64,
    /// Reloads that swapped a validated snapshot in.
    pub reload_success: u64,
    /// Reload candidates rejected by validation (rollback to last-good).
    pub reload_rejected: u64,
    /// Fold-ins that published a grown snapshot.
    pub fold_in_success: u64,
    /// Fold-in candidates rejected by validation (last-good kept).
    pub fold_in_rejected: u64,
    /// Connections dropped by fault injection.
    pub conn_drops: u64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            exact: self.exact.load(Ordering::Relaxed),
            approx: self.approx.load(Ordering::Relaxed),
            fallback: self.fallback.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            reload_success: self.reload_success.load(Ordering::Relaxed),
            reload_rejected: self.reload_rejected.load(Ordering::Relaxed),
            fold_in_success: self.fold_in_success.load(Ordering::Relaxed),
            fold_in_rejected: self.fold_in_rejected.load(Ordering::Relaxed),
            conn_drops: self.conn_drops.load(Ordering::Relaxed),
        }
    }
}

/// Cached telemetry handles so the request path never does a registry
/// lookup.
struct TelHandles {
    c_requests: Counter,
    c_exact: Counter,
    c_approx: Counter,
    c_fallback: Counter,
    c_shed: Counter,
    c_errors: Counter,
    c_reload_success: Counter,
    c_reload_rejected: Counter,
    c_fold_in_success: Counter,
    c_fold_in_rejected: Counter,
    // Only incremented by the accept loop's fault hook.
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    c_conn_drops: Counter,
    h_exact_us: Histogram,
    h_approx_us: Histogram,
    h_fallback_us: Histogram,
    h_shed_us: Histogram,
}

impl TelHandles {
    fn new(tel: &Telemetry) -> Self {
        Self {
            c_requests: tel.counter("serve.requests"),
            c_exact: tel.counter("serve.exact"),
            c_approx: tel.counter("serve.approx"),
            c_fallback: tel.counter("serve.fallback"),
            c_shed: tel.counter("serve.shed"),
            c_errors: tel.counter("serve.errors"),
            c_reload_success: tel.counter("serve.reload_success"),
            c_reload_rejected: tel.counter("serve.reload_rejected"),
            c_fold_in_success: tel.counter("serve.fold_in_success"),
            c_fold_in_rejected: tel.counter("serve.fold_in_rejected"),
            c_conn_drops: tel.counter("serve.conn_drops"),
            h_exact_us: tel.histogram("serve.exact_us"),
            h_approx_us: tel.histogram("serve.approx_us"),
            h_fallback_us: tel.histogram("serve.fallback_us"),
            h_shed_us: tel.histogram("serve.shed_us"),
        }
    }
}

struct ServerInner {
    cfg: ServerConfig,
    ctx: Arc<ServeContext>,
    store: SnapshotStore,
    stats: Stats,
    tel: TelHandles,
    addr: SocketAddr,
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    reloader: Option<Mutex<Reloader>>,
    // Serializes fold-ins: each builds from the current snapshot and
    // swaps, so racing two would silently drop one entity.
    fold_in_lock: Mutex<()>,
}

/// RAII inflight counter: `depth` includes this request.
struct InflightGuard<'a> {
    counter: &'a AtomicUsize,
    depth: usize,
}

impl<'a> InflightGuard<'a> {
    fn enter(counter: &'a AtomicUsize) -> Self {
        let depth = counter.fetch_add(1, Ordering::SeqCst) + 1;
        Self { counter, depth }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

/// How often blocking reads and the watcher re-check the shutdown flag.
const TICK: Duration = Duration::from_millis(25);

/// A running serve instance. Dropping the handle does **not** stop the
/// server; call [`Server::shutdown`] (or send `{"shutdown":true}` and then
/// [`Server::wait`]).
pub struct Server {
    inner: Arc<ServerInner>,
    accept: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop (and the reload watcher when
    /// configured), and starts serving `initial` as snapshot version 1.
    pub fn start(
        cfg: ServerConfig,
        ctx: Arc<ServeContext>,
        initial: ModelSnapshot,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let reloader = cfg.watch.as_ref().map(|w| {
            let mut r = Reloader::new(&w.path);
            // When watching the very file the initial snapshot came from,
            // only a subsequent write should trigger a reload.
            if w.path.display().to_string() == initial.source() {
                r.mark_current();
            }
            Mutex::new(r)
        });
        let tel = TelHandles::new(&cfg.telemetry);
        let inner = Arc::new(ServerInner {
            ctx,
            store: SnapshotStore::new(initial),
            stats: Stats::default(),
            tel,
            addr,
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            reloader,
            fold_in_lock: Mutex::new(()),
            cfg,
        });

        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&inner, &listener))?
        };
        let watcher = match &inner.cfg.watch {
            None => None,
            Some(w) => {
                let inner = Arc::clone(&inner);
                let poll = w.poll;
                Some(
                    std::thread::Builder::new()
                        .name("serve-watch".to_string())
                        .spawn(move || watch_loop(&inner, poll))?,
                )
            }
        };
        Ok(Server { inner, accept: Some(accept), watcher })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The dataset-derived serving context.
    pub fn context(&self) -> &Arc<ServeContext> {
        &self.inner.ctx
    }

    /// The snapshot store (tests inspect versions through this).
    pub fn store(&self) -> &SnapshotStore {
        &self.inner.store
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Point-in-time latency histograms per path: `[exact, approx,
    /// fallback, shed]`. These are the authoritative distributions behind
    /// the percentiles in `{"stats":true}` and the metrics exposition.
    pub fn latency_snapshot(&self) -> [HistogramSnapshot; 4] {
        [
            self.inner.stats.lat_exact.snapshot(),
            self.inner.stats.lat_approx.snapshot(),
            self.inner.stats.lat_fallback.snapshot(),
            self.inner.stats.lat_shed.snapshot(),
        ]
    }

    /// The Prometheus-style exposition document — the same text the
    /// `{"metrics":true}` admin request returns in its `body`.
    pub fn exposition(&self) -> String {
        render_exposition(&self.inner)
    }

    /// Forces a reload check now (same as the `{"reload":true}` admin
    /// request). Returns `Rejected` when no watch path is configured.
    pub fn reload_now(&self) -> ReloadOutcome {
        try_reload(&self.inner, true)
    }

    /// Asks the server to stop accepting and lets connection handlers
    /// drain. Idempotent; does not block.
    pub fn request_shutdown(&self) {
        request_shutdown(&self.inner);
    }

    /// Blocks until the accept loop and watcher exit (after a shutdown
    /// request from any source), then emits the final `serve` span. The
    /// caller owns flushing its `Telemetry` (e.g. `finish()`).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watcher.take() {
            let _ = h.join();
        }
        // Give in-flight connection handlers one tick to finish writing.
        while self.inner.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(TICK);
        }
        let snap = self.inner.stats.snapshot();
        let tel = &self.inner.cfg.telemetry;
        let mut span = tel.span("serve");
        span.field("requests", snap.requests);
        span.field("exact", snap.exact);
        span.field("approx", snap.approx);
        span.field("fallback", snap.fallback);
        span.field("shed", snap.shed);
        span.close();
    }

    /// [`Server::request_shutdown`] + [`Server::wait`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }
}

fn request_shutdown(inner: &ServerInner) {
    inner.shutdown.store(true, Ordering::SeqCst);
    // Poke the blocking accept loop awake so it observes the flag.
    let _ = TcpStream::connect(inner.addr);
}

fn accept_loop(inner: &Arc<ServerInner>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        #[cfg(feature = "fault-injection")]
        if let Some(f) = &inner.cfg.faults {
            if f.take_connection_drop() {
                inner.stats.conn_drops.fetch_add(1, Ordering::Relaxed);
                inner.tel.c_conn_drops.incr();
                drop(stream);
                continue;
            }
        }
        let inner = Arc::clone(inner);
        // Connection handlers are detached: they exit within one TICK of a
        // shutdown request via their read timeout.
        let _ = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || handle_conn(&inner, stream));
    }
}

fn watch_loop(inner: &Arc<ServerInner>, poll: Duration) {
    let mut since_poll = Duration::ZERO;
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(TICK);
        since_poll += TICK;
        if since_poll >= poll {
            since_poll = Duration::ZERO;
            try_reload(inner, false);
        }
    }
}

/// One reload check, with the span/counter bookkeeping shared by the
/// watcher, the admin request, and [`Server::reload_now`].
fn try_reload(inner: &ServerInner, force: bool) -> ReloadOutcome {
    let Some(reloader) = &inner.reloader else {
        return ReloadOutcome::Rejected { reason: "no watch path configured".to_string() };
    };
    let outcome = reloader
        .lock()
        .expect("reloader poisoned")
        .attempt(force, &inner.ctx, &inner.store);
    let tel = &inner.cfg.telemetry;
    match &outcome {
        ReloadOutcome::Unchanged => {}
        ReloadOutcome::Swapped { version } => {
            inner.stats.reload_success.fetch_add(1, Ordering::Relaxed);
            inner.tel.c_reload_success.incr();
            let mut span = tel.span("reload");
            span.field("outcome", "swapped");
            span.field("version", *version);
        }
        ReloadOutcome::Rejected { reason } => {
            inner.stats.reload_rejected.fetch_add(1, Ordering::Relaxed);
            inner.tel.c_reload_rejected.incr();
            let mut span = tel.span("reload");
            span.field("outcome", "rejected");
            tel.warn("serve.reload", format!("reload rejected, keeping last-good: {reason}"));
        }
    }
    outcome
}

fn handle_conn(inner: &Arc<ServerInner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TICK));
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut scratch: Vec<f64> = Vec::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let (resp, stop) = handle_line(inner, trimmed, &mut scratch);
                    let write_failed = writer.write_all(resp.as_bytes()).is_err()
                        || writer.write_all(b"\n").is_err();
                    if stop {
                        // Trigger the shutdown only after the reply is on
                        // the wire, so the client always sees the ack
                        // before the process races to exit.
                        request_shutdown(inner);
                    }
                    if write_failed || stop {
                        break;
                    }
                }
                line.clear();
            }
            // Read timeout: partially read bytes stay in `line`; loop to
            // keep reading unless the server is shutting down.
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Handles one request line; returns the response line and whether this
/// was a shutdown request — the caller writes the reply first, then
/// triggers the shutdown and closes the connection.
fn handle_line(inner: &ServerInner, line: &str, scratch: &mut Vec<f64>) -> (String, bool) {
    match protocol::parse_message(line) {
        Err(msg) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            inner.tel.c_errors.incr();
            (protocol::encode_error(0, &msg), false)
        }
        Ok(Message::Shutdown) => ("{\"id\":0,\"shutdown\":true}".to_string(), true),
        Ok(Message::Stats) => (stats_line(inner), false),
        Ok(Message::Metrics) => (metrics_line(inner), false),
        Ok(Message::Reload) => (reload_line(try_reload(inner, true)), false),
        Ok(Message::FoldIn(verb)) => (fold_in_line(inner, &verb), false),
        Ok(Message::Recommend(req)) => (handle_recommend(inner, &req, scratch), false),
    }
}

/// Handles one fold-in admin request: grow the current snapshot by one
/// entity off the request path and publish it, or keep the last-good
/// snapshot when validation rejects the candidate.
fn fold_in_line(inner: &ServerInner, verb: &protocol::FoldInVerb) -> String {
    let _serial = inner.fold_in_lock.lock().expect("fold-in lock poisoned");
    let tel = &inner.cfg.telemetry;
    let entity = if verb.item { "item" } else { "user" };
    let snap = inner.store.get();
    match snap.fold_in(verb.item, &verb.positives, verb.steps, verb.lr) {
        Ok((candidate, new_id)) => {
            let version = inner.store.swap(candidate);
            inner.stats.fold_in_success.fetch_add(1, Ordering::Relaxed);
            inner.tel.c_fold_in_success.incr();
            let mut span = tel.span("fold_in");
            span.field("entity", entity);
            span.field("new_id", new_id);
            span.field("version", version);
            format!(
                "{{\"id\":0,\"fold_in\":\"swapped\",\"entity\":\"{entity}\",\
                 \"new_id\":{new_id},\"model_version\":{version}}}"
            )
        }
        Err(reason) => {
            inner.stats.fold_in_rejected.fetch_add(1, Ordering::Relaxed);
            inner.tel.c_fold_in_rejected.incr();
            tel.warn("serve.fold_in", format!("fold-in rejected, keeping last-good: {reason}"));
            let mut s = "{\"id\":0,\"fold_in\":\"rejected\",\"reason\":\"".to_string();
            protocol::escape_into(&reason, &mut s);
            s.push_str("\"}");
            s
        }
    }
}

fn stats_line(inner: &ServerInner) -> String {
    let s = inner.stats.snapshot();
    let mut line = format!(
        "{{\"id\":0,\"stats\":true,\"requests\":{},\"exact\":{},\"approx\":{},\
         \"fallback\":{},\"shed\":{},\"errors\":{},\"reload_success\":{},\
         \"reload_rejected\":{},\"fold_in_success\":{},\"fold_in_rejected\":{},\
         \"conn_drops\":{},\"model_version\":{},\"inflight\":{}",
        s.requests,
        s.exact,
        s.approx,
        s.fallback,
        s.shed,
        s.errors,
        s.reload_success,
        s.reload_rejected,
        s.fold_in_success,
        s.fold_in_rejected,
        s.conn_drops,
        inner.store.get().version(),
        inner.inflight.load(Ordering::SeqCst),
    );
    for (path, h) in [
        ("exact", &inner.stats.lat_exact),
        ("approx", &inner.stats.lat_approx),
        ("fallback", &inner.stats.lat_fallback),
        ("shed", &inner.stats.lat_shed),
    ] {
        let (p50, p95, p99) = h.snapshot().percentiles();
        line.push_str(&format!(
            ",\"{path}_p50_us\":{p50},\"{path}_p95_us\":{p95},\"{path}_p99_us\":{p99}"
        ));
    }
    line.push('}');
    line
}

/// Renders the full exposition: authoritative `Stats` counters and latency
/// summaries first, then the telemetry registry (whose `serve.*` mirrors
/// are deduplicated away by first-writer-wins).
fn render_exposition(inner: &ServerInner) -> String {
    let s = inner.stats.snapshot();
    let mut e = Exposition::new();
    e.counter("logirec_serve_requests", s.requests);
    e.counter("logirec_serve_exact", s.exact);
    e.counter("logirec_serve_approx", s.approx);
    e.counter("logirec_serve_fallback", s.fallback);
    e.counter("logirec_serve_shed", s.shed);
    e.counter("logirec_serve_errors", s.errors);
    e.counter("logirec_serve_reload_success", s.reload_success);
    e.counter("logirec_serve_reload_rejected", s.reload_rejected);
    e.counter("logirec_serve_fold_in_success", s.fold_in_success);
    e.counter("logirec_serve_fold_in_rejected", s.fold_in_rejected);
    e.counter("logirec_serve_conn_drops", s.conn_drops);
    e.gauge("logirec_serve_model_version", inner.store.get().version() as f64);
    e.gauge("logirec_serve_inflight", inner.inflight.load(Ordering::SeqCst) as f64);
    if let Some(peak) = rss::sample_peak_rss_bytes() {
        e.gauge("logirec_process_peak_rss_bytes", peak as f64);
    }
    e.summary("logirec_serve_exact_latency_us", &inner.stats.lat_exact.snapshot());
    e.summary("logirec_serve_approx_latency_us", &inner.stats.lat_approx.snapshot());
    e.summary("logirec_serve_fallback_latency_us", &inner.stats.lat_fallback.snapshot());
    e.summary("logirec_serve_shed_latency_us", &inner.stats.lat_shed.snapshot());
    e.snapshot("logirec_", &inner.cfg.telemetry.metrics_snapshot());
    e.render()
}

fn metrics_line(inner: &ServerInner) -> String {
    let mut line = "{\"id\":0,\"metrics\":true,\"body\":\"".to_string();
    protocol::escape_into(&render_exposition(inner), &mut line);
    line.push_str("\"}");
    line
}

fn reload_line(outcome: ReloadOutcome) -> String {
    match outcome {
        ReloadOutcome::Swapped { version } => {
            format!("{{\"id\":0,\"reload\":\"swapped\",\"model_version\":{version}}}")
        }
        ReloadOutcome::Unchanged => "{\"id\":0,\"reload\":\"unchanged\"}".to_string(),
        ReloadOutcome::Rejected { reason } => {
            let mut s = "{\"id\":0,\"reload\":\"rejected\",\"reason\":\"".to_string();
            protocol::escape_into(&reason, &mut s);
            s.push_str("\"}");
            s
        }
    }
}

/// What the degradation matrix decided for one request.
enum Decision {
    Exact(Vec<usize>, Vec<f64>),
    Approx(Vec<usize>, Vec<f64>, &'static str, crate::index::ProbeReport),
    Fallback(&'static str),
    Shed,
}

/// Runs the approx tier for one request; degrades to fallback (same
/// reason) on the cannot-happen error paths rather than crashing.
fn approx_decision(snap: &ModelSnapshot, user: usize, k: usize, why: &'static str) -> Decision {
    match snap.approx_top_k(user, k, None) {
        Ok(Some((items, scores, report))) => Decision::Approx(items, scores, why, report),
        // No index (raced a swap to an unindexed snapshot) or a filter
        // error: the popularity prior still answers.
        Ok(None) | Err(_) => Decision::Fallback(why),
    }
}

fn handle_recommend(inner: &ServerInner, req: &Request, scratch: &mut Vec<f64>) -> String {
    let t0 = Instant::now();
    let tel = &inner.cfg.telemetry;
    inner.stats.requests.fetch_add(1, Ordering::Relaxed);
    inner.tel.c_requests.incr();
    let mut span = tel.span("request");
    span.field("user", req.user);
    span.field("k", req.k);

    let guard = InflightGuard::enter(&inner.inflight);
    let deadline = Duration::from_millis(req.deadline_ms.unwrap_or(inner.cfg.default_deadline_ms));
    let k = req.k.clamp(1, inner.cfg.max_k);
    let snap = inner.store.get();

    // Validate the user against the snapshot's own context — a fold-in may
    // have grown it past the boot-time dataset. An unknown user (a signup
    // not yet folded in) degrades to the unpersonalized popularity
    // fallback instead of erroring: the client still gets something to
    // show while an operator catches the snapshot up.
    let known = snap.ctx().seen().seen_of(req.user).is_ok();

    // The degradation matrix (see the module doc table). The approx tier
    // only enters when the live snapshot actually carries an index, so an
    // index-less deployment behaves exactly as before.
    let has_index = snap.index().is_some();
    let decision = if guard.depth > inner.cfg.shed_limit {
        Decision::Shed
    } else if !known {
        Decision::Fallback("unknown_user")
    } else if guard.depth > inner.cfg.max_inflight {
        if has_index {
            // Soft overload with an index: a bounded partial probe is far
            // cheaper than the full scan and far better than popularity.
            approx_decision(&snap, req.user, k, "overload")
        } else {
            Decision::Fallback("overload")
        }
    } else if t0.elapsed() >= deadline {
        Decision::Fallback("deadline")
    } else if has_index && inner.cfg.force_approx {
        approx_decision(&snap, req.user, k, "requested")
    } else if has_index && deadline <= Duration::from_millis(inner.cfg.approx_deadline_ms) {
        // The deadline is too tight to gamble on a full scan.
        approx_decision(&snap, req.user, k, "deadline")
    } else {
        let score_span = tel.span("score");
        #[cfg(feature = "fault-injection")]
        if let Some(f) = &inner.cfg.faults {
            f.maybe_stall();
        }
        let result = snap.top_k(req.user, k, scratch);
        score_span.close();
        match result {
            // User was validated above; remaining errors cannot occur, but
            // degrade rather than crash if they ever do.
            Err(_) => Decision::Fallback("overload"),
            Ok((items, scores)) => {
                if t0.elapsed() >= deadline {
                    // The exact answer arrived too late to be useful; serve
                    // the fallback the client can still act on in time.
                    Decision::Fallback("deadline")
                } else {
                    Decision::Exact(items, scores)
                }
            }
        }
    };
    // Any scored result that finished after its deadline demotes, approx
    // included: the fallback is what the client can still act on in time.
    let decision = match decision {
        Decision::Approx(..) if t0.elapsed() >= deadline => Decision::Fallback("deadline"),
        d => d,
    };
    drop(guard);

    let mut approx_info = None;
    let (served_by, reason, items, scores) = match decision {
        Decision::Exact(items, scores) => (ServedBy::Exact, None, items, scores),
        Decision::Approx(items, scores, why, report) => {
            approx_info = Some(protocol::ApproxInfo {
                clusters: report.clusters,
                nprobe: report.clusters_probed + report.clusters_pruned,
                scored: report.items_scored,
            });
            (ServedBy::Approx, Some(why.to_string()), items, scores)
        }
        Decision::Fallback(why) => {
            // Known users get the seen-filtered prior; unknown users the
            // unpersonalized one (there is no history to filter against).
            let (items, scores) = snap
                .ctx()
                .fallback_top_k(req.user, k)
                .unwrap_or_else(|_| snap.ctx().fallback_top_k_unfiltered(k));
            (ServedBy::Fallback, Some(why.to_string()), items, scores)
        }
        Decision::Shed => (ServedBy::Shed, Some("overload".to_string()), Vec::new(), Vec::new()),
    };

    let latency_us = t0.elapsed().as_micros() as u64;
    match served_by {
        ServedBy::Exact => {
            inner.stats.exact.fetch_add(1, Ordering::Relaxed);
            inner.stats.lat_exact.record(latency_us);
            inner.tel.c_exact.incr();
            inner.tel.h_exact_us.record(latency_us);
        }
        ServedBy::Approx => {
            inner.stats.approx.fetch_add(1, Ordering::Relaxed);
            inner.stats.lat_approx.record(latency_us);
            inner.tel.c_approx.incr();
            inner.tel.h_approx_us.record(latency_us);
        }
        ServedBy::Fallback => {
            inner.stats.fallback.fetch_add(1, Ordering::Relaxed);
            inner.stats.lat_fallback.record(latency_us);
            inner.tel.c_fallback.incr();
            inner.tel.h_fallback_us.record(latency_us);
        }
        ServedBy::Shed => {
            inner.stats.shed.fetch_add(1, Ordering::Relaxed);
            inner.stats.lat_shed.record(latency_us);
            inner.tel.c_shed.incr();
            inner.tel.h_shed_us.record(latency_us);
        }
    }
    span.field("served_by", served_by.as_str());
    if let Some(r) = &reason {
        span.field("reason", r.clone());
    }

    protocol::encode_response(&Response {
        id: req.id,
        served_by,
        reason,
        model_version: snap.version(),
        items,
        scores,
        latency_us,
        approx: approx_info,
    })
}
