//! Approximate candidate retrieval: a deterministic clustered top-K index
//! with exact re-rank.
//!
//! # Why this is allowed to exist
//!
//! The exact tier ranks items by `-d_L(u, v)` where `d_L` is the Lorentz
//! distance between the propagated user and item embeddings in ambient
//! coordinates, `d_L(u, v) = acosh(-⟨u, v⟩_L)` with
//! `⟨u, v⟩_L = -u₀v₀ + Σ_{i≥1} uᵢvᵢ`. Define the **flipped query**
//! `q = (u₀, -u₁, …, -u_d)`. Then `-⟨u, v⟩_L = q · v` is a plain Euclidean
//! dot product, and since `acosh` is monotone increasing, ranking by
//! Lorentz distance ascending is *exactly* ranking by `q · v` ascending.
//! The reduction is order-exact — not an approximation — so a coarse
//! Euclidean quantizer over the raw ambient item rows selects candidates,
//! and the only recall loss comes from probing fewer clusters than exist.
//! (The Euclidean-geometry ablation is even simpler: the score is already
//! a Euclidean distance.)
//!
//! # Structure
//!
//! * **Build** (off the request path, during snapshot validation): k-means
//!   over the item table via [`logirec_linalg::cluster`] — SplitMix64-
//!   seeded, fixed iteration order, bit-reproducible. Per cluster we store
//!   its member list and a radius `r_c = max_{v∈c} ‖v − centroid_c‖`.
//! * **Query**: rank clusters by the centroid key (`q·c` for Lorentz,
//!   `‖q−c‖` for Euclidean), scan the `nprobe` nearest, and re-rank every
//!   unseen member with the **exact** distance kernel — the same
//!   `lorentz::distance` / `ops::dist` call the exact tier runs, at the
//!   snapshot's working precision — so shortlist scores are bit-identical
//!   to full-scan scores for the items the shortlist covers.
//! * **Pruning**: by Cauchy–Schwarz, every member of cluster `c` has
//!   `q·v ≥ q·centroid_c − ‖q‖·r_c` (triangle inequality in the Euclidean
//!   case), which upper-bounds the best score the cluster can contain; a
//!   probed cluster that provably cannot beat the current k-th best is
//!   skipped. Pruning is disabled when `nprobe ≥ n_clusters` so the
//!   exhaustive probe reproduces the exact tier bit for bit (no float-
//!   boundary pruning decisions on that path).

use std::time::Instant;

use logirec_core::Geometry;
use logirec_hyperbolic::lorentz;
use logirec_linalg::{cluster, ops, Embedding, Scalar};

/// Knobs for [`ClusterIndex::build`]. `0` means "auto" for `clusters`
/// (≈√n_items) and `nprobe` (≈ clusters/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Number of k-means clusters (0 = `⌈√n_items⌉`).
    pub clusters: usize,
    /// Default clusters probed per query (0 = `max(1, clusters/8)`).
    pub nprobe: usize,
    /// Lloyd iteration cap for the build.
    pub iters: usize,
    /// Seed of the SplitMix64 stream that picks the initial centers.
    pub seed: u64,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self { clusters: 0, nprobe: 0, iters: 10, seed: 0x1dece5ed }
    }
}

impl IndexConfig {
    /// Resolves the auto knobs against a concrete catalog size.
    pub fn resolve(&self, n_items: usize) -> (usize, usize) {
        let clusters = if self.clusters == 0 {
            ((n_items as f64).sqrt().ceil() as usize).max(1)
        } else {
            self.clusters
        }
        .clamp(1, n_items.max(1));
        let nprobe = if self.nprobe == 0 {
            (clusters / 8).max(1)
        } else {
            self.nprobe
        }
        .clamp(1, clusters);
        (clusters, nprobe)
    }
}

/// Per-request probe accounting, surfaced on the wire so an `approx`
/// response carries its measured retrieval configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeReport {
    /// Clusters in the index.
    pub clusters: usize,
    /// Clusters whose members were actually scanned.
    pub clusters_probed: usize,
    /// Probed clusters skipped by the radius bound.
    pub clusters_pruned: usize,
    /// Items exactly re-ranked (the work the approx tier did).
    pub items_scored: usize,
    /// Catalog size, so `items_scored` has a denominator.
    pub n_items: usize,
}

impl ProbeReport {
    /// Fraction of the catalog that was exactly scored.
    pub fn scan_fraction(&self) -> f64 {
        self.items_scored as f64 / self.n_items.max(1) as f64
    }
}

/// The immutable clustered retrieval index for one snapshot's item table.
///
/// Centroids and radii are always `f64` (they only *select* candidates);
/// the exact re-rank runs at the snapshot's working precision through the
/// row slices the caller passes to [`ClusterIndex::search`].
#[derive(Debug)]
pub struct ClusterIndex {
    geometry: Geometry,
    n_items: usize,
    dim: usize,
    nprobe: usize,
    centroids: Embedding<f64>,
    radii: Vec<f64>,
    /// Item ids grouped by cluster: cluster `c` owns
    /// `members[offsets[c]..offsets[c + 1]]`, ascending within a cluster.
    offsets: Vec<usize>,
    members: Vec<u32>,
    build_us: u64,
    /// Version of the snapshot this index serves; stamped by the
    /// `SnapshotStore` at install time, in lockstep with `model_version`.
    model_version: u64,
}

impl ClusterIndex {
    /// Builds the index over the rows of `items` (the snapshot's propagated
    /// ambient item table). Deterministic: same table, geometry, and config
    /// produce a byte-identical index.
    pub fn build<S: Scalar>(items: &Embedding<S>, geometry: Geometry, cfg: &IndexConfig) -> Self {
        let t0 = Instant::now();
        let n_items = items.rows();
        assert!(n_items > 0, "cannot index an empty item table");
        let (clusters, nprobe) = cfg.resolve(n_items);
        // Quantize in f64 regardless of the serving precision: the f32→f64
        // widening is exact, so both precisions get the same determinism
        // story, and selection quality never degrades with the model.
        let points: Embedding<f64> = items.cast();
        let km = cluster::kmeans(&points, clusters, cfg.iters, cfg.seed);
        let k = km.centroids.rows();

        let mut counts = vec![0usize; k];
        for &c in &km.assignment {
            counts[c as usize] += 1;
        }
        let mut offsets = vec![0usize; k + 1];
        for c in 0..k {
            offsets[c + 1] = offsets[c] + counts[c];
        }
        let mut cursor = offsets.clone();
        let mut members = vec![0u32; n_items];
        let mut radii = vec![0.0f64; k];
        for (i, &c) in km.assignment.iter().enumerate() {
            let c = c as usize;
            members[cursor[c]] = i as u32;
            cursor[c] += 1;
            let d = ops::dist(points.row(i), km.centroids.row(c));
            radii[c] = radii[c].max(d);
        }

        Self {
            geometry,
            n_items,
            dim: items.dim(),
            nprobe,
            centroids: km.centroids,
            radii,
            offsets,
            members,
            build_us: t0.elapsed().as_micros() as u64,
            model_version: 0,
        }
    }

    /// Number of clusters actually built.
    pub fn clusters(&self) -> usize {
        self.centroids.rows()
    }

    /// The default probe count queries use when no override is given.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Catalog size the index covers.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Wall time of the build in microseconds.
    pub fn build_us(&self) -> u64 {
        self.build_us
    }

    /// The snapshot version this index serves (0 before install).
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    pub(crate) fn set_model_version(&mut self, version: u64) {
        self.model_version = version;
    }

    /// Approximate top-K for one query row.
    ///
    /// `user_row` and `items` must be the propagated ambient tables the
    /// index was built from (same snapshot, same precision); `seen` is the
    /// caller's sorted masked-item list — members in it are excluded from
    /// the shortlist, mirroring the exact tier's `NEG_INFINITY` masking.
    /// Returns `(items, scores)` best-first plus the probe accounting.
    /// With `nprobe ≥ self.clusters()` the result is bit-identical to the
    /// exact full scan.
    pub fn search<S: Scalar>(
        &self,
        user_row: &[S],
        items: &Embedding<S>,
        seen: &[usize],
        k: usize,
        nprobe: usize,
    ) -> (Vec<usize>, Vec<f64>, ProbeReport) {
        debug_assert_eq!(items.rows(), self.n_items);
        debug_assert_eq!(items.dim(), self.dim);
        let clusters = self.clusters();
        let nprobe = nprobe.clamp(1, clusters);

        // Flipped query (Lorentz) or the plain query point (Euclidean),
        // widened to f64 for cluster selection.
        let mut q = vec![0.0f64; self.dim];
        q[0] = user_row[0].to_f64();
        match self.geometry {
            Geometry::Hyperbolic => {
                for (o, &x) in q[1..].iter_mut().zip(&user_row[1..]) {
                    *o = -x.to_f64();
                }
            }
            Geometry::Euclidean => {
                for (o, &x) in q[1..].iter_mut().zip(&user_row[1..]) {
                    *o = x.to_f64();
                }
            }
        }
        let q_norm = ops::norm(&q);

        // Rank clusters by centroid key, ascending (smaller key = closer),
        // ties toward the smaller cluster id for determinism.
        let mut order: Vec<(f64, u32)> = (0..clusters)
            .map(|c| {
                let key = match self.geometry {
                    Geometry::Hyperbolic => ops::dot(&q, self.centroids.row(c)),
                    Geometry::Euclidean => ops::dist(&q, self.centroids.row(c)),
                };
                (key, c as u32)
            })
            .collect();
        order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // Pruning is only sound as an *approximation* accelerator: at the
        // exhaustive probe the tier promises bit-identity with the exact
        // scan, so no float-boundary pruning decision may drop an item.
        let prune = nprobe < clusters;
        let mut best = Shortlist::new(k);
        let mut report = ProbeReport {
            clusters,
            n_items: self.n_items,
            ..ProbeReport::default()
        };

        for &(key, c) in order.iter().take(nprobe) {
            let c = c as usize;
            if prune && best.full() {
                // Best score any member of `c` can reach, from the radius
                // bound, with a small slack so f64 bound vs (possibly f32)
                // exact score can only under-prune, never over-prune.
                let ub = match self.geometry {
                    Geometry::Hyperbolic => {
                        let lb_key = key - q_norm * self.radii[c];
                        -ops::acosh_clamped(lb_key)
                    }
                    Geometry::Euclidean => -(key - self.radii[c]).max(0.0),
                };
                let ub = ub + ub.abs() * 1e-6 + 1e-9;
                if ub < best.worst() {
                    report.clusters_pruned += 1;
                    continue;
                }
            }
            report.clusters_probed += 1;
            for &m in &self.members[self.offsets[c]..self.offsets[c + 1]] {
                let v = m as usize;
                if seen.binary_search(&v).is_ok() {
                    continue;
                }
                // The exact kernel, verbatim from `LogiRec::score_user`.
                let s = match self.geometry {
                    Geometry::Hyperbolic => {
                        -lorentz::distance(user_row, items.row(v)).to_f64()
                    }
                    Geometry::Euclidean => -ops::dist(user_row, items.row(v)).to_f64(),
                };
                report.items_scored += 1;
                best.offer(v, s);
            }
        }

        let (items, scores) = best.into_sorted();
        (items, scores, report)
    }
}

/// The running top-K shortlist: `(score desc, index asc)`, the exact
/// ordering of `logirec_eval::ranking::top_k_indices` / `top_k_scored`
/// (property-tested against both), kept inline so pruning can read the
/// current k-th best without a second pass.
struct Shortlist {
    k: usize,
    best: Vec<(f64, usize)>,
}

impl Shortlist {
    fn new(k: usize) -> Self {
        Self { k, best: Vec::with_capacity(k + 1) }
    }

    fn full(&self) -> bool {
        self.best.len() == self.k
    }

    /// Score of the current k-th best (only meaningful when full).
    fn worst(&self) -> f64 {
        self.best.last().map_or(f64::NEG_INFINITY, |&(s, _)| s)
    }

    fn offer(&mut self, i: usize, s: f64) {
        if self.k == 0 || s == f64::NEG_INFINITY {
            return;
        }
        if self.full() {
            let (ws, wi) = self.best[self.k - 1];
            if s < ws || (s == ws && i > wi) {
                return;
            }
        }
        let pos = self
            .best
            .partition_point(|&(bs, bi)| bs > s || (bs == s && bi < i));
        self.best.insert(pos, (s, i));
        if self.best.len() > self.k {
            self.best.pop();
        }
    }

    fn into_sorted(self) -> (Vec<usize>, Vec<f64>) {
        let mut items = Vec::with_capacity(self.best.len());
        let mut scores = Vec::with_capacity(self.best.len());
        for (s, i) in self.best {
            items.push(i);
            scores.push(s);
        }
        (items, scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_eval::ranking::{top_k_indices, top_k_scored};
    use logirec_linalg::SplitMix64;

    /// A synthetic hyperboloid item table: `exp_origin` of small tangents.
    fn hyperboloid_items(n: usize, d: usize, seed: u64) -> Embedding<f64> {
        let mut rng = SplitMix64::new(seed);
        let tangents = Embedding::<f64>::normal(n, d, 0.3, &mut rng);
        let mut items = Embedding::zeros(n, d + 1);
        for i in 0..n {
            lorentz::exp_origin_into(tangents.row(i), items.row_mut(i));
        }
        items
    }

    fn full_scan(user: &[f64], items: &Embedding<f64>, seen: &[usize], k: usize) -> Vec<usize> {
        let scores: Vec<f64> = (0..items.rows())
            .map(|v| {
                if seen.binary_search(&v).is_ok() {
                    f64::NEG_INFINITY
                } else {
                    -lorentz::distance(user, items.row(v)).to_f64()
                }
            })
            .collect();
        top_k_indices(&scores, k)
    }

    #[test]
    fn exhaustive_probe_is_bit_identical_to_the_full_scan() {
        let items = hyperboloid_items(500, 8, 3);
        let users = hyperboloid_items(20, 8, 4);
        let idx = ClusterIndex::build(
            &items,
            Geometry::Hyperbolic,
            &IndexConfig { clusters: 16, ..IndexConfig::default() },
        );
        let seen = vec![3usize, 77, 200, 480];
        for u in 0..users.rows() {
            let (got, scores, report) = idx.search(users.row(u), &items, &seen, 10, 16);
            assert_eq!(got, full_scan(users.row(u), &items, &seen, 10), "user {u}");
            // And scores bit-match the exact kernel (plus the eval helper
            // agrees with the inline shortlist).
            let pairs: Vec<(usize, f64)> = (0..items.rows())
                .filter(|v| seen.binary_search(v).is_err())
                .map(|v| (v, -lorentz::distance(users.row(u), items.row(v)).to_f64()))
                .collect();
            let oracle = top_k_scored(pairs, 10);
            for ((&i, &s), (oi, os)) in got.iter().zip(&scores).zip(oracle) {
                assert_eq!(i, oi);
                assert_eq!(s.to_bits(), os.to_bits());
            }
            assert_eq!(report.clusters_pruned, 0, "exhaustive probe must not prune");
            assert_eq!(report.items_scored, items.rows() - seen.len());
        }
    }

    #[test]
    fn pruned_partial_probe_scans_a_fraction_and_keeps_high_recall() {
        let items = hyperboloid_items(2_000, 8, 9);
        let users = hyperboloid_items(30, 8, 10);
        let idx = ClusterIndex::build(
            &items,
            Geometry::Hyperbolic,
            &IndexConfig { clusters: 48, ..IndexConfig::default() },
        );
        let mut hits = 0usize;
        let mut total = 0usize;
        let mut scanned = 0.0;
        for u in 0..users.rows() {
            let exact = full_scan(users.row(u), &items, &[], 10);
            let (approx, _, report) = idx.search(users.row(u), &items, &[], 10, 12);
            scanned += report.scan_fraction();
            total += exact.len();
            hits += exact.iter().filter(|v| approx.contains(v)).count();
        }
        let recall = hits as f64 / total as f64;
        let frac = scanned / users.rows() as f64;
        assert!(recall >= 0.95, "recall@10 {recall} < 0.95 at nprobe 12/48");
        assert!(frac < 0.60, "scanned {frac} of the catalog at nprobe 12/48");
    }

    #[test]
    fn build_is_bit_reproducible_and_euclidean_geometry_works() {
        let mut rng = SplitMix64::new(21);
        let items = Embedding::<f64>::normal(300, 9, 1.0, &mut rng);
        let cfg = IndexConfig { clusters: 10, ..IndexConfig::default() };
        let a = ClusterIndex::build(&items, Geometry::Euclidean, &cfg);
        let b = ClusterIndex::build(&items, Geometry::Euclidean, &cfg);
        assert_eq!(a.members, b.members);
        assert_eq!(a.offsets, b.offsets);
        for (x, y) in a.centroids.as_slice().iter().zip(b.centroids.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let users = Embedding::<f64>::normal(5, 9, 1.0, &mut rng);
        for u in 0..users.rows() {
            let (got, _, _) = a.search(users.row(u), &items, &[], 5, 10);
            let scores: Vec<f64> = (0..items.rows())
                .map(|v| -ops::dist(users.row(u), items.row(v)))
                .collect();
            assert_eq!(got, top_k_indices(&scores, 5), "euclidean user {u}");
        }
    }

    #[test]
    fn auto_knobs_resolve_sanely() {
        let cfg = IndexConfig::default();
        let (c, p) = cfg.resolve(10_000);
        assert_eq!(c, 100);
        assert_eq!(p, 12);
        let (c, p) = cfg.resolve(1);
        assert_eq!((c, p), (1, 1));
        let (c, p) = IndexConfig { clusters: 999, nprobe: 999, ..cfg }.resolve(50);
        assert_eq!((c, p), (50, 50));
    }
}
