//! The line-delimited JSON wire protocol.
//!
//! One JSON object per line in each direction, parsed with the in-tree
//! `logirec_obs::json` parser (no external deps, offline-friendly).
//!
//! Requests:
//!
//! ```text
//! {"id":1,"user":3,"k":10,"deadline_ms":250}   top-K recommendation
//! {"stats":true}                               server counters + latency percentiles
//! {"metrics":true}                             Prometheus-style text exposition
//! {"reload":true}                              force a reload check now
//! {"fold_in":{"positives":[3,9]}}              fold a new user into the snapshot
//! {"fold_in":{"item":true,"positives":[0,2]}}  fold a new item into the snapshot
//! {"shutdown":true}                            stop the server
//! ```
//!
//! `fold_in` optionally carries `steps` / `lr` overrides for the RSGD
//! fold-in loop; it answers `{"fold_in":"swapped",...}` with the new
//! entity id and snapshot version, or `{"fold_in":"rejected","reason":..}`
//! when validation keeps the last-good snapshot.
//!
//! Recommendation responses carry `served_by` — the degradation matrix's
//! outcome — plus the snapshot version that produced them:
//!
//! ```text
//! {"id":1,"served_by":"exact","model_version":1,"items":[..],"scores":[..],"latency_us":184}
//! {"id":1,"served_by":"approx","reason":"deadline",...,"approx":{"clusters":94,"nprobe":12,"scored":1408}}
//! {"id":1,"served_by":"fallback","reason":"deadline",...}
//! {"id":1,"served_by":"shed","reason":"overload","items":[],"scores":[],...}
//! {"id":1,"error":"user 99 out of range (64 users)"}
//! ```
//!
//! Scores are encoded with Rust's shortest round-trip `f64` formatting and
//! decoded with the standard correctly-rounded parser, so an exact-path
//! response is bit-identical to offline scoring on both ends of the wire.

use logirec_obs::json::{self, Json};

/// Which path produced a recommendation response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Full model scoring with seen-item masking — identical to `evaluate`.
    Exact,
    /// Clustered-index retrieval with exact re-rank of the shortlist
    /// (tight deadline, soft overload, or explicitly requested).
    Approx,
    /// The popularity-prior degraded response (deadline or soft overload).
    Fallback,
    /// Hard overload: the request was shed with an empty item list.
    Shed,
}

impl ServedBy {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ServedBy::Exact => "exact",
            ServedBy::Approx => "approx",
            ServedBy::Fallback => "fallback",
            ServedBy::Shed => "shed",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(ServedBy::Exact),
            "approx" => Some(ServedBy::Approx),
            "fallback" => Some(ServedBy::Fallback),
            "shed" => Some(ServedBy::Shed),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServedBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A top-K recommendation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: u64,
    /// User to recommend for.
    pub user: usize,
    /// How many items to return.
    pub k: usize,
    /// Per-request deadline in milliseconds; `None` uses the server
    /// default. A deadline of 0 deterministically degrades to fallback.
    pub deadline_ms: Option<u64>,
}

/// A streaming cold-start fold-in admin verb: grow the live snapshot by
/// one user (or item) off the request path and publish a new version.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldInVerb {
    /// `false` folds in a new user, `true` a new item.
    pub item: bool,
    /// Observed interactions for the new entity (item ids for a user,
    /// user ids for an item).
    pub positives: Vec<usize>,
    /// Optional override of the fold-in RSGD step count.
    pub steps: Option<usize>,
    /// Optional override of the fold-in RSGD learning rate.
    pub lr: Option<f64>,
}

/// Everything a client can send on one line.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A recommendation request.
    Recommend(Request),
    /// Ask for the server's counters.
    Stats,
    /// Ask for the Prometheus-style metrics exposition document.
    Metrics,
    /// Force a reload check of the watched model file.
    Reload,
    /// Fold a new user or item into the live snapshot.
    FoldIn(FoldInVerb),
    /// Stop the server.
    Shutdown,
}

/// The measured retrieval configuration an `approx` response was produced
/// under, so clients (and load tests) can attribute recall to knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxInfo {
    /// Clusters in the serving index.
    pub clusters: usize,
    /// Clusters probed for this request (the configured `nprobe`).
    pub nprobe: usize,
    /// Items exactly re-ranked for this request.
    pub scored: usize,
}

/// One recommendation response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Which path produced the items.
    pub served_by: ServedBy,
    /// Why the response degraded (`"deadline"` / `"overload"`), when it did.
    pub reason: Option<String>,
    /// Version of the snapshot that was live when the request ran.
    pub model_version: u64,
    /// Recommended item ids, best first (empty for `shed`).
    pub items: Vec<usize>,
    /// Scores aligned with `items` (exact: model scores; fallback:
    /// popularity counts).
    pub scores: Vec<f64>,
    /// Server-side latency of the request in microseconds.
    pub latency_us: u64,
    /// Retrieval configuration, present on `approx` responses only.
    pub approx: Option<ApproxInfo>,
}

/// Parses one request line.
pub fn parse_message(line: &str) -> Result<Message, String> {
    let j = json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    if j.get("shutdown").and_then(Json::as_bool) == Some(true) {
        return Ok(Message::Shutdown);
    }
    if j.get("reload").and_then(Json::as_bool) == Some(true) {
        return Ok(Message::Reload);
    }
    if j.get("stats").and_then(Json::as_bool) == Some(true) {
        return Ok(Message::Stats);
    }
    if j.get("metrics").and_then(Json::as_bool) == Some(true) {
        return Ok(Message::Metrics);
    }
    if let Some(f) = j.get("fold_in") {
        let positives = match f.get("positives") {
            Some(Json::Arr(a)) => a
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or("fold_in positives must be non-negative integers")
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("fold_in needs a \"positives\" array".to_string()),
        };
        return Ok(Message::FoldIn(FoldInVerb {
            item: f.get("item").and_then(Json::as_bool).unwrap_or(false),
            positives,
            steps: f.get("steps").and_then(Json::as_u64).map(|n| n as usize),
            lr: f.get("lr").and_then(Json::as_f64),
        }));
    }
    let user = j
        .get("user")
        .and_then(Json::as_u64)
        .ok_or("request needs a non-negative integer \"user\"")? as usize;
    Ok(Message::Recommend(Request {
        id: j.get("id").and_then(Json::as_u64).unwrap_or(0),
        user,
        k: j.get("k").and_then(Json::as_u64).unwrap_or(10) as usize,
        deadline_ms: j.get("deadline_ms").and_then(Json::as_u64),
    }))
}

/// Encodes a recommendation request line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    let mut s = format!("{{\"id\":{},\"user\":{},\"k\":{}", req.id, req.user, req.k);
    if let Some(d) = req.deadline_ms {
        s.push_str(&format!(",\"deadline_ms\":{d}"));
    }
    s.push('}');
    s
}

/// Encodes a fold-in admin request line (no trailing newline).
pub fn encode_fold_in(verb: &FoldInVerb) -> String {
    let mut s = "{\"fold_in\":{".to_string();
    if verb.item {
        s.push_str("\"item\":true,");
    }
    s.push_str("\"positives\":[");
    for (i, v) in verb.positives.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
    if let Some(n) = verb.steps {
        s.push_str(&format!(",\"steps\":{n}"));
    }
    if let Some(lr) = verb.lr {
        s.push_str(&format!(",\"lr\":{lr}"));
    }
    s.push_str("}}");
    s
}

/// Encodes a recommendation response line (no trailing newline).
pub fn encode_response(r: &Response) -> String {
    let mut s = format!("{{\"id\":{},\"served_by\":\"{}\"", r.id, r.served_by.as_str());
    if let Some(reason) = &r.reason {
        s.push_str(",\"reason\":\"");
        escape_into(reason, &mut s);
        s.push('"');
    }
    s.push_str(&format!(",\"model_version\":{}", r.model_version));
    s.push_str(",\"items\":[");
    for (i, v) in r.items.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push_str("],\"scores\":[");
    for (i, x) in r.scores.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        // Shortest round-trip formatting: parses back to the same bits.
        s.push_str(&format!("{x}"));
    }
    s.push_str(&format!("],\"latency_us\":{}", r.latency_us));
    if let Some(a) = &r.approx {
        s.push_str(&format!(
            ",\"approx\":{{\"clusters\":{},\"nprobe\":{},\"scored\":{}}}",
            a.clusters, a.nprobe, a.scored
        ));
    }
    s.push('}');
    s
}

/// Encodes an error response line (a client error; the connection stays up).
pub fn encode_error(id: u64, msg: &str) -> String {
    let mut s = format!("{{\"id\":{id},\"error\":\"");
    escape_into(msg, &mut s);
    s.push_str("\"}");
    s
}

/// Parses a response line. `Ok(Err(msg))` is a server-reported request
/// error; `Err` is a malformed line.
pub fn parse_response(line: &str) -> Result<Result<Response, String>, String> {
    let j = json::parse(line).map_err(|e| format!("bad response JSON: {e}"))?;
    let id = j.get("id").and_then(Json::as_u64).unwrap_or(0);
    if let Some(err) = j.get("error").and_then(Json::as_str) {
        return Ok(Err(err.to_string()));
    }
    let served_by = j
        .get("served_by")
        .and_then(Json::as_str)
        .and_then(ServedBy::parse)
        .ok_or("response lacks a valid \"served_by\"")?;
    let items = match j.get("items") {
        Some(Json::Arr(a)) => a
            .iter()
            .map(|v| v.as_u64().map(|n| n as usize).ok_or("non-integer item id"))
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("response lacks an \"items\" array".to_string()),
    };
    let scores = match j.get("scores") {
        Some(Json::Arr(a)) => a
            .iter()
            .map(|v| v.as_f64().ok_or("non-numeric score"))
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("response lacks a \"scores\" array".to_string()),
    };
    let approx = j.get("approx").map(|a| ApproxInfo {
        clusters: a.get("clusters").and_then(Json::as_u64).unwrap_or(0) as usize,
        nprobe: a.get("nprobe").and_then(Json::as_u64).unwrap_or(0) as usize,
        scored: a.get("scored").and_then(Json::as_u64).unwrap_or(0) as usize,
    });
    Ok(Ok(Response {
        id,
        served_by,
        reason: j.get("reason").and_then(Json::as_str).map(str::to_string),
        model_version: j.get("model_version").and_then(Json::as_u64).unwrap_or(0),
        items,
        scores,
        latency_us: j.get("latency_us").and_then(Json::as_u64).unwrap_or(0),
        approx,
    }))
}

/// JSON string escaping (quotes, backslashes, control characters).
pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request { id: 7, user: 3, k: 5, deadline_ms: Some(250) };
        let line = encode_request(&req);
        assert_eq!(parse_message(&line), Ok(Message::Recommend(req)));
        // deadline_ms is optional on the wire.
        let msg = parse_message("{\"user\":1}").expect("parses");
        assert_eq!(
            msg,
            Message::Recommend(Request { id: 0, user: 1, k: 10, deadline_ms: None })
        );
    }

    #[test]
    fn admin_messages_parse() {
        assert_eq!(parse_message("{\"shutdown\":true}"), Ok(Message::Shutdown));
        assert_eq!(parse_message("{\"reload\":true}"), Ok(Message::Reload));
        assert_eq!(parse_message("{\"stats\":true}"), Ok(Message::Stats));
        assert_eq!(parse_message("{\"metrics\":true}"), Ok(Message::Metrics));
        assert!(parse_message("{\"k\":10}").is_err(), "no user and no admin key");
        assert!(parse_message("not json").is_err());
    }

    #[test]
    fn fold_in_verbs_round_trip() {
        let user = FoldInVerb { item: false, positives: vec![3, 9], steps: None, lr: None };
        assert_eq!(parse_message(&encode_fold_in(&user)), Ok(Message::FoldIn(user)));
        let item = FoldInVerb {
            item: true,
            positives: vec![0, 2, 5],
            steps: Some(12),
            lr: Some(0.25),
        };
        assert_eq!(parse_message(&encode_fold_in(&item)), Ok(Message::FoldIn(item)));
        assert!(
            parse_message("{\"fold_in\":{}}").is_err(),
            "fold_in without positives is a client error"
        );
        assert!(parse_message("{\"fold_in\":{\"positives\":[-1]}}").is_err());
    }

    #[test]
    // The awkward 17-digit literal is the point: shortest round-trip
    // formatting must reproduce exactly these bits.
    #[allow(clippy::excessive_precision)]
    fn response_round_trips_scores_bit_exactly() {
        let resp = Response {
            id: 9,
            served_by: ServedBy::Exact,
            reason: None,
            model_version: 3,
            items: vec![4, 1, 0],
            scores: vec![-1.0686951927368068, -2.5e-300, 0.1 + 0.2],
            latency_us: 1234,
            approx: None,
        };
        let parsed = parse_response(&encode_response(&resp))
            .expect("parses")
            .expect("not an error");
        assert_eq!(parsed.items, resp.items);
        for (a, b) in parsed.scores.iter().zip(&resp.scores) {
            assert_eq!(a.to_bits(), b.to_bits(), "score {b} did not round-trip");
        }
        assert_eq!(parsed.served_by, ServedBy::Exact);
        assert_eq!(parsed.model_version, 3);
    }

    #[test]
    fn degraded_responses_carry_their_reason() {
        let resp = Response {
            id: 1,
            served_by: ServedBy::Fallback,
            reason: Some("deadline".to_string()),
            model_version: 1,
            items: vec![2],
            scores: vec![17.0],
            latency_us: 9,
            approx: None,
        };
        let parsed = parse_response(&encode_response(&resp)).unwrap().unwrap();
        assert_eq!(parsed.reason.as_deref(), Some("deadline"));
        assert_eq!(parsed.served_by, ServedBy::Fallback);
    }

    #[test]
    fn approx_responses_round_trip_their_probe_config() {
        let resp = Response {
            id: 3,
            served_by: ServedBy::Approx,
            reason: Some("deadline".to_string()),
            model_version: 2,
            items: vec![5, 9],
            scores: vec![-0.25, -0.75],
            latency_us: 41,
            approx: Some(ApproxInfo { clusters: 94, nprobe: 12, scored: 1408 }),
        };
        let parsed = parse_response(&encode_response(&resp)).unwrap().unwrap();
        assert_eq!(parsed.served_by, ServedBy::Approx);
        assert_eq!(parsed.approx, resp.approx);
        // Non-approx responses omit the key entirely.
        let exact = Response { served_by: ServedBy::Exact, reason: None, approx: None, ..resp };
        let line = encode_response(&exact);
        assert!(!line.contains("approx"), "{line}");
    }

    #[test]
    fn error_responses_surface_as_inner_err_with_escaping() {
        let line = encode_error(5, "bad \"user\"\nvalue");
        let err = parse_response(&line).expect("parses").unwrap_err();
        assert_eq!(err, "bad \"user\"\nvalue");
    }
}
