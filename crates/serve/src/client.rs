//! A small client for the serve protocol, plus the bounded-retry/backoff
//! helper the load generator and smoke tests use.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use logirec_obs::json::{self, Json};

use crate::protocol::{self, FoldInVerb, Request, Response};

/// Errors a client call can surface.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, or write).
    Io(io::Error),
    /// The server closed the connection mid-exchange.
    Closed,
    /// The response line did not parse as protocol JSON.
    Protocol(String),
    /// The server replied with an `error` response (a client mistake —
    /// not retried, the request would fail again).
    Server(String),
    /// All retry attempts failed; carries the last transport error.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error of the final attempt.
        last: Box<ClientError>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server rejected the request: {m}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Bounded-retry policy with exponential backoff. Retries cover transport
/// failures only (connect refused, dropped connections, timeouts); a
/// server `error` reply is deterministic and surfaces immediately.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 0 behaves like 1.
    pub attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Backoff multiplier per further attempt.
    pub multiplier: u32,
    /// Upper bound on a single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base_backoff: Duration::from_millis(5),
            multiplier: 2,
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The backoff slept after failed attempt number `attempt` (1-based):
    /// `base * multiplier^(attempt-1)`, capped at `max_backoff`.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        let factor = self.multiplier.max(1).saturating_pow(attempt.saturating_sub(1));
        self.base_backoff.saturating_mul(factor).min(self.max_backoff)
    }
}

/// One connection to a serve instance. Requests are pipelined one at a
/// time: write a line, read a line.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Default client-side read timeout — generous so it only fires on a hung
/// server, never on a deadline-exceeded request (the server answers those
/// promptly with a fallback).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { writer: stream, reader })
    }

    /// Sends one raw line and reads one raw line back (trailing newline
    /// stripped).
    pub fn roundtrip_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(ClientError::Closed);
        }
        Ok(resp.trim_end().to_string())
    }

    /// Sends a recommendation request and parses the response.
    pub fn recommend(&mut self, req: &Request) -> Result<Response, ClientError> {
        let line = self.roundtrip_line(&protocol::encode_request(req))?;
        match protocol::parse_response(&line) {
            Err(m) => Err(ClientError::Protocol(m)),
            Ok(Err(server_msg)) => Err(ClientError::Server(server_msg)),
            Ok(Ok(resp)) => Ok(resp),
        }
    }

    /// Asks for the server counters (the raw stats object).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let line = self.roundtrip_line("{\"stats\":true}")?;
        json::parse(&line).map_err(ClientError::Protocol)
    }

    /// Forces a reload check; returns the raw reload object
    /// (`reload: swapped|rejected|unchanged`).
    pub fn reload(&mut self) -> Result<Json, ClientError> {
        let line = self.roundtrip_line("{\"reload\":true}")?;
        json::parse(&line).map_err(ClientError::Protocol)
    }

    /// Folds a new user (or item, with `item: true`) into the live
    /// snapshot; returns the raw fold-in object
    /// (`fold_in: swapped|rejected`, plus `new_id` / `model_version` on
    /// success).
    pub fn fold_in(
        &mut self,
        item: bool,
        positives: &[usize],
        steps: Option<usize>,
        lr: Option<f64>,
    ) -> Result<Json, ClientError> {
        let verb = FoldInVerb { item, positives: positives.to_vec(), steps, lr };
        let line = self.roundtrip_line(&protocol::encode_fold_in(&verb))?;
        json::parse(&line).map_err(ClientError::Protocol)
    }

    /// Asks the server to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let _ = self.roundtrip_line("{\"shutdown\":true}")?;
        Ok(())
    }
}

/// Connect-and-recommend with bounded retries and exponential backoff.
/// Each attempt uses a fresh connection, so dropped connections and a
/// briefly unavailable server are retried; server-side `error` replies are
/// not. Returns the response and the number of attempts used.
pub fn recommend_with_retry(
    addr: SocketAddr,
    req: &Request,
    policy: &RetryPolicy,
) -> Result<(Response, u32), ClientError> {
    let attempts = policy.attempts.max(1);
    let mut last: Option<ClientError> = None;
    for attempt in 1..=attempts {
        let result = Client::connect(addr)
            .map_err(ClientError::from)
            .and_then(|mut c| c.recommend(req));
        match result {
            Ok(resp) => return Ok((resp, attempt)),
            Err(e @ ClientError::Server(_)) => return Err(e),
            Err(e) => last = Some(e),
        }
        if attempt < attempts {
            std::thread::sleep(policy.backoff_after(attempt));
        }
    }
    Err(ClientError::RetriesExhausted {
        attempts,
        last: Box::new(last.expect("at least one attempt ran")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_after(1), Duration::from_millis(5));
        assert_eq!(p.backoff_after(2), Duration::from_millis(10));
        assert_eq!(p.backoff_after(3), Duration::from_millis(20));
        assert_eq!(p.backoff_after(30), Duration::from_millis(200), "capped");
    }

    #[test]
    fn retry_reports_exhaustion_against_a_dead_address() {
        // Bind-then-drop gives a port nothing listens on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let policy = RetryPolicy {
            attempts: 2,
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let req = Request { id: 1, user: 0, k: 5, deadline_ms: None };
        match recommend_with_retry(addr, &req, &policy) {
            Err(ClientError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
