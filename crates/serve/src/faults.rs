//! Deterministic fault injection for the serve path. Only compiled with the
//! `fault-injection` feature (enabled by the suite's dev-dependencies,
//! never by release builds), extending `logirec_core::faults` from the
//! training loop into serving.
//!
//! Two hook points:
//!
//! * [`ServeFaultPlan::maybe_stall`] — called inside the scoring span, so a
//!   scheduled stall pushes an otherwise-fast request past its deadline and
//!   exercises the late-exact → fallback demotion;
//! * [`ServeFaultPlan::take_connection_drop`] — consulted by the accept
//!   loop, dropping the next N accepted connections on the floor so the
//!   client's bounded-retry path is tested against real refused work.
//!
//! Torn/corrupt checkpoint files reuse the core helpers re-exported here
//! ([`truncate_file`], [`flip_bit`]) — corrupt the watched file on disk and
//! the reloader must reject it and keep serving last-good.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use logirec_core::faults::{flip_bit, truncate_file};

#[derive(Debug, Default)]
struct Inner {
    stall_us: AtomicU64,
    stalls_left: AtomicU64,
    conn_drops_left: AtomicU64,
}

/// A shared, thread-safe schedule of serve-path faults. Cloning shares the
/// schedule (the server and the test both see the same remaining budget).
#[derive(Debug, Clone, Default)]
pub struct ServeFaultPlan {
    inner: Arc<Inner>,
}

impl ServeFaultPlan {
    /// An empty plan (no faults fire until scheduled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules the next `times` scoring calls to stall for `dur` each.
    pub fn stall_scoring(&self, dur: Duration, times: u64) {
        self.inner.stall_us.store(dur.as_micros() as u64, Ordering::SeqCst);
        self.inner.stalls_left.store(times, Ordering::SeqCst);
    }

    /// Scoring-path hook: sleeps if a stall is scheduled, consuming one.
    pub fn maybe_stall(&self) {
        let left = &self.inner.stalls_left;
        let mut cur = left.load(Ordering::SeqCst);
        while cur > 0 {
            match left.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => {
                    let us = self.inner.stall_us.load(Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(us));
                    return;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// Schedules the next `n` accepted connections to be dropped.
    pub fn drop_connections(&self, n: u64) {
        self.inner.conn_drops_left.store(n, Ordering::SeqCst);
    }

    /// Accept-loop hook: true when the connection should be dropped,
    /// consuming one scheduled drop.
    pub fn take_connection_drop(&self) -> bool {
        let left = &self.inner.conn_drops_left;
        let mut cur = left.load(Ordering::SeqCst);
        while cur > 0 {
            match left.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
        false
    }

    /// Stalls still scheduled (tests assert exhaustion).
    pub fn pending_stalls(&self) -> u64 {
        self.inner.stalls_left.load(Ordering::SeqCst)
    }

    /// Connection drops still scheduled.
    pub fn pending_connection_drops(&self) -> u64 {
        self.inner.conn_drops_left.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stalls_and_drops_fire_exactly_as_scheduled() {
        let plan = ServeFaultPlan::new();
        plan.stall_scoring(Duration::from_micros(1), 2);
        plan.maybe_stall();
        plan.maybe_stall();
        assert_eq!(plan.pending_stalls(), 0);
        plan.maybe_stall(); // budget exhausted: no-op

        plan.drop_connections(1);
        assert!(plan.take_connection_drop());
        assert!(!plan.take_connection_drop());
        // Clones share the schedule.
        let other = plan.clone();
        plan.drop_connections(1);
        assert!(other.take_connection_drop());
        assert!(!plan.take_connection_drop());
    }
}
