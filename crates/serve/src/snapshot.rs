//! Read-only serving state: the per-dataset [`ServeContext`] (seen-item
//! filter, popularity prior, canary users) and the hot-swappable
//! [`ModelSnapshot`] behind a [`SnapshotStore`].
//!
//! The exact path is byte-identical to the offline evaluator: the same
//! [`Ranker::score_user`] scores, the same Train ∪ Validation mask
//! ([`SeenFilter::eval_mask`]), and the same deterministic
//! [`top_k_indices`] selection, so a response can be replayed against
//! `evaluate` and compared bit for bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use logirec_core::stream::{self, FoldInOptions};
use logirec_core::{FilterError, LogiRec, LogiRecConfig, Precision, SeenFilter};
use logirec_data::{Dataset, InteractionSet};
use logirec_eval::ranking::top_k_indices;
use logirec_eval::Ranker;

use crate::index::{ClusterIndex, IndexConfig, ProbeReport};

/// One approx-tier answer: ranked item ids, their exact scores, and the
/// probe accounting for that search.
pub type ApproxAnswer = (Vec<usize>, Vec<f64>, ProbeReport);

/// Dataset-derived serving state shared by every snapshot: who has seen
/// what, the popularity prior used for degraded responses, and the canary
/// users every candidate snapshot must score sanely before going live.
#[derive(Debug, Clone)]
pub struct ServeContext {
    train: InteractionSet,
    seen: SeenFilter,
    /// All item ids, most train-popular first (ties toward smaller id).
    popularity: Vec<usize>,
    /// Fallback scores aligned with `popularity` (the item's train
    /// interaction count as `f64`), precomputed once at context build so
    /// the degraded path is a straight scan with no per-item gather.
    pop_scores: Vec<f64>,
    canaries: Vec<usize>,
}

/// How many canary users a candidate snapshot is probed against.
const N_CANARIES: usize = 8;

impl ServeContext {
    /// Builds the context from a dataset. The seen mask is Train ∪
    /// Validation — the mask offline test-split evaluation applies — so the
    /// exact path reproduces `evaluate` responses byte for byte.
    pub fn from_dataset(ds: &Dataset) -> Self {
        let n_items = ds.n_items();
        let mut item_degree = vec![0usize; n_items];
        for (v, d) in item_degree.iter_mut().enumerate() {
            *d = ds.train.users_of(v).len();
        }
        let mut popularity: Vec<usize> = (0..n_items).collect();
        popularity.sort_by(|&a, &b| item_degree[b].cmp(&item_degree[a]).then(a.cmp(&b)));
        let pop_scores = popularity.iter().map(|&v| item_degree[v] as f64).collect();
        let n_users = ds.n_users();
        let step = (n_users / N_CANARIES).max(1);
        let canaries = (0..n_users).step_by(step).take(N_CANARIES).collect();
        Self {
            train: ds.train.clone(),
            seen: SeenFilter::eval_mask(ds),
            popularity,
            pop_scores,
            canaries,
        }
    }

    /// Users the context covers.
    pub fn n_users(&self) -> usize {
        self.seen.n_users()
    }

    /// Items the context covers.
    pub fn n_items(&self) -> usize {
        self.seen.n_items()
    }

    /// The training interactions snapshots propagate over.
    pub fn train(&self) -> &InteractionSet {
        &self.train
    }

    /// The Train ∪ Validation seen-item filter.
    pub fn seen(&self) -> &SeenFilter {
        &self.seen
    }

    /// The users every candidate snapshot is probed against.
    pub fn canaries(&self) -> &[usize] {
        &self.canaries
    }

    /// The degraded response: the `k` most train-popular items the user has
    /// not already interacted with, scored by raw interaction count. Needs
    /// no model at all, so it survives any snapshot problem. Both the
    /// popularity ranking and its score column are precomputed at context
    /// build, so this is a bounded scan over two parallel arrays — no
    /// sorting or per-item degree gather on the degraded path.
    pub fn fallback_top_k(&self, u: usize, k: usize) -> Result<(Vec<usize>, Vec<f64>), FilterError> {
        let seen = self.seen.seen_of(u)?;
        let mut items = Vec::with_capacity(k);
        let mut scores = Vec::with_capacity(k);
        for (&v, &s) in self.popularity.iter().zip(&self.pop_scores) {
            if seen.binary_search(&v).is_ok() {
                continue;
            }
            items.push(v);
            scores.push(s);
            if items.len() == k {
                break;
            }
        }
        Ok((items, scores))
    }

    /// The degraded response for a user the context does not know (a
    /// signup that has not been folded in yet): the `k` most train-popular
    /// items with no seen-mask, since there is no history to mask.
    pub fn fallback_top_k_unfiltered(&self, k: usize) -> (Vec<usize>, Vec<f64>) {
        let n = k.min(self.popularity.len());
        (self.popularity[..n].to_vec(), self.pop_scores[..n].to_vec())
    }

    /// A copy of this context grown by one user whose seen items are
    /// `positives`. The training interactions keep their edges but gain
    /// the row — the new user is **isolated** in the propagation graph, so
    /// re-propagating a folded model leaves every pre-existing final
    /// embedding byte-identical (see `logirec_core::stream`).
    pub fn with_new_user(&self, positives: &[usize]) -> Result<Self, FilterError> {
        let mut next = self.clone();
        let pairs: Vec<(usize, usize)> = self.train.iter_pairs().collect();
        next.train = InteractionSet::from_pairs(self.n_users() + 1, self.n_items(), &pairs);
        next.seen.push_user(positives)?;
        Ok(next)
    }

    /// A copy of this context grown by one item, marked seen for each of
    /// `interacting_users`. The new item joins the popularity ranking with
    /// a zero interaction count (it sorts after every existing item, which
    /// is where a brand-new item belongs in a popularity prior).
    pub fn with_new_item(&self, interacting_users: &[usize]) -> Result<Self, FilterError> {
        let mut next = self.clone();
        let pairs: Vec<(usize, usize)> = self.train.iter_pairs().collect();
        next.train = InteractionSet::from_pairs(self.n_users(), self.n_items() + 1, &pairs);
        let v = next.seen.push_item();
        for &u in interacting_users {
            next.seen.record_seen(u, v)?;
        }
        // Zero count and the largest id: appending keeps the
        // (count desc, id asc) order invariant.
        next.popularity.push(v);
        next.pop_scores.push(0.0);
        Ok(next)
    }
}

/// The model at either working precision. Scores surface as `f64` in both
/// cases (the `Ranker` contract), so the protocol layer is precision-blind.
#[derive(Debug, Clone)]
enum ModelKind {
    F64(LogiRec<f64>),
    F32(LogiRec<f32>),
}

/// An immutable, fully validated, ready-to-score model snapshot. Built once
/// (propagation + canary probe happen in [`ModelSnapshot::build`], off the
/// request path), then shared read-only behind an `Arc` — requests never
/// lock or mutate it.
#[derive(Debug)]
pub struct ModelSnapshot {
    version: u64,
    precision: Precision,
    source: String,
    model: ModelKind,
    /// The serving context this snapshot was validated against. Owned (as
    /// a shared handle) so model, index, and context always swap as one
    /// unit — a fold-in that grows the tables publishes a grown context in
    /// the same atomic swap, and a request can never score a snapshot
    /// through a context with mismatched shapes.
    ctx: Arc<ServeContext>,
    /// The approximate-retrieval index over this snapshot's item table,
    /// when the server was configured with one. Owned by the snapshot so a
    /// hot swap replaces model and index atomically — they can never skew.
    index: Option<ClusterIndex>,
    /// The config the index was built with, carried so a reload rebuilds
    /// the candidate's index with identical knobs.
    index_cfg: Option<IndexConfig>,
}

/// How many top items the build-time index canary compares bit-for-bit
/// against the exact scan.
const INDEX_CANARY_K: usize = 10;

impl ModelSnapshot {
    /// Validates `model` against `ctx` and prepares it for serving:
    /// shape check, finiteness check, forward propagation over the training
    /// graph, then a canary probe (every canary user must produce finite
    /// scores for every item). Any failure returns the reason instead of a
    /// snapshot — the caller keeps serving its last-good snapshot.
    pub fn build(
        model: LogiRec,
        precision: Precision,
        ctx: &Arc<ServeContext>,
        source: impl Into<String>,
    ) -> Result<Self, String> {
        Self::build_with_index(model, precision, ctx, source, None)
    }

    /// [`ModelSnapshot::build`] plus an approximate-retrieval index.
    ///
    /// The index is built off the request path, right here during snapshot
    /// validation, and validated with its own canary: for every canary
    /// user, an exhaustive probe (`nprobe = n_clusters`) must reproduce the
    /// exact tier's top-K **bit for bit**. A failure rejects the whole
    /// candidate — under the `Reloader` that means rollback, so a bad index
    /// can never go live, exactly like a bad model.
    pub fn build_with_index(
        model: LogiRec,
        precision: Precision,
        ctx: &Arc<ServeContext>,
        source: impl Into<String>,
        index_cfg: Option<IndexConfig>,
    ) -> Result<Self, String> {
        if model.items.rows() != ctx.n_items() {
            return Err(format!(
                "model has {} items but the dataset has {}",
                model.items.rows(),
                ctx.n_items()
            ));
        }
        if model.users.rows() != ctx.n_users() {
            return Err(format!(
                "model has {} users but the dataset has {}",
                model.users.rows(),
                ctx.n_users()
            ));
        }
        if !model.all_finite() {
            return Err("model has non-finite parameters".to_string());
        }
        let kind = match precision {
            Precision::F64 => {
                let mut m = model;
                m.propagate(ctx.train());
                ModelKind::F64(m)
            }
            Precision::F32 => {
                let mut m = model.cast::<f32>();
                m.propagate(ctx.train());
                ModelKind::F32(m)
            }
        };
        let index = match (&kind, &index_cfg) {
            (_, None) => None,
            (ModelKind::F64(m), Some(cfg)) => {
                Some(ClusterIndex::build(&m.state().item_final, m.cfg.geometry, cfg))
            }
            (ModelKind::F32(m), Some(cfg)) => {
                Some(ClusterIndex::build(&m.state().item_final, m.cfg.geometry, cfg))
            }
        };
        let snap = Self {
            version: 0,
            precision,
            source: source.into(),
            model: kind,
            ctx: Arc::clone(ctx),
            index,
            index_cfg,
        };
        let mut scores = vec![0.0f64; ctx.n_items()];
        for &u in ctx.canaries() {
            snap.score_user(u, &mut scores);
            if let Some(v) = scores.iter().position(|s| !s.is_finite()) {
                return Err(format!("canary user {u} scores item {v} non-finite"));
            }
        }
        if let Some(index) = &snap.index {
            let mut scratch = Vec::new();
            for &u in ctx.canaries() {
                let (exact_items, exact_scores) = snap
                    .top_k(u, INDEX_CANARY_K, &mut scratch)
                    .map_err(|e| format!("index canary user {u}: {e}"))?;
                let (items, scores, _) = snap
                    .approx_top_k(u, INDEX_CANARY_K, Some(index.clusters()))
                    .map_err(|e| format!("index canary user {u}: {e}"))?
                    .expect("index present");
                if items != exact_items
                    || scores.iter().zip(&exact_scores).any(|(a, b)| a.to_bits() != b.to_bits())
                {
                    return Err(format!(
                        "index canary user {u}: exhaustive probe diverged from the exact scan"
                    ));
                }
            }
        }
        Ok(snap)
    }

    /// The version the owning [`SnapshotStore`] assigned (0 before install).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Working precision of the scoring path.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Where the snapshot came from (file path, or a caller-chosen label).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The model hyperparameters (used as the base config when reloading).
    pub fn config(&self) -> &LogiRecConfig {
        match &self.model {
            ModelKind::F64(m) => &m.cfg,
            ModelKind::F32(m) => &m.cfg,
        }
    }

    /// The approximate-retrieval index, when one was built.
    pub fn index(&self) -> Option<&ClusterIndex> {
        self.index.as_ref()
    }

    /// The index configuration this snapshot was built with (a reload
    /// rebuilds the candidate's index with the same knobs).
    pub fn index_config(&self) -> Option<IndexConfig> {
        self.index_cfg
    }

    /// The serving context this snapshot was validated against. Requests
    /// must use this (not a server-wide context) so that a snapshot whose
    /// fold-ins grew the tables is always paired with its grown masks.
    pub fn ctx(&self) -> &Arc<ServeContext> {
        &self.ctx
    }

    /// Folds one brand-new entity into a **candidate** snapshot: clones
    /// the frozen model, runs the deterministic new-row-only optimization
    /// (`logirec_core::stream`), grows the serving context, and rebuilds
    /// the snapshot through the full validation pipeline — propagation,
    /// canary probe, and index rebuild in lockstep. The current snapshot
    /// is untouched; on any failure (non-finite row, out-of-range
    /// positives, canary failure) the error is returned and the caller
    /// keeps serving last-good.
    ///
    /// `steps` / `lr` override the fold-in defaults when given. Returns
    /// the candidate and the id the new entity was assigned.
    pub fn fold_in(
        &self,
        item: bool,
        positives: &[usize],
        steps: Option<usize>,
        lr: Option<f64>,
    ) -> Result<(Self, usize), String> {
        let run = |opts: &mut FoldInOptions| {
            if let Some(s) = steps {
                opts.steps = s;
            }
            if let Some(l) = lr {
                opts.lr = l;
            }
        };
        // Fold at the serving precision, so the appended row is exactly
        // what this snapshot's scoring path would have produced; an f32
        // model round-trips through f64 losslessly (exact widening, exact
        // re-narrowing at build).
        let (model, new_id) = match &self.model {
            ModelKind::F64(m) => {
                let mut m2 = m.clone();
                let mut opts = FoldInOptions::for_config(&m2.cfg);
                run(&mut opts);
                let report = if item {
                    stream::fold_in_item(&mut m2, positives, &opts)
                } else {
                    stream::fold_in_user(&mut m2, positives, &opts)
                }
                .map_err(|e| format!("fold-in: {e}"))?;
                (m2, report.id)
            }
            ModelKind::F32(m) => {
                let mut m2 = m.clone();
                let mut opts = FoldInOptions::for_config(&m2.cfg);
                run(&mut opts);
                let report = if item {
                    stream::fold_in_item(&mut m2, positives, &opts)
                } else {
                    stream::fold_in_user(&mut m2, positives, &opts)
                }
                .map_err(|e| format!("fold-in: {e}"))?;
                (m2.cast::<f64>(), report.id)
            }
        };
        let grown = if item {
            self.ctx.with_new_item(positives)
        } else {
            self.ctx.with_new_user(positives)
        }
        .map_err(|e| format!("fold-in context: {e}"))?;
        let kind = if item { "item" } else { "user" };
        let source = format!("{} + fold_in {kind} {new_id}", self.source);
        let snap =
            Self::build_with_index(model, self.precision, &Arc::new(grown), source, self.index_cfg)?;
        Ok((snap, new_id))
    }

    /// The approximate top-K response for `u`: rank clusters, scan the
    /// `nprobe` nearest (default: the index's configured probe count),
    /// exactly re-rank every unseen member through the same Train ∪
    /// Validation mask as the exact tier. Returns `Ok(None)` when the
    /// snapshot has no index. With `nprobe ≥ n_clusters` the result is
    /// bit-identical to [`ModelSnapshot::top_k`].
    pub fn approx_top_k(
        &self,
        u: usize,
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<Option<ApproxAnswer>, FilterError> {
        let Some(index) = &self.index else { return Ok(None) };
        let seen = self.ctx.seen().seen_of(u)?;
        let nprobe = nprobe.unwrap_or_else(|| index.nprobe());
        let out = match &self.model {
            ModelKind::F64(m) => {
                let st = m.state();
                index.search(st.user_final.row(u), &st.item_final, seen, k, nprobe)
            }
            ModelKind::F32(m) => {
                let st = m.state();
                index.search(st.user_final.row(u), &st.item_final, seen, k, nprobe)
            }
        };
        Ok(Some(out))
    }

    /// Scores every item for `u` into `out` (higher is better), exactly as
    /// the offline evaluator would.
    pub fn score_user(&self, u: usize, out: &mut [f64]) {
        match &self.model {
            ModelKind::F64(m) => m.score_user(u, out),
            ModelKind::F32(m) => m.score_user(u, out),
        }
    }

    /// The exact top-K response for `u`: score all items into `scratch`,
    /// mask Train ∪ Validation, select with the evaluator's deterministic
    /// [`top_k_indices`]. Returns `(items, scores)` best-first.
    pub fn top_k(
        &self,
        u: usize,
        k: usize,
        scratch: &mut Vec<f64>,
    ) -> Result<(Vec<usize>, Vec<f64>), FilterError> {
        // Validate the user before touching the embedding tables — the
        // model panics on out-of-range rows.
        self.ctx.seen().seen_of(u)?;
        scratch.clear();
        scratch.resize(self.ctx.n_items(), 0.0);
        self.score_user(u, scratch);
        self.ctx.seen().mask_scores(u, scratch)?;
        let items = top_k_indices(scratch, k);
        let scores = items.iter().map(|&v| scratch[v]).collect();
        Ok((items, scores))
    }
}

/// The atomically hot-swappable current snapshot. Readers take a cheap
/// `Arc` clone and keep scoring against it even while a newer snapshot is
/// installed; versions are assigned monotonically at install time.
#[derive(Debug)]
pub struct SnapshotStore {
    current: Mutex<Arc<ModelSnapshot>>,
    next_version: AtomicU64,
}

impl SnapshotStore {
    /// Installs `initial` as version 1.
    pub fn new(mut initial: ModelSnapshot) -> Self {
        initial.version = 1;
        if let Some(index) = &mut initial.index {
            index.set_model_version(1);
        }
        Self { current: Mutex::new(Arc::new(initial)), next_version: AtomicU64::new(2) }
    }

    /// The live snapshot (an `Arc` clone; never blocks on a swap for long).
    pub fn get(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.current.lock().expect("snapshot store poisoned"))
    }

    /// Atomically replaces the live snapshot, assigning and returning the
    /// next version. In-flight requests finish on the snapshot they
    /// already hold.
    pub fn swap(&self, mut snap: ModelSnapshot) -> u64 {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        snap.version = version;
        // The index (when present) is stamped in lockstep: one version
        // covers the model/index pair, because they swap as one unit.
        if let Some(index) = &mut snap.index {
            index.set_model_version(version);
        }
        *self.current.lock().expect("snapshot store poisoned") = Arc::new(snap);
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale, Split};

    fn fixture() -> (Dataset, Arc<ServeContext>, ModelSnapshot) {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(11);
        let ctx = Arc::new(ServeContext::from_dataset(&ds));
        let model = LogiRec::new(LogiRecConfig::test_config(), &ds);
        let snap = ModelSnapshot::build(model, Precision::F64, &ctx, "test").expect("valid");
        (ds, ctx, snap)
    }

    #[test]
    fn exact_top_k_matches_the_offline_evaluator_masking() {
        let (ds, _ctx, snap) = fixture();
        let mut scratch = Vec::new();
        let (items, scores) = snap.top_k(0, 10, &mut scratch).expect("in range");
        // Replay the evaluator's inline masking by hand.
        let mut expected = vec![0.0f64; ds.n_items()];
        snap.score_user(0, &mut expected);
        for &v in ds.train.items_of(0) {
            expected[v] = f64::NEG_INFINITY;
        }
        for &v in ds.split(Split::Validation).items_of(0) {
            expected[v] = f64::NEG_INFINITY;
        }
        assert_eq!(items, top_k_indices(&expected, 10));
        for (&v, &s) in items.iter().zip(&scores) {
            assert!(s.to_bits() == expected[v].to_bits(), "score for item {v} not bit-exact");
        }
    }

    #[test]
    fn fallback_is_popularity_ordered_and_never_recommends_seen_items() {
        let (ds, ctx, _) = fixture();
        let (items, scores) = ctx.fallback_top_k(0, 10).expect("in range");
        assert!(!items.is_empty());
        for w in scores.windows(2) {
            assert!(w[0] >= w[1], "fallback scores must be non-increasing");
        }
        for &v in &items {
            assert!(!ds.train.items_of(0).contains(&v));
        }
    }

    #[test]
    fn build_rejects_non_finite_models() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(11);
        let ctx = Arc::new(ServeContext::from_dataset(&ds));
        let mut model = LogiRec::new(LogiRecConfig::test_config(), &ds);
        model.items.row_mut(0)[0] = f64::NAN;
        let err = ModelSnapshot::build(model, Precision::F64, &ctx, "bad").unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn store_assigns_monotonic_versions_and_swaps_atomically() {
        let (_, ctx, snap) = fixture();
        let store = SnapshotStore::new(snap);
        assert_eq!(store.get().version(), 1);
        let held = store.get();
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(11);
        let model = LogiRec::new(LogiRecConfig::test_config(), &ds);
        let next = ModelSnapshot::build(model, Precision::F32, &ctx, "next").expect("valid");
        assert_eq!(store.swap(next), 2);
        assert_eq!(store.get().version(), 2);
        assert_eq!(store.get().precision(), Precision::F32);
        // The reader that grabbed version 1 still holds a working snapshot.
        assert_eq!(held.version(), 1);
        let mut scratch = Vec::new();
        held.top_k(0, 5, &mut scratch).expect("old snapshot still scores");
    }

    #[test]
    fn out_of_range_user_is_a_typed_error_not_a_panic() {
        let (_, ctx, snap) = fixture();
        let mut scratch = Vec::new();
        assert!(snap.top_k(ctx.n_users() + 7, 5, &mut scratch).is_err());
        assert!(ctx.fallback_top_k(ctx.n_users() + 7, 5).is_err());
        // The unknown-user degraded path still answers with popularity.
        let (items, _) = ctx.fallback_top_k_unfiltered(5);
        assert_eq!(items.len(), 5);
    }

    #[test]
    fn fold_in_candidate_grows_context_and_serves_the_new_user() {
        let (ds, ctx, snap) = fixture();
        let new_user = ctx.n_users();
        let positives = vec![1usize, 4, 9];
        let (candidate, id) = snap.fold_in(false, &positives, None, None).expect("fold in");
        assert_eq!(id, new_user);
        assert_eq!(candidate.ctx().n_users(), ds.n_users() + 1);
        // The original snapshot and context are untouched.
        assert_eq!(ctx.n_users(), ds.n_users());
        let mut scratch = Vec::new();
        assert!(snap.top_k(new_user, 5, &mut scratch).is_err());
        // The candidate serves the folded user, with positives masked.
        let (items, _) = candidate.top_k(new_user, 10, &mut scratch).expect("servable");
        assert_eq!(items.len(), 10);
        for &v in &positives {
            assert!(!items.contains(&v), "positive {v} must be masked");
        }
        // Pre-existing users score identically on both snapshots.
        let (old_items, old_scores) = snap.top_k(0, 10, &mut scratch).expect("in range");
        let (new_items, new_scores) = candidate.top_k(0, 10, &mut scratch).expect("in range");
        assert_eq!(old_items, new_items);
        for (a, b) in old_scores.iter().zip(&new_scores) {
            assert_eq!(a.to_bits(), b.to_bits(), "old user scores must be bit-identical");
        }
    }

    #[test]
    fn fold_in_rejects_divergent_rows_and_bad_positives() {
        let (_, _ctx, snap) = fixture();
        // An absurd learning rate (gradient ascent) drives the new row far
        // off the frozen table's span; the candidate is rejected and the
        // current snapshot stays usable.
        let err = snap.fold_in(false, &[1, 4], Some(60), Some(1000.0)).unwrap_err();
        assert!(err.contains("fold-in"), "{err}");
        let err = snap.fold_in(false, &[usize::MAX], None, None).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let mut scratch = Vec::new();
        snap.top_k(0, 5, &mut scratch).expect("last-good still serves");
    }

    #[test]
    fn fold_in_item_grows_the_catalog_and_masks_it_for_its_users() {
        let (ds, _ctx, snap) = fixture();
        let (candidate, id) = snap.fold_in(true, &[0, 3], None, None).expect("fold in");
        assert_eq!(id, ds.n_items());
        assert_eq!(candidate.ctx().n_items(), ds.n_items() + 1);
        let mut scratch = Vec::new();
        // The interacting users have the new item masked; others may see it.
        let (items, _) = candidate.top_k(0, ds.n_items(), &mut scratch).expect("in range");
        assert!(!items.contains(&id), "item folded for user 0 must be masked");
    }
}
