#![warn(missing_docs)]

//! Fault-tolerant top-K serving for the LogiRec reproduction.
//!
//! The headline is robustness, not raw QPS (see DESIGN.md, "Failure model &
//! recovery"): every request carries a deadline, overload degrades through
//! a popularity-prior fallback before anything is shed, and model reloads
//! are validated (CRC, shapes, finiteness, canary scoring) before an
//! atomic `Arc` swap — a torn or corrupt file can never become the live
//! snapshot.
//!
//! * [`snapshot`] — the read-only [`ServeContext`] / [`ModelSnapshot`] pair
//!   and the hot-swappable [`SnapshotStore`]. The exact path reproduces the
//!   offline evaluator byte for byte.
//! * [`index`] — the deterministic clustered top-K index behind the
//!   `approx` tier: k-means coarse quantization over the monotone
//!   inner-product form of Lorentz distance, radius pruning, exact
//!   re-rank; exhaustive probe is bit-identical to the exact scan.
//! * [`protocol`] — the line-delimited JSON wire format (std TCP, parsed
//!   with the in-tree `logirec_obs::json`; offline-friendly).
//! * [`server`] — the concurrent request loop, degradation matrix, and the
//!   `fold_in` admin verb that grows the live snapshot by one cold-start
//!   user or item off the request path.
//! * [`reload`] — change-driven reload with validation and rollback.
//! * [`client`] — a protocol client plus bounded-retry/backoff helpers.
//! * [`faults`] — deterministic serve-path fault injection (behind the
//!   `fault-injection` feature; extends `logirec_core::faults`).

pub mod client;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod index;
pub mod protocol;
pub mod reload;
pub mod server;
pub mod snapshot;

pub use client::{recommend_with_retry, Client, ClientError, RetryPolicy};
pub use index::{ClusterIndex, IndexConfig, ProbeReport};
pub use protocol::{ApproxInfo, FoldInVerb, Request, Response, ServedBy};
pub use reload::{load_serving_model, ReloadOutcome, Reloader};
pub use server::{Server, ServerConfig, StatsSnapshot, WatchConfig};
pub use snapshot::{ModelSnapshot, ServeContext, SnapshotStore};
