//! Hot-swap model reload with validation and rollback.
//!
//! A [`Reloader`] watches one path — either a `LOGIREC1` model file or a
//! `LOGICKP1` training checkpoint (sniffed by magic) — and, when it
//! changes, builds a **candidate** [`ModelSnapshot`] off the request path:
//! full structural validation (CRC for checkpoints, length checks for
//! models), shape/finiteness checks, propagation, and the canary probe.
//! Only a candidate that passes everything is swapped into the
//! [`SnapshotStore`]; any failure returns [`ReloadOutcome::Rejected`] and
//! the server keeps serving the last-good snapshot — a torn or corrupt
//! file can never become live.

use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

use logirec_core::checkpoint;
use logirec_core::io::load_model;
use logirec_core::{LogiRec, LogiRecConfig};

use crate::snapshot::{ModelSnapshot, ServeContext, SnapshotStore};

/// What one reload check did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadOutcome {
    /// A validated candidate went live with this version.
    Swapped {
        /// Version the store assigned to the new snapshot.
        version: u64,
    },
    /// The candidate failed validation; the last-good snapshot stays live.
    Rejected {
        /// Why the candidate was refused.
        reason: String,
    },
    /// Nothing to do: the watched file is absent or unchanged.
    Unchanged,
}

/// Loads a model for serving from either supported on-disk format,
/// dispatching on the file magic. Checkpoints serve their best-validation
/// snapshot when one exists (that is what training restores at the end),
/// falling back to the current tables otherwise.
pub fn load_serving_model(path: &Path, base_cfg: LogiRecConfig) -> Result<LogiRec, String> {
    let mut magic = [0u8; 8];
    let mut f = fs::File::open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    f.read_exact(&mut magic)
        .map_err(|e| format!("{}: cannot read file magic: {e}", path.display()))?;
    drop(f);
    if &magic == checkpoint::MAGIC {
        let ck = checkpoint::load(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let cfg = LogiRecConfig {
            dim: ck.dim,
            layers: ck.layers,
            geometry: ck.geometry,
            precision: ck.precision,
            ..base_cfg
        };
        let (tags, items, users) = match ck.best {
            Some(best) => (best.tags, best.items, best.users),
            None => (ck.tags, ck.items, ck.users),
        };
        if tags.dim() != cfg.dim || items.dim() != cfg.dim || users.dim() != cfg.ambient_dim() {
            return Err(format!(
                "{}: checkpoint table widths do not match its header (d={})",
                path.display(),
                cfg.dim
            ));
        }
        Ok(LogiRec::from_parts(cfg, tags, items, users))
    } else {
        // Not a checkpoint: let the model loader produce its (path- and
        // offset-annotated) error for model files and garbage alike.
        load_model(path, base_cfg).map_err(|e| e.to_string())
    }
}

/// Watches one file and turns changes into validated snapshot swaps.
#[derive(Debug)]
pub struct Reloader {
    path: PathBuf,
    /// Signature (mtime, length) of the last version attempted.
    last: Option<(Option<SystemTime>, u64)>,
}

impl Reloader {
    /// Watches `path` (which need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into(), last: None }
    }

    /// The watched path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records the file's current signature as already-loaded, so the next
    /// unforced [`Self::attempt`] only fires on a subsequent write. Used
    /// when the watched path is the very file the initial snapshot came
    /// from.
    pub fn mark_current(&mut self) {
        if let Ok(meta) = fs::metadata(&self.path) {
            self.last = Some((meta.modified().ok(), meta.len()));
        }
    }

    /// One reload check. Unforced checks are change-driven (mtime + length
    /// signature); `force` always attempts a load. Every attempted load is
    /// fully validated before the swap; a failed candidate leaves the
    /// store untouched.
    pub fn attempt(
        &mut self,
        force: bool,
        ctx: &Arc<ServeContext>,
        store: &SnapshotStore,
    ) -> ReloadOutcome {
        let meta = match fs::metadata(&self.path) {
            Ok(m) => m,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return ReloadOutcome::Unchanged,
            Err(e) => {
                return ReloadOutcome::Rejected {
                    reason: format!("cannot stat {}: {e}", self.path.display()),
                }
            }
        };
        let sig = (meta.modified().ok(), meta.len());
        if !force && self.last.as_ref() == Some(&sig) {
            return ReloadOutcome::Unchanged;
        }
        // Record the attempt up front: a rejected file is not retried until
        // it changes again (or a forced reload asks for it).
        self.last = Some(sig);

        let current = store.get();
        let base_cfg = current.config().clone();
        let precision = current.precision();
        // Rebuild the retrieval index (when serving one) with the same
        // knobs as the live snapshot, inside the candidate's validation:
        // model and index swap as one unit, and an index canary failure
        // rolls back exactly like a model validation failure.
        let index_cfg = current.index_config();
        let model = match load_serving_model(&self.path, base_cfg) {
            Ok(m) => m,
            Err(reason) => return ReloadOutcome::Rejected { reason },
        };
        match ModelSnapshot::build_with_index(
            model,
            precision,
            ctx,
            self.path.display().to_string(),
            index_cfg,
        ) {
            Err(reason) => ReloadOutcome::Rejected { reason },
            Ok(snap) => ReloadOutcome::Swapped { version: store.swap(snap) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_core::config::Precision;
    use logirec_core::io::save_model;
    use logirec_data::{DatasetSpec, Scale};

    fn fixture() -> (logirec_data::Dataset, Arc<ServeContext>, SnapshotStore) {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(21);
        let ctx = Arc::new(ServeContext::from_dataset(&ds));
        let model = LogiRec::new(LogiRecConfig::test_config(), &ds);
        let snap = ModelSnapshot::build(model, Precision::F64, &ctx, "initial").expect("valid");
        let store = SnapshotStore::new(snap);
        (ds, ctx, store)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("logirec-serve-{}-{name}", std::process::id()))
    }

    #[test]
    fn absent_file_is_unchanged_and_garbage_is_rejected() {
        let (_, ctx, store) = fixture();
        let path = temp_path("absent.logirec");
        let _ = fs::remove_file(&path);
        let mut r = Reloader::new(&path);
        assert_eq!(r.attempt(false, &ctx, &store), ReloadOutcome::Unchanged);

        fs::write(&path, b"definitely not a model file").expect("write");
        match r.attempt(false, &ctx, &store) {
            ReloadOutcome::Rejected { reason } => {
                assert!(reason.contains("not a LogiRec model file"), "{reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Unchanged garbage is not retried...
        assert_eq!(r.attempt(false, &ctx, &store), ReloadOutcome::Unchanged);
        // ...but a forced check attempts (and rejects) it again.
        assert!(matches!(r.attempt(true, &ctx, &store), ReloadOutcome::Rejected { .. }));
        assert_eq!(store.get().version(), 1, "garbage never went live");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn valid_model_file_swaps_and_truncated_one_rolls_back() {
        let (ds, ctx, store) = fixture();
        let path = temp_path("reload.logirec");
        let model = LogiRec::new(LogiRecConfig { seed: 77, ..LogiRecConfig::test_config() }, &ds);
        save_model(&model, &path).expect("save");
        let mut r = Reloader::new(&path);
        match r.attempt(false, &ctx, &store) {
            ReloadOutcome::Swapped { version } => assert_eq!(version, 2),
            other => panic!("expected swap, got {other:?}"),
        }
        assert_eq!(store.get().version(), 2);

        // Tear the file (simulated kill mid-write) and force a reload: the
        // torn bytes must be rejected and version 2 stays live.
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        match r.attempt(true, &ctx, &store) {
            ReloadOutcome::Rejected { reason } => {
                assert!(reason.contains(&path.display().to_string()), "{reason}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(store.get().version(), 2, "torn file never went live");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn checkpoints_load_by_magic_and_serve_the_best_snapshot() {
        let (ds, ctx, store) = fixture();
        let path = temp_path("reload.ckpt");
        let model = LogiRec::new(LogiRecConfig::test_config(), &ds);
        let cfg = &model.cfg;
        let ck = checkpoint::Checkpoint {
            geometry: cfg.geometry,
            dim: cfg.dim,
            layers: cfg.layers,
            precision: Precision::F64,
            epoch: 3,
            rng_state: 42,
            lr_scale: 1.0,
            bad_rounds: 0,
            history: Vec::new(),
            recoveries: Vec::new(),
            alpha: None,
            best: Some(checkpoint::BestSnapshot {
                recall: 0.5,
                tags: model.tags.clone(),
                items: model.items.clone(),
                users: model.users.clone(),
            }),
            tags: model.tags.clone(),
            items: model.items.clone(),
            users: model.users.clone(),
        };
        checkpoint::save(&ck, &path).expect("save checkpoint");
        let mut r = Reloader::new(&path);
        assert!(matches!(r.attempt(false, &ctx, &store), ReloadOutcome::Swapped { version: 2 }));

        // A bit flip in the payload breaks the CRC: the reloader must
        // reject it.
        let mut bytes = fs::read(&path).expect("read");
        *bytes.last_mut().expect("non-empty") ^= 0x01;
        fs::write(&path, &bytes).expect("write corrupted");
        assert!(matches!(r.attempt(true, &ctx, &store), ReloadOutcome::Rejected { .. }));
        assert_eq!(store.get().version(), 2);
        let _ = fs::remove_file(&path);
    }
}
