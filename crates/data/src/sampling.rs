//! Negative sampling and mini-batching for pairwise ranking losses.
//!
//! Every pairwise objective in this workspace (the paper's LMNN loss Eq. 9,
//! BPR, CML's hinge, …) iterates positive `(u, v⁺)` pairs and samples items
//! `v⁻` the user has not interacted with.

use logirec_linalg::SplitMix64;
use logirec_obs::{Counter, Telemetry};

use crate::interactions::InteractionSet;

/// Uniform negative sampler with rejection against a user's positive set.
#[derive(Debug)]
pub struct NegativeSampler<'a> {
    train: &'a InteractionSet,
    rng: SplitMix64,
    draws: Counter,
    rejections: Counter,
}

impl<'a> NegativeSampler<'a> {
    /// Creates a sampler over the training set.
    pub fn new(train: &'a InteractionSet, rng: SplitMix64) -> Self {
        Self { train, rng, draws: Counter::default(), rejections: Counter::default() }
    }

    /// Attaches the `sampler.draws` / `sampler.rejections` counters so the
    /// rejection-loop behavior shows up in telemetry. The counters are
    /// relaxed atomics — recording stays contention-free.
    pub fn instrument(&mut self, tel: &Telemetry) {
        self.draws = tel.counter("sampler.draws");
        self.rejections = tel.counter("sampler.rejections");
    }

    /// Samples one item `v` with `(u, v)` not in the training set.
    ///
    /// Rejection sampling is fine here: the densest benchmark (Ciao) is
    /// 0.23 % dense, so the expected number of draws is ~1.002. A cap keeps
    /// pathological users (who interacted with almost everything) from
    /// looping forever; in that case the last draw is returned.
    pub fn sample(&mut self, u: usize) -> usize {
        self.draws.incr();
        let n_items = self.train.n_items();
        let mut v = self.rng.index(n_items);
        for _ in 0..64 {
            if !self.train.contains(u, v) {
                return v;
            }
            self.rejections.incr();
            v = self.rng.index(n_items);
        }
        v
    }

    /// Samples `k` negatives for user `u` (with replacement across draws).
    pub fn sample_many(&mut self, u: usize, k: usize) -> Vec<usize> {
        (0..k).map(|_| self.sample(u)).collect()
    }
}

/// Shuffled mini-batch iterator over positive training pairs.
#[derive(Debug)]
pub struct BatchIter {
    pairs: Vec<(usize, usize)>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIter {
    /// Collects all training pairs and shuffles them once.
    pub fn new(train: &InteractionSet, batch_size: usize, rng: &mut SplitMix64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut pairs: Vec<(usize, usize)> = train.iter_pairs().collect();
        rng.shuffle(&mut pairs);
        Self { pairs, batch_size, cursor: 0 }
    }

    /// Number of batches this iterator will yield.
    pub fn n_batches(&self) -> usize {
        self.pairs.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter {
    type Item = Vec<(usize, usize)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.pairs.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.pairs.len());
        let batch = self.pairs[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> InteractionSet {
        InteractionSet::from_pairs(3, 10, &[(0, 0), (0, 1), (1, 5), (2, 9)])
    }

    #[test]
    fn negatives_are_never_positives() {
        let train = toy();
        let mut s = NegativeSampler::new(&train, SplitMix64::new(1));
        for _ in 0..1000 {
            let v = s.sample(0);
            assert!(!train.contains(0, v));
        }
    }

    #[test]
    fn sample_many_returns_requested_count() {
        let train = toy();
        let mut s = NegativeSampler::new(&train, SplitMix64::new(2));
        assert_eq!(s.sample_many(1, 7).len(), 7);
    }

    #[test]
    fn dense_user_falls_back_gracefully() {
        // User 0 interacted with everything except item 1.
        let pairs: Vec<(usize, usize)> = (0..10).filter(|&v| v != 1).map(|v| (0, v)).collect();
        let train = InteractionSet::from_pairs(1, 10, &pairs);
        let mut s = NegativeSampler::new(&train, SplitMix64::new(3));
        let hits = (0..200).filter(|_| s.sample(0) == 1).count();
        assert!(hits > 150, "should almost always find the single negative, got {hits}");
    }

    #[test]
    fn batches_cover_all_pairs_exactly_once() {
        let train = toy();
        let mut rng = SplitMix64::new(4);
        let it = BatchIter::new(&train, 3, &mut rng);
        assert_eq!(it.n_batches(), 2);
        let mut seen: Vec<(usize, usize)> = it.flatten().collect();
        seen.sort_unstable();
        let mut expected: Vec<(usize, usize)> = train.iter_pairs().collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn batch_iter_shuffle_is_seed_dependent() {
        let train = InteractionSet::from_pairs(
            1,
            100,
            &(0..100).map(|v| (0, v)).collect::<Vec<_>>(),
        );
        let a: Vec<_> =
            BatchIter::new(&train, 100, &mut SplitMix64::new(1)).flatten().collect();
        let b: Vec<_> =
            BatchIter::new(&train, 100, &mut SplitMix64::new(2)).flatten().collect();
        assert_ne!(a, b);
    }
}
