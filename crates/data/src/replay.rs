//! Temporal-replay scenario for the streaming cold-start harness.
//!
//! The scenario splits a synthetic benchmark into a **warm** past and a
//! **cold** future: the last `cold_fraction` of user ids are treated as
//! signups that did not exist when the model was trained. The warm dataset
//! (warm users only, normal 60/20/20 temporal split) trains the frozen
//! model; each cold user's events are then *streamed* — the first 80 % by
//! timestamp are revealed as fold-in positives, the final 20 % are held
//! out as test items.
//!
//! The [`ReplayScenario::replay`] dataset is the matched full-retrain
//! baseline: its train split is the warm train **plus** the cold users'
//! revealed events, and its test split contains exactly the cold holdout —
//! so `evaluate(.., Split::Test, ..)` on it scores only cold users, under
//! identical masking, for both the streamed model and the retrained one.

use crate::interactions::{temporal_split, Dataset, InteractionSet};
use crate::synth::DatasetSpec;

/// One cold-start user in the replay.
#[derive(Debug, Clone)]
pub struct ColdUser {
    /// User id in the full (replay) id space — always `≥ n_warm_users`.
    pub id: usize,
    /// Items revealed by streaming, in timestamp order (first 80 %).
    pub fold_in: Vec<usize>,
    /// Held-out items (final 20 %, at least one).
    pub test: Vec<usize>,
}

/// A warm-past / cold-future split of one synthetic benchmark.
#[derive(Debug, Clone)]
pub struct ReplayScenario {
    /// Warm users only (`n_users = n_warm_users`), standard 60/20/20
    /// temporal split. This is what the frozen model trains on.
    pub warm: Dataset,
    /// Full id space. `train` = warm train + cold revealed events,
    /// `validation` = warm validation, `test` = cold holdout only. Train a
    /// model on `replay.train` for the full-retrain baseline; evaluate
    /// both models on `Split::Test` of this dataset.
    pub replay: Dataset,
    /// The cold users, ordered by id (`n_warm_users..n_users`).
    pub cold: Vec<ColdUser>,
}

impl ReplayScenario {
    /// Builds the scenario from a benchmark spec. `cold_fraction` of the
    /// users (at least 1, at most half) become cold-start signups.
    /// Deterministic in `(spec, seed)`; the warm dataset is derived from
    /// the *same* event stream as `spec.generate(seed)`.
    pub fn build(spec: &DatasetSpec, seed: u64, cold_fraction: f64) -> Self {
        let (full, events) = spec.generate_with_events(seed);
        let n_users = full.n_users();
        let n_items = full.n_items();
        let n_cold =
            ((n_users as f64 * cold_fraction).ceil() as usize).clamp(1, n_users / 2);
        let n_warm = n_users - n_cold;

        // Warm past: the warm users' events under the standard protocol.
        let warm_events: Vec<(usize, usize, u64)> =
            events.iter().copied().filter(|&(u, _, _)| u < n_warm).collect();
        let (w_train, w_valid, w_test) = temporal_split(n_warm, n_items, &warm_events);
        let warm = Dataset {
            name: format!("{}-warm", full.name),
            train: w_train,
            validation: w_valid,
            test: w_test,
            taxonomy: full.taxonomy.clone(),
            item_tags: full.item_tags.clone(),
            relations: full.relations.clone(),
        };

        // Cold future: per cold user, reveal the first 80 % of events by
        // time and hold out the rest (at least one item each side when the
        // user has ≥ 2 events).
        let mut cold = Vec::with_capacity(n_cold);
        for id in n_warm..n_users {
            let mut evs: Vec<(u64, usize)> = events
                .iter()
                .filter(|&&(u, _, _)| u == id)
                .map(|&(_, v, t)| (t, v))
                .collect();
            evs.sort_unstable();
            let n = evs.len();
            let cut = if n < 2 { 0 } else { ((n as f64 * 0.8).round() as usize).clamp(1, n - 1) };
            let fold_in: Vec<usize> = evs[..cut].iter().map(|&(_, v)| v).collect();
            let test: Vec<usize> = evs[cut..].iter().map(|&(_, v)| v).collect();
            cold.push(ColdUser { id, fold_in, test });
        }

        // The matched retrain baseline in the full id space.
        let mut train_pairs: Vec<(usize, usize)> = warm.train.iter_pairs().collect();
        for c in &cold {
            train_pairs.extend(c.fold_in.iter().map(|&v| (c.id, v)));
        }
        let valid_pairs: Vec<(usize, usize)> = warm.validation.iter_pairs().collect();
        let mut test_pairs = Vec::new();
        for c in &cold {
            test_pairs.extend(c.test.iter().map(|&v| (c.id, v)));
        }
        let replay = Dataset {
            name: format!("{}-replay", full.name),
            train: InteractionSet::from_pairs(n_users, n_items, &train_pairs),
            validation: InteractionSet::from_pairs(n_users, n_items, &valid_pairs),
            test: InteractionSet::from_pairs(n_users, n_items, &test_pairs),
            taxonomy: full.taxonomy,
            item_tags: full.item_tags,
            relations: full.relations,
        };

        Self { warm, replay, cold }
    }

    /// Number of warm users (cold ids start here).
    pub fn n_warm_users(&self) -> usize {
        self.warm.n_users()
    }

    /// The cold users' revealed events as a global arrival stream
    /// `(user, item, time)`, interleaved by timestamp (ties by user id) —
    /// ready to feed an append-only event log.
    pub fn stream_events(&self) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for c in &self.cold {
            for (i, &v) in c.fold_in.iter().enumerate() {
                out.push((c.id, v, i as u64));
            }
        }
        out.sort_unstable_by_key(|&(u, _, t)| (t, u));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::Scale;

    #[test]
    fn replay_split_is_consistent_and_deterministic() {
        let spec = DatasetSpec::ciao(Scale::Tiny);
        let a = ReplayScenario::build(&spec, 7, 0.1);
        let b = ReplayScenario::build(&spec, 7, 0.1);
        let n_warm = a.n_warm_users();
        assert!(n_warm < spec.users);
        assert_eq!(a.cold.len(), spec.users - n_warm);
        for (ca, cb) in a.cold.iter().zip(&b.cold) {
            assert_eq!(ca.id, cb.id);
            assert_eq!(ca.fold_in, cb.fold_in);
            assert_eq!(ca.test, cb.test);
        }
        for c in &a.cold {
            assert!(c.id >= n_warm && c.id < spec.users);
            assert!(!c.test.is_empty(), "cold user {} has no holdout", c.id);
            assert!(c.fold_in.iter().all(|&v| v < spec.items));
        }
    }

    #[test]
    fn warm_dataset_excludes_cold_users() {
        let spec = DatasetSpec::ciao(Scale::Tiny);
        let sc = ReplayScenario::build(&spec, 9, 0.1);
        assert_eq!(sc.warm.n_users() + sc.cold.len(), spec.users);
        assert_eq!(sc.warm.n_items(), spec.items);
        // Warm matches the full generation for warm users: same train rows
        // as the full dataset restricted to warm ids.
        let full = spec.generate(9);
        for u in 0..sc.warm.n_users() {
            assert_eq!(sc.warm.train.items_of(u), full.train.items_of(u));
        }
    }

    #[test]
    fn replay_dataset_trains_on_revealed_and_tests_on_holdout() {
        let spec = DatasetSpec::ciao(Scale::Tiny);
        let sc = ReplayScenario::build(&spec, 11, 0.1);
        assert_eq!(sc.replay.n_users(), spec.users);
        for c in &sc.cold {
            for &v in &c.fold_in {
                assert!(sc.replay.train.contains(c.id, v));
                assert!(!sc.replay.test.contains(c.id, v));
            }
            for &v in &c.test {
                assert!(sc.replay.test.contains(c.id, v));
                assert!(!sc.replay.train.contains(c.id, v));
            }
        }
        // Test split contains only cold users.
        for u in 0..sc.n_warm_users() {
            assert!(sc.replay.test.items_of(u).is_empty());
        }
        // The event stream is time-ordered and covers every revealed item.
        let stream = sc.stream_events();
        let revealed: usize = sc.cold.iter().map(|c| c.fold_in.len()).sum();
        assert_eq!(stream.len(), revealed);
        assert!(stream.windows(2).all(|w| w[0].2 <= w[1].2));
    }
}
