//! Loading and saving datasets as plain TSV files.
//!
//! A dataset directory holds three files:
//!
//! * `taxonomy.tsv` — one tag per line: `name<TAB>parent_id` with `-1` for
//!   level-1 tags. Parents must precede children (ids are line numbers).
//! * `item_tags.tsv` — one item per line: tag ids separated by tabs (line
//!   number = item id; a line may be empty for an untagged item, which is
//!   recorded as carrying its own placeholder root tag 0 if present).
//! * `interactions.tsv` — one event per line: `user<TAB>item<TAB>time`.
//!
//! This is the adoption path for real data (e.g. the paper's Ciao/Amazon
//! dumps after preprocessing): export the three TSVs and `load` gives the
//! same [`Dataset`] the synthetic generator produces, including the
//! temporal 60/20/20 split and the extracted logical relations.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use logirec_taxonomy::{ExclusionRule, LogicalRelations, TagId, Taxonomy};

use crate::interactions::{temporal_split, Dataset};

/// Errors from dataset loading.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem error.
    Io(io::Error),
    /// A malformed line, with file name and 0-based line number.
    Parse {
        /// Which file failed.
        file: &'static str,
        /// 0-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { file, line, message } => {
                write!(f, "{file}:{}: {message}", line + 1)
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Loads a dataset directory (see module docs for the format).
///
/// `name` labels the dataset; `rule` selects the exclusion extraction.
pub fn load_dataset(
    dir: &Path,
    name: &str,
    rule: ExclusionRule,
) -> Result<Dataset, LoadError> {
    // Taxonomy.
    let tax_src = fs::read_to_string(dir.join("taxonomy.tsv"))?;
    let mut records: Vec<(String, Option<TagId>)> = Vec::new();
    for (ln, line) in tax_src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let tag_name = parts.next().unwrap_or_default().to_string();
        if tag_name.trim().is_empty() {
            return Err(LoadError::Parse {
                file: "taxonomy.tsv",
                line: ln,
                message: "missing tag name".into(),
            });
        }
        let parent_raw = parts.next().ok_or_else(|| LoadError::Parse {
            file: "taxonomy.tsv",
            line: ln,
            message: "expected `name<TAB>parent`".into(),
        })?;
        let parent: i64 = parent_raw.trim().parse().map_err(|_| LoadError::Parse {
            file: "taxonomy.tsv",
            line: ln,
            message: format!("bad parent id {parent_raw:?}"),
        })?;
        let parent = if parent < 0 {
            None
        } else {
            let p = parent as usize;
            if p >= records.len() {
                return Err(LoadError::Parse {
                    file: "taxonomy.tsv",
                    line: ln,
                    message: format!("parent {p} does not precede tag {}", records.len()),
                });
            }
            Some(p)
        };
        records.push((tag_name, parent));
    }
    let taxonomy = Taxonomy::from_parents(records);

    // Item tags.
    let items_src = fs::read_to_string(dir.join("item_tags.tsv"))?;
    let mut item_tags: Vec<Vec<TagId>> = Vec::new();
    for (ln, line) in items_src.lines().enumerate() {
        let mut tags = Vec::new();
        for part in line.split('\t').filter(|p| !p.trim().is_empty()) {
            let t: usize = part.trim().parse().map_err(|_| LoadError::Parse {
                file: "item_tags.tsv",
                line: ln,
                message: format!("bad tag id {part:?}"),
            })?;
            if t >= taxonomy.len() {
                return Err(LoadError::Parse {
                    file: "item_tags.tsv",
                    line: ln,
                    message: format!("tag id {t} out of range ({} tags)", taxonomy.len()),
                });
            }
            tags.push(t);
        }
        tags.sort_unstable();
        tags.dedup();
        item_tags.push(tags);
    }
    let n_items = item_tags.len();

    // Interactions.
    let inter_src = fs::read_to_string(dir.join("interactions.tsv"))?;
    let mut events: Vec<(usize, usize, u64)> = Vec::new();
    let mut n_users = 0usize;
    for (ln, line) in inter_src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let parse = |s: Option<&str>, what: &str| -> Result<u64, LoadError> {
            s.ok_or_else(|| LoadError::Parse {
                file: "interactions.tsv",
                line: ln,
                message: format!("missing {what}"),
            })?
            .trim()
            .parse()
            .map_err(|_| LoadError::Parse {
                file: "interactions.tsv",
                line: ln,
                message: format!("bad {what}"),
            })
        };
        let u = parse(parts.next(), "user")? as usize;
        let v = parse(parts.next(), "item")? as usize;
        let t = parse(parts.next(), "time")?;
        if v >= n_items {
            return Err(LoadError::Parse {
                file: "interactions.tsv",
                line: ln,
                message: format!("item {v} out of range ({n_items} items)"),
            });
        }
        n_users = n_users.max(u + 1);
        events.push((u, v, t));
    }

    let (train, validation, test) = temporal_split(n_users, n_items, &events);
    let relations = LogicalRelations::extract(&taxonomy, &item_tags, rule);
    Ok(Dataset {
        name: name.to_string(),
        train,
        validation,
        test,
        taxonomy,
        item_tags,
        relations,
    })
}

/// Writes `bytes` to `path` atomically: `<name>.tmp` sibling, fsync,
/// rename. A crash mid-save leaves either the old file or the new one,
/// never a torn TSV (which [`load_dataset`] would misparse as data).
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Saves a dataset into `dir` in the format [`load_dataset`] reads,
/// returning the total number of bytes written across the three TSVs. Each
/// file is written atomically (`.tmp` + fsync + rename).
///
/// The temporal split cannot be reconstructed exactly without timestamps,
/// so interactions are written with synthetic times that preserve the
/// split: train events first (time 0..), then validation, then test —
/// re-splitting 60/20/20 recovers the same per-user partition whenever the
/// original split was produced by [`temporal_split`].
pub fn save_dataset(dataset: &Dataset, dir: &Path) -> io::Result<u64> {
    fs::create_dir_all(dir)?;

    let mut tax = String::new();
    for t in 0..dataset.taxonomy.len() {
        let parent = dataset.taxonomy.parent(t).map_or(-1i64, |p| p as i64);
        tax.push_str(&format!("{}\t{}\n", dataset.taxonomy.name(t), parent));
    }
    atomic_write(&dir.join("taxonomy.tsv"), tax.as_bytes())?;

    let mut items = String::new();
    for tags in &dataset.item_tags {
        let line: Vec<String> = tags.iter().map(|t| t.to_string()).collect();
        items.push_str(&line.join("\t"));
        items.push('\n');
    }
    atomic_write(&dir.join("item_tags.tsv"), items.as_bytes())?;

    let mut inter = Vec::new();
    for u in 0..dataset.n_users() {
        let mut t = 0u64;
        for split in [&dataset.train, &dataset.validation, &dataset.test] {
            for &v in split.items_of(u) {
                writeln!(inter, "{u}\t{v}\t{t}")?;
                t += 1;
            }
        }
    }
    atomic_write(&dir.join("interactions.tsv"), &inter)?;
    Ok((tax.len() + items.len() + inter.len()) as u64)
}

/// [`load_dataset`] wrapped in a `dataset` span recording the byte volume
/// read and the loaded shape.
pub fn load_dataset_traced(
    dir: &Path,
    name: &str,
    rule: ExclusionRule,
    tel: &logirec_obs::Telemetry,
) -> Result<Dataset, LoadError> {
    let mut span = tel.span("dataset");
    span.field("op", "load");
    let bytes: u64 = ["taxonomy.tsv", "item_tags.tsv", "interactions.tsv"]
        .iter()
        .filter_map(|f| fs::metadata(dir.join(f)).ok())
        .map(|m| m.len())
        .sum();
    let ds = load_dataset(dir, name, rule)?;
    span.field("bytes", bytes);
    span.field("users", ds.n_users() as u64);
    span.field("items", ds.n_items() as u64);
    Ok(ds)
}

/// [`save_dataset`] wrapped in a `dataset` span recording wall-clock
/// duration and bytes written.
pub fn save_dataset_traced(
    dataset: &Dataset,
    dir: &Path,
    tel: &logirec_obs::Telemetry,
) -> io::Result<u64> {
    let mut span = tel.span("dataset");
    span.field("op", "save");
    let bytes = save_dataset(dataset, dir)?;
    span.field("bytes", bytes);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{DatasetSpec, Scale};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("logirec-loader-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_dataset() {
        let original = DatasetSpec::ciao(Scale::Tiny).generate(7);
        let dir = tmp_dir("roundtrip");
        save_dataset(&original, &dir).expect("save");
        let loaded =
            load_dataset(&dir, "ciao", ExclusionRule::SiblingsWithoutCommonItems).expect("load");

        assert_eq!(loaded.n_users(), original.n_users());
        assert_eq!(loaded.n_items(), original.n_items());
        assert_eq!(loaded.n_tags(), original.n_tags());
        assert_eq!(loaded.item_tags, original.item_tags);
        for t in 0..original.n_tags() {
            assert_eq!(loaded.taxonomy.parent(t), original.taxonomy.parent(t));
            assert_eq!(loaded.taxonomy.name(t), original.taxonomy.name(t));
        }
        for u in 0..original.n_users() {
            assert_eq!(loaded.train.items_of(u), original.train.items_of(u), "user {u} train");
            assert_eq!(loaded.test.items_of(u), original.test.items_of(u), "user {u} test");
        }
        assert_eq!(loaded.relations.counts(), original.relations.counts());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_forward_parent_reference() {
        let dir = tmp_dir("badparent");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("taxonomy.tsv"), "child\t5\n").unwrap();
        fs::write(dir.join("item_tags.tsv"), "0\n").unwrap();
        fs::write(dir.join("interactions.tsv"), "0\t0\t0\n").unwrap();
        let err = load_dataset(&dir, "x", ExclusionRule::AllSiblings).unwrap_err();
        assert!(matches!(err, LoadError::Parse { file: "taxonomy.tsv", .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_out_of_range_ids() {
        let dir = tmp_dir("badrange");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("taxonomy.tsv"), "root\t-1\n").unwrap();
        fs::write(dir.join("item_tags.tsv"), "0\n").unwrap();
        fs::write(dir.join("interactions.tsv"), "0\t9\t0\n").unwrap();
        let err = load_dataset(&dir, "x", ExclusionRule::AllSiblings).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_missing_tag_name() {
        let dir = tmp_dir("noname");
        fs::create_dir_all(&dir).unwrap();
        // A tag line with an empty name column must be a parse error, not a
        // silently-accepted anonymous tag.
        fs::write(dir.join("taxonomy.tsv"), "root\t-1\n\t0\n").unwrap();
        fs::write(dir.join("item_tags.tsv"), "0\n").unwrap();
        fs::write(dir.join("interactions.tsv"), "0\t0\t0\n").unwrap();
        let err = load_dataset(&dir, "x", ExclusionRule::AllSiblings).unwrap_err();
        assert!(
            matches!(
                &err,
                LoadError::Parse { file: "taxonomy.tsv", line: 1, message } if message.contains("name")
            ),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_dataset_leaves_no_temp_files() {
        let original = DatasetSpec::ciao(Scale::Tiny).generate(8);
        let dir = tmp_dir("atomic");
        save_dataset(&original, &dir).expect("save");
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(
                !name.to_string_lossy().ends_with(".tmp"),
                "temp file left behind: {name:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_reports_malformed_lines_with_location() {
        let dir = tmp_dir("badline");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("taxonomy.tsv"), "root\t-1\n").unwrap();
        fs::write(dir.join("item_tags.tsv"), "0\n").unwrap();
        fs::write(dir.join("interactions.tsv"), "0\tnot-a-number\t0\n").unwrap();
        let err = load_dataset(&dir, "x", ExclusionRule::AllSiblings).unwrap_err();
        assert!(err.to_string().contains("interactions.tsv:1"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
