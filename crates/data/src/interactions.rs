//! Interaction storage and the temporal train/validation/test split.

use logirec_taxonomy::{LogicalRelations, TagId, Taxonomy};

/// Which split an evaluation runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// First 60 % of each user's interactions by timestamp.
    Train,
    /// Next 20 %.
    Validation,
    /// Final 20 %.
    Test,
}

/// A set of user–item interactions indexed both ways (CSR by user and by
/// item), supporting O(log n) membership queries.
#[derive(Debug, Clone)]
pub struct InteractionSet {
    n_users: usize,
    n_items: usize,
    /// `by_user[u]` = sorted item ids user `u` interacted with.
    by_user: Vec<Vec<usize>>,
    /// `by_item[v]` = sorted user ids who interacted with item `v`.
    by_item: Vec<Vec<usize>>,
    len: usize,
}

impl InteractionSet {
    /// Builds from `(user, item)` pairs; duplicates are collapsed.
    pub fn from_pairs(n_users: usize, n_items: usize, pairs: &[(usize, usize)]) -> Self {
        let mut by_user = vec![Vec::new(); n_users];
        let mut by_item = vec![Vec::new(); n_items];
        for &(u, v) in pairs {
            debug_assert!(u < n_users && v < n_items);
            by_user[u].push(v);
            by_item[v].push(u);
        }
        let mut len = 0;
        for list in &mut by_user {
            list.sort_unstable();
            list.dedup();
            len += list.len();
        }
        for list in &mut by_item {
            list.sort_unstable();
            list.dedup();
        }
        Self { n_users, n_items, by_user, by_item, len }
    }

    /// Number of users (rows).
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items (columns).
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total number of distinct interactions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds no interactions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Interaction density in percent — Table I's `Density(%)` row.
    pub fn density_percent(&self) -> f64 {
        100.0 * self.len as f64 / (self.n_users as f64 * self.n_items as f64)
    }

    /// Sorted items of user `u` (the paper's `N_u`).
    pub fn items_of(&self, u: usize) -> &[usize] {
        &self.by_user[u]
    }

    /// Sorted users of item `v` (the paper's `N_v`).
    pub fn users_of(&self, v: usize) -> &[usize] {
        &self.by_item[v]
    }

    /// True when `(u, v)` is present.
    pub fn contains(&self, u: usize, v: usize) -> bool {
        self.by_user[u].binary_search(&v).is_ok()
    }

    /// Iterates all `(user, item)` pairs in user order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.by_user
            .iter()
            .enumerate()
            .flat_map(|(u, items)| items.iter().map(move |&v| (u, v)))
    }
}

/// A complete benchmark dataset: the three temporal splits, the tag
/// taxonomy, per-item tags, and the extracted logical relations.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (e.g. `"ciao"`).
    pub name: String,
    /// Training interactions (first 60 % per user).
    pub train: InteractionSet,
    /// Validation interactions (next 20 %).
    pub validation: InteractionSet,
    /// Test interactions (final 20 %).
    pub test: InteractionSet,
    /// The tag taxonomy.
    pub taxonomy: Taxonomy,
    /// `item_tags[v]` = tags of item `v` (the item–tag matrix Q).
    pub item_tags: Vec<Vec<TagId>>,
    /// Logical relations extracted from the taxonomy + Q.
    pub relations: LogicalRelations,
}

impl Dataset {
    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.train.n_users()
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.train.n_items()
    }

    /// Number of tags.
    pub fn n_tags(&self) -> usize {
        self.taxonomy.len()
    }

    /// Total interactions across all splits.
    pub fn n_interactions(&self) -> usize {
        self.train.len() + self.validation.len() + self.test.len()
    }

    /// The split requested.
    pub fn split(&self, split: Split) -> &InteractionSet {
        match split {
            Split::Train => &self.train,
            Split::Validation => &self.validation,
            Split::Test => &self.test,
        }
    }

    /// The user's interacted tag list `T_u` **with multiplicity** (one entry
    /// per (train interaction, tag) pair), as used by Eq. 11–12.
    pub fn user_tag_list(&self, u: usize) -> Vec<TagId> {
        let mut out = Vec::new();
        for &v in self.train.items_of(u) {
            out.extend_from_slice(&self.item_tags[v]);
        }
        out
    }

    /// Number of *distinct* tag types user `u` interacted with in training —
    /// the x-axis of Fig. 5.
    pub fn user_tag_type_count(&self, u: usize) -> usize {
        let mut tags = self.user_tag_list(u);
        tags.sort_unstable();
        tags.dedup();
        tags.len()
    }
}

/// Splits timestamped interactions per user into 60 % train / 20 %
/// validation / 20 % test by time order (the paper's protocol).
///
/// Events are `(user, item, time)`; ties are broken by input order, which
/// generators make deterministic.
pub fn temporal_split(
    n_users: usize,
    n_items: usize,
    events: &[(usize, usize, u64)],
) -> (InteractionSet, InteractionSet, InteractionSet) {
    let mut per_user: Vec<Vec<(u64, usize)>> = vec![Vec::new(); n_users];
    for &(u, v, t) in events {
        per_user[u].push((t, v));
    }
    let mut train = Vec::new();
    let mut valid = Vec::new();
    let mut test = Vec::new();
    for (u, list) in per_user.iter_mut().enumerate() {
        list.sort_by_key(|&(t, _)| t);
        let n = list.len();
        // Cut points: first 60 % train, next 20 % validation, rest test.
        let c1 = (n as f64 * 0.6).round() as usize;
        let c2 = (n as f64 * 0.8).round() as usize;
        for (i, &(_, v)) in list.iter().enumerate() {
            if i < c1 {
                train.push((u, v));
            } else if i < c2 {
                valid.push((u, v));
            } else {
                test.push((u, v));
            }
        }
    }
    (
        InteractionSet::from_pairs(n_users, n_items, &train),
        InteractionSet::from_pairs(n_users, n_items, &valid),
        InteractionSet::from_pairs(n_users, n_items, &test),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_dedups_and_sorts() {
        let s = InteractionSet::from_pairs(2, 3, &[(0, 2), (0, 0), (0, 2), (1, 1)]);
        assert_eq!(s.items_of(0), &[0, 2]);
        assert_eq!(s.items_of(1), &[1]);
        assert_eq!(s.users_of(2), &[0]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(0, 2));
        assert!(!s.contains(1, 2));
    }

    #[test]
    fn density_matches_definition() {
        let s = InteractionSet::from_pairs(10, 10, &[(0, 0), (1, 1)]);
        assert!((s.density_percent() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn iter_pairs_round_trips() {
        let pairs = vec![(0, 1), (1, 0), (1, 2)];
        let s = InteractionSet::from_pairs(2, 3, &pairs);
        let got: Vec<_> = s.iter_pairs().collect();
        assert_eq!(got, pairs);
    }

    #[test]
    fn temporal_split_respects_time_order() {
        // 10 events for one user, times 0..10 → 6/2/2.
        let events: Vec<(usize, usize, u64)> = (0..10).map(|i| (0, i, i as u64)).collect();
        let (train, valid, test) = temporal_split(1, 10, &events);
        assert_eq!(train.items_of(0), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(valid.items_of(0), &[6, 7]);
        assert_eq!(test.items_of(0), &[8, 9]);
    }

    #[test]
    fn temporal_split_handles_short_histories() {
        // Users with 1 and 2 events must not lose interactions.
        let events = vec![(0, 0, 5), (1, 1, 1), (1, 2, 2)];
        let (train, valid, test) = temporal_split(2, 3, &events);
        let total = train.len() + valid.len() + test.len();
        assert_eq!(total, 3);
        // A single event lands in train.
        assert_eq!(train.items_of(0), &[0]);
    }

    #[test]
    fn temporal_split_is_unaffected_by_event_order() {
        let mut events = vec![(0, 3, 30), (0, 1, 10), (0, 2, 20), (0, 4, 40), (0, 0, 0)];
        let a = temporal_split(1, 5, &events);
        events.reverse();
        let b = temporal_split(1, 5, &events);
        assert_eq!(a.0.items_of(0), b.0.items_of(0));
        assert_eq!(a.2.items_of(0), b.2.items_of(0));
    }
}
