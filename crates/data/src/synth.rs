//! Synthetic benchmark generator matching Table I of the paper.
//!
//! The generator reproduces, per dataset, (a) the published aggregate
//! statistics and (b) the generative structure LogiRec exploits: items are
//! tagged with (mostly fine-grained) taxonomy tags, and each user draws the
//! bulk of their interactions from the subtree of a personal *focus tag*
//! whose level controls how consistent/specific the user is. Focused users
//! touch few tag types; unfocused users touch many — the Fig. 5(a) marginal.

use logirec_linalg::SplitMix64;
use logirec_obs::Telemetry;
use logirec_taxonomy::{ExclusionRule, LogicalRelations, TagId, Taxonomy, TaxonomyConfig};

use crate::interactions::{temporal_split, Dataset};

/// Generation scale.
///
/// `Paper` reproduces the Table I sizes exactly; `Small` keeps each
/// dataset's *character* (relative density, tag richness) at laptop scale;
/// `Tiny` is for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~100 users; for tests.
    Tiny,
    /// ~1–2k users; the default experiment scale.
    Small,
    /// The full Table I statistics.
    Paper,
}

impl Scale {
    /// Parses a `--scale` CLI argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Self::Tiny),
            "small" => Some(Self::Small),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }
}

/// Full specification of a synthetic benchmark dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (`ciao`, `cd`, `clothing`, `book`).
    pub name: &'static str,
    /// Number of users.
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Target total interactions (across all splits; realized count is
    /// within a few percent after deduplication).
    pub interactions: usize,
    /// Number of taxonomy tags.
    pub tags: usize,
    /// Taxonomy depth η (4 for every paper dataset).
    pub levels: usize,
    /// Mean number of tags per item (Table I: #Membership / #Item).
    pub tags_per_item: f64,
    /// Probability that a user's focus tag sits at level 1..=levels.
    pub focus_level_weights: Vec<f64>,
    /// Probability of an off-focus (uniform random) interaction.
    pub noise: f64,
    /// Zipf exponent of item popularity.
    pub zipf: f64,
    /// Exclusion extraction rule.
    pub exclusion_rule: ExclusionRule,
    /// Probability that an item's recorded deepest tag is *coarsened* to
    /// its parent. Real tag data is "inaccurate and coarse" (Section V of
    /// the paper); user behavior is driven by the item's true tags while
    /// models only observe the degraded record.
    pub tag_coarsen: f64,
    /// Probability that an item records only its level-1 ancestor.
    pub tag_missing: f64,
    /// Probability that a spurious sibling tag is appended to the record.
    pub tag_extra: f64,
}

impl DatasetSpec {
    /// Ciao: small, relatively dense, very few tags (Table I row 1).
    pub fn ciao(scale: Scale) -> Self {
        let (users, items, interactions, tags) = match scale {
            Scale::Tiny => (60, 100, 1_500, 15),
            Scale::Small => (600, 900, 12_000, 28),
            Scale::Paper => (5_180, 8_836, 104_905, 28),
        };
        Self {
            name: "ciao",
            users,
            items,
            interactions,
            tags,
            levels: 4,
            tags_per_item: 1.01,
            focus_level_weights: vec![0.2, 0.35, 0.3, 0.15],
            noise: 0.15,
            zipf: 0.8,
            exclusion_rule: ExclusionRule::SiblingsWithoutCommonItems,
            // Ciao's 28-tag taxonomy is the cleanest of the four; mild
            // record noise.
            tag_coarsen: 0.25,
            tag_missing: 0.08,
            tag_extra: 0.05,
        }
    }

    /// Amazon CDs & Vinyl: sparse, mid-sized taxonomy (Table I row 2).
    pub fn cd(scale: Scale) -> Self {
        let (users, items, interactions, tags) = match scale {
            Scale::Tiny => (80, 120, 1_800, 24),
            Scale::Small => (1_000, 1_200, 18_000, 90),
            Scale::Paper => (32_589, 20_559, 515_562, 379),
        };
        Self {
            name: "cd",
            users,
            items,
            interactions,
            tags,
            levels: 4,
            tags_per_item: 2.2,
            focus_level_weights: vec![0.15, 0.3, 0.35, 0.2],
            noise: 0.15,
            zipf: 0.8,
            exclusion_rule: ExclusionRule::SiblingsWithoutCommonItems,
            // CD genre tags are notoriously overlapping/miscoded (the
            // paper's <Heavy Metal> vs <Metal> example) — heavy noise,
            // calibrated so flat tag fusion (AGCN) slightly *under*-
            // performs LightGCN, matching the paper's Table II.
            tag_coarsen: 0.4,
            tag_missing: 0.15,
            tag_extra: 0.1,
        }
    }

    /// Amazon Clothing: sparsest, tag-richest (Table I row 3). The huge tag
    /// count drives its enormous exclusion count (195 004 in the paper).
    pub fn clothing(scale: Scale) -> Self {
        let (users, items, interactions, tags) = match scale {
            Scale::Tiny => (80, 100, 1_500, 40),
            Scale::Small => (1_200, 1_000, 20_000, 300),
            Scale::Paper => (63_986, 19_727, 704_325, 3_051),
        };
        Self {
            name: "clothing",
            users,
            items,
            interactions,
            tags,
            levels: 4,
            tags_per_item: 4.4,
            focus_level_weights: vec![0.1, 0.25, 0.35, 0.3],
            noise: 0.12,
            zipf: 0.9,
            // Clothing's published exclusion count (195 004) is consistent
            // with *every* sibling pair being marked exclusive — the raw
            // rule without the common-item veto — and its 3051-tag
            // taxonomy is by far the messiest of the four, so its records
            // are also degraded hardest.
            exclusion_rule: ExclusionRule::AllSiblings,
            tag_coarsen: 0.5,
            tag_missing: 0.15,
            tag_extra: 0.12,
        }
    }

    /// Amazon Books: largest and interaction-heaviest (Table I row 4).
    pub fn book(scale: Scale) -> Self {
        let (users, items, interactions, tags) = match scale {
            Scale::Tiny => (80, 150, 2_500, 24),
            Scale::Small => (1_500, 1_800, 55_000, 120),
            Scale::Paper => (79_368, 62_385, 4_657_501, 510),
        };
        Self {
            name: "book",
            users,
            items,
            interactions,
            tags,
            levels: 4,
            tags_per_item: 2.0,
            // Book readers focus on coarser genres than CD/Clothing
            // shoppers (the paper's tag-based baselines are weakest here),
            // and the 510-tag taxonomy over 62k items is recorded coarsely.
            focus_level_weights: vec![0.25, 0.4, 0.25, 0.1],
            noise: 0.18,
            zipf: 0.8,
            exclusion_rule: ExclusionRule::SiblingsWithoutCommonItems,
            tag_coarsen: 0.45,
            tag_missing: 0.15,
            tag_extra: 0.08,
        }
    }

    /// All four benchmark specs, in the paper's order.
    pub fn all(scale: Scale) -> Vec<Self> {
        vec![Self::ciao(scale), Self::cd(scale), Self::clothing(scale), Self::book(scale)]
    }

    /// A spec by name (`ciao` / `cd` / `clothing` / `book`).
    pub fn by_name(name: &str, scale: Scale) -> Option<Self> {
        match name {
            "ciao" => Some(Self::ciao(scale)),
            "cd" => Some(Self::cd(scale)),
            "clothing" => Some(Self::clothing(scale)),
            "book" => Some(Self::book(scale)),
            _ => None,
        }
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// ```
    /// use logirec_data::{DatasetSpec, Scale};
    /// let ds = DatasetSpec::cd(Scale::Tiny).generate(7);
    /// assert_eq!(ds.n_users(), 80);
    /// assert!(ds.relations.counts().0 > 0); // membership pairs exist
    /// ```
    pub fn generate(&self, seed: u64) -> Dataset {
        self.generate_traced(seed, &Telemetry::disabled())
    }

    /// [`Self::generate`] with per-stage telemetry: the whole generation is
    /// a `synth` span, each numbered stage a nested `synth.stage` span with
    /// a `stage` field.
    pub fn generate_traced(&self, seed: u64, tel: &Telemetry) -> Dataset {
        self.generate_with_events_traced(seed, tel).0
    }

    /// [`Self::generate`], additionally returning the raw timestamped
    /// interaction events `(user, item, time)` the splits were derived
    /// from. The generation sequence is identical to [`Self::generate`]
    /// (same RNG stream, same stages), so the returned dataset is
    /// bit-identical to `generate(seed)` — the events are what the
    /// temporal-replay harness needs to re-split time differently.
    pub fn generate_with_events(&self, seed: u64) -> (Dataset, Vec<(usize, usize, u64)>) {
        self.generate_with_events_traced(seed, &Telemetry::disabled())
    }

    fn generate_with_events_traced(
        &self,
        seed: u64,
        tel: &Telemetry,
    ) -> (Dataset, Vec<(usize, usize, u64)>) {
        let mut synth_span = tel.span("synth");
        synth_span.field("dataset", self.name);
        synth_span.field("users", self.users as u64);
        synth_span.field("items", self.items as u64);
        let stage = |name: &'static str| {
            let mut sp = tel.span("synth.stage");
            sp.field("stage", name);
            sp
        };
        let mut rng = SplitMix64::new(seed ^ hash_name(self.name));

        // 1. Taxonomy.
        let sp = stage("taxonomy");
        let taxonomy = TaxonomyConfig {
            tags: self.tags,
            levels: self.levels,
            growth: 2.5,
            parent_skew: 0.8,
        }
        .generate(&mut rng.fork(1));
        sp.close();

        // 2. Item tags. User behavior is driven by the *true* tags; the
        // recorded (observed) tags that models see are a degraded copy —
        // real taxonomies are "inaccurate and coarse" (paper, Section V).
        let sp = stage("item_tags");
        let true_tags = self.assign_item_tags(&taxonomy, &mut rng.fork(2));
        let item_tags = self.degrade_tags(&taxonomy, &true_tags, &mut rng.fork(5));
        sp.close();

        // 3. Per-tag subtree item lists with Zipf popularity. Popularity
        // ranks are a random permutation of item ids so that nothing in the
        // pipeline can exploit id ordering as a popularity signal.
        let sp = stage("catalog");
        let mut ranks: Vec<usize> = (0..self.items).collect();
        rng.fork(4).shuffle(&mut ranks);
        let pop: Vec<f64> =
            ranks.iter().map(|&r| 1.0 / ((r + 1) as f64).powf(self.zipf)).collect();
        let catalog = SubtreeCatalog::build(&taxonomy, &true_tags, &pop);
        sp.close();

        // 4. User interaction events.
        let sp = stage("events");
        let events = self.generate_events(&taxonomy, &catalog, &mut rng.fork(3));
        sp.close();

        // 5. Split and extract relations.
        let sp = stage("split_relations");
        let (train, validation, test) = temporal_split(self.users, self.items, &events);
        let relations = LogicalRelations::extract(&taxonomy, &item_tags, self.exclusion_rule);
        sp.close();

        synth_span.field("events", events.len() as u64);
        let dataset = Dataset {
            name: self.name.to_string(),
            train,
            validation,
            test,
            taxonomy,
            item_tags,
            relations,
        };
        (dataset, events)
    }

    /// Assigns each item a primary tag (biased toward deep levels) and, with
    /// probability derived from `tags_per_item`, extra tags drawn near the
    /// primary (its siblings/cousins), which creates the overlapping
    /// concepts the paper's mining is designed to discover.
    fn assign_item_tags(&self, taxonomy: &Taxonomy, rng: &mut SplitMix64) -> Vec<Vec<TagId>> {
        // Depth-weighted tag pool: deeper tags are much more likely primary.
        let weights: Vec<f64> =
            (0..taxonomy.len()).map(|t| (taxonomy.level(t) as f64).powi(2)).collect();
        let extra_mean = (self.tags_per_item - 1.0).max(0.0);
        (0..self.items)
            .map(|_| {
                let primary = rng.weighted_index(&weights);
                let mut tags = vec![primary];
                // Geometric number of extra tags with mean `extra_mean`.
                let p_more = extra_mean / (1.0 + extra_mean);
                while rng.bernoulli(p_more) && tags.len() < 8 {
                    let extra = self.nearby_tag(taxonomy, primary, rng);
                    if !tags.contains(&extra) {
                        tags.push(extra);
                    } else {
                        break;
                    }
                }
                tags.sort_unstable();
                tags
            })
            .collect()
    }

    /// Degrades true item tags into the observed record:
    /// * `tag_missing`: only the level-1 ancestor of the deepest tag
    ///   survives;
    /// * `tag_coarsen`: each tag is replaced by its parent;
    /// * `tag_extra`: a spurious sibling of the deepest tag is appended.
    ///
    /// Every item keeps at least one tag, and the coarsened record is
    /// *consistent* with the truth (an ancestor region still contains the
    /// item) — exactly the "inaccurate and coarse" regime the paper's
    /// logical relation mining targets.
    fn degrade_tags(
        &self,
        taxonomy: &Taxonomy,
        true_tags: &[Vec<TagId>],
        rng: &mut SplitMix64,
    ) -> Vec<Vec<TagId>> {
        true_tags
            .iter()
            .map(|tags| {
                let deepest = *tags
                    .iter()
                    .max_by_key(|&&t| taxonomy.level(t))
                    .expect("items have at least one tag");
                let mut out: Vec<TagId> = if rng.bernoulli(self.tag_missing) {
                    vec![*taxonomy.ancestors(deepest).last().unwrap_or(&deepest)]
                } else {
                    tags.iter()
                        .map(|&t| {
                            if rng.bernoulli(self.tag_coarsen) {
                                taxonomy.parent(t).unwrap_or(t)
                            } else {
                                t
                            }
                        })
                        .collect()
                };
                if rng.bernoulli(self.tag_extra) {
                    let siblings: Vec<TagId> = match taxonomy.parent(deepest) {
                        Some(p) => taxonomy.children(p).to_vec(),
                        None => taxonomy.roots().to_vec(),
                    };
                    out.push(siblings[rng.index(siblings.len())]);
                }
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect()
    }

    /// A tag related to `primary`: a sibling, the parent, or (rarely) any
    /// random tag.
    fn nearby_tag(&self, taxonomy: &Taxonomy, primary: TagId, rng: &mut SplitMix64) -> TagId {
        let roll = rng.next_f64();
        if roll < 0.5 {
            // Sibling.
            let siblings: Vec<TagId> = match taxonomy.parent(primary) {
                Some(p) => taxonomy.children(p).to_vec(),
                None => taxonomy.roots().to_vec(),
            };
            siblings[rng.index(siblings.len())]
        } else if roll < 0.8 {
            taxonomy.parent(primary).unwrap_or(primary)
        } else {
            rng.index(taxonomy.len())
        }
    }

    /// Draws every user's events. Interaction counts follow a lognormal
    /// around the dataset mean (floored at 5 so the 60/20/20 split always
    /// has test data).
    fn generate_events(
        &self,
        taxonomy: &Taxonomy,
        catalog: &SubtreeCatalog,
        rng: &mut SplitMix64,
    ) -> Vec<(usize, usize, u64)> {
        let mean = self.interactions as f64 / self.users as f64;
        let mut events = Vec::with_capacity(self.interactions + self.users);
        for u in 0..self.users {
            let n_u = ((mean * (0.6 * rng.normal()).exp()).round() as usize).max(5);
            let focus = self.sample_focus(taxonomy, catalog, rng);
            let mut seen: Vec<usize> = Vec::with_capacity(n_u);
            let mut t = 0u64;
            let mut attempts = 0usize;
            while seen.len() < n_u && attempts < n_u * 20 {
                attempts += 1;
                let v = if rng.bernoulli(self.noise) {
                    rng.index(self.items)
                } else {
                    catalog.sample_item(focus, rng)
                };
                if seen.contains(&v) {
                    continue;
                }
                seen.push(v);
                events.push((u, v, t));
                t += 1;
            }
        }
        events
    }

    /// Samples a user's focus tag: first its level (from
    /// `focus_level_weights`), then a tag at that level weighted by subtree
    /// item count (empty subtrees are never picked).
    fn sample_focus(
        &self,
        taxonomy: &Taxonomy,
        catalog: &SubtreeCatalog,
        rng: &mut SplitMix64,
    ) -> TagId {
        for _ in 0..16 {
            let level = 1 + rng.weighted_index(&self.focus_level_weights);
            let tags = taxonomy.tags_at_level(level.min(taxonomy.max_level()));
            let weights: Vec<f64> =
                tags.iter().map(|&t| catalog.subtree_size(t) as f64).collect();
            if weights.iter().sum::<f64>() > 0.0 {
                return tags[rng.weighted_index(&weights)];
            }
        }
        // Fallback: the busiest root.
        *taxonomy
            .roots()
            .iter()
            .max_by_key(|&&t| catalog.subtree_size(t))
            .expect("taxonomy has roots")
    }
}

/// Per-tag subtree item lists with precomputed cumulative Zipf popularity
/// weights for O(log n) sampling.
struct SubtreeCatalog {
    /// `items[t]` = items whose tag set intersects the subtree of `t`.
    items: Vec<Vec<usize>>,
    /// `cum[t]` = cumulative popularity weights aligned with `items[t]`.
    cum: Vec<Vec<f64>>,
}

impl SubtreeCatalog {
    fn build(taxonomy: &Taxonomy, item_tags: &[Vec<TagId>], pop: &[f64]) -> Self {
        let mut items: Vec<Vec<usize>> = vec![Vec::new(); taxonomy.len()];
        for (v, tags) in item_tags.iter().enumerate() {
            // An item belongs to each tag it carries and to all ancestors.
            let mut mine: Vec<TagId> = tags.clone();
            for &t in tags {
                mine.extend(taxonomy.ancestors(t));
            }
            mine.sort_unstable();
            mine.dedup();
            for t in mine {
                items[t].push(v);
            }
        }
        let cum = items
            .iter()
            .map(|list| {
                let mut acc = 0.0;
                list.iter()
                    .map(|&v| {
                        acc += pop[v];
                        acc
                    })
                    .collect()
            })
            .collect();
        Self { items, cum }
    }

    fn subtree_size(&self, t: TagId) -> usize {
        self.items[t].len()
    }

    fn sample_item(&self, t: TagId, rng: &mut SplitMix64) -> usize {
        let cum = &self.cum[t];
        debug_assert!(!cum.is_empty(), "sampling from empty subtree {t}");
        let total = *cum.last().expect("nonempty");
        let x = rng.next_f64() * total;
        let idx = cum.partition_point(|&c| c < x).min(self.items[t].len() - 1);
        self.items[t][idx]
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_datasets_have_requested_shape() {
        for spec in DatasetSpec::all(Scale::Tiny) {
            let ds = spec.generate(42);
            assert_eq!(ds.n_users(), spec.users, "{}", spec.name);
            assert_eq!(ds.n_items(), spec.items);
            assert_eq!(ds.n_tags(), spec.tags);
            assert_eq!(ds.taxonomy.max_level(), 4);
            // Realized interactions within 40 % of target (dedup + lognormal).
            let realized = ds.n_interactions() as f64;
            let target = spec.interactions as f64;
            assert!(
                (realized - target).abs() / target < 0.4,
                "{}: realized {realized} vs target {target}",
                spec.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::ciao(Scale::Tiny);
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a.train.len(), b.train.len());
        for u in 0..a.n_users() {
            assert_eq!(a.train.items_of(u), b.train.items_of(u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetSpec::ciao(Scale::Tiny);
        let a = spec.generate(1);
        let b = spec.generate(2);
        let same = (0..a.n_users()).all(|u| a.train.items_of(u) == b.train.items_of(u));
        assert!(!same);
    }

    #[test]
    fn every_item_has_at_least_one_tag() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(3);
        assert!(ds.item_tags.iter().all(|tags| !tags.is_empty()));
    }

    #[test]
    fn every_user_has_train_and_test_data() {
        let ds = DatasetSpec::book(Scale::Tiny).generate(5);
        for u in 0..ds.n_users() {
            assert!(!ds.train.items_of(u).is_empty(), "user {u} lacks train data");
            assert!(!ds.test.items_of(u).is_empty(), "user {u} lacks test data");
        }
    }

    #[test]
    fn splits_are_disjoint_per_user() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(9);
        for u in 0..ds.n_users() {
            for &v in ds.test.items_of(u) {
                assert!(!ds.train.contains(u, v), "({u},{v}) in both train and test");
            }
            for &v in ds.validation.items_of(u) {
                assert!(!ds.train.contains(u, v));
            }
        }
    }

    #[test]
    fn relation_counts_are_populated() {
        let ds = DatasetSpec::clothing(Scale::Tiny).generate(11);
        let (m, h, e) = ds.relations.counts();
        assert!(m >= ds.n_items(), "membership at least one per item");
        assert_eq!(h, ds.n_tags() - ds.taxonomy.roots().len());
        assert!(e > 0, "sibling exclusions must exist");
    }

    #[test]
    fn focused_structure_shows_in_tag_type_counts() {
        // Users should touch far fewer tag types than exist, but > 1.
        let ds = DatasetSpec::cd(Scale::Tiny).generate(13);
        let counts: Vec<usize> =
            (0..ds.n_users()).map(|u| ds.user_tag_type_count(u)).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(mean > 1.5, "mean tag types {mean}");
        assert!(mean < ds.n_tags() as f64 * 0.8, "mean tag types {mean} too diffuse");
    }

    #[test]
    fn generate_with_events_matches_generate() {
        let spec = DatasetSpec::ciao(Scale::Tiny);
        let plain = spec.generate(21);
        let (ds, events) = spec.generate_with_events(21);
        for u in 0..plain.n_users() {
            assert_eq!(plain.train.items_of(u), ds.train.items_of(u));
            assert_eq!(plain.test.items_of(u), ds.test.items_of(u));
        }
        // The events are exactly what the splits were derived from.
        assert_eq!(events.len(), ds.n_interactions());
        assert!(events.iter().all(|&(u, v, _)| u < ds.n_users() && v < ds.n_items()));
    }

    #[test]
    fn by_name_round_trips() {
        assert_eq!(DatasetSpec::by_name("cd", Scale::Tiny).unwrap().name, "cd");
        assert!(DatasetSpec::by_name("unknown", Scale::Tiny).is_none());
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("big"), None);
    }
}
