#![warn(missing_docs)]

//! Dataset substrate for the LogiRec reproduction.
//!
//! The paper evaluates on four public datasets (Ciao, Amazon CD / Clothing /
//! Book — Table I). Those datasets are not redistributable here, so this
//! crate generates **synthetic benchmarks with the same published
//! statistics and the same generative structure** the method exploits:
//!
//! * a 4-level tag taxonomy with membership / hierarchy / exclusion counts
//!   matching Table I (per scale),
//! * items attached to (mostly fine-grained) tags,
//! * users whose interactions concentrate in a taxonomy subtree at a
//!   user-specific *focus level* — producing the consistency/granularity
//!   spectrum of Fig. 5 — plus uniform exploration noise,
//! * Zipf item popularity and per-user timestamps for the temporal
//!   60/20/20 split used by the paper's evaluation protocol.
//!
//! See DESIGN.md ("Substitutions") for why this preserves the comparison
//! shape.

pub mod interactions;
pub mod loader;
pub mod replay;
pub mod sampling;
pub mod synth;

pub use interactions::{Dataset, InteractionSet, Split};
pub use loader::{
    load_dataset, load_dataset_traced, save_dataset, save_dataset_traced, LoadError,
};
pub use replay::{ColdUser, ReplayScenario};
pub use sampling::{BatchIter, NegativeSampler};
pub use synth::{DatasetSpec, Scale};
