//! Property-based tests of the dataset substrate.

use logirec_data::interactions::temporal_split;
use logirec_data::{InteractionSet, NegativeSampler};
use logirec_linalg::SplitMix64;
use proptest::prelude::*;

/// Random event list over a small user/item universe.
fn events() -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec((0usize..8, 0usize..20, 0u64..1000), 1..200)
}

proptest! {
    #[test]
    fn split_preserves_every_distinct_interaction(evs in events()) {
        let (train, valid, test) = temporal_split(8, 20, &evs);
        // Every event lands in exactly one split (duplicates collapse).
        let mut distinct: Vec<(usize, usize)> = evs.iter().map(|&(u, v, _)| (u, v)).collect();
        distinct.sort_unstable();
        distinct.dedup();
        for &(u, v) in &distinct {
            let hits = [train.contains(u, v), valid.contains(u, v), test.contains(u, v)]
                .iter()
                .filter(|&&b| b)
                .count();
            // A user–item pair can recur at different times and land in
            // several splits; it must land in at least one.
            prop_assert!(hits >= 1, "({u},{v}) lost by the split");
        }
        prop_assert!(train.len() + valid.len() + test.len() >= distinct.len());
    }

    #[test]
    fn split_ratios_are_roughly_60_20_20(n in 5usize..60) {
        // One user, n distinct items in time order.
        let evs: Vec<(usize, usize, u64)> = (0..n).map(|i| (0, i, i as u64)).collect();
        let (train, valid, test) = temporal_split(1, n, &evs);
        let c1 = (n as f64 * 0.6).round() as usize;
        let c2 = (n as f64 * 0.8).round() as usize;
        prop_assert_eq!(train.len(), c1);
        prop_assert_eq!(valid.len(), c2 - c1);
        prop_assert_eq!(test.len(), n - c2);
        // Temporal order: max train item < min test item (ids are times).
        if !test.items_of(0).is_empty() && !train.items_of(0).is_empty() {
            prop_assert!(train.items_of(0).last() < test.items_of(0).first());
        }
    }

    #[test]
    fn interaction_set_indexes_agree(pairs in prop::collection::vec((0usize..6, 0usize..10), 0..80)) {
        let s = InteractionSet::from_pairs(6, 10, &pairs);
        // by_user and by_item are transposes of each other.
        for u in 0..6 {
            for &v in s.items_of(u) {
                prop_assert!(s.users_of(v).contains(&u));
                prop_assert!(s.contains(u, v));
            }
        }
        for v in 0..10 {
            for &u in s.users_of(v) {
                prop_assert!(s.items_of(u).contains(&v));
            }
        }
        let total: usize = (0..6).map(|u| s.items_of(u).len()).sum();
        prop_assert_eq!(total, s.len());
        prop_assert_eq!(s.iter_pairs().count(), s.len());
    }

    #[test]
    fn negative_sampler_avoids_positives(
        pairs in prop::collection::vec((0usize..5, 0usize..30), 1..60),
        seed in 0u64..1000,
    ) {
        let s = InteractionSet::from_pairs(5, 30, &pairs);
        let mut sampler = NegativeSampler::new(&s, SplitMix64::new(seed));
        for u in 0..5 {
            // Skip saturated users (can't reject what doesn't exist).
            if s.items_of(u).len() >= 29 {
                continue;
            }
            for _ in 0..20 {
                let v = sampler.sample(u);
                prop_assert!(!s.contains(u, v), "sampled positive ({u},{v})");
            }
        }
    }
}
