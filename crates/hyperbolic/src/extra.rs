//! Additional hyperbolic operations a complete geometry library ships:
//! weighted Lorentzian midpoints (the "Einstein midpoint" aggregation the
//! paper's related work cites via Chami et al.), parallel transport,
//! Möbius scalar multiplication and gyration, and Klein-model
//! conversions. None are required by LogiRec's training path; they
//! support downstream users (e.g. midpoint-based user profiles for
//! cold-start, transport-based feature sharing).

use logirec_linalg::ops;

use crate::{lorentz, poincare, MIN_NORM};

/// Weighted Lorentzian centroid (a.k.a. Einstein midpoint computed in the
/// Lorentz model): normalize `Σ wᵢ xᵢ` back onto the hyperboloid,
/// `m = Σ wᵢ xᵢ / sqrt(−⟨Σ wᵢ xᵢ, Σ wᵢ xᵢ⟩_L)`.
///
/// Weights must be non-negative with a positive sum. For points on `H^d`
/// the weighted sum is always time-like, so the normalization is
/// well-defined; the degenerate all-zero-weight case returns the origin.
pub fn lorentz_midpoint(points: &[&[f64]], weights: &[f64]) -> Vec<f64> {
    assert_eq!(points.len(), weights.len(), "one weight per point");
    assert!(!points.is_empty(), "midpoint of an empty set");
    let dim = points[0].len();
    let mut sum = vec![0.0; dim];
    for (p, &w) in points.iter().zip(weights) {
        debug_assert!(w >= 0.0, "weights must be non-negative");
        ops::axpy(w, p, &mut sum);
    }
    let norm2 = -lorentz::inner(&sum, &sum);
    if norm2 <= MIN_NORM {
        return lorentz::origin(dim - 1);
    }
    ops::scale(&mut sum, 1.0 / norm2.sqrt());
    // Absorb any residual drift.
    lorentz::project(&mut sum);
    sum
}

/// Unweighted Lorentzian midpoint.
pub fn lorentz_mean(points: &[&[f64]]) -> Vec<f64> {
    let w = vec![1.0; points.len()];
    lorentz_midpoint(points, &w)
}

/// Parallel transport of a tangent vector `v ∈ T_o H^d` (time component
/// zero) from the origin to the tangent space at `x ∈ H^d`:
/// `PT_{o→x}(v) = v + ⟨x, v⟩_L / (1 + x₀) · (o + x)`.
pub fn transport_from_origin(x: &[f64], v: &[f64]) -> Vec<f64> {
    debug_assert!((v[0]).abs() < 1e-9, "v must be tangent at the origin");
    let xv = lorentz::inner(x, v);
    let denom = 1.0 + x[0];
    let mut out = v.to_vec();
    // o + x has time component 1 + x₀ and spatial components x₁.. .
    out[0] += xv / denom * (1.0 + x[0]);
    for i in 1..out.len() {
        out[i] += xv / denom * x[i];
    }
    out
}

/// Möbius scalar multiplication in the Poincaré ball:
/// `r ⊗ x = tanh(r·atanh(‖x‖)) · x/‖x‖` — the point at `r` times the
/// hyperbolic distance from the origin, along the same ray.
pub fn mobius_scalar(r: f64, x: &[f64]) -> Vec<f64> {
    let n = ops::norm(x);
    if n < MIN_NORM {
        return x.to_vec();
    }
    let nc = n.min(1.0 - crate::BALL_EPS);
    let scaled = (r * nc.atanh()).tanh();
    let mut out = ops::scaled(x, scaled / n);
    poincare::project(&mut out);
    out
}

/// Gyration operator `gyr[a, b] c = ⊖(a ⊕ b) ⊕ (a ⊕ (b ⊕ c))` — the
/// correction for the non-associativity of Möbius addition.
pub fn gyration(a: &[f64], b: &[f64], c: &[f64]) -> Vec<f64> {
    let ab = poincare::mobius_add(a, b);
    let neg_ab = ops::scaled(&ab, -1.0);
    let bc = poincare::mobius_add(b, c);
    let abc = poincare::mobius_add(a, &bc);
    poincare::mobius_add(&neg_ab, &abc)
}

/// Poincaré → Klein model: `k = 2p / (1 + ‖p‖²)`.
pub fn poincare_to_klein(p: &[f64]) -> Vec<f64> {
    let q = ops::norm_sq(p);
    ops::scaled(p, 2.0 / (1.0 + q))
}

/// Klein → Poincaré model: `p = k / (1 + sqrt(1 − ‖k‖²))`.
pub fn klein_to_poincare(k: &[f64]) -> Vec<f64> {
    let q = ops::norm_sq(k).min(1.0);
    ops::scaled(k, 1.0 / (1.0 + (1.0 - q).sqrt()))
}

/// The Einstein midpoint computed natively in the Klein model with the
/// Lorentz gamma factors `γᵢ = 1/sqrt(1 − ‖kᵢ‖²)`:
/// `mid = Σ γᵢ wᵢ kᵢ / Σ γᵢ wᵢ`.
pub fn einstein_midpoint_klein(points: &[&[f64]], weights: &[f64]) -> Vec<f64> {
    assert_eq!(points.len(), weights.len());
    assert!(!points.is_empty());
    let dim = points[0].len();
    let mut num = vec![0.0; dim];
    let mut den = 0.0;
    for (k, &w) in points.iter().zip(weights) {
        let q = ops::norm_sq(k).min(1.0 - 1e-12);
        let gamma = 1.0 / (1.0 - q).sqrt();
        ops::axpy(gamma * w, k, &mut num);
        den += gamma * w;
    }
    if den <= MIN_NORM {
        return vec![0.0; dim];
    }
    ops::scale(&mut num, 1.0 / den);
    num
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn midpoint_of_identical_points_is_the_point() {
        let x = lorentz::exp_origin(&[0.4, -0.7]);
        let m = lorentz_mean(&[&x, &x, &x]);
        for (a, b) in m.iter().zip(&x) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn midpoint_lies_on_manifold_and_between() {
        let a = lorentz::exp_origin(&[1.0, 0.0]);
        let b = lorentz::exp_origin(&[-1.0, 0.0]);
        let m = lorentz_mean(&[&a, &b]);
        assert!(lorentz::on_manifold(&m, 1e-9));
        // Symmetric points average to the origin.
        assert_close(m[0], 1.0, 1e-9);
        assert_close(lorentz::distance(&m, &lorentz::origin(2)), 0.0, 1e-6);
        // And the midpoint is equidistant from both.
        let c = lorentz::exp_origin(&[0.5, 0.8]);
        let m2 = lorentz_mean(&[&a, &c]);
        assert_close(lorentz::distance(&m2, &a), lorentz::distance(&m2, &c), 1e-8);
    }

    #[test]
    fn weighted_midpoint_moves_toward_heavier_point() {
        let a = lorentz::exp_origin(&[1.0, 0.0]);
        let b = lorentz::exp_origin(&[-1.0, 0.0]);
        let m = lorentz_midpoint(&[&a, &b], &[3.0, 1.0]);
        assert!(
            lorentz::distance(&m, &a) < lorentz::distance(&m, &b),
            "heavier weight should pull the midpoint"
        );
    }

    #[test]
    fn degenerate_weights_return_origin() {
        let a = lorentz::exp_origin(&[1.0, 0.0]);
        let m = lorentz_midpoint(&[&a], &[0.0]);
        assert_close(m[0], 1.0, 1e-12);
    }

    #[test]
    fn transport_preserves_tangency_and_norm() {
        let x = lorentz::exp_origin(&[0.6, -0.3, 0.2]);
        let v = vec![0.0, 0.5, 1.0, -0.25];
        let t = transport_from_origin(&x, &v);
        // Tangent at x.
        assert_close(lorentz::inner(&x, &t), 0.0, 1e-9);
        // Parallel transport is an isometry of tangent spaces.
        assert_close(lorentz::inner(&t, &t), lorentz::inner(&v, &v), 1e-9);
    }

    #[test]
    fn mobius_scalar_matches_distance_scaling() {
        let x = [0.3, 0.2];
        let d = poincare::distance_to_origin(&x);
        let y = mobius_scalar(2.0, &x);
        assert_close(poincare::distance_to_origin(&y), 2.0 * d, 1e-9);
        // 1 ⊗ x = x and 0 ⊗ x = 0.
        let same = mobius_scalar(1.0, &x);
        assert_close(same[0], x[0], 1e-12);
        let zero = mobius_scalar(0.0, &x);
        assert!(ops::norm(&zero) < 1e-12);
    }

    #[test]
    fn gyration_is_an_isometry_fixing_zero() {
        let a = [0.2, -0.1];
        let b = [0.15, 0.3];
        let c = [0.25, 0.05];
        let g = gyration(&a, &b, &c);
        // Gyration preserves the norm (it is a rotation).
        assert_close(ops::norm(&g), ops::norm(&c), 1e-9);
        let zero = gyration(&a, &b, &[0.0, 0.0]);
        assert!(ops::norm(&zero) < 1e-9);
    }

    #[test]
    fn klein_round_trip() {
        let p = [0.45, -0.3, 0.1];
        let k = poincare_to_klein(&p);
        assert!(ops::norm(&k) < 1.0, "Klein points live in the unit ball");
        let back = klein_to_poincare(&k);
        for (a, b) in back.iter().zip(&p) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn einstein_midpoint_agrees_with_lorentz_midpoint() {
        // The Einstein midpoint in Klein coordinates equals the projected
        // Lorentzian centroid.
        let za = [0.7, -0.2];
        let zb = [-0.3, 0.5];
        let la = lorentz::exp_origin(&za);
        let lb = lorentz::exp_origin(&zb);
        let lm = lorentz_mean(&[&la, &lb]);
        let pm = crate::maps::lorentz_to_poincare(&lm);

        let ka = poincare_to_klein(&crate::maps::lorentz_to_poincare(&la));
        let kb = poincare_to_klein(&crate::maps::lorentz_to_poincare(&lb));
        let km = einstein_midpoint_klein(&[&ka, &kb], &[1.0, 1.0]);
        let pm2 = klein_to_poincare(&km);
        for (a, b) in pm.iter().zip(&pm2) {
            assert_close(*a, *b, 1e-9);
        }
    }
}
