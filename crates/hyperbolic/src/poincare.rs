//! The Poincaré ball model `P^d = { x ∈ R^d : ‖x‖ < 1 }`.
//!
//! Provides the distance metric, Möbius addition, the exponential map used
//! for Riemannian SGD on Poincaré parameters (Eq. 17 of the paper), the
//! origin-anchored exp/log maps, and analytic gradients.
//!
//! All kernels are generic over [`Scalar`]; the gradient kernel also exists
//! as a `*_into` variant writing into caller-owned buffers so the sharded
//! ranking loss runs allocation-free.

use logirec_linalg::{ops, Scalar};

use crate::{BALL_EPS, MIN_NORM};

/// Projects `x` in place to the open unit ball, leaving a `BALL_EPS` margin.
///
/// Every optimizer step on Poincaré parameters must end with this projection:
/// the distance metric and conformal factor are undefined at `‖x‖ ≥ 1`.
pub fn project<S: Scalar>(x: &mut [S]) {
    ops::clip_norm(x, S::from_f64(1.0 - BALL_EPS));
}

/// True when `x` lies strictly inside the unit ball (with margin).
pub fn in_ball<S: Scalar>(x: &[S]) -> bool {
    ops::norm(x) <= S::from_f64(1.0 - BALL_EPS / 2.0)
}

/// Conformal factor `λ_x = 2 / (1 − ‖x‖²)` of the Poincaré metric at `x`.
#[inline]
pub fn conformal_factor<S: Scalar>(x: &[S]) -> S {
    S::from_f64(2.0) / (S::ONE - ops::norm_sq(x)).max(S::from_f64(BALL_EPS))
}

/// Poincaré distance
/// `d_P(x, y) = acosh(1 + 2‖x−y‖² / ((1−‖x‖²)(1−‖y‖²)))` (Section III-A).
pub fn distance<S: Scalar>(x: &[S], y: &[S]) -> S {
    let a = ops::dist_sq(x, y);
    let b = (S::ONE - ops::norm_sq(x)).max(S::from_f64(BALL_EPS));
    let c = (S::ONE - ops::norm_sq(y)).max(S::from_f64(BALL_EPS));
    ops::acosh_clamped(S::ONE + S::from_f64(2.0) * a / (b * c))
}

/// Distance from `x` to the origin: `acosh(1 + 2‖x‖²/(1−‖x‖²))`
/// `= 2 atanh(‖x‖)`.
pub fn distance_to_origin<S: Scalar>(x: &[S]) -> S {
    let n = ops::norm(x).min(S::from_f64(1.0 - BALL_EPS));
    S::from_f64(2.0) * n.atanh()
}

/// [`distance_vjp`] writing into caller buffers `gx`/`gy` (each `d` long;
/// every element is overwritten, so the buffers need not be zeroed).
pub fn distance_vjp_into<S: Scalar>(x: &[S], y: &[S], upstream: S, gx: &mut [S], gy: &mut [S]) {
    debug_assert_eq!(gx.len(), x.len());
    debug_assert_eq!(gy.len(), y.len());
    let a = ops::dist_sq(x, y);
    let b = (S::ONE - ops::norm_sq(x)).max(S::from_f64(BALL_EPS));
    let c = (S::ONE - ops::norm_sq(y)).max(S::from_f64(BALL_EPS));
    let four = S::from_f64(4.0);
    let s = S::ONE + S::from_f64(2.0) * a / (b * c);
    // d(acosh s)/ds = 1/sqrt(s² − 1); clamp to avoid the x == y singularity.
    let ds = upstream / (s * s - S::ONE).sqrt().max(S::from_f64(MIN_NORM));
    // ∂s/∂x = 4(x−y)/(bc) + 4a·x/(b²c);  symmetric for y.
    let k = four / (b * c);
    let kx = four * a / (b * b * c);
    let ky = four * a / (b * c * c);
    for i in 0..x.len() {
        let diff = x[i] - y[i];
        gx[i] = ds * (k * diff + kx * x[i]);
        gy[i] = ds * (-k * diff + ky * y[i]);
    }
}

/// Gradients of [`distance`] with respect to both arguments.
///
/// Returns `(∂d/∂x, ∂d/∂y)` scaled by the upstream cotangent `upstream`.
/// These are Euclidean (ambient) gradients; convert with
/// [`crate::rsgd::poincare_riemannian_grad`] before a Riemannian step.
pub fn distance_vjp<S: Scalar>(x: &[S], y: &[S], upstream: S) -> (Vec<S>, Vec<S>) {
    let mut gx = vec![S::ZERO; x.len()];
    let mut gy = vec![S::ZERO; y.len()];
    distance_vjp_into(x, y, upstream, &mut gx, &mut gy);
    (gx, gy)
}

/// Möbius addition `x ⊕ y` (definition under Eq. 17).
pub fn mobius_add<S: Scalar>(x: &[S], y: &[S]) -> Vec<S> {
    let two = S::from_f64(2.0);
    let xy = ops::dot(x, y);
    let xx = ops::norm_sq(x);
    let yy = ops::norm_sq(y);
    let denom = (S::ONE + two * xy + xx * yy).max(S::from_f64(MIN_NORM));
    let cx = (S::ONE + two * xy + yy) / denom;
    let cy = (S::ONE - xx) / denom;
    let mut out = ops::scaled(x, cx);
    ops::axpy(cy, y, &mut out);
    out
}

/// The paper's Möbius exponential step (Eq. 17):
/// `exp_x(η) = x ⊕ (tanh(‖η‖/2) · η/‖η‖)`.
///
/// Combined with the Riemannian gradient rescaling `((1−‖x‖²)/2)²` this is
/// the retraction Nickel & Kiela use for Poincaré RSGD. The result is
/// projected back into the ball.
pub fn exp_map_paper<S: Scalar>(x: &[S], eta: &[S]) -> Vec<S> {
    let n = ops::norm(eta);
    if n < S::from_f64(MIN_NORM) {
        return x.to_vec();
    }
    let y = ops::scaled(eta, (n / S::from_f64(2.0)).tanh() / n);
    let mut out = mobius_add(x, &y);
    project(&mut out);
    out
}

/// The full Riemannian exponential map of the Poincaré ball (curvature −1):
/// `exp_x(v) = x ⊕ (tanh(λ_x ‖v‖ / 2) · v/‖v‖)`.
pub fn exp_map<S: Scalar>(x: &[S], v: &[S]) -> Vec<S> {
    let n = ops::norm(v);
    if n < S::from_f64(MIN_NORM) {
        return x.to_vec();
    }
    let lam = conformal_factor(x);
    let y = ops::scaled(v, (lam * n / S::from_f64(2.0)).tanh() / n);
    let mut out = mobius_add(x, &y);
    project(&mut out);
    out
}

/// Exponential map at the origin: `exp_0(v) = tanh(‖v‖) · v/‖v‖`.
pub fn exp_map_origin<S: Scalar>(v: &[S]) -> Vec<S> {
    let n = ops::norm(v);
    if n < S::from_f64(MIN_NORM) {
        return v.to_vec();
    }
    let mut out = ops::scaled(v, n.tanh() / n);
    project(&mut out);
    out
}

/// Logarithmic map at the origin: `log_0(x) = atanh(‖x‖) · x/‖x‖`
/// (inverse of [`exp_map_origin`]).
pub fn log_map_origin<S: Scalar>(x: &[S]) -> Vec<S> {
    let n = ops::norm(x);
    if n < S::from_f64(MIN_NORM) {
        return x.to_vec();
    }
    let nc = n.min(S::from_f64(1.0 - BALL_EPS));
    ops::scaled(x, nc.atanh() / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn distance_is_zero_on_diagonal_and_symmetric() {
        let x = [0.3, -0.2, 0.1];
        let y = [-0.5, 0.1, 0.4];
        assert_close(distance(&x, &x), 0.0, 1e-12);
        assert_close(distance(&x, &y), distance(&y, &x), 1e-12);
        assert!(distance(&x, &y) > 0.0);
    }

    #[test]
    fn distance_to_origin_matches_general_distance() {
        let x = [0.3, 0.4];
        let o = [0.0, 0.0];
        assert_close(distance_to_origin(&x), distance(&x, &o), 1e-10);
        // Closed form 2 atanh(0.5) for ‖x‖ = 0.5.
        assert_close(distance_to_origin(&x), 2.0 * 0.5f64.atanh(), 1e-12);
    }

    #[test]
    fn distance_blows_up_near_boundary() {
        let x = [0.0, 0.0];
        let near = [0.999, 0.0];
        let nearer = [0.99999, 0.0];
        assert!(distance(&x, &nearer) > distance(&x, &near));
        assert!(distance(&x, &nearer) > 5.0);
    }

    #[test]
    fn mobius_add_identity_and_inverse() {
        let x = [0.2, -0.3, 0.4];
        let zero = [0.0; 3];
        let id = mobius_add(&x, &zero);
        for (a, b) in id.iter().zip(&x) {
            assert_close(*a, *b, 1e-12);
        }
        let neg = ops::scaled(&x, -1.0);
        let back = mobius_add(&x, &neg);
        assert!(ops::norm(&back) < 1e-12, "x ⊕ (−x) should be 0");
    }

    #[test]
    fn mobius_add_stays_in_ball() {
        let x = [0.9, 0.0];
        let y = [0.0, 0.9];
        let z = mobius_add(&x, &y);
        assert!(ops::norm(&z) < 1.0, "‖x ⊕ y‖ = {}", ops::norm(&z));
    }

    #[test]
    fn exp_log_origin_roundtrip() {
        let v = [0.7, -1.1, 0.3];
        let x = exp_map_origin(&v);
        assert!(in_ball(&x));
        let back = log_map_origin(&x);
        for (a, b) in back.iter().zip(&v) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn exp_map_moves_along_gradient_direction() {
        let x = [0.1, 0.1];
        let v = [0.5, 0.0];
        let y = exp_map(&x, &v);
        assert!(y[0] > x[0], "should move in +x direction");
        assert!(in_ball(&y));
    }

    #[test]
    fn exp_map_paper_zero_step_is_identity() {
        let x = [0.25, -0.5];
        let y = exp_map_paper(&x, &[0.0, 0.0]);
        assert_eq!(y, x.to_vec());
    }

    #[test]
    fn exp_map_origin_distance_equals_tangent_norm() {
        // A defining property of the exponential map: d(0, exp_0(v)) = ‖v‖
        // (in the metric with curvature −1, where d(0, x) = 2 atanh(‖x‖) and
        // exp_0(v) = tanh(‖v‖)·v̂ ... the factor-2 convention means
        // d(0, exp_0(v)) = 2 atanh(tanh(‖v‖)) = 2‖v‖ under this metric; we
        // use the ‖·‖ convention consistently so just check monotone scale).
        let v = [0.8, 0.0];
        let x = exp_map_origin(&v);
        assert_close(distance_to_origin(&x), 2.0 * 0.8, 1e-9);
    }

    #[test]
    fn distance_vjp_matches_finite_differences() {
        let x = [0.31, -0.22, 0.15];
        let y = [-0.4, 0.05, 0.33];
        let (gx, gy) = distance_vjp(&x, &y, 1.0);
        let h = 1e-6;
        for i in 0..3 {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            let num = (distance(&xp, &y) - distance(&xm, &y)) / (2.0 * h);
            assert_close(gx[i], num, 1e-5);

            let mut yp = y.to_vec();
            let mut ym = y.to_vec();
            yp[i] += h;
            ym[i] -= h;
            let num = (distance(&x, &yp) - distance(&x, &ym)) / (2.0 * h);
            assert_close(gy[i], num, 1e-5);
        }
    }

    #[test]
    fn distance_vjp_scales_with_upstream() {
        let x = [0.2, 0.1];
        let y = [-0.1, 0.3];
        let (g1, _) = distance_vjp(&x, &y, 1.0);
        let (g3, _) = distance_vjp(&x, &y, 3.0);
        for (a, b) in g1.iter().zip(&g3) {
            assert_close(3.0 * a, *b, 1e-12);
        }
    }

    #[test]
    fn project_pulls_outside_points_in() {
        let mut x = [2.0, 0.0];
        project(&mut x);
        assert!(in_ball(&x));
        assert_close(ops::norm(&x), 1.0 - BALL_EPS, 1e-12);
    }

    #[test]
    fn into_kernel_matches_allocating_wrapper_bitwise() {
        let x = [0.31, -0.22, 0.15];
        let y = [-0.4, 0.05, 0.33];
        let (gx, gy) = distance_vjp(&x, &y, 0.75);
        let mut bx = [0.0; 3];
        let mut by = [0.0; 3];
        distance_vjp_into(&x, &y, 0.75, &mut bx, &mut by);
        assert_eq!(gx, bx);
        assert_eq!(gy, by);
    }
}
