//! The Lorentz (hyperboloid) model
//! `H^d = { x ∈ R^{d+1} : ⟨x,x⟩_L = −1, x₀ > 0 }`.
//!
//! Note on the sign convention: the paper (Section III-A) writes the
//! constraint as `⟨x,x⟩_L = 1`, but with its own inner product
//! `⟨x,y⟩_L = −x₀y₀ + Σ xᵢyᵢ` the hyperboloid satisfies `⟨x,x⟩_L = −1`
//! (e.g. the origin `o = (1,0,…,0)` has `⟨o,o⟩_L = −1`). We use the standard
//! `⟨x,x⟩_L = −1` form, which also makes the distance
//! `d_H(x,y) = acosh(−⟨x,y⟩_L)` (the paper's Eq. 9 expands to exactly this).
//!
//! Vectors are stored as `d+1` ambient coordinates with the time component
//! first. Tangent vectors at the origin have time component zero, so the GCN
//! in `logirec-core` stores only their `d` spatial components.
//!
//! Every kernel is generic over [`Scalar`] and the hot ones exist in two
//! forms: a `*_into` variant that writes into a caller-owned buffer (the
//! training loop reuses per-shard scratch, so the inner loop never touches
//! the allocator) and a thin allocating wrapper with the historical
//! signature. The `f64` instantiation performs bit-identical arithmetic to
//! the pre-generic code.

use logirec_linalg::{ops, Scalar};

use crate::MIN_NORM;

/// Lorentzian inner product `⟨x,y⟩_L = −x₀y₀ + Σ_{i≥1} xᵢyᵢ`.
#[inline]
pub fn inner<S: Scalar>(x: &[S], y: &[S]) -> S {
    debug_assert_eq!(x.len(), y.len());
    -x[0] * y[0] + ops::dot(&x[1..], &y[1..])
}

/// The hyperboloid origin `o = (1, 0, …, 0)` in `d+1` ambient coordinates.
pub fn origin<S: Scalar>(dim: usize) -> Vec<S> {
    let mut o = vec![S::ZERO; dim + 1];
    o[0] = S::ONE;
    o
}

/// Projects ambient coordinates onto the hyperboloid by recomputing the time
/// component from the spatial ones: `x₀ = sqrt(1 + ‖x₁..d‖²)`.
///
/// This is the cheap retraction applied after every Lorentz RSGD step to
/// absorb floating-point drift off the manifold.
pub fn project<S: Scalar>(x: &mut [S]) {
    x[0] = (S::ONE + ops::norm_sq(&x[1..])).sqrt();
}

/// True when `x` lies on the hyperboloid up to tolerance.
pub fn on_manifold<S: Scalar>(x: &[S], tol: f64) -> bool {
    x[0] > S::ZERO && (inner(x, x) + S::ONE).abs().to_f64() <= tol
}

/// Lorentz distance `d_H(x,y) = acosh(−⟨x,y⟩_L)` (Section III-A / Eq. 9).
///
/// ```
/// use logirec_hyperbolic::lorentz;
/// let x: Vec<f64> = lorentz::exp_origin(&[0.6, 0.8]); // distance 1 from the origin
/// assert!((lorentz::distance(&lorentz::origin(2), &x) - 1.0).abs() < 1e-9);
/// ```
pub fn distance<S: Scalar>(x: &[S], y: &[S]) -> S {
    ops::acosh_clamped(-inner(x, y))
}

/// Distance to the origin: `acosh(x₀)` — the granularity score GR (Eq. 13).
#[inline]
pub fn distance_to_origin<S: Scalar>(x: &[S]) -> S {
    ops::acosh_clamped(x[0])
}

/// [`distance_vjp`] writing into caller buffers `gx`/`gy` (each `d+1` long;
/// every element is overwritten, so the buffers need not be zeroed).
pub fn distance_vjp_into<S: Scalar>(x: &[S], y: &[S], upstream: S, gx: &mut [S], gy: &mut [S]) {
    debug_assert_eq!(gx.len(), x.len());
    debug_assert_eq!(gy.len(), y.len());
    let s = -inner(x, y);
    let ds = upstream / ((s * s - S::ONE).sqrt()).max(S::from_f64(MIN_NORM));
    gx[0] = ds * y[0];
    gy[0] = ds * x[0];
    for i in 1..x.len() {
        gx[i] = -ds * y[i];
        gy[i] = -ds * x[i];
    }
}

/// Ambient Euclidean gradients of [`distance`] w.r.t. both arguments, scaled
/// by `upstream`.
///
/// With `s = −⟨x,y⟩_L`, `d = acosh(s)` and `∂s/∂x = (y₀, −y₁, …, −y_d)`.
/// Feed the results through [`crate::rsgd::lorentz_step`], which converts
/// ambient gradients to Riemannian ones (Eq. 16).
pub fn distance_vjp<S: Scalar>(x: &[S], y: &[S], upstream: S) -> (Vec<S>, Vec<S>) {
    let mut gx = vec![S::ZERO; x.len()];
    let mut gy = vec![S::ZERO; y.len()];
    distance_vjp_into(x, y, upstream, &mut gx, &mut gy);
    (gx, gy)
}

/// [`exp_origin`] writing into a caller buffer (`z.len() + 1` long).
pub fn exp_origin_into<S: Scalar>(z: &[S], out: &mut [S]) {
    debug_assert_eq!(out.len(), z.len() + 1);
    let n = ops::norm(z);
    out[0] = n.cosh();
    let scale = sinhc(n);
    for (o, zi) in out[1..].iter_mut().zip(z) {
        *o = scale * *zi;
    }
}

/// Exponential map at the origin (Eq. 8), taking the **spatial** tangent
/// coordinates `z ∈ R^d` (the time component of a tangent vector at `o` is
/// zero) to a point on `H^d` in `d+1` ambient coordinates:
///
/// `exp_o(z) = (cosh‖z‖, sinh(‖z‖)·z/‖z‖)`.
pub fn exp_origin<S: Scalar>(z: &[S]) -> Vec<S> {
    let mut out = vec![S::ZERO; z.len() + 1];
    exp_origin_into(z, &mut out);
    out
}

/// [`log_origin`] writing into a caller buffer (`u.len() − 1` long).
pub fn log_origin_into<S: Scalar>(u: &[S], out: &mut [S]) {
    debug_assert_eq!(out.len() + 1, u.len());
    let us = &u[1..];
    let m = ops::norm(us);
    if m < S::from_f64(MIN_NORM) {
        out.copy_from_slice(us);
        return;
    }
    let a = ops::acosh_clamped(u[0]);
    let k = a / m;
    for (o, ui) in out.iter_mut().zip(us) {
        *o = k * *ui;
    }
}

/// Logarithmic map at the origin (Eq. 6), returning the spatial tangent
/// coordinates `z ∈ R^d` of `log_o(u)`:
///
/// `log_o(u) = acosh(u₀) · u_s / ‖u_s‖`, where `u_s` are the spatial
/// coordinates (the general formula in Eq. 6 reduces to this at `o`).
pub fn log_origin<S: Scalar>(u: &[S]) -> Vec<S> {
    let mut out = vec![S::ZERO; u.len() - 1];
    log_origin_into(u, &mut out);
    out
}

/// [`exp_origin_vjp`] writing into a caller buffer (`z.len()` long; every
/// element is overwritten).
pub fn exp_origin_vjp_into<S: Scalar>(z: &[S], g: &[S], out: &mut [S]) {
    debug_assert_eq!(g.len(), z.len() + 1);
    debug_assert_eq!(out.len(), z.len());
    let n = ops::norm(z);
    let gs = &g[1..];
    if n < S::from_f64(MIN_NORM) {
        // exp_o(z) ≈ (1 + n²/2, z): d(out₀)/dz ≈ z → 0, spatial Jacobian ≈ I.
        out.copy_from_slice(gs);
        return;
    }
    let sh = n.sinh();
    let ch = n.cosh();
    let shc = sh / n;
    // ∂out₀/∂z_j  = sinh(n)·z_j/n
    // ∂out_i/∂z_j = (sinh n / n) δ_ij + z_i z_j (n cosh n − sinh n)/n³
    let zdotg = ops::dot(z, gs);
    let k = (n * ch - sh) / (n * n * n);
    for (o, gi) in out.iter_mut().zip(gs) {
        *o = shc * *gi;
    }
    let coeff = g[0] * shc + zdotg * k;
    ops::axpy(coeff, z, out);
    // The g[0]·sinh(n)/n·z_j term is folded in via `coeff` above:
    // coeff·z_j = g₀·(sinh n/n)·z_j + (z·g_s)·k·z_j.
}

/// VJP of [`exp_origin`]: given the ambient gradient `g ∈ R^{d+1}` w.r.t.
/// the output point, returns the gradient w.r.t. the spatial tangent input
/// `z ∈ R^d`.
pub fn exp_origin_vjp<S: Scalar>(z: &[S], g: &[S]) -> Vec<S> {
    let mut out = vec![S::ZERO; z.len()];
    exp_origin_vjp_into(z, g, &mut out);
    out
}

/// [`log_origin_vjp`] writing into a caller buffer (`u.len()` long; every
/// element is overwritten).
pub fn log_origin_vjp_into<S: Scalar>(u: &[S], g: &[S], out: &mut [S]) {
    debug_assert_eq!(g.len() + 1, u.len());
    debug_assert_eq!(out.len(), u.len());
    let us = &u[1..];
    let m = ops::norm(us);
    if m < S::from_f64(MIN_NORM) {
        // Near the origin log_o(u) ≈ u_s.
        out[0] = S::ZERO;
        out[1..].copy_from_slice(g);
        return;
    }
    let a = ops::acosh_clamped(u[0]);
    // ∂z_j/∂u₀ = u_j / (m·sqrt(u₀²−1))
    let root = (u[0] * u[0] - S::ONE).sqrt().max(S::from_f64(MIN_NORM));
    let udotg = ops::dot(us, g);
    out[0] = udotg / (m * root);
    // ∂z_j/∂u_i = a(δ_ij/m − u_i u_j/m³)
    let am = a / m;
    let am3 = a / (m * m * m);
    for i in 0..g.len() {
        out[i + 1] = am * g[i] - am3 * udotg * us[i];
    }
}

/// VJP of [`log_origin`]: given the gradient `g ∈ R^d` w.r.t. the tangent
/// output, returns the **ambient** gradient w.r.t. the input point
/// `u ∈ R^{d+1}`.
pub fn log_origin_vjp<S: Scalar>(u: &[S], g: &[S]) -> Vec<S> {
    let mut out = vec![S::ZERO; u.len()];
    log_origin_vjp_into(u, g, &mut out);
    out
}

/// Exponential map at an arbitrary point `x ∈ H^d` (Eq. 18):
/// `exp_x(v) = cosh(‖v‖_L)·x + sinh(‖v‖_L)·v/‖v‖_L`,
/// where `v` is a tangent vector at `x` (so `⟨x,v⟩_L = 0` and
/// `‖v‖_L = sqrt(⟨v,v⟩_L)` is real).
pub fn exp_point<S: Scalar>(x: &[S], v: &[S]) -> Vec<S> {
    let vv = inner(v, v).max(S::ZERO);
    let n = vv.sqrt();
    if n < S::from_f64(MIN_NORM) {
        return x.to_vec();
    }
    let mut out = ops::scaled(x, n.cosh());
    ops::axpy(n.sinh() / n, v, &mut out);
    project(&mut out);
    out
}

/// Projects an ambient vector `h` onto the tangent space at `x`:
/// `proj_x(h) = h + ⟨x,h⟩_L · x`.
pub fn tangent_project<S: Scalar>(x: &[S], h: &[S]) -> Vec<S> {
    let xh = inner(x, h);
    let mut out = h.to_vec();
    ops::axpy(xh, x, &mut out);
    out
}

/// `sinh(n)/n`, with the Taylor limit at small `n`.
#[inline]
fn sinhc<S: Scalar>(n: S) -> S {
    if n < S::from_f64(1e-6) {
        S::ONE + n * n / S::from_f64(6.0)
    } else {
        n.sinh() / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn origin_is_on_manifold() {
        let o: Vec<f64> = origin(5);
        assert!(on_manifold(&o, 1e-12));
        assert_close(inner(&o, &o), -1.0, 1e-15);
    }

    #[test]
    fn project_restores_constraint() {
        let mut x = vec![0.0, 0.5, -1.25, 2.0];
        project(&mut x);
        assert!(on_manifold(&x, 1e-12));
    }

    #[test]
    fn exp_origin_lands_on_manifold() {
        let z = [0.7, -0.3, 1.2];
        let u = exp_origin(&z);
        assert!(on_manifold(&u, 1e-10));
    }

    #[test]
    fn exp_log_origin_roundtrip() {
        let z = [0.4, -0.9, 0.05, 1.3];
        let u = exp_origin(&z);
        let back = log_origin(&u);
        for (a, b) in back.iter().zip(&z) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn log_origin_of_origin_is_zero() {
        let o: Vec<f64> = origin(3);
        let z = log_origin(&o);
        assert!(ops::norm(&z) < 1e-12);
    }

    #[test]
    fn distance_properties() {
        let z1 = [0.2, 0.3];
        let z2 = [-0.5, 0.7];
        let x = exp_origin(&z1);
        let y = exp_origin(&z2);
        assert_close(distance(&x, &x), 0.0, 1e-7);
        assert_close(distance(&x, &y), distance(&y, &x), 1e-12);
        assert!(distance(&x, &y) > 0.0);
    }

    #[test]
    fn distance_to_origin_equals_tangent_norm() {
        // d(o, exp_o(z)) = ‖z‖: geodesics from the origin have unit speed.
        let z = [0.6, -0.8]; // ‖z‖ = 1
        let u = exp_origin(&z);
        assert_close(distance_to_origin(&u), 1.0, 1e-10);
        assert_close(distance(&origin(2), &u), 1.0, 1e-10);
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = exp_origin(&[0.1, 0.9]);
        let b = exp_origin(&[-0.4, 0.2]);
        let c = exp_origin(&[1.1, -0.3]);
        assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c) + 1e-9);
    }

    #[test]
    fn distance_vjp_matches_finite_differences_in_tangent_coords() {
        // Differentiate through exp_origin ∘ distance so perturbations stay
        // on the manifold.
        let za = [0.3, -0.2, 0.5];
        let zb = [-0.1, 0.4, 0.2];
        let x = exp_origin(&za);
        let y = exp_origin(&zb);
        let (gx, _gy) = distance_vjp(&x, &y, 1.0);
        let gz = exp_origin_vjp(&za, &gx);
        let h = 1e-6;
        for i in 0..3 {
            let mut zp = za.to_vec();
            let mut zm = za.to_vec();
            zp[i] += h;
            zm[i] -= h;
            let num =
                (distance(&exp_origin(&zp), &y) - distance(&exp_origin(&zm), &y)) / (2.0 * h);
            assert_close(gz[i], num, 1e-5);
        }
    }

    #[test]
    fn log_origin_vjp_matches_finite_differences() {
        // Scalar function f(z) = w · log_o(exp_o(z)²-ish chain): perturb in
        // tangent coordinates, map through exp, then log, then dot with w.
        let z0 = [0.25, -0.7, 0.4];
        let w = [1.0, -2.0, 0.5];
        let f = |z: &[f64]| {
            let u = exp_origin(z);
            ops::dot(&log_origin(&u), &w)
        };
        let u0 = exp_origin(&z0);
        let g_ambient = log_origin_vjp(&u0, &w);
        let g_tangent = exp_origin_vjp(&z0, &g_ambient);
        let h = 1e-6;
        for i in 0..3 {
            let mut zp = z0.to_vec();
            let mut zm = z0.to_vec();
            zp[i] += h;
            zm[i] -= h;
            let num = (f(&zp) - f(&zm)) / (2.0 * h);
            assert_close(g_tangent[i], num, 1e-5);
        }
        // And since log ∘ exp = id, the chained gradient must equal w.
        for (a, b) in g_tangent.iter().zip(&w) {
            assert_close(*a, *b, 1e-8);
        }
    }

    #[test]
    fn exp_point_follows_geodesic() {
        let x = origin(2);
        // Tangent at origin with time component 0.
        let v = vec![0.0, 0.3, 0.4]; // ‖v‖_L = 0.5
        let y = exp_point(&x, &v);
        assert!(on_manifold(&y, 1e-10));
        assert_close(distance(&x, &y), 0.5, 1e-10);
    }

    #[test]
    fn tangent_project_gives_orthogonal_vector() {
        let x = exp_origin(&[0.5, -0.2]);
        let h = vec![0.3, 1.0, -0.7];
        let v = tangent_project(&x, &h);
        assert_close(inner(&x, &v), 0.0, 1e-12);
    }

    #[test]
    fn exp_origin_vjp_small_norm_limit() {
        let z = [1e-12, 0.0];
        let g = [0.5, 1.0, 2.0];
        let gz = exp_origin_vjp(&z, &g);
        assert_close(gz[0], 1.0, 1e-9);
        assert_close(gz[1], 2.0, 1e-9);
    }

    #[test]
    fn into_kernels_match_allocating_wrappers_bitwise() {
        let z = [0.45, -0.85, 0.1];
        let u = exp_origin(&z);
        let g4 = [0.2, -0.6, 1.1, 0.3];
        let g3 = [0.9, -0.4, 0.7];

        let mut buf4a = [0.0; 4];
        let mut buf4b = [0.0; 4];
        let (gx, gy) = distance_vjp(&u, &exp_origin(&g3), 0.8);
        distance_vjp_into(&u, &exp_origin(&g3), 0.8, &mut buf4a, &mut buf4b);
        assert_eq!(gx, buf4a);
        assert_eq!(gy, buf4b);

        exp_origin_into(&z, &mut buf4a);
        assert_eq!(u, buf4a);

        let mut buf3 = [0.0; 3];
        log_origin_into(&u, &mut buf3);
        assert_eq!(log_origin(&u), buf3);

        exp_origin_vjp_into(&z, &g4, &mut buf3);
        assert_eq!(exp_origin_vjp(&z, &g4), buf3);

        log_origin_vjp_into(&u, &g3, &mut buf4a);
        assert_eq!(log_origin_vjp(&u, &g3), buf4a);
    }

    #[test]
    fn f32_kernels_track_f64_within_single_precision() {
        let z64 = [0.35, -0.6, 0.9, 0.15];
        let z32: Vec<f32> = z64.iter().map(|&v| v as f32).collect();
        let u64v = exp_origin(&z64);
        let u32v = exp_origin(&z32);
        assert!(on_manifold(&u32v, 1e-5));
        for (a, b) in u64v.iter().zip(&u32v) {
            assert!((a - f64::from(*b)).abs() < 1e-5, "{a} vs {b}");
        }
        let back = log_origin(&u32v);
        for (a, b) in back.iter().zip(&z32) {
            assert!((a - b).abs() < 1e-4);
        }
        let d64 = distance(&u64v, &exp_origin(&[0.1, 0.2, -0.4, 0.55]));
        let d32 = distance(
            &u32v,
            &exp_origin(&[0.1f32, 0.2, -0.4, 0.55]),
        );
        assert!((d64 - f64::from(d32)).abs() < 1e-4);
    }
}
