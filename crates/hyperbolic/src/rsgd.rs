//! Riemannian stochastic gradient descent (Section V-C, Eq. 16–18).
//!
//! Both hyperbolic models need their Euclidean (ambient) loss gradients
//! converted to Riemannian gradients before an exponential-map update:
//!
//! * **Poincaré**: the metric is conformal, so the Riemannian gradient is
//!   the Euclidean one rescaled by `((1 − ‖x‖²)/2)²` (the inverse metric);
//!   the update retracts with the Möbius exponential (Eq. 17).
//! * **Lorentz**: apply the inverse metric `g_L⁻¹ = diag(−1, 1, …, 1)` and
//!   project onto the tangent space at `x` (this is what the paper's
//!   `(I − X Xᵀ)∇` in Eq. 16 computes on the hyperboloid); the update uses
//!   the hyperboloid exponential (Eq. 18) followed by a re-projection.
//!
//! The steps are generic over [`Scalar`] so the optimizer runs natively in
//! either precision. Learning rates stay `f64` at the API boundary (they
//! come from the config) and are rounded into `S` once per call. The steps
//! still allocate small per-row temporaries — they run once per *touched
//! row* per batch, not once per pair, so they are far off the hot path the
//! `*_into` kernels serve.

use logirec_linalg::{ops, Scalar};

use crate::{hyperplane, lorentz, poincare};

/// Converts a Euclidean gradient at a Poincaré point to the Riemannian
/// gradient: `grad = ((1 − ‖x‖²)/2)² · ∇`.
pub fn poincare_riemannian_grad<S: Scalar>(x: &[S], egrad: &[S]) -> Vec<S> {
    let factor = (S::ONE - ops::norm_sq(x)).max(S::ZERO) / S::from_f64(2.0);
    ops::scaled(egrad, factor * factor)
}

/// One RSGD step on a Poincaré parameter: rescale, retract via the paper's
/// Möbius exponential (Eq. 17), and project back into the ball.
///
/// Hostile gradients never poison the point: a non-finite gradient is
/// dropped, a step whose retraction overflows keeps the old point, and the
/// final projection guarantees the result stays strictly inside the ball.
pub fn poincare_step<S: Scalar>(x: &mut [S], egrad: &[S], lr: f64) {
    if !ops::all_finite(egrad) {
        poincare::project(x);
        return;
    }
    let mut rgrad = poincare_riemannian_grad(x, egrad);
    ops::scale(&mut rgrad, S::from_f64(-lr));
    let updated = poincare::exp_map_paper(x, &rgrad);
    if ops::all_finite(&updated) {
        x.copy_from_slice(&updated);
    }
    poincare::project(x);
}

/// One RSGD step on a hyperplane defining point `c`: same as
/// [`poincare_step`] but additionally keeps `‖c‖` in the valid hyperplane
/// range (nonzero, inside the ball).
pub fn hyperplane_step<S: Scalar>(c: &mut [S], egrad: &[S], lr: f64) {
    poincare_step(c, egrad, lr);
    hyperplane::clamp_center(c);
}

/// Converts an ambient Euclidean gradient at a Lorentz point to the
/// Riemannian gradient (Eq. 16): apply `g_L⁻¹` (negate the time component),
/// then project onto the tangent space at `x`.
pub fn lorentz_riemannian_grad<S: Scalar>(x: &[S], egrad: &[S]) -> Vec<S> {
    let mut h = egrad.to_vec();
    h[0] = -h[0];
    lorentz::tangent_project(x, &h)
}

/// One RSGD step on a Lorentz parameter: Riemannian gradient, exponential
/// map along `−lr · grad` (Eq. 18), then hyperboloid re-projection.
///
/// Hostile gradients never poison the point: a non-finite gradient is
/// dropped, a step whose exponential map overflows (e.g. `cosh` of an
/// enormous tangent norm) keeps the old point, and the final projection
/// guarantees the result sits back on the sheet.
pub fn lorentz_step<S: Scalar>(x: &mut [S], egrad: &[S], lr: f64) {
    if !ops::all_finite(egrad) {
        lorentz::project(x);
        return;
    }
    let mut rgrad = lorentz_riemannian_grad(x, egrad);
    ops::scale(&mut rgrad, S::from_f64(-lr));
    let updated = lorentz::exp_point(x, &rgrad);
    if ops::all_finite(&updated) {
        x.copy_from_slice(&updated);
    } else {
        lorentz::project(x);
    }
}

/// Plain Euclidean SGD step, used by the Euclidean baselines and the
/// "w/o Hyper" ablation so every method shares one optimizer surface.
/// Non-finite gradients are dropped, matching the Riemannian steps.
pub fn euclidean_step<S: Scalar>(x: &mut [S], egrad: &[S], lr: f64) {
    if !ops::all_finite(egrad) {
        return;
    }
    ops::axpy(S::from_f64(-lr), egrad, x);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing d_P(x, target)² by RSGD should converge to the target.
    #[test]
    fn poincare_rsgd_converges_to_target() {
        let target = [0.4, -0.3];
        let mut x = vec![0.01, 0.02];
        for _ in 0..500 {
            let d = poincare::distance(&x, &target);
            let (gx, _) = poincare::distance_vjp(&x, &target, 2.0 * d);
            poincare_step(&mut x, &gx, 0.05);
        }
        assert!(
            poincare::distance(&x, &target) < 1e-3,
            "converged to {x:?}, d = {}",
            poincare::distance(&x, &target)
        );
    }

    /// Minimizing d_H(x, target)² by Lorentz RSGD should converge too, and
    /// every iterate must stay on the hyperboloid.
    #[test]
    fn lorentz_rsgd_converges_and_stays_on_manifold() {
        let target = lorentz::exp_origin(&[0.8, -0.5]);
        let mut x = lorentz::origin(2);
        for _ in 0..500 {
            let d = lorentz::distance(&x, &target);
            let (gx, _) = lorentz::distance_vjp(&x, &target, 2.0 * d);
            lorentz_step(&mut x, &gx, 0.05);
            assert!(lorentz::on_manifold(&x, 1e-9), "left the manifold: {x:?}");
        }
        assert!(lorentz::distance(&x, &target) < 1e-3);
    }

    #[test]
    fn hyperplane_step_keeps_center_valid() {
        let mut c = vec![0.002, 0.0];
        // A gradient pushing the center through the origin.
        let g = vec![10.0, 0.0];
        for _ in 0..50 {
            hyperplane_step(&mut c, &g, 0.1);
            let n = ops::norm(&c);
            assert!(
                (hyperplane::MIN_CENTER_NORM - 1e-12..=1.0).contains(&n),
                "center norm escaped: {n}"
            );
        }
    }

    #[test]
    fn riemannian_grad_shrinks_near_boundary() {
        let g = [1.0, 0.0];
        let near_center = poincare_riemannian_grad(&[0.0, 0.0], &g);
        let near_edge = poincare_riemannian_grad(&[0.99, 0.0], &g);
        assert!(ops::norm(&near_center) > ops::norm(&near_edge) * 100.0);
    }

    #[test]
    fn lorentz_riemannian_grad_is_tangent() {
        let x = lorentz::exp_origin(&[0.3, 0.7, -0.2]);
        let egrad = vec![0.5, -1.0, 0.25, 2.0];
        let r = lorentz_riemannian_grad(&x, &egrad);
        assert!(lorentz::inner(&x, &r).abs() < 1e-12);
    }

    #[test]
    fn euclidean_step_is_plain_sgd() {
        let mut x = vec![1.0, 2.0];
        euclidean_step(&mut x, &[0.5, -0.5], 0.1);
        assert_eq!(x, vec![0.95, 2.05]);
    }

    #[test]
    fn f32_steps_preserve_manifold_invariants() {
        let target: Vec<f32> = lorentz::exp_origin(&[0.6f32, -0.4]);
        let mut x: Vec<f32> = lorentz::origin(2);
        for _ in 0..200 {
            let d = lorentz::distance(&x, &target);
            let (gx, _) = lorentz::distance_vjp(&x, &target, 2.0f32 * d);
            lorentz_step(&mut x, &gx, 0.05);
            assert!(lorentz::on_manifold(&x, 1e-4), "left the manifold: {x:?}");
        }
        assert!(lorentz::distance(&x, &target) < 1e-2);

        let mut p = vec![0.01f32, 0.02];
        let ptarget = [0.4f32, -0.3];
        for _ in 0..300 {
            let d = poincare::distance(&p, &ptarget);
            let (gp, _) = poincare::distance_vjp(&p, &ptarget, 2.0f32 * d);
            poincare_step(&mut p, &gp, 0.05);
            assert!(poincare::in_ball(&p));
        }
        assert!(poincare::distance(&p, &ptarget) < 1e-2);
    }
}
