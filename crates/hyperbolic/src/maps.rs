//! Diffeomorphisms between the Poincaré and Lorentz models (Eq. 1–2).
//!
//! LogiRec learns item embeddings in the Poincaré ball (where the logical
//! relation losses live) and maps them into the Lorentz model with `p⁻¹` for
//! the GCN + ranking loss; `p` maps Lorentz points back for visualization and
//! the granularity analysis. `p` and `p⁻¹` are mutually inverse bijections
//! between `P^d` and `H^d`.
//!
//! All kernels are generic over [`Scalar`]; the `*_into` variants write into
//! caller-owned buffers so the propagation and gradient loops run
//! allocation-free (see DESIGN.md, "Precision & kernels").

use logirec_linalg::{ops, Scalar};

use crate::MIN_NORM;

#[cfg(test)]
use crate::{lorentz, poincare};

/// [`lorentz_to_poincare`] writing into a caller buffer (`x.len() − 1` long).
pub fn lorentz_to_poincare_into<S: Scalar>(x: &[S], out: &mut [S]) {
    debug_assert_eq!(out.len() + 1, x.len());
    let denom = x[0] + S::ONE;
    let k = S::ONE / denom;
    for (o, xi) in out.iter_mut().zip(&x[1..]) {
        *o = k * *xi;
    }
}

/// `p : H^d → P^d` (Eq. 1): `p(x₀, x₁, …, x_d) = (x₁, …, x_d)/(x₀ + 1)`.
pub fn lorentz_to_poincare<S: Scalar>(x: &[S]) -> Vec<S> {
    let mut out = vec![S::ZERO; x.len() - 1];
    lorentz_to_poincare_into(x, &mut out);
    out
}

/// [`poincare_to_lorentz`] writing into a caller buffer (`x.len() + 1` long).
pub fn poincare_to_lorentz_into<S: Scalar>(x: &[S], out: &mut [S]) {
    debug_assert_eq!(out.len(), x.len() + 1);
    let q = ops::norm_sq(x).min(S::from_f64(1.0 - crate::BALL_EPS));
    let denom = S::ONE - q;
    out[0] = (S::ONE + q) / denom;
    let two = S::from_f64(2.0);
    for (o, xi) in out[1..].iter_mut().zip(x) {
        *o = two * *xi / denom;
    }
}

/// `p⁻¹ : P^d → H^d` (Eq. 2):
/// `p⁻¹(x) = ((1 + ‖x‖²), 2x₁, …, 2x_d) / (1 − ‖x‖²)`.
pub fn poincare_to_lorentz<S: Scalar>(x: &[S]) -> Vec<S> {
    let mut out = vec![S::ZERO; x.len() + 1];
    poincare_to_lorentz_into(x, &mut out);
    out
}

/// [`poincare_to_lorentz_vjp`] writing into a caller buffer (`x.len()` long;
/// every element is overwritten).
pub fn poincare_to_lorentz_vjp_into<S: Scalar>(x: &[S], g: &[S], out: &mut [S]) {
    debug_assert_eq!(g.len(), x.len() + 1);
    debug_assert_eq!(out.len(), x.len());
    let q = ops::norm_sq(x);
    let d = (S::ONE - q).max(S::from_f64(MIN_NORM));
    let d2 = d * d;
    let gs = &g[1..];
    let xdotg = ops::dot(x, gs);
    let two = S::from_f64(2.0);
    let four = S::from_f64(4.0);
    let k = two / d;
    for (o, gi) in out.iter_mut().zip(gs) {
        *o = k * *gi;
    }
    let coeff = four * g[0] / d2 + four * xdotg / d2;
    ops::axpy(coeff, x, out);
}

/// VJP of [`poincare_to_lorentz`]: given the ambient gradient
/// `g ∈ R^{d+1}` w.r.t. the Lorentz output, returns the Euclidean gradient
/// w.r.t. the Poincaré input `x ∈ R^d`.
///
/// With `q = ‖x‖²`, `D = 1 − q`:
/// `∂y₀/∂x_j = 4x_j/D²`, `∂y_i/∂x_j = 2δ_ij/D + 4x_i x_j/D²`.
pub fn poincare_to_lorentz_vjp<S: Scalar>(x: &[S], g: &[S]) -> Vec<S> {
    let mut out = vec![S::ZERO; x.len()];
    poincare_to_lorentz_vjp_into(x, g, &mut out);
    out
}

/// [`lorentz_to_poincare_vjp`] writing into a caller buffer (`x.len()` long;
/// every element is overwritten).
pub fn lorentz_to_poincare_vjp_into<S: Scalar>(x: &[S], g: &[S], out: &mut [S]) {
    debug_assert_eq!(g.len() + 1, x.len());
    debug_assert_eq!(out.len(), x.len());
    let denom = x[0] + S::ONE;
    out[0] = -ops::dot(&x[1..], g) / (denom * denom);
    for (o, gi) in out[1..].iter_mut().zip(g) {
        *o = *gi / denom;
    }
}

/// VJP of [`lorentz_to_poincare`]: given the gradient `g ∈ R^d` w.r.t. the
/// Poincaré output, returns the ambient gradient w.r.t. the Lorentz input.
///
/// `∂y_i/∂x₀ = −x_i/(x₀+1)²`, `∂y_i/∂x_j = δ_ij/(x₀+1)` for `j ≥ 1`.
pub fn lorentz_to_poincare_vjp<S: Scalar>(x: &[S], g: &[S]) -> Vec<S> {
    let mut out = vec![S::ZERO; x.len()];
    lorentz_to_poincare_vjp_into(x, g, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn p_inv_lands_on_hyperboloid() {
        let x = [0.3, -0.5, 0.1];
        let y = poincare_to_lorentz(&x);
        assert!(lorentz::on_manifold(&y, 1e-10));
    }

    #[test]
    fn p_lands_in_ball() {
        let u = lorentz::exp_origin(&[1.5, -2.0]);
        let x = lorentz_to_poincare(&u);
        assert!(poincare::in_ball(&x));
    }

    #[test]
    fn diffeomorphisms_are_mutually_inverse() {
        let x = [0.4, 0.2, -0.3];
        let back = lorentz_to_poincare(&poincare_to_lorentz(&x));
        for (a, b) in back.iter().zip(&x) {
            assert_close(*a, *b, 1e-12);
        }
        let u = lorentz::exp_origin(&[0.8, -0.1, 0.6]);
        let back = poincare_to_lorentz(&lorentz_to_poincare(&u));
        for (a, b) in back.iter().zip(&u) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn origin_maps_to_origin() {
        let o_p = [0.0, 0.0];
        let o_h = poincare_to_lorentz(&o_p);
        assert_close(o_h[0], 1.0, 1e-15);
        assert_close(o_h[1], 0.0, 1e-15);
        let back: Vec<f64> = lorentz_to_poincare(&lorentz::origin(2));
        assert!(ops::norm(&back) < 1e-15);
    }

    #[test]
    fn maps_are_isometries() {
        // d_P(x, y) must equal d_H(p⁻¹(x), p⁻¹(y)).
        let x = [0.3, -0.2];
        let y = [-0.1, 0.55];
        let dp = poincare::distance(&x, &y);
        let dh = lorentz::distance(&poincare_to_lorentz(&x), &poincare_to_lorentz(&y));
        assert_close(dp, dh, 1e-9);
    }

    #[test]
    fn p_inv_vjp_matches_finite_differences() {
        let x = [0.31, -0.44, 0.12];
        let g = [0.7, -1.3, 0.4, 2.0];
        let grad = poincare_to_lorentz_vjp(&x, &g);
        let f = |x: &[f64]| ops::dot(&poincare_to_lorentz(x), &g);
        let h = 1e-7;
        for i in 0..3 {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            let num = (f(&xp) - f(&xm)) / (2.0 * h);
            assert_close(grad[i], num, 1e-5);
        }
    }

    #[test]
    fn p_vjp_matches_finite_differences() {
        // Perturb in tangent coordinates via exp_origin to stay on H^d, and
        // compare against chained analytic VJPs.
        let z0 = [0.5, -0.3];
        let g = [1.0, -0.5];
        let f = |z: &[f64]| ops::dot(&lorentz_to_poincare(&lorentz::exp_origin(z)), &g);
        let u = lorentz::exp_origin(&z0);
        let g_ambient = lorentz_to_poincare_vjp(&u, &g);
        let g_tan = lorentz::exp_origin_vjp(&z0, &g_ambient);
        let h = 1e-6;
        for i in 0..2 {
            let mut zp = z0.to_vec();
            let mut zm = z0.to_vec();
            zp[i] += h;
            zm[i] -= h;
            let num = (f(&zp) - f(&zm)) / (2.0 * h);
            assert_close(g_tan[i], num, 1e-5);
        }
    }

    #[test]
    fn into_kernels_match_allocating_wrappers_bitwise() {
        let x = [0.31, -0.44, 0.12];
        let u = poincare_to_lorentz(&x);
        let g4 = [0.7, -1.3, 0.4, 2.0];
        let g3 = [1.0, -0.5, 0.25];

        let mut buf3 = [0.0; 3];
        let mut buf4 = [0.0; 4];
        poincare_to_lorentz_into(&x, &mut buf4);
        assert_eq!(u, buf4);
        lorentz_to_poincare_into(&u, &mut buf3);
        assert_eq!(lorentz_to_poincare(&u), buf3);
        poincare_to_lorentz_vjp_into(&x, &g4, &mut buf3);
        assert_eq!(poincare_to_lorentz_vjp(&x, &g4), buf3);
        lorentz_to_poincare_vjp_into(&u, &g3, &mut buf4);
        assert_eq!(lorentz_to_poincare_vjp(&u, &g3), buf4);
    }
}
