//! Poincaré hyperplanes and their enclosing d-balls (Section III-A).
//!
//! A Poincaré hyperplane is uniquely determined by its closest point `c ≠ 0`
//! to the origin. The Euclidean d-ball whose boundary carries the hyperplane
//! (and intersects the unit sphere perpendicularly) is
//!
//! `o_c = c · (1 + ‖c‖²) / (2‖c‖²)`,  `r_c = (1 − ‖c‖²) / (2‖c‖)`.
//!
//! **Paper typo:** the paper prints `o_c = c(1+‖c‖²)/(2‖c‖)`, but
//! orthogonality to the unit sphere requires `‖o_c‖² = 1 + r_c²`, which only
//! the `2‖c‖²` form satisfies (verified in `enclosing_ball_is_orthogonal`).
//!
//! Tags are modeled as hyperplanes; items as points. The three logical
//! relations then become the geometric predicates of Lemmas 1–3, which
//! `logirec-core` turns into hinge losses (Eq. 3–5).
//!
//! Everything is generic over [`Scalar`]; the hot derivation and its VJP
//! also exist as `*_into` variants writing into caller-owned buffers so the
//! sharded logic losses run allocation-free.

use logirec_linalg::{ops, Scalar};

use crate::{BALL_EPS, MIN_NORM};

/// Minimum norm of a hyperplane's defining point `c`. `c = 0` does not
/// define a hyperplane (the radius diverges), so optimizer steps clamp the
/// norm into `[MIN_CENTER_NORM, 1 − BALL_EPS]`.
pub const MIN_CENTER_NORM: f64 = 1e-3;

/// The enclosing Euclidean d-ball `B(o, r)` of a Poincaré hyperplane.
#[derive(Debug, Clone, PartialEq)]
pub struct Ball<S: Scalar = f64> {
    /// Euclidean center `o_c` (lies outside the unit ball).
    pub center: Vec<S>,
    /// Euclidean radius `r_c`.
    pub radius: S,
}

/// [`Ball::from_center`] writing the ball center into a caller buffer
/// (`c.len()` long, fully overwritten) and returning the radius.
pub fn from_center_into<S: Scalar>(c: &[S], center: &mut [S]) -> S {
    debug_assert_eq!(center.len(), c.len());
    let two = S::from_f64(2.0);
    let s2 = ops::norm_sq(c)
        .clamp(S::from_f64(MIN_CENTER_NORM * MIN_CENTER_NORM), S::from_f64(1.0 - BALL_EPS));
    let s = s2.sqrt();
    let k = (S::ONE + s2) / (two * s2);
    for (o, ci) in center.iter_mut().zip(c) {
        *o = k * *ci;
    }
    (S::ONE - s2) / (two * s)
}

impl<S: Scalar> Ball<S> {
    /// Derives the enclosing ball from the hyperplane's defining point `c`.
    ///
    /// `c` must be nonzero and inside the unit ball; callers uphold this via
    /// [`clamp_center`].
    ///
    /// ```
    /// use logirec_hyperbolic::Ball;
    /// let b = Ball::from_center(&[0.5, 0.0]);
    /// // The carrier sphere is orthogonal to the unit sphere: ‖o‖² = 1 + r².
    /// let o2: f64 = b.center.iter().map(|x| x * x).sum();
    /// assert!((o2 - (1.0 + b.radius * b.radius)).abs() < 1e-9);
    /// ```
    pub fn from_center(c: &[S]) -> Self {
        let mut center = vec![S::ZERO; c.len()];
        let radius = from_center_into(c, &mut center);
        Self { center, radius }
    }

    /// Lemma 1 (membership): point `v` lies inside this ball.
    pub fn contains_point(&self, v: &[S]) -> bool {
        ops::dist(v, &self.center) < self.radius
    }

    /// Lemma 2 (hierarchy): this ball geometrically contains `other`
    /// (`‖o_i − o_j‖ + r_j < r_i` with `self = i`).
    pub fn contains_ball(&self, other: &Ball<S>) -> bool {
        ops::dist(&self.center, &other.center) + other.radius < self.radius
    }

    /// Lemma 3 (exclusion): this ball is disjoint from `other`
    /// (`r_i + r_j < ‖o_i − o_j‖`).
    pub fn disjoint_from(&self, other: &Ball<S>) -> bool {
        self.radius + other.radius < ops::dist(&self.center, &other.center)
    }

    /// Margin of Lemma 1: `‖v − o‖ − r` (negative inside, positive outside).
    /// `max(0, ·)` of this is the membership loss L_Mem (Eq. 3).
    pub fn membership_margin(&self, v: &[S]) -> S {
        ops::dist(v, &self.center) - self.radius
    }

    /// Margin of Lemma 2 for `self ⊃ other`: `‖o_i − o_j‖ + r_j − r_i`.
    /// `max(0, ·)` of this is the hierarchy loss L_Hie (Eq. 4).
    pub fn hierarchy_margin(&self, other: &Ball<S>) -> S {
        ops::dist(&self.center, &other.center) + other.radius - self.radius
    }

    /// Margin of Lemma 3: `r_i + r_j − ‖o_i − o_j‖`.
    /// `max(0, ·)` of this is the exclusion loss L_Ex (Eq. 5).
    pub fn exclusion_margin(&self, other: &Ball<S>) -> S {
        self.radius + other.radius - ops::dist(&self.center, &other.center)
    }
}

/// Clamps a hyperplane defining point in place so `‖c‖ ∈
/// [MIN_CENTER_NORM, 1 − BALL_EPS]`. Applied after every optimizer step on a
/// tag embedding.
pub fn clamp_center<S: Scalar>(c: &mut [S]) {
    let n = ops::norm(c);
    let min_center = S::from_f64(MIN_CENTER_NORM);
    if n < min_center {
        if n < S::from_f64(MIN_NORM) {
            // Degenerate zero vector: nudge deterministically along e₀.
            c[0] = min_center;
            for v in &mut c[1..] {
                *v = S::ZERO;
            }
        } else {
            ops::scale(c, min_center / n);
        }
    } else if n > S::from_f64(1.0 - BALL_EPS) {
        ops::scale(c, S::from_f64(1.0 - BALL_EPS) / n);
    }
}

/// [`ball_vjp`] writing into a caller buffer (`c.len()` long; every element
/// is overwritten, so the buffer need not be zeroed).
pub fn ball_vjp_into<S: Scalar>(c: &[S], g_o: &[S], g_r: S, out: &mut [S]) {
    debug_assert_eq!(out.len(), c.len());
    let two = S::from_f64(2.0);
    let s2 = ops::norm_sq(c)
        .clamp(S::from_f64(MIN_CENTER_NORM * MIN_CENTER_NORM), S::from_f64(1.0 - BALL_EPS));
    let s = s2.sqrt();
    let g = (S::ONE + s2) / (two * s2);
    let cdotgo = ops::dot(c, g_o);
    for (o, gi) in out.iter_mut().zip(g_o) {
        *o = g * *gi;
    }
    // Center term: −(c·g_o)/s⁴ · c.
    let mut coeff = -cdotgo / (s2 * s2);
    // Radius term: g_r · dr/ds · c/s = g_r · (−(1+s²)/(2s²)) · c/s.
    coeff += g_r * (-(S::ONE + s2) / (two * s2)) / s;
    ops::axpy(coeff, c, out);
}

/// VJP of the `c ↦ (o_c, r_c)` derivation: given gradients `g_o ∈ R^d`
/// w.r.t. the ball center and `g_r` w.r.t. the radius, returns the gradient
/// w.r.t. the defining point `c`.
///
/// With `s² = ‖c‖²`, `g(s²) = (1+s²)/(2s²)` and `r(s) = (1−s²)/(2s)`:
/// `∂o_i/∂c_j = g δ_ij − c_i c_j / s⁴` and `dr/ds = −(1+s²)/(2s²)`.
pub fn ball_vjp<S: Scalar>(c: &[S], g_o: &[S], g_r: S) -> Vec<S> {
    let mut out = vec![S::ZERO; c.len()];
    ball_vjp_into(c, g_o, g_r, &mut out);
    out
}

/// The shortest Poincaré distance from the hyperplane defined by `c` to the
/// origin — `d_P(0, c)` since `c` is the hyperplane's closest point. Small
/// for coarse-grained (abstract) tags, large for fine-grained tags
/// (Section V-B's granularity argument).
pub fn hyperplane_distance_to_origin<S: Scalar>(c: &[S]) -> S {
    crate::poincare::distance_to_origin(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn enclosing_ball_is_orthogonal() {
        // ‖o_c‖² = 1 + r_c² ⇔ the sphere meets the unit sphere at right
        // angles — the defining property of a Poincaré hyperplane carrier.
        for c in [[0.5f64, 0.0], [0.1, 0.2], [0.0, -0.9], [0.6, 0.6]] {
            let b = Ball::from_center(&c);
            assert_close(ops::norm_sq(&b.center), 1.0 + b.radius * b.radius, 1e-9);
        }
    }

    #[test]
    fn defining_point_lies_on_the_boundary_sphere() {
        // c is the closest point of the hyperplane to the origin, so it lies
        // on the carrier sphere: ‖c − o_c‖ = r_c.
        let c = [0.3, -0.4];
        let b = Ball::from_center(&c);
        assert_close(ops::dist(&c, &b.center), b.radius, 1e-12);
    }

    #[test]
    fn radius_grows_as_center_approaches_origin() {
        let coarse = Ball::from_center(&[0.1, 0.0]);
        let fine = Ball::from_center(&[0.8, 0.0]);
        assert!(coarse.radius > fine.radius, "abstract tags get bigger regions");
        assert!(
            hyperplane_distance_to_origin(&[0.1, 0.0])
                < hyperplane_distance_to_origin(&[0.8, 0.0])
        );
    }

    #[test]
    fn membership_predicate_and_margin_agree() {
        let b = Ball::from_center(&[0.5, 0.0]);
        // A point between c and the boundary along +x is inside the ball.
        let inside = [0.7, 0.0];
        let outside = [-0.5, 0.0];
        assert!(b.contains_point(&inside));
        assert!(b.membership_margin(&inside) < 0.0);
        assert!(!b.contains_point(&outside));
        assert!(b.membership_margin(&outside) > 0.0);
    }

    #[test]
    fn hierarchy_predicate_matches_nested_construction() {
        // A hyperplane closer to the boundary along the same ray gives a
        // smaller ball nested inside the coarser one.
        let parent = Ball::from_center(&[0.3, 0.0]);
        let child = Ball::from_center(&[0.6, 0.0]);
        assert!(parent.contains_ball(&child));
        assert!(parent.hierarchy_margin(&child) < 0.0);
        assert!(!child.contains_ball(&parent));
        assert!(child.hierarchy_margin(&parent) > 0.0);
    }

    #[test]
    fn exclusion_predicate_matches_opposite_construction() {
        // Hyperplanes on opposite sides of the ball are disjoint.
        let a = Ball::from_center(&[0.7, 0.0]);
        let b = Ball::from_center(&[-0.7, 0.0]);
        assert!(a.disjoint_from(&b));
        assert!(a.exclusion_margin(&b) < 0.0);
        // A ball is never disjoint from itself.
        assert!(!a.disjoint_from(&a.clone()));
        assert!(a.exclusion_margin(&a.clone()) > 0.0);
    }

    #[test]
    fn clamp_center_enforces_both_bounds() {
        let mut tiny = vec![1e-8, 0.0];
        clamp_center(&mut tiny);
        assert_close(ops::norm(&tiny), MIN_CENTER_NORM, 1e-9);

        let mut zero = vec![0.0, 0.0];
        clamp_center(&mut zero);
        assert_close(ops::norm(&zero), MIN_CENTER_NORM, 1e-12);

        let mut big = vec![3.0, 4.0];
        clamp_center(&mut big);
        assert_close(ops::norm(&big), 1.0 - BALL_EPS, 1e-12);

        let mut fine = vec![0.5, 0.5];
        let before = fine.clone();
        clamp_center(&mut fine);
        assert_eq!(fine, before, "in-range centers are untouched");
    }

    #[test]
    fn ball_vjp_matches_finite_differences() {
        let c = [0.42, -0.31, 0.2];
        let g_o = [1.3, -0.7, 0.25];
        let g_r = -0.9;
        // f(c) = g_o · o_c + g_r · r_c
        let f = |c: &[f64]| {
            let b = Ball::from_center(c);
            ops::dot(&b.center, &g_o) + g_r * b.radius
        };
        let grad = ball_vjp(&c, &g_o, g_r);
        let h = 1e-7;
        for i in 0..3 {
            let mut cp = c.to_vec();
            let mut cm = c.to_vec();
            cp[i] += h;
            cm[i] -= h;
            let num = (f(&cp) - f(&cm)) / (2.0 * h);
            assert_close(grad[i], num, 1e-5);
        }
    }

    #[test]
    fn into_kernels_match_allocating_wrappers_bitwise() {
        let c = [0.42, -0.31, 0.2];
        let g_o = [1.3, -0.7, 0.25];
        let b = Ball::from_center(&c);
        let mut center = [0.0; 3];
        let radius = from_center_into(&c, &mut center);
        assert_eq!(b.center, center);
        assert_eq!(b.radius, radius);
        let mut out = [0.0; 3];
        ball_vjp_into(&c, &g_o, -0.9, &mut out);
        assert_eq!(ball_vjp(&c, &g_o, -0.9), out);
    }
}
