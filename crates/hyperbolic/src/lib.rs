#![warn(missing_docs)]

//! Hyperbolic geometry substrate for LogiRec.
//!
//! The paper exploits the individual strengths of two models of hyperbolic
//! space (Section III of the paper):
//!
//! * the **Poincaré ball** `P^d = { x ∈ R^d : ‖x‖ < 1 }`, whose hyperplanes
//!   induce convex regions used to model set-theoretic logical relations
//!   (membership / hierarchy / exclusion, Lemmas 1–3), and
//! * the **Lorentz (hyperboloid) model** `H^d ⊂ R^{d+1}`, whose closed-form
//!   geodesics make Riemannian optimization stable (Eq. 6–9, 16, 18).
//!
//! The two are connected by the diffeomorphisms `p` / `p⁻¹` (Eq. 1–2),
//! implemented in [`maps`].
//!
//! Every differentiable operation used in a training loss exposes an analytic
//! **vector–Jacobian product** (`*_vjp`), the exact quantity reverse-mode
//! autodiff would produce. The crate's property tests validate each VJP
//! against central finite differences, so the model crates can chain them
//! with confidence.

pub mod extra;
pub mod hyperplane;
pub mod lorentz;
pub mod maps;
pub mod poincare;
pub mod rsgd;

pub use hyperplane::Ball;

/// Margin that keeps Poincaré coordinates strictly inside the unit ball.
///
/// The conformal factor `2/(1 − ‖x‖²)` and the distance formula blow up at
/// the boundary; every projection in this crate clips norms to
/// `1 − BALL_EPS`.
pub const BALL_EPS: f64 = 1e-5;

/// Norm threshold below which direction-dependent formulas switch to their
/// Taylor limits (e.g. `sinh(n)/n → 1`).
pub const MIN_NORM: f64 = 1e-9;
