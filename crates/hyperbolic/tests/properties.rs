//! Property-based tests for the hyperbolic geometry substrate.
//!
//! These check the metric axioms, manifold invariants, inverse-map
//! relationships, and — crucially — that every analytic VJP matches central
//! finite differences on random inputs. The finite-difference checks are
//! what let the model crates chain these kernels without an autodiff engine.

use logirec_hyperbolic::{hyperplane, lorentz, maps, poincare, rsgd, Ball};
use logirec_linalg::ops;
use proptest::prelude::*;

const DIM: usize = 4;

/// Random point comfortably inside the Poincaré ball.
fn ball_point() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-0.35f64..0.35, DIM)
}

/// Random tangent coordinates for Lorentz points.
fn tangent() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.5f64..1.5, DIM)
}

/// Random hyperplane center with norm in a safe range.
fn center() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-0.5f64..0.5, DIM).prop_filter("norm in (0.05, 0.87)", |c| {
        let n = ops::norm(c);
        (0.05..0.87).contains(&n)
    })
}

fn fd_grad(f: impl Fn(&[f64]) -> f64, x: &[f64], h: f64) -> Vec<f64> {
    (0..x.len())
        .map(|i| {
            let mut xp = x.to_vec();
            let mut xm = x.to_vec();
            xp[i] += h;
            xm[i] -= h;
            (f(&xp) - f(&xm)) / (2.0 * h)
        })
        .collect()
}

fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn poincare_metric_axioms(x in ball_point(), y in ball_point(), z in ball_point()) {
        let dxy = poincare::distance(&x, &y);
        let dyx = poincare::distance(&y, &x);
        prop_assert!((dxy - dyx).abs() < 1e-10, "symmetry");
        prop_assert!(dxy >= 0.0, "non-negativity");
        prop_assert!(poincare::distance(&x, &x) < 1e-9, "identity");
        let dxz = poincare::distance(&x, &z);
        let dzy = poincare::distance(&z, &y);
        prop_assert!(dxy <= dxz + dzy + 1e-9, "triangle inequality");
    }

    #[test]
    fn lorentz_metric_axioms(za in tangent(), zb in tangent(), zc in tangent()) {
        let a = lorentz::exp_origin(&za);
        let b = lorentz::exp_origin(&zb);
        let c = lorentz::exp_origin(&zc);
        prop_assert!(lorentz::on_manifold(&a, 1e-9));
        let dab = lorentz::distance(&a, &b);
        prop_assert!((dab - lorentz::distance(&b, &a)).abs() < 1e-10);
        prop_assert!(lorentz::distance(&a, &a) < 1e-6);
        prop_assert!(dab <= lorentz::distance(&a, &c) + lorentz::distance(&c, &b) + 1e-8);
    }

    #[test]
    fn diffeomorphisms_invert_and_preserve_distance(x in ball_point(), y in ball_point()) {
        let lx = maps::poincare_to_lorentz(&x);
        let ly = maps::poincare_to_lorentz(&y);
        prop_assert!(lorentz::on_manifold(&lx, 1e-9));
        // Isometry.
        let dp = poincare::distance(&x, &y);
        let dh = lorentz::distance(&lx, &ly);
        prop_assert!((dp - dh).abs() < 1e-8, "isometry: {dp} vs {dh}");
        // Round trip.
        let back = maps::lorentz_to_poincare(&lx);
        prop_assert!(close(&back, &x, 1e-9));
    }

    #[test]
    fn lorentz_exp_log_inverse(z in tangent()) {
        let u = lorentz::exp_origin(&z);
        let back = lorentz::log_origin(&u);
        prop_assert!(close(&back, &z, 1e-7));
        // And geodesic unit speed: d(o, exp_o(z)) = ‖z‖.
        let d = lorentz::distance_to_origin(&u);
        prop_assert!((d - ops::norm(&z)).abs() < 1e-8);
    }

    #[test]
    fn poincare_distance_vjp_is_correct(x in ball_point(), y in ball_point()) {
        // Avoid the non-differentiable diagonal.
        prop_assume!(ops::dist(&x, &y) > 1e-3);
        let (gx, gy) = poincare::distance_vjp(&x, &y, 1.0);
        let fx = fd_grad(|x| poincare::distance(x, &y), &x, 1e-6);
        let fy = fd_grad(|y| poincare::distance(&x, y), &y, 1e-6);
        prop_assert!(close(&gx, &fx, 1e-4), "{gx:?} vs {fx:?}");
        prop_assert!(close(&gy, &fy, 1e-4), "{gy:?} vs {fy:?}");
    }

    #[test]
    fn lorentz_chain_vjp_is_correct(za in tangent(), zb in tangent()) {
        prop_assume!(ops::dist(&za, &zb) > 1e-3);
        let y = lorentz::exp_origin(&zb);
        let f = |z: &[f64]| lorentz::distance(&lorentz::exp_origin(z), &y);
        let x = lorentz::exp_origin(&za);
        let (gx, _) = lorentz::distance_vjp(&x, &y, 1.0);
        let gz = lorentz::exp_origin_vjp(&za, &gx);
        let fd = fd_grad(f, &za, 1e-6);
        prop_assert!(close(&gz, &fd, 1e-4), "{gz:?} vs {fd:?}");
    }

    #[test]
    fn log_origin_vjp_chain_is_identity(z in tangent(), w in tangent()) {
        prop_assume!(ops::norm(&z) > 1e-3);
        // log_o(exp_o(z)) = z ⇒ chained VJP of w must return w.
        let u = lorentz::exp_origin(&z);
        let g_ambient = lorentz::log_origin_vjp(&u, &w);
        let g = lorentz::exp_origin_vjp(&z, &g_ambient);
        prop_assert!(close(&g, &w, 1e-6), "{g:?} vs {w:?}");
    }

    #[test]
    fn p_inv_vjp_is_correct(x in ball_point(), w in tangent()) {
        let mut g = vec![0.5; DIM + 1];
        g[1..].copy_from_slice(&w);
        let f = |x: &[f64]| ops::dot(&maps::poincare_to_lorentz(x), &g);
        let grad = maps::poincare_to_lorentz_vjp(&x, &g);
        let fd = fd_grad(f, &x, 1e-7);
        prop_assert!(close(&grad, &fd, 1e-4), "{grad:?} vs {fd:?}");
    }

    #[test]
    fn ball_vjp_is_correct(c in center(), g_o in tangent(), g_r in -1.0f64..1.0) {
        let f = |c: &[f64]| {
            let b = Ball::from_center(c);
            ops::dot(&b.center, &g_o) + g_r * b.radius
        };
        let grad = hyperplane::ball_vjp(&c, &g_o, g_r);
        let fd = fd_grad(f, &c, 1e-7);
        prop_assert!(close(&grad, &fd, 1e-4), "{grad:?} vs {fd:?}");
    }

    #[test]
    fn enclosing_ball_orthogonality(c in center()) {
        let b = Ball::from_center(&c);
        let lhs = ops::norm_sq(&b.center);
        let rhs = 1.0 + b.radius * b.radius;
        prop_assert!((lhs - rhs).abs() < 1e-8, "‖o‖² = 1 + r²: {lhs} vs {rhs}");
        // The defining point sits on the carrier sphere.
        prop_assert!((ops::dist(&c, &b.center) - b.radius).abs() < 1e-8);
    }

    #[test]
    fn mobius_add_stays_in_ball(x in ball_point(), y in ball_point()) {
        let z = poincare::mobius_add(&x, &y);
        prop_assert!(ops::norm(&z) < 1.0);
    }

    #[test]
    fn poincare_exp_log_origin_inverse(v in prop::collection::vec(-2.0f64..2.0, DIM)) {
        let x = poincare::exp_map_origin(&v);
        prop_assert!(poincare::in_ball(&x));
        let back = poincare::log_map_origin(&x);
        prop_assert!(close(&back, &v, 1e-6));
    }

    #[test]
    fn poincare_step_survives_hostile_gradients(
        x0 in prop::collection::vec(-5.0f64..5.0, DIM),
        g in prop::collection::vec(-1e300f64..1e300, DIM),
        lr in 1e-4f64..10.0,
    ) {
        // Any in-ball starting point (including right at the clipped
        // boundary) stepped with an arbitrarily huge gradient must land
        // strictly inside the ball with finite coordinates.
        let mut x = x0;
        poincare::project(&mut x);
        rsgd::poincare_step(&mut x, &g, lr);
        prop_assert!(ops::all_finite(&x), "{x:?}");
        prop_assert!(poincare::in_ball(&x), "‖x‖ = {}", ops::norm(&x));
    }

    #[test]
    fn lorentz_step_survives_hostile_gradients(
        z in tangent(),
        g in prop::collection::vec(-1e300f64..1e300, DIM + 1),
        lr in 1e-4f64..10.0,
    ) {
        let mut x = lorentz::exp_origin(&z);
        rsgd::lorentz_step(&mut x, &g, lr);
        prop_assert!(ops::all_finite(&x), "{x:?}");
        // The sheet constraint ⟨x,x⟩_L = −1 is subject to catastrophic
        // cancellation when the step legitimately lands far from the
        // origin, so the tolerance scales with the coordinate magnitude.
        let tol = 1e-6 * ops::norm_sq(&x).max(1.0);
        prop_assert!(lorentz::on_manifold(&x, tol), "{x:?}");
    }

    #[test]
    fn hyperplane_step_survives_hostile_gradients(
        c0 in prop::collection::vec(-5.0f64..5.0, DIM),
        g in prop::collection::vec(-1e300f64..1e300, DIM),
        lr in 1e-4f64..10.0,
    ) {
        let mut c = c0;
        hyperplane::clamp_center(&mut c);
        rsgd::hyperplane_step(&mut c, &g, lr);
        prop_assert!(ops::all_finite(&c), "{c:?}");
        let n = ops::norm(&c);
        prop_assert!((hyperplane::MIN_CENTER_NORM - 1e-12..1.0).contains(&n), "norm {n}");
    }

    #[test]
    fn rsgd_steps_preserve_manifolds(z in tangent(), g in tangent(), lr in 0.001f64..0.5) {
        // Lorentz step.
        let mut x = lorentz::exp_origin(&z);
        let mut ga = vec![0.3; DIM + 1];
        ga[1..].copy_from_slice(&g);
        rsgd::lorentz_step(&mut x, &ga, lr);
        prop_assert!(lorentz::on_manifold(&x, 1e-8), "{x:?}");
        // Poincaré step.
        let mut p = ops::scaled(&z, 0.2);
        poincare::project(&mut p);
        rsgd::poincare_step(&mut p, &g, lr);
        prop_assert!(poincare::in_ball(&p));
        // Hyperplane step keeps the center valid.
        let mut c = ops::scaled(&z, 0.2);
        hyperplane::clamp_center(&mut c);
        rsgd::hyperplane_step(&mut c, &g, lr);
        let n = ops::norm(&c);
        prop_assert!((hyperplane::MIN_CENTER_NORM - 1e-12..1.0).contains(&n));
    }
}

/// Deterministic non-finite-gradient cases (NaN, ±Inf, and a mix): every
/// step must leave the parameter finite and on its manifold.
#[test]
fn rsgd_steps_absorb_non_finite_gradients() {
    type Poison = fn(&mut [f64]);
    let patterns: [Poison; 4] = [
        |g| g[0] = f64::NAN,
        |g| g[1] = f64::INFINITY,
        |g| g[2] = f64::NEG_INFINITY,
        |g| {
            g[0] = f64::NAN;
            g[3] = f64::INFINITY;
        },
    ];
    for (i, poison) in patterns.iter().enumerate() {
        let mut g = vec![0.25; DIM];
        poison(&mut g);

        let mut p = vec![0.1, -0.2, 0.05, 0.15];
        rsgd::poincare_step(&mut p, &g, 0.1);
        assert!(ops::all_finite(&p) && poincare::in_ball(&p), "case {i}: {p:?}");

        let mut c = vec![0.3, 0.1, -0.2, 0.05];
        hyperplane::clamp_center(&mut c);
        rsgd::hyperplane_step(&mut c, &g, 0.1);
        let n = ops::norm(&c);
        assert!(
            ops::all_finite(&c) && (hyperplane::MIN_CENTER_NORM - 1e-12..1.0).contains(&n),
            "case {i}: norm {n}"
        );

        let mut gl = vec![0.25; DIM + 1];
        poison(&mut gl);
        let mut x = lorentz::exp_origin(&[0.4, -0.6, 0.2, 0.1]);
        rsgd::lorentz_step(&mut x, &gl, 0.1);
        assert!(
            ops::all_finite(&x) && lorentz::on_manifold(&x, 1e-9),
            "case {i}: {x:?}"
        );

        let mut e = vec![1.0, 2.0, 3.0, 4.0];
        let before = e.clone();
        rsgd::euclidean_step(&mut e, &g, 0.1);
        assert_eq!(e, before, "case {i}: euclidean step must drop the gradient");
    }
}
