//! Property-based and behavioral tests across the baseline suite.

use logirec_baselines::common::{bpr_loss_grad, sigmoid, sym_propagate};
use logirec_baselines::{train_method, BaselineConfig, Method};
use logirec_data::{DatasetSpec, InteractionSet, Scale};
use logirec_eval::Ranker;
use logirec_linalg::{ops, Embedding, SplitMix64};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bpr_loss_is_positive_decreasing_convex(x in -10.0f64..10.0) {
        let (loss, grad) = bpr_loss_grad(x);
        prop_assert!(loss > 0.0, "softplus is strictly positive");
        prop_assert!(grad < 0.0, "loss decreases in the score gap");
        // Convexity: gradient is increasing.
        let (_, g2) = bpr_loss_grad(x + 0.1);
        prop_assert!(g2 >= grad);
    }

    #[test]
    fn sigmoid_bounds_and_monotonicity(a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let (sa, sb) = (sigmoid(a), sigmoid(b));
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb);
        }
    }

    #[test]
    fn sym_propagate_preserves_constant_vectors(
        pairs in prop::collection::vec((0usize..6, 0usize..8), 1..40),
        layers in 1usize..4,
    ) {
        // Rows of the symmetric propagation matrix do not generally sum to
        // one, but an all-zero input must map to all-zero output and the
        // map must be homogeneous.
        let adj = InteractionSet::from_pairs(6, 8, &pairs);
        let zeros_u = Embedding::zeros(6, 3);
        let zeros_v = Embedding::zeros(8, 3);
        let (fu, fv) = sym_propagate(&adj, &zeros_u, &zeros_v, layers);
        prop_assert!(fu.as_slice().iter().all(|&x| x == 0.0));
        prop_assert!(fv.as_slice().iter().all(|&x| x == 0.0));

        let mut rng = SplitMix64::new(7);
        let zu = Embedding::normal(6, 3, 1.0, &mut rng);
        let zv = Embedding::normal(8, 3, 1.0, &mut rng);
        let (a_u, _) = sym_propagate(&adj, &zu, &zv, layers);
        let mut zu2 = zu.clone();
        let mut zv2 = zv.clone();
        ops::scale(zu2.as_mut_slice(), 2.0);
        ops::scale(zv2.as_mut_slice(), 2.0);
        let (b_u, _) = sym_propagate(&adj, &zu2, &zv2, layers);
        for (x, y) in a_u.as_slice().iter().zip(b_u.as_slice()) {
            prop_assert!((2.0 * x - y).abs() < 1e-9, "homogeneity");
        }
    }
}

/// Scores must be permutation-consistent: relabeling users must not change
/// a given user's ranking (checked for a fast representative per group).
#[test]
fn baseline_scores_are_user_local() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(61);
    let cfg = BaselineConfig { dim: 8, epochs: 2, layers: 2, ..BaselineConfig::default() };
    for method in [Method::Bprmf, Method::Cml, Method::HyperMl, Method::LightGcn] {
        let model = train_method(method, &cfg, &ds);
        let mut s1 = vec![0.0; ds.n_items()];
        let mut s2 = vec![0.0; ds.n_items()];
        model.score_user(2, &mut s1);
        model.score_user(5, &mut s2); // interleave queries
        let mut s1b = vec![0.0; ds.n_items()];
        model.score_user(2, &mut s1b);
        assert_eq!(s1, s1b, "{}: scoring must be stateless", method.label());
    }
}

/// The hyperbolic baselines must keep their invariant manifolds.
#[test]
fn hyperbolic_baselines_respect_manifolds() {
    use logirec_baselines::hyper::{train_hgcf, train_hyperml};
    use logirec_hyperbolic::{lorentz, poincare};
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(62);
    let cfg = BaselineConfig { dim: 8, epochs: 3, layers: 2, ..BaselineConfig::default() };
    let hm = train_hyperml(&cfg, &ds);
    for v in 0..ds.n_items() {
        assert!(poincare::in_ball(hm.items.row(v)));
    }
    let hg = train_hgcf(&cfg, &ds, true);
    for u in 0..ds.n_users() {
        assert!(lorentz::on_manifold(hg.users.row(u), 1e-6));
    }
}
