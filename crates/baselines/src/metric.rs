//! Euclidean metric-learning baselines: CML (Hsieh et al. 2017), SML
//! (Li et al. 2020, symmetric adaptive margins), and CMLF (CML fused with
//! tag features).

use logirec_data::{BatchIter, Dataset, NegativeSampler};
use logirec_linalg::{ops, Embedding, SplitMix64};

use crate::common::{BaselineConfig, DistScorer};

/// Trains CML: the hinge `[m + d²(u,i) − d²(u,j)]₊` over triplets, with all
/// embeddings clipped into the unit ball after each step.
pub fn train_cml(cfg: &BaselineConfig, ds: &Dataset) -> DistScorer {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut users = Embedding::normal(ds.n_users(), cfg.dim, 0.1, &mut rng.fork(1));
    let mut items = Embedding::normal(ds.n_items(), cfg.dim, 0.1, &mut rng.fork(2));
    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            for (u, i) in batch {
                let j = sampler.sample(u);
                cml_step(&mut users, &mut items, u, i, j, cfg.margin, cfg.lr);
            }
        }
    }
    DistScorer { users, items }
}

/// One CML triplet step; clips the touched rows to the unit ball.
fn cml_step(
    users: &mut Embedding,
    items: &mut Embedding,
    u: usize,
    i: usize,
    j: usize,
    margin: f64,
    lr: f64,
) {
    if i == j {
        return;
    }
    let d_pos = ops::dist_sq(users.row(u), items.row(i));
    let d_neg = ops::dist_sq(users.row(u), items.row(j));
    if margin + d_pos - d_neg <= 0.0 {
        return;
    }
    // ∇_u = 2(u−i) − 2(u−j) = 2(j−i); ∇_i = −2(u−i); ∇_j = 2(u−j).
    let (qi, qj) = items.rows_mut2(i, j);
    let pu = users.row_mut(u);
    for k in 0..pu.len() {
        let gu = 2.0 * (qj[k] - qi[k]);
        let gi = 2.0 * (qi[k] - pu[k]);
        let gj = 2.0 * (pu[k] - qj[k]);
        pu[k] -= lr * gu;
        qi[k] -= lr * gi;
        qj[k] -= lr * gj;
    }
    ops::clip_norm(pu, 1.0);
    ops::clip_norm(qi, 1.0);
    ops::clip_norm(qj, 1.0);
}

/// Trains SML: symmetric metric learning with learnable per-user and
/// per-item margins. The loss adds an item-centric hinge
/// `[d²(u,i) − d²(i,j) + m_i]₊` to CML's user-centric one, and margins are
/// driven upward by a `−γ·m` regularizer while hinge activations push back.
pub fn train_sml(cfg: &BaselineConfig, ds: &Dataset) -> DistScorer {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut users = Embedding::normal(ds.n_users(), cfg.dim, 0.1, &mut rng.fork(1));
    let mut items = Embedding::normal(ds.n_items(), cfg.dim, 0.1, &mut rng.fork(2));
    let mut m_user = vec![cfg.margin; ds.n_users()];
    let mut m_item = vec![cfg.margin; ds.n_items()];
    let gamma = 0.1; // margin-growth pressure
    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            for (u, i) in batch {
                let j = sampler.sample(u);
                if i == j {
                    continue;
                }
                // User-centric hinge with adaptive margin m_user[u].
                let d_pos = ops::dist_sq(users.row(u), items.row(i));
                let d_neg = ops::dist_sq(users.row(u), items.row(j));
                let mut g_mu = -gamma;
                if m_user[u] + d_pos - d_neg > 0.0 {
                    g_mu += 1.0;
                    cml_step(&mut users, &mut items, u, i, j, f64::INFINITY, cfg.lr);
                }
                m_user[u] = (m_user[u] - cfg.lr * g_mu).clamp(0.01, 1.0);

                // Item-centric hinge: the positive item should be closer to
                // the user than to the negative item, with margin m_item[i].
                let d_ij = ops::dist_sq(items.row(i), items.row(j));
                let mut g_mi = -gamma;
                if m_item[i] + d_pos - d_ij > 0.0 {
                    g_mi += 1.0;
                    // ∇_i = 2(u−i)·(−1) − 2(i−j) ⇒ step below.
                    let w = cfg.lr * cfg.aux_weight;
                    let (qi, qj) = items.rows_mut2(i, j);
                    let pu = users.row_mut(u);
                    for k in 0..pu.len() {
                        let gi = 2.0 * (qi[k] - pu[k]) - 2.0 * (qi[k] - qj[k]);
                        let gj = 2.0 * (qi[k] - qj[k]);
                        let gu = 2.0 * (pu[k] - qi[k]);
                        qi[k] -= w * gi;
                        qj[k] -= w * gj;
                        pu[k] -= w * gu;
                    }
                    ops::clip_norm(qi, 1.0);
                    ops::clip_norm(qj, 1.0);
                    ops::clip_norm(pu, 1.0);
                }
                m_item[i] = (m_item[i] - cfg.lr * g_mi).clamp(0.01, 1.0);
            }
        }
    }
    DistScorer { users, items }
}

/// The trained CMLF model: CML whose effective item position is the free
/// item vector plus the mean of its tag vectors, so items sharing tags
/// share structure.
#[derive(Debug, Clone)]
pub struct Cmlf {
    users: Embedding,
    /// Composed item positions (free + mean tag), precomputed for scoring.
    item_positions: Embedding,
}

impl logirec_eval::Ranker for Cmlf {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        let p = self.users.row(u);
        for (v, o) in out.iter_mut().enumerate() {
            *o = -ops::dist(p, self.item_positions.row(v));
        }
    }
}

/// Trains CMLF.
pub fn train_cmlf(cfg: &BaselineConfig, ds: &Dataset) -> Cmlf {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut users = Embedding::normal(ds.n_users(), cfg.dim, 0.1, &mut rng.fork(1));
    let mut items = Embedding::normal(ds.n_items(), cfg.dim, 0.1, &mut rng.fork(2));
    let mut tags = Embedding::normal(ds.n_tags(), cfg.dim, 0.1, &mut rng.fork(3));

    let compose = |items: &Embedding, tags: &Embedding, v: usize| -> Vec<f64> {
        let mut pos = items.row(v).to_vec();
        let vt = &ds.item_tags[v];
        if !vt.is_empty() {
            let w = 1.0 / vt.len() as f64;
            for &t in vt {
                ops::axpy(w, tags.row(t), &mut pos);
            }
        }
        pos
    };

    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            for (u, i) in batch {
                let j = sampler.sample(u);
                if i == j {
                    continue;
                }
                let xi = compose(&items, &tags, i);
                let xj = compose(&items, &tags, j);
                let d_pos = ops::dist_sq(users.row(u), &xi);
                let d_neg = ops::dist_sq(users.row(u), &xj);
                if cfg.margin + d_pos - d_neg <= 0.0 {
                    continue;
                }
                let pu = users.row_mut(u);
                let mut g_i = vec![0.0; cfg.dim];
                let mut g_j = vec![0.0; cfg.dim];
                for k in 0..cfg.dim {
                    let gu = 2.0 * (xj[k] - xi[k]);
                    g_i[k] = 2.0 * (xi[k] - pu[k]);
                    g_j[k] = 2.0 * (pu[k] - xj[k]);
                    pu[k] -= cfg.lr * gu;
                }
                ops::clip_norm(pu, 1.0);
                // Composed-position gradients split between the free item
                // vector (full) and each tag vector (scaled by 1/|tags|).
                for (v, g) in [(i, &g_i), (j, &g_j)] {
                    ops::axpy(-cfg.lr, g, items.row_mut(v));
                    ops::clip_norm(items.row_mut(v), 1.0);
                    let vt = &ds.item_tags[v];
                    if !vt.is_empty() {
                        let w = cfg.lr / vt.len() as f64;
                        for &t in vt {
                            ops::axpy(-w, g, tags.row_mut(t));
                            ops::clip_norm(tags.row_mut(t), 1.0);
                        }
                    }
                }
            }
        }
    }

    let mut item_positions = Embedding::zeros(ds.n_items(), cfg.dim);
    for v in 0..ds.n_items() {
        item_positions.row_mut(v).copy_from_slice(&compose(&items, &tags, v));
    }
    Cmlf { users, item_positions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::evaluate;

    #[test]
    fn cml_pulls_positive_closer_than_negative() {
        let mut rng = SplitMix64::new(1);
        let mut users = Embedding::normal(1, 4, 0.1, &mut rng);
        let mut items = Embedding::normal(2, 4, 0.1, &mut rng);
        for _ in 0..300 {
            cml_step(&mut users, &mut items, 0, 0, 1, 0.5, 0.05);
        }
        let dp = ops::dist(users.row(0), items.row(0));
        let dn = ops::dist(users.row(0), items.row(1));
        assert!(dp < dn, "positive {dp} should be closer than negative {dn}");
    }

    #[test]
    fn cml_embeddings_stay_in_unit_ball() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let m = train_cml(&BaselineConfig::test_config(), &ds);
        for u in 0..m.users.rows() {
            assert!(ops::norm(m.users.row(u)) <= 1.0 + 1e-9);
        }
        for v in 0..m.items.rows() {
            assert!(ops::norm(m.items.row(v)) <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn cml_learns_signal() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(2);
        let m = train_cml(&BaselineConfig::test_config(), &ds);
        let r = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0);
    }

    #[test]
    fn sml_trains_with_adaptive_margins() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
        let m = train_sml(&BaselineConfig::test_config(), &ds);
        assert!(m.users.all_finite() && m.items.all_finite());
        let r = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0);
    }

    #[test]
    fn cmlf_composes_tag_positions() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(4);
        let m = train_cmlf(&BaselineConfig::test_config(), &ds);
        assert!(m.users.all_finite() && m.item_positions.all_finite());
        let r = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0);
    }
}
