//! NeuMF (He et al. 2017): GMF + a one-hidden-layer MLP fused into a final
//! prediction layer, trained with binary cross-entropy on sampled
//! negatives. Backpropagation is hand-written.

use logirec_data::{BatchIter, Dataset, NegativeSampler};
use logirec_eval::Ranker;
use logirec_linalg::{Embedding, SplitMix64};

use crate::common::{sigmoid, BaselineConfig};

/// The trained NeuMF model.
#[derive(Debug, Clone)]
pub struct NeuMf {
    user_gmf: Embedding,
    item_gmf: Embedding,
    user_mlp: Embedding,
    item_mlp: Embedding,
    /// Hidden layer `W1 ∈ h × 2d`, `b1 ∈ h`.
    w1: Embedding,
    b1: Vec<f64>,
    /// Output weights: `h_gmf ∈ d` over the GMF product, `h_mlp ∈ h` over
    /// the hidden activation, plus a bias.
    h_gmf: Vec<f64>,
    h_mlp: Vec<f64>,
    bias: f64,
    hidden: usize,
}

impl NeuMf {
    fn forward(&self, u: usize, v: usize, act: &mut [f64]) -> f64 {
        let pg = self.user_gmf.row(u);
        let qg = self.item_gmf.row(v);
        let pm = self.user_mlp.row(u);
        let qm = self.item_mlp.row(v);
        let d = pg.len();
        let mut y = self.bias;
        for k in 0..d {
            y += self.h_gmf[k] * pg[k] * qg[k];
        }
        for (h, a_slot) in act.iter_mut().enumerate().take(self.hidden) {
            let w = self.w1.row(h);
            let mut z = self.b1[h];
            for k in 0..d {
                z += w[k] * pm[k] + w[d + k] * qm[k];
            }
            let a = z.max(0.0); // ReLU
            *a_slot = a;
            y += self.h_mlp[h] * a;
        }
        y
    }

    /// One SGD step on `(u, v, label)` with BCE loss; returns the loss.
    #[allow(clippy::too_many_arguments)]
    fn step(&mut self, u: usize, v: usize, label: f64, lr: f64, reg: f64, act: &mut [f64]) -> f64 {
        let logit = self.forward(u, v, act);
        let p = sigmoid(logit);
        let dy = p - label; // dL/dlogit for BCE
        let loss = if label > 0.5 { -(p.max(1e-12)).ln() } else { -((1.0 - p).max(1e-12)).ln() };

        let d = self.user_gmf.dim();
        // GMF branch.
        for k in 0..d {
            let pg = self.user_gmf.row(u)[k];
            let qg = self.item_gmf.row(v)[k];
            let h = self.h_gmf[k];
            self.h_gmf[k] -= lr * (dy * pg * qg + reg * h);
            self.user_gmf.row_mut(u)[k] -= lr * (dy * h * qg + reg * pg);
            self.item_gmf.row_mut(v)[k] -= lr * (dy * h * pg + reg * qg);
        }
        // MLP branch.
        let mut g_pm = vec![0.0; d];
        let mut g_qm = vec![0.0; d];
        #[allow(clippy::needless_range_loop)] // act/h_mlp/b1 indexed together
        for h in 0..self.hidden {
            let a = act[h];
            let g_h = dy * a;
            let da = if a > 0.0 { dy * self.h_mlp[h] } else { 0.0 };
            self.h_mlp[h] -= lr * (g_h + reg * self.h_mlp[h]);
            if da != 0.0 {
                let w = self.w1.row_mut(h);
                let pm = self.user_mlp.row(u);
                let qm = self.item_mlp.row(v);
                for k in 0..d {
                    g_pm[k] += da * w[k];
                    g_qm[k] += da * w[d + k];
                    w[k] -= lr * (da * pm[k] + reg * w[k]);
                    w[d + k] -= lr * (da * qm[k] + reg * w[d + k]);
                }
                self.b1[h] -= lr * da;
            }
        }
        let pm = self.user_mlp.row_mut(u);
        for k in 0..d {
            pm[k] -= lr * (g_pm[k] + reg * pm[k]);
        }
        let qm = self.item_mlp.row_mut(v);
        for k in 0..d {
            qm[k] -= lr * (g_qm[k] + reg * qm[k]);
        }
        self.bias -= lr * dy;
        loss
    }
}

impl Ranker for NeuMf {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        let mut act = vec![0.0; self.hidden];
        for (v, o) in out.iter_mut().enumerate() {
            *o = self.forward(u, v, &mut act);
        }
    }
}

/// Trains NeuMF with BCE over positives and `negatives` sampled negatives
/// per positive.
pub fn train_neumf(cfg: &BaselineConfig, ds: &Dataset) -> NeuMf {
    let mut rng = SplitMix64::new(cfg.seed);
    let d = cfg.dim;
    let hidden = d; // one hidden layer of width d
    let mut model = NeuMf {
        user_gmf: Embedding::normal(ds.n_users(), d, 0.1, &mut rng.fork(1)),
        item_gmf: Embedding::normal(ds.n_items(), d, 0.1, &mut rng.fork(2)),
        user_mlp: Embedding::normal(ds.n_users(), d, 0.1, &mut rng.fork(3)),
        item_mlp: Embedding::normal(ds.n_items(), d, 0.1, &mut rng.fork(4)),
        w1: Embedding::normal(hidden, 2 * d, (1.0 / (2.0 * d as f64)).sqrt(), &mut rng.fork(5)),
        b1: vec![0.0; hidden],
        h_gmf: vec![0.1; d],
        h_mlp: vec![0.1; hidden],
        bias: 0.0,
        hidden,
    };
    let mut act = vec![0.0; hidden];
    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            for (u, v) in batch {
                model.step(u, v, 1.0, cfg.lr, cfg.reg, &mut act);
                for _ in 0..cfg.negatives.max(1) {
                    let j = sampler.sample(u);
                    model.step(u, j, 0.0, cfg.lr, cfg.reg, &mut act);
                }
            }
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::evaluate;

    #[test]
    fn forward_is_deterministic() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let model = train_neumf(&BaselineConfig { epochs: 1, ..BaselineConfig::test_config() }, &ds);
        let mut a = vec![0.0; model.hidden];
        let mut b = vec![0.0; model.hidden];
        assert_eq!(model.forward(0, 0, &mut a), model.forward(0, 0, &mut b));
    }

    #[test]
    fn bce_step_pushes_probability_toward_label() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(2);
        let mut model =
            train_neumf(&BaselineConfig { epochs: 0, ..BaselineConfig::test_config() }, &ds);
        let mut act = vec![0.0; model.hidden];
        let before = sigmoid(model.forward(0, 0, &mut act));
        for _ in 0..200 {
            model.step(0, 0, 1.0, 0.05, 0.0, &mut act);
        }
        let after = sigmoid(model.forward(0, 0, &mut act));
        assert!(after > before && after > 0.9, "{before} → {after}");
    }

    #[test]
    fn neumf_learns_ranking_signal() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
        let model = train_neumf(&BaselineConfig::test_config(), &ds);
        let r = evaluate(&model, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0, "NeuMF recall {r}");
        assert!(model.user_gmf.all_finite() && model.w1.all_finite());
    }
}
