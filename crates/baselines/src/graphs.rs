//! Euclidean graph baselines: LightGCN (He et al. 2020) and AGCN (Wu et
//! al. 2020, adaptive GCN with joint attribute inference).

use logirec_data::{BatchIter, Dataset, NegativeSampler};
use logirec_linalg::{ops, Embedding, SplitMix64};

use crate::common::{bpr_loss_grad, sigmoid, sym_propagate, BaselineConfig, DotScorer};

/// Trains LightGCN: symmetric-normalized propagation over the interaction
/// graph, layer-mean combination, BPR loss on inner products of the final
/// embeddings. Returns a scorer over the propagated embeddings.
pub fn train_lightgcn(cfg: &BaselineConfig, ds: &Dataset) -> DotScorer {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut users = Embedding::normal(ds.n_users(), cfg.dim, 0.1, &mut rng.fork(1));
    let mut items = Embedding::normal(ds.n_items(), cfg.dim, 0.1, &mut rng.fork(2));

    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            let (fu, fv) = sym_propagate(&ds.train, &users, &items, cfg.layers);
            let mut g_fu = Embedding::zeros(users.rows(), cfg.dim);
            let mut g_fv = Embedding::zeros(items.rows(), cfg.dim);
            // Sum-weighted: each positive contributes a full gradient unit,
            // matching per-sample SGD step sizes (see core trainer).
            let w = 1.0;
            for &(u, i) in &batch {
                let j = sampler.sample(u);
                if i == j {
                    continue;
                }
                let x = ops::dot(fu.row(u), fv.row(i)) - ops::dot(fu.row(u), fv.row(j));
                let (_, dx) = bpr_loss_grad(x);
                let dxw = dx * w;
                for k in 0..cfg.dim {
                    g_fu.row_mut(u)[k] += dxw * (fv.row(i)[k] - fv.row(j)[k]);
                    g_fv.row_mut(i)[k] += dxw * fu.row(u)[k];
                    g_fv.row_mut(j)[k] -= dxw * fu.row(u)[k];
                }
            }
            // The symmetric propagation is self-adjoint: applying it to the
            // gradients yields gradients w.r.t. the base embeddings.
            let (g_u0, g_v0) = sym_propagate(&ds.train, &g_fu, &g_fv, cfg.layers);
            ops::axpy(-cfg.lr, g_u0.as_slice(), users.as_mut_slice());
            ops::axpy(-cfg.lr, g_v0.as_slice(), items.as_mut_slice());
            // L2 weight decay.
            ops::scale(users.as_mut_slice(), 1.0 - cfg.lr * cfg.reg);
            ops::scale(items.as_mut_slice(), 1.0 - cfg.lr * cfg.reg);
        }
    }
    let (fu, fv) = sym_propagate(&ds.train, &users, &items, cfg.layers);
    DotScorer { users: fu, items: fv }
}

/// Trains AGCN: like LightGCN, but each item's base embedding is its free
/// vector plus the mean of its tag embeddings, and a joint attribute
/// (tag) inference head — BCE on `final_v · g_t` for observed vs sampled
/// tags — feeds gradients back through the same propagation.
pub fn train_agcn(cfg: &BaselineConfig, ds: &Dataset) -> DotScorer {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut users = Embedding::normal(ds.n_users(), cfg.dim, 0.1, &mut rng.fork(1));
    let mut items = Embedding::normal(ds.n_items(), cfg.dim, 0.1, &mut rng.fork(2));
    let mut tags = Embedding::normal(ds.n_tags(), cfg.dim, 0.1, &mut rng.fork(3));
    let n_tags = ds.n_tags();

    let compose_items = |items: &Embedding, tags: &Embedding| {
        let mut base = items.clone();
        for v in 0..base.rows() {
            let vt = &ds.item_tags[v];
            if !vt.is_empty() {
                let w = 1.0 / vt.len() as f64;
                for &t in vt {
                    ops::axpy(w, tags.row(t), base.row_mut(v));
                }
            }
        }
        base
    };

    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        let mut trng = rng.fork(300 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            let item_base = compose_items(&items, &tags);
            let (fu, fv) = sym_propagate(&ds.train, &users, &item_base, cfg.layers);
            let mut g_fu = Embedding::zeros(users.rows(), cfg.dim);
            let mut g_fv = Embedding::zeros(items.rows(), cfg.dim);
            let mut g_tags = Embedding::zeros(n_tags, cfg.dim);
            // Sum-weighted: each positive contributes a full gradient unit,
            // matching per-sample SGD step sizes (see core trainer).
            let w = 1.0;
            for &(u, i) in &batch {
                let j = sampler.sample(u);
                if i == j {
                    continue;
                }
                let x = ops::dot(fu.row(u), fv.row(i)) - ops::dot(fu.row(u), fv.row(j));
                let (_, dx) = bpr_loss_grad(x);
                let dxw = dx * w;
                for k in 0..cfg.dim {
                    g_fu.row_mut(u)[k] += dxw * (fv.row(i)[k] - fv.row(j)[k]);
                    g_fv.row_mut(i)[k] += dxw * fu.row(u)[k];
                    g_fv.row_mut(j)[k] -= dxw * fu.row(u)[k];
                }
                // Attribute inference on the positive item: one observed
                // tag (label 1) and one sampled tag (label 0).
                let vt = &ds.item_tags[i];
                if !vt.is_empty() {
                    let t_pos = vt[trng.index(vt.len())];
                    attr_grads(&fv, &tags, i, t_pos, 1.0, cfg.aux_weight * w, &mut g_fv, &mut g_tags);
                    let t_neg = trng.index(n_tags);
                    if !vt.contains(&t_neg) {
                        attr_grads(
                            &fv,
                            &tags,
                            i,
                            t_neg,
                            0.0,
                            cfg.aux_weight * w,
                            &mut g_fv,
                            &mut g_tags,
                        );
                    }
                }
            }
            let (g_u0, g_vb) = sym_propagate(&ds.train, &g_fu, &g_fv, cfg.layers);
            ops::axpy(-cfg.lr, g_u0.as_slice(), users.as_mut_slice());
            // Item-base gradients split to free item vectors (identity) and
            // tag vectors (1/|tags(v)| each).
            for v in 0..items.rows() {
                ops::axpy(-cfg.lr, g_vb.row(v), items.row_mut(v));
                let vt = &ds.item_tags[v];
                if !vt.is_empty() {
                    let share = cfg.lr / vt.len() as f64;
                    for &t in vt {
                        ops::axpy(-share, g_vb.row(v), tags.row_mut(t));
                    }
                }
            }
            ops::axpy(-cfg.lr, g_tags.as_slice(), tags.as_mut_slice());
        }
    }
    let item_base = compose_items(&items, &tags);
    let (fu, fv) = sym_propagate(&ds.train, &users, &item_base, cfg.layers);
    DotScorer { users: fu, items: fv }
}

/// BCE gradient of the attribute head `x = final_v · g_t` toward `label`.
#[allow(clippy::too_many_arguments)]
fn attr_grads(
    fv: &Embedding,
    tags: &Embedding,
    v: usize,
    t: usize,
    label: f64,
    weight: f64,
    g_fv: &mut Embedding,
    g_tags: &mut Embedding,
) {
    let x = ops::dot(fv.row(v), tags.row(t));
    let dx = (sigmoid(x) - label) * weight;
    ops::axpy(dx, tags.row(t), g_fv.row_mut(v));
    ops::axpy(dx, fv.row(v), g_tags.row_mut(t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::evaluate;

    #[test]
    fn lightgcn_learns_signal() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let cfg = BaselineConfig { layers: 2, ..BaselineConfig::test_config() };
        let m = train_lightgcn(&cfg, &ds);
        assert!(m.users.all_finite() && m.items.all_finite());
        let r = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0, "LightGCN recall {r}");
    }

    #[test]
    fn lightgcn_beats_unpropagated_random_baseline() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(2);
        let cfg = BaselineConfig { layers: 2, epochs: 8, ..BaselineConfig::test_config() };
        let mut rng = SplitMix64::new(99);
        let random = DotScorer {
            users: Embedding::normal(ds.n_users(), cfg.dim, 0.1, &mut rng),
            items: Embedding::normal(ds.n_items(), cfg.dim, 0.1, &mut rng),
        };
        let base = evaluate(&random, &ds, Split::Validation, &[10], 2).recall_at(10);
        let m = train_lightgcn(&cfg, &ds);
        let trained = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(trained > base, "{base} → {trained}");
    }

    #[test]
    fn agcn_trains_with_tags() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(3);
        let cfg = BaselineConfig { layers: 2, ..BaselineConfig::test_config() };
        let m = train_agcn(&cfg, &ds);
        assert!(m.users.all_finite() && m.items.all_finite());
        let r = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0, "AGCN recall {r}");
    }

    #[test]
    fn attr_grads_push_dot_toward_label() {
        let mut rng = SplitMix64::new(4);
        let mut fv = Embedding::normal(1, 4, 0.5, &mut rng);
        let mut tags = Embedding::normal(1, 4, 0.5, &mut rng);
        for _ in 0..500 {
            let mut g_fv = Embedding::zeros(1, 4);
            let mut g_tags = Embedding::zeros(1, 4);
            attr_grads(&fv, &tags, 0, 0, 1.0, 1.0, &mut g_fv, &mut g_tags);
            ops::axpy(-0.1, g_fv.row(0), fv.row_mut(0));
            ops::axpy(-0.1, g_tags.row(0), tags.row_mut(0));
        }
        let p = sigmoid(ops::dot(fv.row(0), tags.row(0)));
        assert!(p > 0.9, "probability {p}");
    }
}
