//! Shared baseline infrastructure: configuration, scorers, and the
//! symmetric LightGCN-style propagation used by the Euclidean graph models.

use logirec_data::InteractionSet;
use logirec_linalg::{ops, Embedding};

/// Hyperparameters shared by all baselines. Individual methods read the
/// fields that apply to them (e.g. `layers` only matters to graph models).
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Positive pairs per step.
    pub batch_size: usize,
    /// Negatives per positive.
    pub negatives: usize,
    /// Margin for hinge-based objectives.
    pub margin: f64,
    /// L2 regularization strength.
    pub reg: f64,
    /// Graph propagation depth.
    pub layers: usize,
    /// Auxiliary-objective weight (tag losses, margin regularizers, …).
    pub aux_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            lr: 0.05,
            epochs: 30,
            batch_size: 1024,
            negatives: 1,
            margin: 0.5,
            reg: 1e-4,
            layers: 3,
            aux_weight: 0.1,
            seed: 2024,
        }
    }
}

impl BaselineConfig {
    /// Small config for unit tests.
    pub fn test_config() -> Self {
        Self { dim: 8, epochs: 6, batch_size: 128, ..Self::default() }
    }
}

/// Numerically safe logistic function.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Inner-product scorer (`score = p_u · q_v`).
#[derive(Debug, Clone)]
pub struct DotScorer {
    /// User factors.
    pub users: Embedding,
    /// Item factors.
    pub items: Embedding,
}

impl logirec_eval::Ranker for DotScorer {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        let p = self.users.row(u);
        for (v, o) in out.iter_mut().enumerate() {
            *o = ops::dot(p, self.items.row(v));
        }
    }
}

/// Euclidean metric scorer (`score = −‖p_u − q_v‖`).
#[derive(Debug, Clone)]
pub struct DistScorer {
    /// User positions.
    pub users: Embedding,
    /// Item positions.
    pub items: Embedding,
}

impl logirec_eval::Ranker for DistScorer {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        let p = self.users.row(u);
        for (v, o) in out.iter_mut().enumerate() {
            *o = -ops::dist(p, self.items.row(v));
        }
    }
}

/// LightGCN propagation with the symmetric normalization
/// `1/sqrt(|N_u| |N_v|)` and layer-mean combination
/// `e_final = (1/(L+1)) Σ_{l=0}^{L} e^l`.
///
/// The joint propagation matrix is symmetric, so this function is its own
/// adjoint: calling it on gradients w.r.t. the final embeddings yields
/// gradients w.r.t. the layer-0 embeddings. The unit tests verify this.
pub fn sym_propagate(
    adj: &InteractionSet,
    z_u0: &Embedding,
    z_v0: &Embedding,
    layers: usize,
) -> (Embedding, Embedding) {
    let dim = z_u0.dim();
    let mut zu = z_u0.clone();
    let mut zv = z_v0.clone();
    let mut acc_u = z_u0.clone();
    let mut acc_v = z_v0.clone();
    let mut next_u = Embedding::zeros(zu.rows(), dim);
    let mut next_v = Embedding::zeros(zv.rows(), dim);
    for _ in 0..layers {
        next_u.fill_zero();
        next_v.fill_zero();
        for u in 0..zu.rows() {
            let du = adj.items_of(u).len();
            if du == 0 {
                continue;
            }
            for &v in adj.items_of(u) {
                let dv = adj.users_of(v).len();
                let w = 1.0 / ((du * dv) as f64).sqrt();
                ops::axpy(w, zv.row(v), next_u.row_mut(u));
                ops::axpy(w, zu.row(u), next_v.row_mut(v));
            }
        }
        std::mem::swap(&mut zu, &mut next_u);
        std::mem::swap(&mut zv, &mut next_v);
        ops::axpy(1.0, zu.as_slice(), acc_u.as_mut_slice());
        ops::axpy(1.0, zv.as_slice(), acc_v.as_mut_slice());
    }
    let scale = 1.0 / (layers + 1) as f64;
    ops::scale(acc_u.as_mut_slice(), scale);
    ops::scale(acc_v.as_mut_slice(), scale);
    (acc_u, acc_v)
}

/// BPR gradient helper: for a triplet with score difference
/// `x = s(u,i) − s(u,j)`, the BPR loss `−ln σ(x)` has
/// `dL/dx = −σ(−x)`. Returns both the loss value and `dL/dx`.
#[inline]
pub fn bpr_loss_grad(x: f64) -> (f64, f64) {
    let s = sigmoid(-x);
    // −ln σ(x) = softplus(−x); stable form.
    let loss = if x > 0.0 { (1.0 + (-x).exp()).ln() } else { -x + (1.0 + x.exp()).ln() };
    (loss, -s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_linalg::SplitMix64;

    #[test]
    fn sigmoid_is_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999_999);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bpr_loss_grad_matches_finite_differences() {
        for &x in &[-2.0, -0.1, 0.0, 0.5, 3.0] {
            let (_, g) = bpr_loss_grad(x);
            let h = 1e-6;
            let num = (bpr_loss_grad(x + h).0 - bpr_loss_grad(x - h).0) / (2.0 * h);
            assert!((g - num).abs() < 1e-6, "x={x}: {g} vs {num}");
        }
    }

    #[test]
    fn sym_propagate_zero_layers_is_identity() {
        let adj = InteractionSet::from_pairs(2, 2, &[(0, 0), (1, 1)]);
        let mut rng = SplitMix64::new(1);
        let zu = Embedding::normal(2, 3, 1.0, &mut rng);
        let zv = Embedding::normal(2, 3, 1.0, &mut rng);
        let (fu, fv) = sym_propagate(&adj, &zu, &zv, 0);
        assert_eq!(fu, zu);
        assert_eq!(fv, zv);
    }

    #[test]
    fn sym_propagate_is_self_adjoint() {
        let adj =
            InteractionSet::from_pairs(3, 4, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 3), (2, 0)]);
        let mut rng = SplitMix64::new(2);
        for layers in 1..=3 {
            let zu = Embedding::normal(3, 4, 1.0, &mut rng);
            let zv = Embedding::normal(4, 4, 1.0, &mut rng);
            let gu = Embedding::normal(3, 4, 1.0, &mut rng);
            let gv = Embedding::normal(4, 4, 1.0, &mut rng);
            let (fu, fv) = sym_propagate(&adj, &zu, &zv, layers);
            let (bu, bv) = sym_propagate(&adj, &gu, &gv, layers);
            let lhs =
                ops::dot(fu.as_slice(), gu.as_slice()) + ops::dot(fv.as_slice(), gv.as_slice());
            let rhs =
                ops::dot(zu.as_slice(), bu.as_slice()) + ops::dot(zv.as_slice(), bv.as_slice());
            assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "L={layers}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn sym_propagate_one_layer_manual_check() {
        // user 0 — item 0 only: deg(u0)=1, deg(v0)=1 → weight 1.
        let adj = InteractionSet::from_pairs(1, 1, &[(0, 0)]);
        let mut zu = Embedding::zeros(1, 1);
        zu.row_mut(0)[0] = 2.0;
        let mut zv = Embedding::zeros(1, 1);
        zv.row_mut(0)[0] = 4.0;
        let (fu, fv) = sym_propagate(&adj, &zu, &zv, 1);
        // final_u = (z_u + z_v)/2 = 3; final_v = (z_v + z_u)/2 = 3.
        assert_eq!(fu.row(0)[0], 3.0);
        assert_eq!(fv.row(0)[0], 3.0);
    }

    #[test]
    fn scorers_rank_by_their_geometry() {
        let mut users = Embedding::zeros(1, 2);
        users.row_mut(0).copy_from_slice(&[1.0, 0.0]);
        let mut items = Embedding::zeros(2, 2);
        items.row_mut(0).copy_from_slice(&[0.9, 0.1]);
        items.row_mut(1).copy_from_slice(&[-1.0, 0.0]);
        let dot = DotScorer { users: users.clone(), items: items.clone() };
        let dist = DistScorer { users, items };
        let mut s = [0.0; 2];
        logirec_eval::Ranker::score_user(&dot, 0, &mut s);
        assert!(s[0] > s[1]);
        logirec_eval::Ranker::score_user(&dist, 0, &mut s);
        assert!(s[0] > s[1]);
    }
}
