//! Uniform registry over the 13 baselines (and hooks for the two LogiRec
//! configurations), used by the Table II/III harness.

use logirec_data::Dataset;
use logirec_eval::Ranker;

use crate::common::BaselineConfig;
use crate::graphs::{train_agcn, train_lightgcn};
use crate::hyper::{train_gdcf, train_hgcf, train_hyperml};
use crate::metric::{train_cml, train_cmlf, train_sml};
use crate::mf::{train_amf, train_bprmf};
use crate::neural::train_neumf;
use crate::transc::train_transc;

/// The paper's four baseline groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// BPRMF, NeuMF.
    General,
    /// CML, SML, HyperML.
    MetricLearning,
    /// CMLF, AMF, TransC, AGCN.
    TagBased,
    /// LightGCN, HGCF, GDCF, HRCF.
    GraphBased,
}

/// One of the 13 baseline methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Method {
    Bprmf,
    Neumf,
    Cml,
    Sml,
    HyperMl,
    Cmlf,
    Amf,
    TransC,
    Agcn,
    LightGcn,
    Hgcf,
    Gdcf,
    Hrcf,
}

/// A trained baseline: a boxed ranker plus its display name.
pub struct TrainedModel {
    /// Method display name (paper spelling).
    pub name: &'static str,
    scorer: Box<dyn Ranker + Send + Sync>,
}

impl Ranker for TrainedModel {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        self.scorer.score_user(u, out)
    }
}

impl Method {
    /// All methods in the paper's Table II row order.
    pub fn all() -> [Method; 13] {
        [
            Method::Bprmf,
            Method::Neumf,
            Method::Cml,
            Method::Sml,
            Method::HyperMl,
            Method::Cmlf,
            Method::Amf,
            Method::TransC,
            Method::Agcn,
            Method::LightGcn,
            Method::Hgcf,
            Method::Gdcf,
            Method::Hrcf,
        ]
    }

    /// Paper spelling of the method name.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Bprmf => "BPRMF",
            Method::Neumf => "NeuMF",
            Method::Cml => "CML",
            Method::Sml => "SML",
            Method::HyperMl => "HyperML",
            Method::Cmlf => "CMLF",
            Method::Amf => "AMF",
            Method::TransC => "TransC",
            Method::Agcn => "AGCN",
            Method::LightGcn => "LightGCN",
            Method::Hgcf => "HGCF",
            Method::Gdcf => "GDCF",
            Method::Hrcf => "HRCF",
        }
    }

    /// Which comparison group the method belongs to.
    pub fn group(&self) -> Group {
        match self {
            Method::Bprmf | Method::Neumf => Group::General,
            Method::Cml | Method::Sml | Method::HyperMl => Group::MetricLearning,
            Method::Cmlf | Method::Amf | Method::TransC | Method::Agcn => Group::TagBased,
            Method::LightGcn | Method::Hgcf | Method::Gdcf | Method::Hrcf => Group::GraphBased,
        }
    }

    /// Parses a method from its (case-insensitive) label.
    pub fn parse(s: &str) -> Option<Method> {
        Method::all().into_iter().find(|m| m.label().eq_ignore_ascii_case(s))
    }

    /// Validation-tuned learning rate per method (grid-searched on the
    /// synthetic benchmarks, mirroring the paper's per-baseline tuning).
    /// Batched full-graph methods need smaller steps than per-sample SGD.
    pub fn tuned_lr(&self) -> f64 {
        match self {
            Method::Hgcf | Method::Hrcf => 0.003,
            Method::LightGcn | Method::Agcn => 0.1,
            _ => 0.05,
        }
    }

    /// Applies the method's tuned hyperparameters on top of a base config.
    pub fn tuned(&self, base: &BaselineConfig) -> BaselineConfig {
        BaselineConfig { lr: self.tuned_lr(), ..base.clone() }
    }
}

/// Trains `method` on `ds` and returns a uniform trained handle.
pub fn train_method(method: Method, cfg: &BaselineConfig, ds: &Dataset) -> TrainedModel {
    let scorer: Box<dyn Ranker + Send + Sync> = match method {
        Method::Bprmf => Box::new(train_bprmf(cfg, ds)),
        Method::Neumf => Box::new(train_neumf(cfg, ds)),
        Method::Cml => Box::new(train_cml(cfg, ds)),
        Method::Sml => Box::new(train_sml(cfg, ds)),
        Method::HyperMl => Box::new(train_hyperml(cfg, ds)),
        Method::Cmlf => Box::new(train_cmlf(cfg, ds)),
        Method::Amf => Box::new(train_amf(cfg, ds)),
        Method::TransC => Box::new(train_transc(cfg, ds)),
        Method::Agcn => Box::new(train_agcn(cfg, ds)),
        Method::LightGcn => Box::new(train_lightgcn(cfg, ds)),
        Method::Hgcf => Box::new(train_hgcf(cfg, ds, false)),
        Method::Gdcf => Box::new(train_gdcf(cfg, ds)),
        Method::Hrcf => Box::new(train_hgcf(cfg, ds, true)),
    };
    TrainedModel { name: method.label(), scorer }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::evaluate;

    #[test]
    fn registry_covers_thirteen_methods_with_unique_labels() {
        let all = Method::all();
        assert_eq!(all.len(), 13);
        let mut labels: Vec<&str> = all.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 13);
    }

    #[test]
    fn parse_round_trips() {
        for m in Method::all() {
            assert_eq!(Method::parse(m.label()), Some(m));
            assert_eq!(Method::parse(&m.label().to_lowercase()), Some(m));
        }
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn groups_match_paper_taxonomy() {
        assert_eq!(Method::Bprmf.group(), Group::General);
        assert_eq!(Method::HyperMl.group(), Group::MetricLearning);
        assert_eq!(Method::Agcn.group(), Group::TagBased);
        assert_eq!(Method::Hrcf.group(), Group::GraphBased);
    }

    /// Smoke-train every method on a tiny dataset: all must produce finite
    /// scores and retrieve at least something.
    #[test]
    fn every_method_trains_and_ranks() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(7);
        let cfg = BaselineConfig { epochs: 3, layers: 2, ..BaselineConfig::test_config() };
        for method in Method::all() {
            let model = train_method(method, &cfg, &ds);
            let res = evaluate(&model, &ds, Split::Validation, &[10], 2);
            let r = res.recall_at(10);
            assert!(r.is_finite() && r >= 0.0, "{}: recall {r}", model.name);
            let mut scores = vec![0.0; ds.n_items()];
            model.score_user(0, &mut scores);
            assert!(scores.iter().all(|s| s.is_finite()), "{} produced NaN", model.name);
        }
    }
}
