//! TransC (Lv et al. 2018), adapted to recommendation as in the paper's
//! setup: concepts (tags) are Euclidean spheres `(o_t, r_t)`, instances
//! (items) are points, and user–item interaction is a translation relation.
//!
//! Losses:
//! * ranking: `[γ + ‖u + r − v_i‖² − ‖u + r − v_j‖²]₊` with a shared
//!   translation vector `r` for the "interacts" relation;
//! * instanceOf: `[‖v − o_t‖ − r_t]₊` for each membership pair;
//! * subClassOf: `[‖o_i − o_j‖ + r_j − r_i]₊` for each hierarchy pair.

use logirec_data::{BatchIter, Dataset, NegativeSampler};
use logirec_eval::Ranker;
use logirec_linalg::{ops, Embedding, SplitMix64};

use crate::common::BaselineConfig;

/// The trained TransC model.
#[derive(Debug, Clone)]
pub struct TransC {
    users: Embedding,
    items: Embedding,
    /// Concept sphere centers.
    centers: Embedding,
    /// Concept sphere radii.
    radii: Vec<f64>,
    /// Translation vector of the "interacts" relation.
    relation: Vec<f64>,
}

impl TransC {
    /// Concept sphere of tag `t` (for tests/inspection).
    pub fn sphere(&self, t: usize) -> (&[f64], f64) {
        (self.centers.row(t), self.radii[t])
    }
}

impl Ranker for TransC {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        let shifted = ops::add(self.users.row(u), &self.relation);
        for (v, o) in out.iter_mut().enumerate() {
            *o = -ops::dist_sq(&shifted, self.items.row(v));
        }
    }
}

/// Trains TransC.
pub fn train_transc(cfg: &BaselineConfig, ds: &Dataset) -> TransC {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut m = TransC {
        users: Embedding::normal(ds.n_users(), cfg.dim, 0.1, &mut rng.fork(1)),
        items: Embedding::normal(ds.n_items(), cfg.dim, 0.1, &mut rng.fork(2)),
        centers: Embedding::normal(ds.n_tags(), cfg.dim, 0.1, &mut rng.fork(3)),
        radii: vec![0.5; ds.n_tags()],
        relation: vec![0.0; cfg.dim],
    };
    let mem = &ds.relations.membership;
    let hie = &ds.relations.hierarchy;

    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        let mut lrng = rng.fork(300 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            for (u, i) in batch {
                let j = sampler.sample(u);
                if i != j {
                    ranking_step(&mut m, u, i, j, cfg.margin, cfg.lr);
                }
                // One instanceOf and one subClassOf step per interaction.
                if !mem.is_empty() {
                    let (v, t) = mem[lrng.index(mem.len())];
                    instance_of_step(&mut m, v, t, cfg.lr * cfg.aux_weight);
                }
                if !hie.is_empty() {
                    let (p, c) = hie[lrng.index(hie.len())];
                    sub_class_of_step(&mut m, p, c, cfg.lr * cfg.aux_weight);
                }
            }
        }
    }
    m
}

fn ranking_step(m: &mut TransC, u: usize, i: usize, j: usize, margin: f64, lr: f64) {
    let shifted = ops::add(m.users.row(u), &m.relation);
    let d_pos = ops::dist_sq(&shifted, m.items.row(i));
    let d_neg = ops::dist_sq(&shifted, m.items.row(j));
    if margin + d_pos - d_neg <= 0.0 {
        return;
    }
    let (qi, qj) = m.items.rows_mut2(i, j);
    let pu = m.users.row_mut(u);
    for k in 0..pu.len() {
        let s = pu[k] + m.relation[k];
        // ∂/∂s [ (s−qi)² − (s−qj)² ] = 2(qj − qi).
        let gs = 2.0 * (qj[k] - qi[k]);
        let gi = -2.0 * (s - qi[k]);
        let gj = 2.0 * (s - qj[k]);
        pu[k] -= lr * gs;
        m.relation[k] -= lr * gs;
        qi[k] -= lr * gi;
        qj[k] -= lr * gj;
    }
}

fn instance_of_step(m: &mut TransC, v: usize, t: usize, lr: f64) {
    let d = ops::dist(m.items.row(v), m.centers.row(t));
    if d - m.radii[t] <= 0.0 {
        return;
    }
    let n = d.max(1e-12);
    let qv = m.items.row_mut(v);
    let ot = m.centers.row_mut(t);
    for k in 0..qv.len() {
        let unit = (qv[k] - ot[k]) / n;
        qv[k] -= lr * unit;
        ot[k] += lr * unit;
    }
    m.radii[t] = (m.radii[t] + lr).clamp(0.01, 2.0);
}

fn sub_class_of_step(m: &mut TransC, parent: usize, child: usize, lr: f64) {
    let d = ops::dist(m.centers.row(parent), m.centers.row(child));
    if d + m.radii[child] - m.radii[parent] <= 0.0 {
        return;
    }
    let n = d.max(1e-12);
    let (op, oc) = m.centers.rows_mut2(parent, child);
    for k in 0..op.len() {
        let unit = (op[k] - oc[k]) / n;
        op[k] -= lr * unit;
        oc[k] += lr * unit;
    }
    m.radii[parent] = (m.radii[parent] + lr).clamp(0.01, 2.0);
    m.radii[child] = (m.radii[child] - lr).clamp(0.01, 2.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::evaluate;

    #[test]
    fn transc_learns_ranking_signal() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(1);
        let m = train_transc(&BaselineConfig::test_config(), &ds);
        assert!(m.users.all_finite() && m.items.all_finite() && m.centers.all_finite());
        let r = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0, "TransC recall {r}");
    }

    #[test]
    fn instance_of_step_pulls_item_into_sphere() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(2);
        let mut m = train_transc(&BaselineConfig { epochs: 0, ..BaselineConfig::test_config() }, &ds);
        // Place item 0 far outside tag 0's sphere.
        for k in 0..m.items.dim() {
            m.items.row_mut(0)[k] = 3.0;
            m.centers.row_mut(0)[k] = 0.0;
        }
        m.radii[0] = 0.2;
        let before = ops::dist(m.items.row(0), m.centers.row(0)) - m.radii[0];
        for _ in 0..50 {
            instance_of_step(&mut m, 0, 0, 0.05);
        }
        let after = ops::dist(m.items.row(0), m.centers.row(0)) - m.radii[0];
        assert!(after < before, "violation should shrink: {before} → {after}");
    }

    #[test]
    fn sub_class_of_step_nests_spheres() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
        let mut m = train_transc(&BaselineConfig { epochs: 0, ..BaselineConfig::test_config() }, &ds);
        for k in 0..m.centers.dim() {
            m.centers.row_mut(0)[k] = 0.0;
            m.centers.row_mut(1)[k] = if k == 0 { 1.0 } else { 0.0 };
        }
        m.radii[0] = 0.3;
        m.radii[1] = 0.3;
        let violation = |m: &TransC| {
            ops::dist(m.centers.row(0), m.centers.row(1)) + m.radii[1] - m.radii[0]
        };
        let before = violation(&m);
        for _ in 0..100 {
            sub_class_of_step(&mut m, 0, 1, 0.02);
        }
        assert!(violation(&m) < before);
        assert!(m.radii.iter().all(|&r| (0.01..=2.0).contains(&r)));
    }
}
