//! Matrix factorization baselines: BPRMF (Rendle et al. 2009) and AMF
//! (aspect/tag-fused MF, Hou et al. 2019).

use logirec_data::{BatchIter, Dataset, NegativeSampler};
use logirec_linalg::{ops, Embedding, SplitMix64};

use crate::common::{bpr_loss_grad, BaselineConfig, DotScorer};

/// Trains BPRMF: inner-product MF under the Bayesian Personalized Ranking
/// objective `−ln σ(p_u·q_i − p_u·q_j)` with L2 regularization.
pub fn train_bprmf(cfg: &BaselineConfig, ds: &Dataset) -> DotScorer {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut users = Embedding::normal(ds.n_users(), cfg.dim, 0.1, &mut rng.fork(1));
    let mut items = Embedding::normal(ds.n_items(), cfg.dim, 0.1, &mut rng.fork(2));

    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            for (u, i) in batch {
                for _ in 0..cfg.negatives {
                    let j = sampler.sample(u);
                    bpr_step(&mut users, &mut items, u, i, j, cfg.lr, cfg.reg);
                }
            }
        }
    }
    DotScorer { users, items }
}

/// One BPR SGD step on `(u, i, j)`.
fn bpr_step(
    users: &mut Embedding,
    items: &mut Embedding,
    u: usize,
    i: usize,
    j: usize,
    lr: f64,
    reg: f64,
) {
    if i == j {
        return;
    }
    let x = ops::dot(users.row(u), items.row(i)) - ops::dot(users.row(u), items.row(j));
    let (_, dx) = bpr_loss_grad(x);
    let (qi, qj) = items.rows_mut2(i, j);
    let pu = users.row_mut(u);
    for k in 0..pu.len() {
        let gu = dx * (qi[k] - qj[k]) + reg * pu[k];
        let gi = dx * pu[k] + reg * qi[k];
        let gj = -dx * pu[k] + reg * qj[k];
        pu[k] -= lr * gu;
        qi[k] -= lr * gi;
        qj[k] -= lr * gj;
    }
}

/// Trains AMF: BPR-MF whose item factors are additionally tied to tag
/// (aspect) factors by reconstructing the item–tag matrix — for every
/// membership pair `(v, t)` the inner product `q_v · g_t` is pushed toward
/// 1, and toward 0 for sampled non-member tags.
pub fn train_amf(cfg: &BaselineConfig, ds: &Dataset) -> DotScorer {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut users = Embedding::normal(ds.n_users(), cfg.dim, 0.1, &mut rng.fork(1));
    let mut items = Embedding::normal(ds.n_items(), cfg.dim, 0.1, &mut rng.fork(2));
    let mut tags = Embedding::normal(ds.n_tags(), cfg.dim, 0.1, &mut rng.fork(3));
    let n_tags = ds.n_tags();

    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        let mut trng = rng.fork(300 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            for (u, i) in batch {
                let j = sampler.sample(u);
                bpr_step(&mut users, &mut items, u, i, j, cfg.lr, cfg.reg);
                // Aspect reconstruction on one observed and one negative tag.
                if let Some(&t_pos) = pick(&ds.item_tags[i], &mut trng) {
                    aspect_step(&mut items, &mut tags, i, t_pos, 1.0, cfg.lr * cfg.aux_weight);
                    let t_neg = trng.index(n_tags);
                    if !ds.item_tags[i].contains(&t_neg) {
                        aspect_step(&mut items, &mut tags, i, t_neg, 0.0, cfg.lr * cfg.aux_weight);
                    }
                }
            }
        }
    }
    DotScorer { users, items }
}

/// Squared-error step pushing `q_v · g_t` toward `target`.
fn aspect_step(items: &mut Embedding, tags: &mut Embedding, v: usize, t: usize, target: f64, lr: f64) {
    let err = ops::dot(items.row(v), tags.row(t)) - target;
    let qv = items.row_mut(v);
    let gt = tags.row_mut(t);
    for k in 0..qv.len() {
        let gv = err * gt[k];
        let gt_k = err * qv[k];
        qv[k] -= lr * gv;
        gt[k] -= lr * gt_k;
    }
}

fn pick<'a, T>(xs: &'a [T], rng: &mut SplitMix64) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.index(xs.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::evaluate;

    #[test]
    fn bprmf_learns_signal() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let cfg = BaselineConfig::test_config();
        let untrained = DotScorer {
            users: Embedding::zeros(ds.n_users(), cfg.dim),
            items: Embedding::zeros(ds.n_items(), cfg.dim),
        };
        let base = evaluate(&untrained, &ds, Split::Validation, &[10], 2).recall_at(10);
        let model = train_bprmf(&cfg, &ds);
        let trained = evaluate(&model, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(trained > base, "{base} → {trained}");
        assert!(model.users.all_finite() && model.items.all_finite());
    }

    #[test]
    fn amf_trains_and_uses_tags() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(2);
        let model = train_amf(&BaselineConfig::test_config(), &ds);
        assert!(model.users.all_finite() && model.items.all_finite());
        let r = evaluate(&model, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0, "AMF should retrieve something, got {r}");
    }

    #[test]
    fn bpr_step_moves_positive_above_negative() {
        let mut rng = SplitMix64::new(3);
        let mut users = Embedding::normal(1, 4, 0.1, &mut rng);
        let mut items = Embedding::normal(2, 4, 0.1, &mut rng);
        for _ in 0..200 {
            bpr_step(&mut users, &mut items, 0, 0, 1, 0.1, 0.0);
        }
        let si = ops::dot(users.row(0), items.row(0));
        let sj = ops::dot(users.row(0), items.row(1));
        assert!(si > sj, "positive should out-score negative: {si} vs {sj}");
    }

    #[test]
    fn aspect_step_pulls_dot_toward_target() {
        let mut rng = SplitMix64::new(4);
        let mut items = Embedding::normal(1, 4, 0.1, &mut rng);
        let mut tags = Embedding::normal(1, 4, 0.1, &mut rng);
        for _ in 0..500 {
            aspect_step(&mut items, &mut tags, 0, 0, 1.0, 0.1);
        }
        let d = ops::dot(items.row(0), tags.row(0));
        assert!((d - 1.0).abs() < 0.05, "dot {d}");
    }
}
