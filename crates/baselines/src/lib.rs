#![warn(missing_docs)]

//! The 13 comparison baselines from the paper's Table II, implemented from
//! their defining objectives behind one [`Method`] registry:
//!
//! * general: BPRMF, NeuMF;
//! * metric learning: CML, SML, HyperML;
//! * tag-based: CMLF, AMF, TransC, AGCN;
//! * graph-based: LightGCN, HGCF, GDCF, HRCF.
//!
//! Every method trains on the same [`logirec_data::Dataset`], uses the same
//! negative sampler and batcher, and exposes its trained state as a
//! [`logirec_eval::Ranker`], so the Table II harness treats all 15 systems
//! (13 baselines + LogiRec + LogiRec++) uniformly.

pub mod common;
pub mod graphs;
pub mod hyper;
pub mod metric;
pub mod mf;
pub mod neural;
pub mod registry;
pub mod transc;

pub use common::BaselineConfig;
pub use registry::{train_method, Method, TrainedModel};
