//! Hyperbolic baselines: HyperML (Vinh Tran et al. 2020), HGCF (Sun et al.
//! 2021), HRCF (Yang et al. 2022), and the mixed-geometry GDCF (Zhang et
//! al. 2022).

use logirec_core::graph;
use logirec_data::{BatchIter, Dataset, NegativeSampler};
use logirec_eval::Ranker;
use logirec_hyperbolic::{lorentz, poincare, rsgd};
use logirec_linalg::{ops, Embedding, SplitMix64};

use crate::common::BaselineConfig;

/// Scorer over Poincaré positions (`score = −d_P`).
#[derive(Debug, Clone)]
pub struct PoincareScorer {
    /// User points in the ball.
    pub users: Embedding,
    /// Item points in the ball.
    pub items: Embedding,
}

impl Ranker for PoincareScorer {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        let p = self.users.row(u);
        for (v, o) in out.iter_mut().enumerate() {
            *o = -poincare::distance(p, self.items.row(v));
        }
    }
}

/// Scorer over (already propagated) Lorentz positions (`score = −d_H`).
#[derive(Debug, Clone)]
pub struct LorentzScorer {
    /// Final user points on the hyperboloid.
    pub users: Embedding,
    /// Final item points on the hyperboloid.
    pub items: Embedding,
}

impl Ranker for LorentzScorer {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        let p = self.users.row(u);
        for (v, o) in out.iter_mut().enumerate() {
            *o = -lorentz::distance(p, self.items.row(v));
        }
    }
}

/// Trains HyperML: metric learning directly in the Poincaré ball with the
/// hinge `[m + d_P(u,i) − d_P(u,j)]₊` and Riemannian SGD.
pub fn train_hyperml(cfg: &BaselineConfig, ds: &Dataset) -> PoincareScorer {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut users = Embedding::poincare_burn_in(ds.n_users(), cfg.dim, 0.1, &mut rng.fork(1));
    let mut items = Embedding::poincare_burn_in(ds.n_items(), cfg.dim, 0.1, &mut rng.fork(2));
    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            for (u, i) in batch {
                let j = sampler.sample(u);
                if i == j {
                    continue;
                }
                let dp = poincare::distance(users.row(u), items.row(i));
                let dn = poincare::distance(users.row(u), items.row(j));
                if cfg.margin + dp - dn <= 0.0 {
                    continue;
                }
                let (gu_p, gi) = poincare::distance_vjp(users.row(u), items.row(i), 1.0);
                let (gu_n, gj) = poincare::distance_vjp(users.row(u), items.row(j), -1.0);
                let g_u = ops::add(&gu_p, &gu_n);
                rsgd::poincare_step(users.row_mut(u), &g_u, cfg.lr);
                rsgd::poincare_step(items.row_mut(i), &gi, cfg.lr);
                rsgd::poincare_step(items.row_mut(j), &gj, cfg.lr);
            }
        }
    }
    PoincareScorer { users, items }
}

/// Trains HGCF (and, with `root_regularization`, HRCF): free Lorentz
/// user/item embeddings, tangent-space GCN (reusing the core propagation),
/// margin ranking loss, Riemannian SGD.
///
/// HRCF's addition is a *hyperbolic geometric regularizer* that pushes
/// layer-0 tangents away from the origin (root alignment), fighting the
/// crowding of embeddings near the apex of the hyperboloid.
pub fn train_hgcf(cfg: &BaselineConfig, ds: &Dataset, root_regularization: bool) -> LorentzScorer {
    let mut rng = SplitMix64::new(cfg.seed);
    let dim = cfg.dim;
    let init_u = Embedding::normal(ds.n_users(), dim, 0.05, &mut rng.fork(1));
    let init_v = Embedding::normal(ds.n_items(), dim, 0.05, &mut rng.fork(2));
    let mut users = Embedding::zeros(ds.n_users(), dim + 1);
    let mut items = Embedding::zeros(ds.n_items(), dim + 1);
    for u in 0..users.rows() {
        users.row_mut(u).copy_from_slice(&lorentz::exp_origin(init_u.row(u)));
    }
    for v in 0..items.rows() {
        items.row_mut(v).copy_from_slice(&lorentz::exp_origin(init_v.row(v)));
    }

    let forward = |users: &Embedding, items: &Embedding| {
        let mut z_u0 = Embedding::zeros(users.rows(), dim);
        for u in 0..users.rows() {
            z_u0.row_mut(u).copy_from_slice(&lorentz::log_origin(users.row(u)));
        }
        let mut z_v0 = Embedding::zeros(items.rows(), dim);
        for v in 0..items.rows() {
            z_v0.row_mut(v).copy_from_slice(&lorentz::log_origin(items.row(v)));
        }
        let (fu_t, fv_t) = graph::propagate_forward(&ds.train, &z_u0, &z_v0, cfg.layers);
        let mut fu = Embedding::zeros(users.rows(), dim + 1);
        for u in 0..users.rows() {
            fu.row_mut(u).copy_from_slice(&lorentz::exp_origin(fu_t.row(u)));
        }
        let mut fv = Embedding::zeros(items.rows(), dim + 1);
        for v in 0..items.rows() {
            fv.row_mut(v).copy_from_slice(&lorentz::exp_origin(fv_t.row(v)));
        }
        (fu_t, fv_t, fu, fv)
    };

    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            let (fu_t, fv_t, fu, fv) = forward(&users, &items);
            let mut g_fu = Embedding::zeros(users.rows(), dim + 1);
            let mut g_fv = Embedding::zeros(items.rows(), dim + 1);
            // Sum-weighted: each positive contributes a full gradient unit,
            // matching per-sample SGD step sizes (see core trainer).
            let w = 1.0;
            for &(u, i) in &batch {
                let j = sampler.sample(u);
                if i == j {
                    continue;
                }
                let dp = lorentz::distance(fu.row(u), fv.row(i));
                let dn = lorentz::distance(fu.row(u), fv.row(j));
                if cfg.margin + dp - dn <= 0.0 {
                    continue;
                }
                let (gu_p, gi) = lorentz::distance_vjp(fu.row(u), fv.row(i), w);
                let (gu_n, gj) = lorentz::distance_vjp(fu.row(u), fv.row(j), -w);
                ops::axpy(1.0, &gu_p, g_fu.row_mut(u));
                ops::axpy(1.0, &gu_n, g_fu.row_mut(u));
                ops::axpy(1.0, &gi, g_fv.row_mut(i));
                ops::axpy(1.0, &gj, g_fv.row_mut(j));
            }
            // Back through exp_origin, the GCN, and log_origin.
            let mut g_fut = Embedding::zeros(users.rows(), dim);
            for u in 0..users.rows() {
                g_fut
                    .row_mut(u)
                    .copy_from_slice(&lorentz::exp_origin_vjp(fu_t.row(u), g_fu.row(u)));
            }
            let mut g_fvt = Embedding::zeros(items.rows(), dim);
            for v in 0..items.rows() {
                g_fvt
                    .row_mut(v)
                    .copy_from_slice(&lorentz::exp_origin_vjp(fv_t.row(v), g_fv.row(v)));
            }
            let (mut g_u0, mut g_v0) =
                graph::propagate_backward(&ds.train, &g_fut, &g_fvt, cfg.layers);
            if root_regularization {
                // HRCF root alignment: increase layer-0 tangent norms, i.e.
                // descend −aux·‖z‖ ⇒ gradient −aux·z/‖z‖.
                add_root_regularizer(&users, &mut g_u0, cfg.aux_weight);
                add_root_regularizer(&items, &mut g_v0, cfg.aux_weight);
            }
            for u in 0..users.rows() {
                let g = lorentz::log_origin_vjp(users.row(u), g_u0.row(u));
                rsgd::lorentz_step(users.row_mut(u), &g, cfg.lr);
            }
            for v in 0..items.rows() {
                let g = lorentz::log_origin_vjp(items.row(v), g_v0.row(v));
                rsgd::lorentz_step(items.row_mut(v), &g, cfg.lr);
            }
        }
    }
    let (_, _, fu, fv) = forward(&users, &items);
    LorentzScorer { users: fu, items: fv }
}

/// Adds `−aux·z/‖z‖` to the tangent gradient of every row (the HRCF
/// norm-growing regularizer).
fn add_root_regularizer(points: &Embedding, grads: &mut Embedding, aux: f64) {
    for r in 0..points.rows() {
        let z = lorentz::log_origin(points.row(r));
        let n = ops::norm(&z);
        if n > 1e-9 {
            ops::axpy(-aux / n, &z, grads.row_mut(r));
        }
    }
}

/// The trained GDCF model: disentangled factors living in two geometries —
/// a Euclidean half scored by inner product and a hyperbolic half scored by
/// negative Lorentz distance; the final score is their sum.
#[derive(Debug, Clone)]
pub struct Gdcf {
    user_e: Embedding,
    item_e: Embedding,
    /// Hyperbolic factors kept as tangent coordinates (trivialized).
    user_h: Embedding,
    item_h: Embedding,
}

impl Gdcf {
    fn score(&self, u: usize, v: usize) -> f64 {
        let dot = ops::dot(self.user_e.row(u), self.item_e.row(v));
        let uh = lorentz::exp_origin(self.user_h.row(u));
        let vh = lorentz::exp_origin(self.item_h.row(v));
        dot - lorentz::distance(&uh, &vh)
    }
}

impl Ranker for Gdcf {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        let ue = self.user_e.row(u);
        let uh = lorentz::exp_origin(self.user_h.row(u));
        for (v, o) in out.iter_mut().enumerate() {
            let vh = lorentz::exp_origin(self.item_h.row(v));
            *o = ops::dot(ue, self.item_e.row(v)) - lorentz::distance(&uh, &vh);
        }
    }
}

/// Trains GDCF with a margin hinge on the mixed-geometry score.
pub fn train_gdcf(cfg: &BaselineConfig, ds: &Dataset) -> Gdcf {
    let mut rng = SplitMix64::new(cfg.seed);
    let half = (cfg.dim / 2).max(1);
    let mut m = Gdcf {
        user_e: Embedding::normal(ds.n_users(), half, 0.1, &mut rng.fork(1)),
        item_e: Embedding::normal(ds.n_items(), half, 0.1, &mut rng.fork(2)),
        user_h: Embedding::normal(ds.n_users(), half, 0.05, &mut rng.fork(3)),
        item_h: Embedding::normal(ds.n_items(), half, 0.05, &mut rng.fork(4)),
    };
    for epoch in 0..cfg.epochs {
        let mut sampler = NegativeSampler::new(&ds.train, rng.fork(100 + epoch as u64));
        let mut brng = rng.fork(200 + epoch as u64);
        for batch in BatchIter::new(&ds.train, cfg.batch_size, &mut brng) {
            for (u, i) in batch {
                let j = sampler.sample(u);
                if i == j {
                    continue;
                }
                // Hinge [m + s(u,j) − s(u,i)]₊ (higher score = better).
                if cfg.margin + m.score(u, j) - m.score(u, i) <= 0.0 {
                    continue;
                }
                // Euclidean half: ∂(−s_i + s_j)/∂ue = q_j − q_i.
                {
                    let (qi, qj) = m.item_e.rows_mut2(i, j);
                    let pu = m.user_e.row_mut(u);
                    for k in 0..pu.len() {
                        let gu = qj[k] - qi[k];
                        let gi = -pu[k];
                        let gj = pu[k];
                        pu[k] -= cfg.lr * gu;
                        qi[k] -= cfg.lr * gi;
                        qj[k] -= cfg.lr * gj;
                    }
                }
                // Hyperbolic half: loss includes +d(u,i) − d(u,j).
                {
                    let zu = m.user_h.row(u).to_vec();
                    let zi = m.item_h.row(i).to_vec();
                    let zj = m.item_h.row(j).to_vec();
                    let pu = lorentz::exp_origin(&zu);
                    let pi = lorentz::exp_origin(&zi);
                    let pj = lorentz::exp_origin(&zj);
                    let (gu_p, gi) = lorentz::distance_vjp(&pu, &pi, 1.0);
                    let (gu_n, gj) = lorentz::distance_vjp(&pu, &pj, -1.0);
                    let g_amb_u = ops::add(&gu_p, &gu_n);
                    let g_zu = lorentz::exp_origin_vjp(&zu, &g_amb_u);
                    let g_zi = lorentz::exp_origin_vjp(&zi, &gi);
                    let g_zj = lorentz::exp_origin_vjp(&zj, &gj);
                    ops::axpy(-cfg.lr, &g_zu, m.user_h.row_mut(u));
                    ops::axpy(-cfg.lr, &g_zi, m.item_h.row_mut(i));
                    ops::axpy(-cfg.lr, &g_zj, m.item_h.row_mut(j));
                }
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::evaluate;

    #[test]
    fn hyperml_stays_in_ball_and_learns() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let m = train_hyperml(&BaselineConfig::test_config(), &ds);
        for u in 0..m.users.rows() {
            assert!(poincare::in_ball(m.users.row(u)));
        }
        for v in 0..m.items.rows() {
            assert!(poincare::in_ball(m.items.row(v)));
        }
        let r = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0);
    }

    #[test]
    fn hgcf_final_embeddings_are_on_manifold() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(2);
        let cfg = BaselineConfig { layers: 2, ..BaselineConfig::test_config() };
        let m = train_hgcf(&cfg, &ds, false);
        for u in 0..m.users.rows() {
            assert!(lorentz::on_manifold(m.users.row(u), 1e-6));
        }
        let r = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0);
    }

    #[test]
    fn hrcf_pushes_embeddings_from_origin() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
        let cfg = BaselineConfig { layers: 2, aux_weight: 0.5, ..BaselineConfig::test_config() };
        let plain = train_hgcf(&cfg, &ds, false);
        let reg = train_hgcf(&cfg, &ds, true);
        let mean_norm = |m: &LorentzScorer| {
            (0..m.items.rows())
                .map(|v| lorentz::distance_to_origin(m.items.row(v)))
                .sum::<f64>()
                / m.items.rows() as f64
        };
        assert!(
            mean_norm(&reg) > mean_norm(&plain),
            "root regularizer should inflate norms: {} vs {}",
            mean_norm(&reg),
            mean_norm(&plain)
        );
    }

    #[test]
    fn gdcf_trains_both_geometries() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(4);
        let m = train_gdcf(&BaselineConfig::test_config(), &ds);
        assert!(m.user_e.all_finite() && m.user_h.all_finite());
        let r = evaluate(&m, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(r > 0.0);
    }
}
