//! A minimal, fully offline stand-in for the `proptest` crate.
//!
//! The real `proptest` needs registry access; this workspace must build in a
//! hermetic container, so the subset the test-suite actually uses is
//! reimplemented here with the same names and macro surface:
//!
//! - [`Strategy`] implemented for numeric [`Range`]s, tuples (arity 2–4),
//!   [`prop_filter`](Strategy::prop_filter) and [`prop_map`](Strategy::prop_map),
//! - [`collection::vec`] / [`collection::btree_set`],
//! - the [`proptest!`] macro (plain and `#![proptest_config(..)]` forms),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Differences from the real crate, on purpose: cases are generated from a
//! seed derived deterministically from the test's module path (fully
//! reproducible, no `proptest-regressions` persistence), and failing inputs
//! are reported but **not shrunk**.

use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic SplitMix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`; `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// The case was rejected by `prop_assume!` or a filter; try another.
    Reject,
}

/// Result type returned by each generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value; `None` means the draw was filtered out.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Rejects sampled values failing `filter` (the whole case is retried).
    fn prop_filter<F>(self, _whence: &'static str, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, filter }
    }

    /// Transforms sampled values with `map`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }
}

/// Strategy adapter created by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    filter: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        let v = self.inner.sample(rng)?;
        if (self.filter)(&v) {
            Some(v)
        } else {
            None
        }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).map(&self.map)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                Some(self.start.wrapping_add((rng.next_u64() % span) as $t))
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Collection strategies (`prop::collection::{vec, btree_set}`).
pub mod collection {
    use super::{BTreeSet, Range, Strategy, TestRng};

    /// Length specification for collection strategies: an exact size or a
    /// half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo).max(1);
            self.lo + rng.index(span)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `elem` and whose length comes from
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = self.size.sample(rng);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.elem.sample(rng)?);
            }
            Some(out)
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target sizes drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A set whose elements come from `elem`; duplicates are retried a
    /// bounded number of times, so the final size may fall short of the
    /// target when the element domain is small.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<BTreeSet<S::Value>> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 8 * target + 8 {
                out.insert(self.elem.sample(rng)?);
                attempts += 1;
            }
            Some(out)
        }
    }
}

/// Drives one property test: keeps generating cases until `config.cases`
/// of them are accepted, panicking on the first failure.
///
/// The base seed is a hash of `name`, so every test gets a distinct but
/// fully reproducible input stream.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // FNV-1a over the test name.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        base ^= u64::from(*b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let max_rejects = 256 * u64::from(config.cases.max(16));
    let (mut accepted, mut rejected, mut stream) = (0u32, 0u64, 0u64);
    while accepted < config.cases {
        let mut rng = TestRng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        stream += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest {name}: too many rejected cases ({rejected}); \
                     loosen the filters or assumptions"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name} failed (case {accepted}, input stream {stream}): {msg}")
            }
        }
    }
}

/// Defines property tests. Supports the plain form and the
/// `#![proptest_config(..)]` header form of the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__pt_rng| {
                        $crate::__proptest_bind!(__pt_rng, $($args)*);
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]: binds `pat in strategy` arguments.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $s:expr $(, $($rest:tt)*)?) => {
        let $p = match $crate::Strategy::sample(&($s), $rng) {
            ::core::option::Option::Some(v) => v,
            ::core::option::Option::None => {
                return ::core::result::Result::Err($crate::TestCaseError::Reject)
            }
        };
        $( $crate::__proptest_bind!($rng, $($rest)*); )?
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body; reports both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "values are not equal")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__pt_left, __pt_right) => {
                if !(*__pt_left == *__pt_right) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{} (left: `{:?}`, right: `{:?}`)",
                        format!($($fmt)*),
                        __pt_left,
                        __pt_right,
                    )));
                }
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs) when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The importable surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult};

    /// Mirrors `proptest::prelude::prop` (submodule access to strategies).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds_and_are_deterministic() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            let x = Strategy::sample(&(0.5f64..2.0), &mut a).unwrap();
            assert!((0.5..2.0).contains(&x));
            assert_eq!(x, Strategy::sample(&(0.5f64..2.0), &mut b).unwrap());
            let n = Strategy::sample(&(3usize..9), &mut a).unwrap();
            assert!((3..9).contains(&n));
            let _ = b.next_u64();
        }
    }

    #[test]
    fn collections_honour_size_specs() {
        let mut rng = crate::TestRng::new(11);
        let v = Strategy::sample(&prop::collection::vec(0u64..10, 5usize), &mut rng).unwrap();
        assert_eq!(v.len(), 5);
        let v = Strategy::sample(&prop::collection::vec(0u64..10, 2..6), &mut rng).unwrap();
        assert!((2..6).contains(&v.len()));
        let s = Strategy::sample(&prop::collection::btree_set(0usize..50, 0..20), &mut rng)
            .unwrap();
        assert!(s.len() < 20);
    }

    #[test]
    fn filters_reject_and_maps_apply() {
        let mut rng = crate::TestRng::new(3);
        let even = (0u64..100).prop_filter("even", |n| n % 2 == 0);
        for _ in 0..50 {
            if let Some(n) = Strategy::sample(&even, &mut rng) {
                assert_eq!(n % 2, 0);
            }
        }
        let doubled = (1u64..10).prop_map(|n| n * 2);
        let d = Strategy::sample(&doubled, &mut rng).unwrap();
        assert!(d % 2 == 0 && (2..20).contains(&d));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_binds_tuples_and_vecs((a, b) in (0usize..5, 1u64..9), v in prop::collection::vec(-1.0f64..1.0, 3)) {
            prop_assume!(a != 4);
            prop_assert!(a < 5);
            prop_assert_eq!(v.len(), 3, "vec length off for b={}", b);
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic_with_message() {
        crate::run_cases(ProptestConfig::with_cases(4), "t", |_| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }
}
