//! CLI parsing, default configurations, and metric collection.

use logirec_baselines::BaselineConfig;
use logirec_core::LogiRecConfig;
use logirec_data::{Dataset, DatasetSpec, Scale, Split};
use logirec_eval::{evaluate, EvalResult, Ranker};
use logirec_obs::Telemetry;

/// Command-line arguments shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Dataset scale (`--scale tiny|small|paper`, default `small`).
    pub scale: Scale,
    /// Number of random seeds (`--seeds N`, default 2).
    pub seeds: u64,
    /// Override training epochs (`--epochs N`; 0 = per-scale default).
    pub epochs: usize,
    /// Datasets to run (`--datasets ciao,cd`, default all four).
    pub datasets: Vec<String>,
    /// Evaluation threads (`--threads N`, default = available cores).
    pub threads: usize,
    /// Training threads (`--train-threads N`, default = available cores).
    /// Training is bit-identical for every value (see DESIGN.md).
    pub train_threads: usize,
    /// Whether [`RunArgs::enable_bin_trace`] may attach a JSONL sink
    /// (`--no-trace` turns it off, default on).
    pub trace: bool,
    /// Telemetry handle threaded into every training config
    /// ([`bin_telemetry`] wires it to `results/<bin>.trace.jsonl`;
    /// `--no-trace` keeps it disabled).
    pub telemetry: Telemetry,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seeds: 2,
            epochs: 0,
            datasets: vec!["ciao".into(), "cd".into(), "clothing".into(), "book".into()],
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            train_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            trace: true,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Builds the telemetry handle for an experiment binary: a JSONL sink at
/// `results/<name>.trace.jsonl` next to the table/figure text output, so a
/// regeneration run leaves a structured per-phase trace behind. Falls back
/// to a disabled handle (and warns) when the file cannot be created, so a
/// read-only checkout still runs the experiment.
pub fn bin_telemetry(name: &str) -> Telemetry {
    let _ = std::fs::create_dir_all("results");
    let path = format!("results/{name}.trace.jsonl");
    match Telemetry::builder().jsonl(&path).build() {
        Ok(tel) => tel,
        Err(e) => {
            eprintln!("warning: cannot open {path} ({e}); running without trace");
            Telemetry::disabled()
        }
    }
}

impl RunArgs {
    /// Parses `std::env::args`, panicking with a usage message on errors.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The standard experiment-binary prologue: parse `std::env::args`,
    /// attach the per-binary JSONL sink at `results/<name>.trace.jsonl`
    /// (unless `--no-trace`), and hand back a clone of the telemetry
    /// handle — one call instead of the three lines every bin repeated.
    pub fn init(name: &str) -> (Self, Telemetry) {
        let mut args = Self::from_env();
        args.enable_bin_trace(name);
        let tel = args.telemetry.clone();
        (args, tel)
    }

    /// Parses an explicit argument iterator (used by tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next().unwrap_or_else(|| panic!("flag {flag} requires a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    let v = value();
                    out.scale = Scale::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scale {v}; use tiny|small|paper"));
                }
                "--seeds" => out.seeds = value().parse().expect("--seeds N"),
                "--epochs" => out.epochs = value().parse().expect("--epochs N"),
                "--threads" => out.threads = value().parse().expect("--threads N"),
                "--train-threads" => {
                    out.train_threads = value().parse().expect("--train-threads N");
                }
                "--datasets" => {
                    out.datasets = value().split(',').map(|s| s.trim().to_string()).collect();
                }
                "--no-trace" => out.trace = false,
                other => panic!(
                    "unknown flag {other}; known: --scale --seeds --epochs --datasets \
                     --threads --train-threads --no-trace"
                ),
            }
        }
        out
    }

    /// Epochs to train, honoring the override.
    pub fn epochs_or(&self, default_for_scale: usize) -> usize {
        if self.epochs > 0 {
            self.epochs
        } else {
            default_for_scale
        }
    }

    /// Per-scale default epoch budget.
    pub fn default_epochs(&self) -> usize {
        match self.scale {
            Scale::Tiny => 8,
            Scale::Small => 30,
            Scale::Paper => 15,
        }
    }

    /// Attaches the standard per-binary JSONL sink (see [`bin_telemetry`])
    /// unless the user passed `--no-trace`. Call once at the top of an
    /// experiment binary, before cloning configs off these args.
    pub fn enable_bin_trace(&mut self, name: &str) {
        if self.trace {
            self.telemetry = bin_telemetry(name);
        }
    }

    /// The dataset specs selected by `--datasets`.
    pub fn specs(&self) -> Vec<DatasetSpec> {
        self.datasets
            .iter()
            .map(|name| {
                DatasetSpec::by_name(name, self.scale)
                    .unwrap_or_else(|| panic!("unknown dataset {name}"))
            })
            .collect()
    }
}

/// Per-dataset λ. The paper picks 0.1 on Ciao/CD and 1.0 on the
/// tag/relation-rich Clothing/Book (Fig. 6); our validation sweeps on the
/// synthetic benchmarks land at 0.5 for the sparse-taxonomy datasets
/// (same inverted-U shape, shifted optimum — see EXPERIMENTS.md).
pub fn paper_lambda(dataset: &str) -> f64 {
    match dataset {
        "clothing" | "book" => 1.0,
        _ => 0.5,
    }
}

/// Default LogiRec/LogiRec++ configuration for a dataset at a scale.
///
/// LogiRec gets twice the baseline epoch budget with best-validation
/// snapshot selection: its full-graph steps converge more slowly than the
/// per-sample baselines, and the snapshot guards against overfitting the
/// extra epochs (every method is thus trained to its own convergence, as
/// the paper's per-method grid search does).
pub fn logirec_config(args: &RunArgs, dataset: &str, mining: bool, seed: u64) -> LogiRecConfig {
    let mut cfg = LogiRecConfig {
        lambda: paper_lambda(dataset),
        mining,
        seed,
        epochs: args.epochs_or(args.default_epochs()) * 2,
        eval_threads: args.threads,
        train_threads: args.train_threads,
        // Snapshot the best validation epoch (standard protocol; the
        // baselines' scorers are similarly selected by their final state
        // after per-method learning-rate tuning).
        eval_every: 5,
        patience: 0,
        telemetry: args.telemetry.clone(),
        ..LogiRecConfig::default()
    };
    if args.scale == Scale::Tiny {
        cfg.dim = 16;
        cfg.batch_size = 256;
    }
    cfg
}

/// Default baseline configuration at a scale.
pub fn baseline_config(args: &RunArgs, seed: u64) -> BaselineConfig {
    let mut cfg = BaselineConfig {
        seed,
        epochs: args.epochs_or(args.default_epochs()),
        ..BaselineConfig::default()
    };
    if args.scale == Scale::Tiny {
        cfg.dim = 16;
        cfg.batch_size = 256;
    }
    cfg
}

/// The four headline metrics of Table II plus the per-user vectors needed
/// for the Wilcoxon test.
#[derive(Debug, Clone)]
pub struct ExpMetrics {
    /// Recall@10.
    pub r10: f64,
    /// Recall@20.
    pub r20: f64,
    /// NDCG@10.
    pub n10: f64,
    /// NDCG@20.
    pub n20: f64,
    /// Per-user Recall@20 (Wilcoxon pairing).
    pub per_user: Vec<f64>,
}

impl ExpMetrics {
    /// Collects the metric quadruple on the test split.
    pub fn collect(ranker: &dyn Ranker, ds: &Dataset, threads: usize) -> Self {
        let res: EvalResult = evaluate(ranker, ds, Split::Test, &[10, 20], threads);
        Self {
            r10: res.recall_at(10),
            r20: res.recall_at(20),
            n10: res.ndcg_at(10),
            n20: res.ndcg_at(20),
            per_user: res.per_user_recall,
        }
    }

    /// The quadruple as an array (Recall@10, Recall@20, NDCG@10, NDCG@20).
    pub fn quad(&self) -> [f64; 4] {
        [self.r10, self.r20, self.n10, self.n20]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> RunArgs {
        RunArgs::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_cover_all_datasets() {
        let a = RunArgs::default();
        assert_eq!(a.datasets.len(), 4);
        assert_eq!(a.scale, Scale::Small);
    }

    #[test]
    fn parse_handles_every_flag() {
        let a = args(&[
            "--scale", "tiny", "--seeds", "5", "--epochs", "12", "--datasets", "cd,book",
            "--threads", "3", "--train-threads", "7",
        ]);
        assert_eq!(a.scale, Scale::Tiny);
        assert_eq!(a.seeds, 5);
        assert_eq!(a.epochs, 12);
        assert_eq!(a.datasets, vec!["cd", "book"]);
        assert_eq!(a.threads, 3);
        assert_eq!(a.train_threads, 7);
        assert_eq!(a.specs().len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn parse_rejects_unknown_flags() {
        args(&["--bogus"]);
    }

    #[test]
    fn lambda_follows_paper() {
        assert_eq!(paper_lambda("ciao"), 0.5);
        assert_eq!(paper_lambda("cd"), 0.5);
        assert_eq!(paper_lambda("clothing"), 1.0);
        assert_eq!(paper_lambda("book"), 1.0);
    }

    #[test]
    fn configs_scale_down_for_tiny() {
        let a = args(&["--scale", "tiny"]);
        let c = logirec_config(&a, "cd", true, 1);
        assert_eq!(c.dim, 16);
        assert!(c.mining);
        assert_eq!(c.epochs, a.default_epochs() * 2);
        let b = baseline_config(&a, 1);
        assert_eq!(b.dim, 16);
    }

    #[test]
    fn trace_defaults_on_but_telemetry_starts_disabled() {
        let a = args(&[]);
        assert!(a.trace);
        assert!(!a.telemetry.is_enabled());
        let b = args(&["--no-trace"]);
        assert!(!b.trace);
    }

    #[test]
    fn epochs_override_wins() {
        let a = args(&["--epochs", "3"]);
        assert_eq!(a.epochs_or(50), 3);
        let b = args(&[]);
        assert_eq!(b.epochs_or(50), 50);
    }
}
