//! The perf-regression gate: a pinned suite of micro/macro measurements
//! serialized as `BENCH_<n>.json`, compared against the last committed
//! baseline with per-metric noise tolerances.
//!
//! The `perfgate` binary runs the suite, writes the structured result, and
//! exits non-zero when any gated metric exceeds its tolerance over the
//! baseline — `scripts/tier1.sh` wires this in as an advisory gate (the
//! suite's self-test, which must flag a synthetic 2× slowdown, is a hard
//! gate). Metrics with `gate: false` (e.g. peak RSS) are informational:
//! reported, never failing.

use std::path::{Path, PathBuf};

use logirec_obs::json::{self, Json};

/// One measured quantity of the suite.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfMetric {
    /// Stable identifier (`kernel.dist_f64_ns`, `serve.p95_us`, …).
    pub name: String,
    /// Measured value; lower is better for every metric in the suite.
    pub value: f64,
    /// Unit, for display only (`ns`, `us`, `ms`, `bytes`).
    pub unit: String,
    /// Allowed ratio `current / baseline` before the gate trips. Pinned in
    /// the suite code (not the baseline file), so tightening it takes
    /// effect immediately.
    pub tolerance: f64,
    /// Whether a regression on this metric fails the gate.
    pub gate: bool,
}

/// A full suite run: the PR number it belongs to plus its metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PerfSuite {
    /// The PR sequence number (the `<n>` of `BENCH_<n>.json`).
    pub pr: u64,
    /// The measured metrics, in suite order.
    pub metrics: Vec<PerfMetric>,
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl PerfSuite {
    /// The metric with the given name.
    pub fn get(&self, name: &str) -> Option<&PerfMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes to the committed `BENCH_<n>.json` format (one metric per
    /// line, stable ordering — diff-friendly).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"pr\": {},\n  \"metrics\": [\n", self.pr);
        for (i, m) in self.metrics.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\":\"{}\",\"value\":{},\"unit\":\"{}\",\"tolerance\":{},\"gate\":{}}}{}\n",
                escape(&m.name),
                m.value,
                escape(&m.unit),
                m.tolerance,
                m.gate,
                if i + 1 < self.metrics.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a `BENCH_<n>.json` document.
    pub fn parse(src: &str) -> Result<Self, String> {
        let j = json::parse(src).map_err(|e| format!("bad suite JSON: {e}"))?;
        let pr = j.get("pr").and_then(Json::as_u64).ok_or("suite lacks integer \"pr\"")?;
        let Some(Json::Arr(items)) = j.get("metrics") else {
            return Err("suite lacks a \"metrics\" array".to_string());
        };
        let mut metrics = Vec::with_capacity(items.len());
        for (i, m) in items.iter().enumerate() {
            let name = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("metric {i} lacks \"name\""))?
                .to_string();
            let value = m
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric {name:?} lacks numeric \"value\""))?;
            metrics.push(PerfMetric {
                value,
                unit: m.get("unit").and_then(Json::as_str).unwrap_or("").to_string(),
                tolerance: m.get("tolerance").and_then(Json::as_f64).unwrap_or(1.5),
                gate: m.get("gate").and_then(Json::as_bool).unwrap_or(true),
                name,
            });
        }
        Ok(Self { pr, metrics })
    }

    /// Reads and parses a suite file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&src)
    }
}

/// One metric's baseline-vs-current verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Metric name.
    pub name: String,
    /// Baseline value (`None` for metrics new in this run).
    pub base: Option<f64>,
    /// Current value.
    pub current: f64,
    /// `current / base` (1.0 when the baseline is missing or zero).
    pub ratio: f64,
    /// The tolerance applied (from the current suite).
    pub tolerance: f64,
    /// Whether this metric can fail the gate.
    pub gate: bool,
    /// Gated AND over tolerance: the regression verdict.
    pub regressed: bool,
}

/// Compares a current run against a baseline. Tolerances and gate flags
/// come from the *current* suite (they are pinned in code); metrics absent
/// from the baseline are reported but can never regress.
pub fn compare(base: &PerfSuite, current: &PerfSuite) -> Vec<Comparison> {
    current
        .metrics
        .iter()
        .map(|m| {
            let base_value = base.get(&m.name).map(|b| b.value);
            let ratio = match base_value {
                Some(b) if b > 0.0 => m.value / b,
                _ => 1.0,
            };
            Comparison {
                name: m.name.clone(),
                base: base_value,
                current: m.value,
                ratio,
                tolerance: m.tolerance,
                gate: m.gate,
                regressed: m.gate && base_value.is_some() && ratio > m.tolerance,
            }
        })
        .collect()
}

/// Renders the comparison table; regressed rows are marked `REGRESSED`,
/// ungated rows `info`.
pub fn render_comparisons(rows: &[Comparison]) -> String {
    let mut out = format!(
        "{:<24} {:>12} {:>12} {:>7} {:>6}  verdict\n",
        "metric", "baseline", "current", "ratio", "tol"
    );
    for c in rows {
        let verdict = if c.regressed {
            "REGRESSED"
        } else if !c.gate {
            "info"
        } else if c.base.is_none() {
            "new"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "{:<24} {:>12} {:>12.1} {:>7.2} {:>6.2}  {verdict}\n",
            c.name,
            c.base.map_or_else(|| "-".to_string(), |b| format!("{b:.1}")),
            c.current,
            c.ratio,
            c.tolerance,
        ));
    }
    out
}

/// Finds the highest-numbered `BENCH_<n>.json` in `dir` — the last
/// committed baseline. Returns its PR number and path.
pub fn find_latest_baseline(dir: &Path) -> Option<(u64, PathBuf)> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(num) = name.strip_prefix("BENCH_").and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(n) = num.parse::<u64>() else { continue };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, entry.path()));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite(values: &[(&str, f64)]) -> PerfSuite {
        PerfSuite {
            pr: 8,
            metrics: values
                .iter()
                .map(|(n, v)| PerfMetric {
                    name: n.to_string(),
                    value: *v,
                    unit: "us".to_string(),
                    tolerance: 1.5,
                    gate: true,
                })
                .collect(),
        }
    }

    #[test]
    fn json_round_trips() {
        let mut s = suite(&[("kernel.dist_f64_ns", 123.5), ("serve.p95_us", 4096.0)]);
        s.metrics[1].gate = false;
        s.metrics[1].unit = "bytes".to_string();
        let parsed = PerfSuite::parse(&s.to_json()).expect("round trip");
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_rejects_malformed_suites() {
        assert!(PerfSuite::parse("{}").is_err());
        assert!(PerfSuite::parse("{\"pr\":8}").is_err());
        assert!(PerfSuite::parse("{\"pr\":8,\"metrics\":[{\"value\":1}]}").is_err());
    }

    #[test]
    fn two_x_slowdown_is_flagged() {
        let base = suite(&[("a", 100.0), ("b", 100.0)]);
        let mut cur = suite(&[("a", 200.0), ("b", 120.0)]);
        let rows = compare(&base, &cur);
        assert!(rows[0].regressed, "2× over a 1.5 tolerance must regress");
        assert!(!rows[1].regressed, "1.2× within a 1.5 tolerance passes");
        assert!((rows[0].ratio - 2.0).abs() < 1e-12);
        // The same slowdown on an ungated metric is informational only.
        cur.metrics[0].gate = false;
        assert!(!compare(&base, &cur)[0].regressed);
    }

    #[test]
    fn new_and_missing_baseline_metrics_never_regress() {
        let base = suite(&[("a", 100.0)]);
        let cur = suite(&[("a", 100.0), ("fresh", 9e9)]);
        let rows = compare(&base, &cur);
        assert_eq!(rows.len(), 2);
        assert!(!rows[1].regressed);
        assert_eq!(rows[1].base, None);
        let table = render_comparisons(&rows);
        assert!(table.contains("new"), "{table}");
        assert!(table.contains("ok"), "{table}");
    }

    #[test]
    fn render_marks_regressions() {
        let rows = compare(&suite(&[("a", 10.0)]), &suite(&[("a", 100.0)]));
        assert!(render_comparisons(&rows).contains("REGRESSED"));
    }

    #[test]
    fn latest_baseline_wins_by_number() {
        let dir = std::env::temp_dir().join(format!("perfgate_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for n in [2, 10, 7] {
            std::fs::write(dir.join(format!("BENCH_{n}.json")), suite(&[]).to_json()).unwrap();
        }
        std::fs::write(dir.join("BENCH_x.json"), "junk").unwrap();
        let (n, path) = find_latest_baseline(&dir).expect("found");
        assert_eq!(n, 10);
        assert!(path.ends_with("BENCH_10.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
