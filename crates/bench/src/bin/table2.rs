//! Table II — overall comparison of all 15 methods on the four benchmarks.
//!
//! For every dataset, trains the 13 baselines plus LogiRec and LogiRec++
//! over `--seeds` random seeds and reports Recall@{10,20} / NDCG@{10,20}
//! as mean±std (percent). LogiRec++ cells carry `*` when the Wilcoxon
//! signed-rank test against the best baseline's per-user recalls is
//! significant at α = 0.05, matching the paper's protocol.
//!
//! Paper expectation (shape): LogiRec++ > LogiRec > {HRCF | AGCN} > other
//! baselines, with the largest relative gains on the tag-rich sparse
//! datasets (Clothing, Book).
//!
//! Run: `cargo run --release -p logirec-bench --bin table2 -- --scale small --seeds 2`

use logirec_baselines::{train_method, Method};
use logirec_bench::harness::{baseline_config, logirec_config, ExpMetrics, RunArgs};
use logirec_bench::table::{self, Row};
use logirec_core::train;
use logirec_eval::{mean_std, wilcoxon_signed_rank, MeanStd};

fn main() {
    let (args, tel) = RunArgs::init("table2");
    let headers = ["Recall@10", "Recall@20", "NDCG@10", "NDCG@20"];

    for spec in args.specs() {
        tel.progress(format!("== dataset {} ==", spec.name));
        // Per-method, per-seed quadruples and the last seed's per-user
        // recall vector (for significance pairing).
        let mut quads: Vec<(String, Vec<[f64; 4]>, Vec<f64>)> = Vec::new();

        for method in Method::all() {
            let mut per_seed = Vec::new();
            let mut per_user = Vec::new();
            for seed in 0..args.seeds {
                let ds = spec.generate(100 + seed);
                let cfg = method.tuned(&baseline_config(&args, 7 * seed + 1));
                let model = train_method(method, &cfg, &ds);
                let m = ExpMetrics::collect(&model, &ds, args.threads);
                per_seed.push(m.quad());
                per_user = m.per_user;
            }
            tel.progress(format!("  {:>9}: R@10 {:.4}", method.label(), mean_of(&per_seed, 0)));
            quads.push((method.label().to_string(), per_seed, per_user));
        }

        for mining in [false, true] {
            let label = if mining { "LogiRec++" } else { "LogiRec" };
            let mut per_seed = Vec::new();
            let mut per_user = Vec::new();
            for seed in 0..args.seeds {
                let ds = spec.generate(100 + seed);
                let cfg = logirec_config(&args, spec.name, mining, 7 * seed + 1);
                let (model, _) = train(cfg, &ds);
                let m = ExpMetrics::collect(&model, &ds, args.threads);
                per_seed.push(m.quad());
                per_user = m.per_user;
            }
            tel.progress(format!("  {label:>9}: R@10 {:.4}", mean_of(&per_seed, 0)));
            quads.push((label.to_string(), per_seed, per_user));
        }

        // Best baseline by mean Recall@10 (excludes the two LogiRec rows).
        let best_baseline = quads[..13]
            .iter()
            .max_by(|a, b| {
                mean_of(&a.1, 0).partial_cmp(&mean_of(&b.1, 0)).expect("finite")
            })
            .expect("baselines exist")
            .clone();

        let mut rows = Vec::new();
        for (label, per_seed, per_user) in &quads {
            let agg: Vec<MeanStd> =
                (0..4).map(|i| mean_std(&per_seed.iter().map(|q| q[i]).collect::<Vec<_>>())).collect();
            let star = label == "LogiRec++"
                && per_user.len() == best_baseline.2.len()
                && wilcoxon_signed_rank(per_user, &best_baseline.2)
                    .is_some_and(|w| w.significant(0.05) && w.z > 0.0);
            rows.push(Row::from_metrics(label.clone(), &agg, star));
        }
        let title = format!(
            "Table II ({}, scale = {:?}, seeds = {}; best baseline: {})",
            spec.name, args.scale, args.seeds, best_baseline.0
        );
        let rendered = table::render(&title, &headers, &rows);
        tel.info(&rendered);
        table::save("table2", &rendered);
    }
    tel.finish();
}

fn mean_of(per_seed: &[[f64; 4]], idx: usize) -> f64 {
    per_seed.iter().map(|q| q[idx]).sum::<f64>() / per_seed.len().max(1) as f64
}
