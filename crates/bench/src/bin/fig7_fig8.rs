//! Fig. 7 / Fig. 8 — item-embedding visualizations on CD and Book.
//!
//! The paper visualizes the item embeddings of AGCN, HRCF, LogiRec, and
//! LogiRec++ colored by tag group and argues LogiRec++ separates weakly
//! exclusive tag pairs best. This binary makes the claim quantitative:
//! items are labeled by their level-1 ancestor tag, a silhouette score is
//! computed in each method's native geometry (higher = better separated
//! tag clusters), and 2-D PCA projections are written to `results/` for
//! plotting.
//!
//! Paper expectation (shape): silhouette(LogiRec++) > silhouette(LogiRec)
//! > silhouette(HRCF), with AGCN competitive but below LogiRec++.
//!
//! Run: `cargo run --release -p logirec-bench --bin fig7_fig8 -- --scale small --datasets cd,book`

use logirec_baselines::graphs::train_agcn;
use logirec_baselines::hyper::train_hgcf;
use logirec_bench::harness::{baseline_config, logirec_config, RunArgs};
use logirec_bench::table::{self, Row};
use logirec_core::train;
use logirec_data::Dataset;
use logirec_hyperbolic::{maps, poincare};
use logirec_linalg::{ops, SplitMix64};

fn main() {
    let (mut args, tel) = RunArgs::init("fig7_fig8");
    if args.datasets.len() == 4 {
        args.datasets = vec!["cd".into(), "book".into()];
    }
    for spec in args.specs() {
        tel.progress(format!("== dataset {} ==", spec.name));
        let ds = spec.generate_traced(100, &tel);
        let labels = item_labels(&ds);

        let mut rows = Vec::new();

        // AGCN (Euclidean).
        let agcn = train_agcn(&logirec_baselines::Method::Agcn.tuned(&baseline_config(&args, 1)), &ds);
        let agcn_items: Vec<Vec<f64>> =
            (0..ds.n_items()).map(|v| agcn.items.row(v).to_vec()).collect();
        rows.push(score_row("AGCN", &agcn_items, &labels, false, spec.name, &tel));

        // HRCF (Lorentz → Poincaré).
        let hrcf = train_hgcf(&logirec_baselines::Method::Hrcf.tuned(&baseline_config(&args, 1)), &ds, true);
        let hrcf_items: Vec<Vec<f64>> = (0..ds.n_items())
            .map(|v| maps::lorentz_to_poincare(hrcf.items.row(v)))
            .collect();
        rows.push(score_row("HRCF", &hrcf_items, &labels, true, spec.name, &tel));

        // LogiRec and LogiRec++.
        for mining in [false, true] {
            let name = if mining { "LogiRec++" } else { "LogiRec" };
            let cfg = logirec_config(&args, spec.name, mining, 1);
            let (model, _) = train(cfg, &ds);
            let items: Vec<Vec<f64>> =
                (0..ds.n_items()).map(|v| model.item_poincare(v)).collect();
            rows.push(score_row(name, &items, &labels, true, spec.name, &tel));
        }

        let title = format!(
            "Fig. 7/8 ({}, scale = {:?}): tag-cluster silhouette (higher = better separated)",
            spec.name, args.scale
        );
        let rendered = table::render(&title, &["silhouette"], &rows);
        tel.info(&rendered);
        table::save("fig7_fig8", &rendered);
    }
    tel.finish();
}

/// Level-1 ancestor tag of each item's first tag — the "color" groups of
/// the paper's scatter plots.
fn item_labels(ds: &Dataset) -> Vec<usize> {
    (0..ds.n_items())
        .map(|v| {
            let t = ds.item_tags[v][0];
            *ds.taxonomy.ancestors(t).last().unwrap_or(&t)
        })
        .collect()
}

fn score_row(
    name: &str,
    items: &[Vec<f64>],
    labels: &[usize],
    hyperbolic: bool,
    dataset: &str,
    tel: &logirec_obs::Telemetry,
) -> Row {
    let s = silhouette(items, labels, hyperbolic, 400);
    tel.progress(format!("  {name:>10}: silhouette {s:.4}"));
    dump_projection(name, items, labels, dataset);
    Row { label: name.to_string(), cells: vec![format!("{s:.4}")] }
}

/// Mean silhouette coefficient over a deterministic sample of items, using
/// the Poincaré metric for hyperbolic embeddings and the Euclidean metric
/// otherwise.
fn silhouette(items: &[Vec<f64>], labels: &[usize], hyperbolic: bool, cap: usize) -> f64 {
    let mut rng = SplitMix64::new(7);
    let mut idx: Vec<usize> = (0..items.len()).collect();
    rng.shuffle(&mut idx);
    idx.truncate(cap);
    let dist = |a: &[f64], b: &[f64]| {
        if hyperbolic {
            poincare::distance(a, b)
        } else {
            ops::dist(a, b)
        }
    };
    let classes: Vec<usize> = {
        let mut c: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    let mut total = 0.0;
    let mut n = 0usize;
    for &i in &idx {
        let mut sums: Vec<(f64, usize)> = vec![(0.0, 0); classes.len()];
        for &j in &idx {
            if i == j {
                continue;
            }
            let k = classes.binary_search(&labels[j]).expect("class known");
            let d = dist(&items[i], &items[j]);
            sums[k].0 += d;
            sums[k].1 += 1;
        }
        let own = classes.binary_search(&labels[i]).expect("class known");
        if sums[own].1 == 0 {
            continue;
        }
        let a = sums[own].0 / sums[own].1 as f64;
        let b = sums
            .iter()
            .enumerate()
            .filter(|&(k, &(_, cnt))| k != own && cnt > 0)
            .map(|(_, &(s, cnt))| s / cnt as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b).max(1e-12);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Writes a 2-D PCA projection (x, y, label) per item to
/// `results/fig78_<dataset>_<method>.tsv` for external plotting.
fn dump_projection(name: &str, items: &[Vec<f64>], labels: &[usize], dataset: &str) {
    let (p1, p2) = pca2(items);
    let mut tsv = String::from("x\ty\tlabel\n");
    for (v, item) in items.iter().enumerate() {
        tsv.push_str(&format!(
            "{:.6}\t{:.6}\t{}\n",
            ops::dot(item, &p1),
            ops::dot(item, &p2),
            labels[v]
        ));
    }
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("fig78_{dataset}_{}.tsv", name.replace("+", "p")));
        let _ = std::fs::write(path, tsv);
    }
}

/// First two principal directions via power iteration with deflation.
fn pca2(items: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    let d = items[0].len();
    let n = items.len() as f64;
    let mean: Vec<f64> = (0..d)
        .map(|k| items.iter().map(|x| x[k]).sum::<f64>() / n)
        .collect();
    let centered: Vec<Vec<f64>> = items.iter().map(|x| ops::sub(x, &mean)).collect();
    let power = |deflate: Option<&[f64]>| -> Vec<f64> {
        let mut v = vec![0.0; d];
        let mut rng = SplitMix64::new(13);
        for x in &mut v {
            *x = rng.normal();
        }
        for _ in 0..50 {
            if let Some(p) = deflate {
                let proj = ops::dot(&v, p);
                ops::axpy(-proj, p, &mut v);
            }
            // v ← Cov · v = (1/n) Σ x (x·v)
            let mut next = vec![0.0; d];
            for x in &centered {
                ops::axpy(ops::dot(x, &v), x, &mut next);
            }
            let norm = ops::norm(&next).max(1e-12);
            ops::scale(&mut next, 1.0 / norm);
            v = next;
        }
        if let Some(p) = deflate {
            let proj = ops::dot(&v, p);
            ops::axpy(-proj, p, &mut v);
            let norm = ops::norm(&v).max(1e-12);
            ops::scale(&mut v, 1.0 / norm);
        }
        v
    };
    let p1 = power(None);
    let p2 = power(Some(&p1));
    (p1, p2)
}
