//! Fig. 6 — sensitivity of LogiRec++ to the logic-loss weight λ, against
//! the best baseline, on all four datasets.
//!
//! Paper expectation (shape): an inverted-U in λ with the optimum at 0.1
//! on Ciao/CD and 1.0 on Clothing/Book; LogiRec++ above the best baseline
//! across the useful λ range; λ = 0 (no logical relations) clearly worse.
//!
//! Run: `cargo run --release -p logirec-bench --bin fig6 -- --scale small`

use logirec_baselines::{train_method, Method};
use logirec_bench::harness::{baseline_config, logirec_config, ExpMetrics, RunArgs};
use logirec_bench::table::{self, Row};
use logirec_core::train;

const LAMBDAS: [f64; 5] = [0.0, 0.01, 0.1, 1.0, 1.5];

fn main() {
    let (mut args, tel) = RunArgs::init("fig6");
    if args.datasets.len() == 4 {
        // Default to the two datasets Table IV also studies; pass
        // --datasets explicitly for all four.
        args.datasets = vec!["cd".into(), "clothing".into()];
    }
    for spec in args.specs() {
        tel.progress(format!("== dataset {} ==", spec.name));
        let ds = spec.generate_traced(100, &tel);

        // Best baseline reference line: HRCF (the paper's most frequent
        // runner-up; AGCN occasionally wins but HRCF is the hyperbolic SOTA).
        let bcfg = Method::Hrcf.tuned(&baseline_config(&args, 1));
        let hrcf = train_method(Method::Hrcf, &bcfg, &ds);
        let base = ExpMetrics::collect(&hrcf, &ds, args.threads);

        let mut rows = Vec::new();
        rows.push(Row {
            label: "HRCF (best baseline)".into(),
            cells: vec![format!("{:.2}", 100.0 * base.r10), format!("{:.2}", 100.0 * base.n10)],
        });
        for lambda in LAMBDAS {
            let mut cfg = logirec_config(&args, spec.name, true, 1);
            cfg.lambda = lambda;
            let (model, _) = train(cfg, &ds);
            let m = ExpMetrics::collect(&model, &ds, args.threads);
            tel.progress(format!("  lambda {lambda}: R@10 {:.4}", m.r10));
            rows.push(Row {
                label: format!("LogiRec++ lambda={lambda}"),
                cells: vec![format!("{:.2}", 100.0 * m.r10), format!("{:.2}", 100.0 * m.n10)],
            });
        }
        let title = format!("Fig. 6 ({}, scale = {:?})", spec.name, args.scale);
        let rendered = table::render(&title, &["Recall@10 %", "NDCG@10 %"], &rows);
        tel.info(&rendered);
        table::save("fig6", &rendered);
    }
    tel.finish();
}
