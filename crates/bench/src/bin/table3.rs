//! Table III — ablation study of LogiRec++.
//!
//! Trains the seven Table III variants (full model; w/o L_Mem / L_Hie /
//! L_Ex; w/o HGCN; w/o LRM i.e. plain LogiRec; w/o Hyper i.e. Euclidean)
//! on each dataset.
//!
//! Paper expectation (shape): removing the HGCN hurts most, removing
//! L_Ex hurts least among the three relation losses, and the full model
//! wins everywhere.
//!
//! Run: `cargo run --release -p logirec-bench --bin table3 -- --scale small`

use logirec_bench::harness::{logirec_config, ExpMetrics, RunArgs};
use logirec_bench::table::{self, Row};
use logirec_core::{train, Variant};
use logirec_eval::{mean_std, MeanStd};

fn main() {
    let (args, tel) = RunArgs::init("table3");
    let headers = ["Recall@10", "Recall@20", "NDCG@10", "NDCG@20"];

    for spec in args.specs() {
        tel.progress(format!("== dataset {} ==", spec.name));
        let mut rows = Vec::new();
        for variant in Variant::table3() {
            let mut per_seed = Vec::new();
            for seed in 0..args.seeds {
                let ds = spec.generate(100 + seed);
                let base = logirec_config(&args, spec.name, true, 7 * seed + 1);
                let cfg = variant.apply(base);
                let (model, _) = train(cfg, &ds);
                per_seed.push(ExpMetrics::collect(&model, &ds, args.threads).quad());
            }
            let agg: Vec<MeanStd> = (0..4)
                .map(|i| mean_std(&per_seed.iter().map(|q| q[i]).collect::<Vec<_>>()))
                .collect();
            tel.progress(format!("  {:>14}: R@10 {}", variant.label(), agg[0].format_percent()));
            rows.push(Row::from_metrics(variant.label(), &agg, false));
        }
        let title =
            format!("Table III ({}, scale = {:?}, seeds = {})", spec.name, args.scale, args.seeds);
        let rendered = table::render(&title, &headers, &rows);
        tel.info(&rendered);
        table::save("table3", &rendered);
    }
    tel.finish();
}
