//! Parallel training scaling — epoch wall-time vs `train_threads`.
//!
//! Trains the same LogiRec++ configuration on a Small synthetic dataset at
//! 1/2/4/8 training threads, reports mean epoch time and speedup over the
//! single-thread run, and asserts that every multi-threaded model is
//! bit-identical to the single-threaded one (the determinism contract of
//! the sharded gradient path; see DESIGN.md "Parallel training").
//!
//! Run: `cargo run --release -p logirec-bench --bin par_scaling -- --scale small --datasets ciao`

use std::time::Instant;

use logirec_bench::harness::{logirec_config, RunArgs};
use logirec_bench::table::{self, Row};
use logirec_core::{train, LogiRec};
use logirec_linalg::Embedding;

/// True when every coordinate of every embedding family matches bitwise.
fn bit_identical(a: &LogiRec, b: &LogiRec) -> bool {
    let eq = |x: &Embedding, y: &Embedding| {
        x.as_slice().len() == y.as_slice().len()
            && x.as_slice()
                .iter()
                .zip(y.as_slice())
                .all(|(p, q)| p.to_bits() == q.to_bits())
    };
    eq(&a.tags, &b.tags) && eq(&a.items, &b.items) && eq(&a.users, &b.users)
}

fn main() {
    let (mut args, tel) = RunArgs::init("par_scaling");
    if args.datasets.len() == 4 {
        args.datasets = vec!["ciao".into()];
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());

    for spec in args.specs() {
        let ds = spec.generate_traced(100, &tel);
        let mut baseline: Option<(LogiRec, f64)> = None;
        let mut rows = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let mut cfg = logirec_config(&args, spec.name, true, 1);
            cfg.train_threads = threads;
            // Isolate the training hot path: no mid-run validation evals.
            cfg.eval_every = 0;
            let epochs = cfg.epochs;
            let t0 = Instant::now();
            let (model, report) = train(cfg, &ds);
            let secs = t0.elapsed().as_secs_f64();
            let per_epoch = secs / report.epochs_run.max(1) as f64;
            let (speedup, identical) = match &baseline {
                None => (1.0, true),
                Some((m1, e1)) => (e1 / per_epoch, bit_identical(&model, m1)),
            };
            assert!(
                identical,
                "train_threads={threads} diverged bitwise from train_threads=1"
            );
            rows.push(Row {
                label: format!("{threads}"),
                cells: vec![
                    format!("{per_epoch:.3}"),
                    format!("{speedup:.2}x"),
                    "yes".into(),
                ],
            });
            if baseline.is_none() {
                baseline = Some((model, per_epoch));
            }
            tel.info(format!(
                "{}: train_threads={threads} -> {per_epoch:.3} s/epoch over {epochs} epochs",
                spec.name
            ));
        }
        let rendered = table::render(
            &format!(
                "Parallel training scaling ({}, {:?}, {hw} hardware thread(s))",
                spec.name, args.scale
            ),
            &["s/epoch", "speedup vs 1", "bit-identical"],
            &rows,
        );
        tel.info(&rendered);
        table::save("par_scaling", &rendered);
    }
    tel.finish();
}
