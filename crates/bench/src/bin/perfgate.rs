//! `perfgate` — the perf-regression gate.
//!
//! Runs a pinned micro+macro suite (kernel distances, GCN propagation, a
//! tiny training run, in-process serve latency), writes the structured
//! result as `BENCH_<n>.json`, and compares against the last committed
//! baseline with per-metric noise tolerances. Exits non-zero when any
//! gated metric regresses past its tolerance.
//!
//! ```text
//! perfgate                          run, write BENCH_8.json, compare vs auto baseline
//! perfgate --out FILE               write the suite elsewhere
//! perfgate --baseline auto|none|F   baseline selection (default auto: highest
//!                                   BENCH_<n>.json in the current directory)
//! perfgate --tolerance 2.0          override every gated metric's tolerance
//! perfgate --self-test              verify the gate flags a synthetic 2× slowdown
//! ```
//!
//! Baseline-update workflow: when a slowdown is intentional (e.g. a new
//! feature on the hot path), re-run `perfgate` and commit the refreshed
//! `BENCH_<n>.json` for the PR alongside the change; the next PR gates
//! against it. Tolerances are pinned here, not in the baseline, so
//! tightening them needs no baseline rewrite.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use logirec_bench::perf::{compare, find_latest_baseline, render_comparisons, PerfMetric, PerfSuite};
use logirec_core::stream::{fold_in_user, FoldInOptions};
use logirec_core::{graph, train, LogiRec, LogiRecConfig, Precision};
use logirec_data::{DatasetSpec, Scale};
use logirec_hyperbolic::lorentz;
use logirec_linalg::{Embedding, Scalar, SplitMix64};
use logirec_obs::rss;
use logirec_serve::{
    Client, ClusterIndex, IndexConfig, ModelSnapshot, Request, ServeContext, Server, ServerConfig,
};

/// The PR this suite file belongs to (the `<n>` of `BENCH_<n>.json`).
const PR: u64 = 10;

const USAGE: &str =
    "usage: perfgate [--out FILE] [--baseline auto|none|FILE] [--tolerance F] [--self-test]";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("perfgate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let mut out = PathBuf::from(format!("BENCH_{PR}.json"));
    let mut baseline = "auto".to_string();
    let mut tolerance: Option<f64> = None;
    let mut self_test = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(it.next().ok_or("--out needs a path")?),
            "--baseline" => {
                baseline = it.next().ok_or("--baseline needs auto|none|FILE")?.clone();
            }
            "--tolerance" => {
                tolerance = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|t| *t >= 1.0)
                        .ok_or("--tolerance needs a ratio ≥ 1.0")?,
                );
            }
            "--self-test" => self_test = true,
            "--help" | "-h" => return Ok(format!("{USAGE}\n")),
            other => return Err(format!("unexpected argument {other:?}\n{USAGE}")),
        }
    }

    if self_test {
        return run_self_test();
    }

    // Resolve the baseline BEFORE writing this run's file, so `auto` can
    // never compare a run against itself.
    let base = match baseline.as_str() {
        "none" => None,
        "auto" => match find_latest_baseline(Path::new(".")) {
            None => None,
            Some((n, path)) => Some((format!("BENCH_{n}.json"), PerfSuite::load(&path)?)),
        },
        file => Some((file.to_string(), PerfSuite::load(Path::new(file))?)),
    };

    let mut suite = measure_suite();
    if let Some(t) = tolerance {
        for m in &mut suite.metrics {
            m.tolerance = t;
        }
    }
    std::fs::write(&out, suite.to_json())
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;

    let mut report = format!("perfgate: wrote {}\n", out.display());
    match base {
        None => {
            report.push_str("no baseline found; this run becomes the baseline\n");
            Ok(report)
        }
        Some((label, base)) => {
            let rows = compare(&base, &suite);
            report.push_str(&format!("baseline: {label} (pr {})\n", base.pr));
            report.push_str(&render_comparisons(&rows));
            let regressed: Vec<&str> =
                rows.iter().filter(|c| c.regressed).map(|c| c.name.as_str()).collect();
            if regressed.is_empty() {
                report.push_str("perfgate: OK — no gated metric regressed\n");
                Ok(report)
            } else {
                Err(format!(
                    "{report}perfgate: REGRESSED — {} past tolerance; if intentional, \
                     commit the refreshed {} as the new baseline",
                    regressed.join(", "),
                    out.display()
                ))
            }
        }
    }
}

/// Verifies the gate logic end to end on synthetic values: a 2× slowdown
/// on a gated metric must trip it, the same slowdown on an ungated metric
/// must not, and an in-tolerance wiggle must pass.
fn run_self_test() -> Result<String, String> {
    let mk = |values: &[(&str, f64, bool)]| PerfSuite {
        pr: PR,
        metrics: values
            .iter()
            .map(|(n, v, gate)| PerfMetric {
                name: n.to_string(),
                value: *v,
                unit: "us".to_string(),
                tolerance: 1.5,
                gate: *gate,
            })
            .collect(),
    };
    let base = mk(&[("gated", 100.0, true), ("wiggle", 100.0, true), ("info", 100.0, false)]);
    let cur = mk(&[("gated", 200.0, true), ("wiggle", 120.0, true), ("info", 200.0, false)]);
    // Round-trip through the serialized form, so the self-test also covers
    // the parser the tier-1 gate depends on.
    let base = PerfSuite::parse(&base.to_json()).map_err(|e| format!("round trip: {e}"))?;
    let rows = compare(&base, &cur);
    let verdicts: Vec<(&str, bool)> =
        rows.iter().map(|c| (c.name.as_str(), c.regressed)).collect();
    if verdicts != [("gated", true), ("wiggle", false), ("info", false)] {
        return Err(format!(
            "self-test FAILED: expected only the gated 2× slowdown to regress, got \
             {verdicts:?}\n{}",
            render_comparisons(&rows)
        ));
    }
    Ok("perfgate: self-test OK — synthetic 2× slowdown flagged, noise and info passed\n"
        .to_string())
}

/// Runs the pinned measurement suite. Lower is better for every metric.
fn measure_suite() -> PerfSuite {
    let mut metrics = Vec::new();

    // Kernel micro-benchmarks: best-of-5 mean over a fixed iteration count
    // (best-of absorbs scheduler noise on shared machines).
    let (x64, y64) = dist_fixture::<f64>(7);
    metrics.push(PerfMetric {
        name: "kernel.dist_f64_ns".to_string(),
        value: best_of(5, || mean_ns(20_000, || lorentz::distance(&x64, &y64))),
        unit: "ns".to_string(),
        tolerance: 1.8,
        gate: true,
    });
    let (x32, y32) = dist_fixture::<f32>(7);
    metrics.push(PerfMetric {
        name: "kernel.dist_f32_ns".to_string(),
        value: best_of(5, || mean_ns(20_000, || lorentz::distance(&x32, &y32))),
        unit: "ns".to_string(),
        tolerance: 1.8,
        gate: true,
    });

    // GCN propagation over the tiny CD graph (the per-epoch macro kernel).
    let ds = DatasetSpec::cd(Scale::Tiny).generate(1);
    let mut rng = SplitMix64::new(2);
    let zu: Embedding = Embedding::normal(ds.n_users(), 64, 0.1, &mut rng);
    let zv: Embedding = Embedding::normal(ds.n_items(), 64, 0.1, &mut rng);
    metrics.push(PerfMetric {
        name: "kernel.propagate_us".to_string(),
        value: best_of(3, || {
            mean_ns(5, || graph::propagate_forward(&ds.train, &zu, &zv, 2)) / 1e3
        }),
        unit: "us".to_string(),
        tolerance: 1.8,
        gate: true,
    });

    // End-to-end training wall time per epoch, tiny scale.
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
    let cfg = LogiRecConfig { epochs: 3, ..LogiRecConfig::test_config() };
    let epochs = cfg.epochs as f64;
    let t0 = Instant::now();
    let (fold_model, _) = train(cfg, &ds);
    metrics.push(PerfMetric {
        name: "train.epoch_ms".to_string(),
        value: t0.elapsed().as_secs_f64() * 1e3 / epochs,
        unit: "ms".to_string(),
        tolerance: 2.0,
        gate: true,
    });

    // Cold-start fold-in: per-user cost of streaming a new user into the
    // trained model (a few RSGD steps on the new row only, frozen tables).
    {
        let mut m = fold_model;
        m.propagate(&ds.train);
        let positives: Vec<usize> = ds.train.items_of(0).to_vec();
        let opts = FoldInOptions::for_config(&m.cfg);
        metrics.push(PerfMetric {
            name: "stream.fold_in_user_us".to_string(),
            value: best_of(5, || {
                mean_ns(20, || fold_in_user(&mut m, &positives, &opts).expect("fold in")) / 1e3
            }),
            unit: "us".to_string(),
            tolerance: 2.0,
            gate: true,
        });
    }

    // Serve p95 under nominal load, from the server's own authoritative
    // latency histogram (the same numbers `{"stats":true}` reports).
    metrics.push(PerfMetric {
        name: "serve.p95_us".to_string(),
        value: serve_p95_us(&ds, false),
        unit: "us".to_string(),
        tolerance: 2.5,
        gate: true,
    });

    // Approx-tier p95 on the same load, served through the clustered index
    // (force_approx routes every request there).
    metrics.push(PerfMetric {
        name: "serve.approx_p95_us".to_string(),
        value: serve_p95_us(&ds, true),
        unit: "us".to_string(),
        tolerance: 2.5,
        gate: true,
    });

    // Retrieval-index build time at a ~10k-item catalog (the off-request-
    // path cost every snapshot swap pays when an index is configured).
    let mut rng = SplitMix64::new(5);
    let catalog: Embedding = Embedding::normal(10_000, 17, 0.3, &mut rng);
    metrics.push(PerfMetric {
        name: "index.build_ms".to_string(),
        value: best_of(3, || {
            let t0 = Instant::now();
            std::hint::black_box(ClusterIndex::build(
                &catalog,
                logirec_core::Geometry::Hyperbolic,
                &IndexConfig::default(),
            ));
            t0.elapsed().as_secs_f64() * 1e3
        }),
        unit: "ms".to_string(),
        tolerance: 2.0,
        gate: true,
    });

    // Peak RSS: informational — allocator and kernel dependent, never gates.
    if let Some(peak) = rss::sample_peak_rss_bytes() {
        metrics.push(PerfMetric {
            name: "process.peak_rss_bytes".to_string(),
            value: peak as f64,
            unit: "bytes".to_string(),
            tolerance: 2.0,
            gate: false,
        });
    }

    PerfSuite { pr: PR, metrics }
}

/// Two points on the hyperboloid at 64 spatial dimensions.
fn dist_fixture<S: Scalar>(seed: u64) -> (Vec<S>, Vec<S>) {
    let mut rng = SplitMix64::new(seed);
    let mut unit = || S::from_f64((2.0 * rng.next_f64() - 1.0) * 0.1);
    let z: Vec<S> = (0..64).map(|_| unit()).collect();
    let w: Vec<S> = (0..64).map(|_| unit()).collect();
    (lorentz::exp_origin(&z), lorentz::exp_origin(&w))
}

/// Mean wall time in ns of `iters` calls to `f`.
fn mean_ns<T>(iters: u64, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Minimum over `reps` runs of `f` — the noise-robust estimate.
fn best_of(reps: u64, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Starts an in-process server, drives ~200 nominal requests at low
/// concurrency, and reads the measured tier's p95 from the server's
/// latency histogram (fallback-path p95 if nothing was served on it).
/// With `approx` the snapshot carries a default clustered index and every
/// request is forced through it.
fn serve_p95_us(ds: &logirec_data::Dataset, approx: bool) -> f64 {
    let cfg = LogiRecConfig { dim: 16, ..LogiRecConfig::test_config() };
    let model = LogiRec::new(cfg, ds);
    let ctx = Arc::new(ServeContext::from_dataset(ds));
    let index_cfg = approx.then(IndexConfig::default);
    let snapshot = ModelSnapshot::build_with_index(model, Precision::F64, &ctx, "perfgate", index_cfg)
        .expect("snapshot build");
    let server_cfg = ServerConfig {
        max_inflight: 8,
        default_deadline_ms: 1000,
        force_approx: approx,
        ..ServerConfig::default()
    };
    let server = Server::start(server_cfg, Arc::clone(&ctx), snapshot).expect("server start");
    let addr = server.addr();
    let n_users = ctx.n_users();
    let mut client = Client::connect(addr).expect("connect");
    for i in 0..200usize {
        let req = Request {
            id: i as u64,
            user: (i * 31) % n_users,
            k: 10,
            deadline_ms: Some(1000),
        };
        let _ = client.recommend(&req).expect("nominal request");
    }
    let [exact, approx_lat, fallback, _] = server.latency_snapshot();
    server.shutdown();
    let h = if approx {
        if approx_lat.count > 0 { approx_lat } else { fallback }
    } else if exact.count > 0 {
        exact
    } else {
        fallback
    };
    h.quantile(0.95) as f64
}
