//! Table I — dataset statistics.
//!
//! Generates the four synthetic benchmarks at the requested scale and
//! prints their realized statistics next to the paper's published values
//! (which correspond to `--scale paper`).
//!
//! Run: `cargo run --release -p logirec-bench --bin table1 -- --scale small`

use logirec_bench::harness::RunArgs;
use logirec_bench::table::{self, Row};

/// The paper's Table I, row-major:
/// (users, items, interactions, density %, tags, membership, hierarchy, exclusion).
const PAPER: [(&str, [f64; 8]); 4] = [
    ("ciao", [5180.0, 8836.0, 104905.0, 0.2292, 28.0, 8900.0, 16.0, 22.0]),
    ("cd", [32589.0, 20559.0, 515562.0, 0.0769, 379.0, 45976.0, 361.0, 1572.0]),
    ("clothing", [63986.0, 19727.0, 704325.0, 0.0558, 3051.0, 86639.0, 4804.0, 195004.0]),
    ("book", [79368.0, 62385.0, 4657501.0, 0.0941, 510.0, 124394.0, 636.0, 5392.0]),
];

fn main() {
    let (args, tel) = RunArgs::init("table1");
    let headers =
        ["#User", "#Item", "#Inter", "Density%", "#Tag", "#Member", "#Hier", "#Excl"];
    let mut rows = Vec::new();
    for spec in args.specs() {
        let ds = spec.generate_traced(42, &tel);
        let total = ds.n_interactions();
        let density = 100.0 * total as f64 / (ds.n_users() as f64 * ds.n_items() as f64);
        let (m, h, e) = ds.relations.counts();
        rows.push(Row {
            label: format!("{} (measured)", spec.name),
            cells: vec![
                ds.n_users().to_string(),
                ds.n_items().to_string(),
                total.to_string(),
                format!("{density:.4}"),
                ds.n_tags().to_string(),
                m.to_string(),
                h.to_string(),
                e.to_string(),
            ],
        });
        if let Some((_, p)) = PAPER.iter().find(|(n, _)| *n == spec.name) {
            rows.push(Row {
                label: format!("{} (paper)", spec.name),
                cells: vec![
                    format!("{:.0}", p[0]),
                    format!("{:.0}", p[1]),
                    format!("{:.0}", p[2]),
                    format!("{:.4}", p[3]),
                    format!("{:.0}", p[4]),
                    format!("{:.0}", p[5]),
                    format!("{:.0}", p[6]),
                    format!("{:.0}", p[7]),
                ],
            });
        }
    }
    let title = format!("Table I: dataset statistics (scale = {:?})", args.scale);
    let rendered = table::render(&title, &headers, &rows);
    tel.info(&rendered);
    table::save("table1", &rendered);
    tel.finish();
}
