//! Fig. 3 — hyperbolic vs Euclidean capacity for sibling separation.
//!
//! The paper's Fig. 3 shows that when a parent A and its children B, C are
//! placed with identical edge lengths, hyperbolic space separates the
//! siblings (BC > BA = AC) while Euclidean space cannot (BC = BA = AC for
//! the analogous equilateral placement, and the number of mutually
//! separated children that fit at a fixed radius grows only polynomially).
//!
//! This binary quantifies both effects: (1) the sibling-separation ratio
//! BC/BA as the edge length grows, and (2) how many children can be placed
//! at distance r from a parent with pairwise distance ≥ r (a packing
//! count), in both geometries.
//!
//! Run: `cargo run --release -p logirec-bench --bin fig3`

use logirec_bench::harness::RunArgs;
use logirec_bench::table::{self, Row};
use logirec_hyperbolic::poincare;
use logirec_linalg::ops;

fn main() {
    let (_args, tel) = RunArgs::init("fig3");
    // (1) Sibling separation: place B and C at hyperbolic distance `edge`
    // from A (origin) with a 90° angle between them.
    let mut rows = Vec::new();
    for edge in [0.5, 1.0, 2.0, 3.0, 4.0] {
        // exp_0 along e1 / e2 with tangent norm edge/2 gives d(0, x) = edge.
        let b = poincare::exp_map_origin(&[edge / 2.0, 0.0]);
        let c = poincare::exp_map_origin(&[0.0, edge / 2.0]);
        let bc_h = poincare::distance(&b, &c);
        // Euclidean analogue: points at Euclidean distance `edge` from the
        // origin at 90°: BC = sqrt(2)·edge.
        let bc_e = std::f64::consts::SQRT_2 * edge;
        rows.push(Row {
            label: format!("edge = {edge}"),
            cells: vec![
                format!("{:.3}", bc_h / edge),
                format!("{:.3}", bc_e / edge),
            ],
        });
    }
    let rendered = table::render(
        "Fig. 3a: sibling separation ratio BC/BA at 90 degrees",
        &["hyperbolic", "euclidean"],
        &rows,
    );
    tel.info(&rendered);
    table::save("fig3", &rendered);

    // (2) Packing: children on a circle of (geodesic) radius r around the
    // parent, requiring pairwise distance ≥ r. In Euclidean space exactly 6
    // fit regardless of r; in hyperbolic space the count grows with r.
    let mut rows = Vec::new();
    for r in [0.5, 1.0, 2.0, 3.0, 4.0, 5.0] {
        let hyp = children_that_fit(r, true);
        let euc = children_that_fit(r, false);
        rows.push(Row {
            label: format!("r = {r}"),
            cells: vec![hyp.to_string(), euc.to_string()],
        });
    }
    let rendered = table::render(
        "Fig. 3b: children placeable at radius r with pairwise distance >= r",
        &["hyperbolic", "euclidean"],
        &rows,
    );
    tel.info(&rendered);
    table::save("fig3", &rendered);
    tel.finish();
}

/// Largest `n` such that `n` points equally spaced on the radius-`r`
/// circle around the origin are pairwise at distance ≥ `r`.
fn children_that_fit(r: f64, hyperbolic: bool) -> usize {
    let mut best = 1;
    for n in 2..=2000usize {
        let theta = std::f64::consts::TAU / n as f64;
        let d = if hyperbolic {
            let a = poincare::exp_map_origin(&[r / 2.0, 0.0]);
            let b = poincare::exp_map_origin(&[r / 2.0 * theta.cos(), r / 2.0 * theta.sin()]);
            poincare::distance(&a, &b)
        } else {
            let a = [r, 0.0];
            let b = [r * theta.cos(), r * theta.sin()];
            ops::dist(&a, &b)
        };
        if d >= r {
            best = n;
        } else {
            break;
        }
    }
    best
}
