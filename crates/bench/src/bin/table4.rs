//! Table IV — hyperparameter studies on CD and Clothing.
//!
//! Sweeps, with all other parameters at their defaults:
//! * GCN depth `L ∈ {1, 2, 3, 4}` — paper optimum: 3;
//! * logic weight `λ ∈ {0, 0.01, 0.1, 1.0, 1.5}` — optimum 0.1 (CD) /
//!   1.0 (Clothing);
//! * margin `m ∈ {0, 0.5, 1, 2}` (rescaled from the paper's {0, .1, .2,
//!   .3}: plain RSGD + layer-sum aggregation inflate carrier distances,
//!   see EXPERIMENTS.md) — interior optimum expected at 1;
//! * dimension `d ∈ {32, 64, 128}` — monotone gains, 64 chosen.
//!
//! Run: `cargo run --release -p logirec-bench --bin table4 -- --scale small --datasets cd,clothing`

use logirec_bench::harness::{logirec_config, ExpMetrics, RunArgs};
use logirec_bench::table::{self, Row};
use logirec_core::train;
use logirec_eval::{mean_std, MeanStd};

fn main() {
    let (mut args, tel) = RunArgs::init("table4");
    // Table IV only covers CD and Clothing in the paper; honor an explicit
    // --datasets override but default to those two.
    if args.datasets.len() == 4 {
        args.datasets = vec!["cd".into(), "clothing".into()];
    }
    let headers = ["Recall@10", "NDCG@10"];

    for spec in args.specs() {
        tel.progress(format!("== dataset {} ==", spec.name));
        let mut rows: Vec<Row> = Vec::new();
        let sweeps: Vec<(String, Mutator)> = sweep_list();
        for (label, mutator) in &sweeps {
            let mut per_seed = Vec::new();
            for seed in 0..args.seeds {
                let ds = spec.generate(100 + seed);
                let mut cfg = logirec_config(&args, spec.name, true, 7 * seed + 1);
                mutator(&mut cfg);
                let (model, _) = train(cfg, &ds);
                let m = ExpMetrics::collect(&model, &ds, args.threads);
                per_seed.push([m.r10, m.n10]);
            }
            let agg: Vec<MeanStd> = (0..2)
                .map(|i| mean_std(&per_seed.iter().map(|q| q[i]).collect::<Vec<_>>()))
                .collect();
            tel.progress(format!("  {label:>10}: R@10 {}", agg[0].format_percent()));
            rows.push(Row::from_metrics(label.clone(), &agg, false));
        }
        let title =
            format!("Table IV ({}, scale = {:?}, seeds = {})", spec.name, args.scale, args.seeds);
        let rendered = table::render(&title, &headers, &rows);
        tel.info(&rendered);
        table::save("table4", &rendered);
    }
    tel.finish();
}

type Mutator = Box<dyn Fn(&mut logirec_core::LogiRecConfig)>;

fn sweep_list() -> Vec<(String, Mutator)> {
    let mut out: Vec<(String, Mutator)> = Vec::new();
    for l in [1usize, 2, 3, 4] {
        out.push((format!("L = {l}"), Box::new(move |c| c.layers = l)));
    }
    for lam in [0.0, 0.01, 0.1, 1.0, 1.5] {
        out.push((format!("lambda = {lam}"), Box::new(move |c| c.lambda = lam)));
    }
    for m in [0.0, 0.5, 1.0, 2.0] {
        out.push((format!("m = {m}"), Box::new(move |c| c.margin = m)));
    }
    for d in [32usize, 64, 128] {
        out.push((format!("d = {d}"), Box::new(move |c| c.dim = d)));
    }
    out
}
