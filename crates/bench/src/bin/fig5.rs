//! Fig. 5 — user behavior statistics on CD.
//!
//! (a) The distribution of users across the number of distinct tag types
//! they interact with (the paper shows a peak around 10 with a long tail
//! past 20).
//! (b) The relation between a user's number of interacted tag types and
//! the distance of their learned embedding to the origin (the paper shows
//! a decreasing trend: users with few tag types sit far from the origin).
//!
//! Run: `cargo run --release -p logirec-bench --bin fig5 -- --scale small --datasets cd`

use logirec_bench::harness::{logirec_config, RunArgs};
use logirec_bench::table::{self, Row};
use logirec_core::train;

fn main() {
    let (mut args, tel) = RunArgs::init("fig5");
    if args.datasets.len() == 4 {
        args.datasets = vec!["cd".into()];
    }
    for spec in args.specs() {
        let ds = spec.generate_traced(100, &tel);
        let cfg = logirec_config(&args, spec.name, true, 1);
        let (model, _) = train(cfg, &ds);

        let counts: Vec<usize> =
            (0..ds.n_users()).map(|u| ds.user_tag_type_count(u)).collect();
        let dists: Vec<f64> =
            (0..ds.n_users()).map(|u| model.user_origin_distance(u)).collect();

        // (a) Histogram over tag-type buckets.
        let max_types = *counts.iter().max().unwrap_or(&0);
        let bucket = |c: usize| (c / 4).min(9); // 0-3, 4-7, …, 36+
        let mut hist = [0usize; 10];
        for &c in &counts {
            hist[bucket(c)] += 1;
        }
        let mut rows = Vec::new();
        for (b, &n) in hist.iter().enumerate() {
            let lo = b * 4;
            let label = if b == 9 { format!("{lo}+") } else { format!("{lo}-{}", lo + 3) };
            rows.push(Row {
                label,
                cells: vec![n.to_string(), format!("{:.1}%", 100.0 * n as f64 / counts.len() as f64)],
            });
        }
        let rendered = table::render(
            &format!(
                "Fig. 5a: users per #tag-types bucket ({}, max = {max_types})",
                spec.name
            ),
            &["#users", "share"],
            &rows,
        );
        tel.info(&rendered);
        table::save("fig5", &rendered);

        // (b) Mean distance-to-origin per bucket.
        let mut sums = [0.0; 10];
        let mut ns = [0usize; 10];
        for (&c, &d) in counts.iter().zip(&dists) {
            sums[bucket(c)] += d;
            ns[bucket(c)] += 1;
        }
        let mut rows = Vec::new();
        for b in 0..10 {
            if ns[b] == 0 {
                continue;
            }
            let lo = b * 4;
            let label = if b == 9 { format!("{lo}+") } else { format!("{lo}-{}", lo + 3) };
            rows.push(Row { label, cells: vec![format!("{:.4}", sums[b] / ns[b] as f64)] });
        }
        let rendered = table::render(
            &format!("Fig. 5b: mean distance to origin per #tag-types bucket ({})", spec.name),
            &["d(o, u)"],
            &rows,
        );
        tel.info(&rendered);
        table::save("fig5", &rendered);
    }
    tel.finish();
}
