//! Table V — interpretable case studies of the mining weights.
//!
//! Trains LogiRec++ on CD and Book, computes every user's consistency CON,
//! (normalized) granularity GR, and weight α, then prints two contrasting
//! users per dataset — one consistent/specific (high α) and one diverse
//! (low α) — with their tag profiles and top recommendations, mirroring
//! the paper's Table V.
//!
//! Run: `cargo run --release -p logirec-bench --bin table5 -- --scale small --datasets cd,book`

use logirec_bench::harness::{logirec_config, RunArgs};
use logirec_bench::table;
use logirec_core::mining::{
    combine_weights, consistency_weights, granularity_weights, user_profiles,
};
use logirec_core::train;
use logirec_data::Split;
use logirec_eval::{evaluate, Ranker};

fn main() {
    let (mut args, tel) = RunArgs::init("table5");
    if args.datasets.len() == 4 {
        args.datasets = vec!["cd".into(), "book".into()];
    }
    let mut out = String::new();
    for spec in args.specs() {
        tel.progress(format!("== dataset {} ==", spec.name));
        let ds = spec.generate_traced(100, &tel);
        let cfg = logirec_config(&args, spec.name, true, 1);
        let alpha_floor = cfg.alpha_floor;
        let (model, _) = train(cfg, &ds);

        let con = consistency_weights(&ds);
        let gr = granularity_weights(&model, ds.n_users());
        let alpha = combine_weights(&con, &gr, alpha_floor);
        let profiles = user_profiles(&ds, &con, &gr, &alpha, 5);

        // Candidates with a meaningful history.
        let eligible: Vec<usize> =
            (0..ds.n_users()).filter(|&u| ds.train.items_of(u).len() >= 5).collect();
        let hi = *eligible
            .iter()
            .max_by(|&&a, &&b| alpha[a].partial_cmp(&alpha[b]).expect("finite"))
            .expect("users exist");
        let lo = *eligible
            .iter()
            .min_by(|&&a, &&b| alpha[a].partial_cmp(&alpha[b]).expect("finite"))
            .expect("users exist");

        let res = evaluate(&model, &ds, Split::Test, &[10], args.threads);
        let _ = res; // full-eval warms nothing here; recommendations below are per-user

        out.push_str(&format!(
            "Table V case studies — {} (scale = {:?})\n{}\n",
            spec.name,
            args.scale,
            "=".repeat(60)
        ));
        for (role, u) in [("consistent/specific", hi), ("diverse", lo)] {
            let p = &profiles[u];
            out.push_str(&format!(
                "User {} ({role}): CON = {:.2}, GR = {:.2}, alpha = {:.2}\n",
                u, p.consistency, p.granularity, p.alpha
            ));
            let tags: Vec<String> = p
                .top_tags
                .iter()
                .map(|&(t, c)| format!("<{}> x{}", ds.taxonomy.name(t), c))
                .collect();
            out.push_str(&format!("  tags: {}\n", tags.join("; ")));
            // Top recommendations with their tags.
            let mut scores = vec![0.0; ds.n_items()];
            model.score_user(u, &mut scores);
            for &v in ds.train.items_of(u) {
                scores[v] = f64::NEG_INFINITY;
            }
            let top = logirec_eval::ranking::top_k_indices(&scores, 6);
            let recs: Vec<String> = top
                .iter()
                .map(|&v| {
                    let vt: Vec<&str> =
                        ds.item_tags[v].iter().map(|&t| ds.taxonomy.name(t)).collect();
                    format!("item{} [{}]", v, vt.join(","))
                })
                .collect();
            out.push_str(&format!("  recommended: {}\n", recs.join("; ")));
        }
        out.push('\n');
    }
    tel.info(&out);
    table::save("table5", &out);
    tel.finish();
}
