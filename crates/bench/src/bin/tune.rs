//! Internal tuning helper (not a paper artifact): sweeps learning rates
//! for LogiRec++ and the batched graph baselines on the validation split,
//! mirroring the paper's grid search protocol (Section VI-A4).
//!
//! Run: `cargo run --release -p logirec-bench --bin tune -- --scale small --datasets ciao`

use logirec_baselines::{train_method, Method};
use logirec_bench::harness::{baseline_config, logirec_config, RunArgs};
use logirec_core::train;
use logirec_data::Split;
use logirec_eval::evaluate;

/// (mining, lr, margin, lambda, epochs, negatives, batch)
type Point = (bool, f64, f64, f64, usize, usize, usize);

fn grid() -> Vec<Point> {
    vec![
        (true, 0.02, 1.0, 0.1, 40, 8, 256),
        (true, 0.02, 1.0, 0.5, 40, 8, 256),
        (true, 0.02, 1.0, 1.0, 40, 8, 256),
        (true, 0.02, 1.0, 0.5, 80, 8, 256),
        (false, 0.02, 1.0, 0.5, 40, 8, 256),
    ]
}

fn main() {
    let (args, tel) = RunArgs::init("tune");
    for spec in args.specs() {
        let ds = spec.generate_traced(100, &tel);
        tel.info(format!("== {} ==", spec.name));
        for (mining, lr, margin, lambda, epochs, negatives, batch) in grid() {
            let mut cfg = logirec_config(&args, spec.name, mining, 1);
            cfg.lr = lr;
            cfg.margin = margin;
            cfg.lambda = lambda;
            cfg.epochs = epochs;
            cfg.negatives = negatives;
            cfg.batch_size = batch;
            cfg.eval_every = 5;
            let (model, _) = train(cfg, &ds);
            let r =
                evaluate(&model, &ds, Split::Validation, &[10], args.threads).recall_at(10);
            let filter = logirec_core::LogicFilter::build(&model, &ds, 0.05, 1000.0);
            let ranker = logirec_core::FilteredRanker {
                model: &model,
                filter: &filter,
                item_tags: &ds.item_tags,
            };
            let rf =
                evaluate(&ranker, &ds, Split::Validation, &[10], args.threads).recall_at(10);
            let skip = filter.skip_fraction(&ds.item_tags);
            tel.info(format!(
                "  LogiRec(mining={mining}) lr={lr} m={margin} lam={lambda} ep={epochs} neg={negatives} bs={batch}: val R@10 {r:.4} filtered {rf:.4} (skip {:.1}%)",
                100.0 * skip
            ));
        }
        for method in [Method::Agcn, Method::LightGcn] {
            let cfg = method.tuned(&baseline_config(&args, 1));
            let m = train_method(method, &cfg, &ds);
            let r = evaluate(&m, &ds, Split::Validation, &[10], args.threads).recall_at(10);
            tel.info(format!("  {} lr={}: val R@10 {r:.4}", method.label(), cfg.lr));
        }
    }
    tel.finish();
}
