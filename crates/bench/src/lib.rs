#![warn(missing_docs)]

//! Experiment harness shared by the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). This library provides the common
//! pieces: CLI parsing, per-scale default configurations (including the
//! paper's per-dataset λ), metric collection over seeds, and plain-text
//! table rendering in the paper's `mean±std` percent format.

pub mod harness;
pub mod perf;
pub mod table;

pub use harness::{bin_telemetry, ExpMetrics, RunArgs};
pub use perf::{compare, find_latest_baseline, PerfMetric, PerfSuite};
