//! Plain-text table rendering in the paper's `mean±std` percent style.

use logirec_eval::MeanStd;

/// One rendered table row: a label plus formatted cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (method name, parameter value, …).
    pub label: String,
    /// Pre-formatted cell strings.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from metric aggregates, appending `*` markers where
    /// `stars` is true (the paper's Wilcoxon significance marker).
    pub fn from_metrics(label: impl Into<String>, metrics: &[MeanStd], star: bool) -> Self {
        let cells = metrics
            .iter()
            .map(|m| {
                let mut s = m.format_percent();
                if star {
                    s.push('*');
                }
                s
            })
            .collect();
        Self { label: label.into(), cells }
    }
}

/// Renders an aligned text table.
pub fn render(title: &str, headers: &[&str], rows: &[Row]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let label_width = rows
        .iter()
        .map(|r| r.label.len())
        .chain(std::iter::once("Method".len()))
        .max()
        .unwrap_or(6);
    for row in rows {
        for (i, cell) in row.cells.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rule_len =
        label_width + widths.iter().map(|w| w + 3).sum::<usize>();
    out.push_str(&"=".repeat(rule_len.max(title.len())));
    out.push('\n');
    out.push_str(&format!("{:<label_width$}", "Method"));
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!("   {h:>w$}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(rule_len.max(title.len())));
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<label_width$}", row.label));
        for (c, w) in row.cells.iter().zip(&widths) {
            out.push_str(&format!("   {c:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// Renders and prints to stdout.
pub fn print(title: &str, headers: &[&str], rows: &[Row]) {
    println!("{}", render(title, headers, rows));
}

/// Appends experiment output to `results/<name>.txt` (creating the
/// directory as needed) so table binaries leave a reproducible record.
pub fn save(name: &str, content: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(format!("{name}.txt")))
        {
            let _ = writeln!(f, "{content}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let rows = vec![
            Row { label: "BPRMF".into(), cells: vec!["3.18±0.13".into(), "4.90±0.15".into()] },
            Row {
                label: "LogiRec++".into(),
                cells: vec!["6.67±0.05*".into(), "10.30±0.06*".into()],
            },
        ];
        let s = render("Table II (ciao)", &["Recall@10", "Recall@20"], &rows);
        assert!(s.contains("Recall@10"));
        assert!(s.contains("LogiRec++"));
        // All data lines have the same length.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains("±")).collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn from_metrics_adds_stars() {
        let m = [MeanStd { mean: 0.1, std: 0.01 }];
        let starred = Row::from_metrics("x", &m, true);
        assert!(starred.cells[0].ends_with('*'));
        let plain = Row::from_metrics("x", &m, false);
        assert!(!plain.cells[0].ends_with('*'));
    }
}
