//! Benchmarks of the clustered retrieval index: build cost (the
//! off-request-path price every snapshot swap pays) and per-query search
//! at partial and exhaustive probes, against the exact full scan.

use criterion::{criterion_group, criterion_main, Criterion};
use logirec_core::Geometry;
use logirec_hyperbolic::lorentz;
use logirec_linalg::{Embedding, SplitMix64};
use logirec_serve::{ClusterIndex, IndexConfig};
use std::hint::black_box;

/// A synthetic hyperboloid catalog: `exp_origin` of small tangents.
fn hyperboloid(n: usize, d: usize, seed: u64) -> Embedding<f64> {
    let mut rng = SplitMix64::new(seed);
    let tangents = Embedding::<f64>::normal(n, d, 0.3, &mut rng);
    let mut out = Embedding::zeros(n, d + 1);
    for i in 0..n {
        lorentz::exp_origin_into(tangents.row(i), out.row_mut(i));
    }
    out
}

fn bench_index(c: &mut Criterion) {
    let items = hyperboloid(10_000, 16, 3);
    let users = hyperboloid(64, 16, 4);
    let cfg = IndexConfig::default();

    c.bench_function("index_build_10000x17", |b| {
        b.iter(|| ClusterIndex::build(black_box(&items), Geometry::Hyperbolic, &cfg))
    });

    let index = ClusterIndex::build(&items, Geometry::Hyperbolic, &cfg);
    let clusters = index.clusters();
    let mut u = 0usize;
    let mut next_user = || {
        u = (u + 1) % users.rows();
        u
    };

    c.bench_function("index_search_k10_default_nprobe", |b| {
        b.iter(|| {
            let q = next_user();
            index.search(black_box(users.row(q)), &items, &[], 10, index.nprobe())
        })
    });
    c.bench_function("index_search_k10_exhaustive", |b| {
        b.iter(|| {
            let q = next_user();
            index.search(black_box(users.row(q)), &items, &[], 10, clusters)
        })
    });

    // The exact tier's cost at the same catalog, for the speedup ratio.
    c.bench_function("exact_scan_k10_10000", |b| {
        let mut scores = vec![0.0f64; items.rows()];
        b.iter(|| {
            let q = next_user();
            for (v, s) in scores.iter_mut().enumerate() {
                *s = -lorentz::distance(users.row(q), items.row(v));
            }
            logirec_eval::ranking::top_k_indices(black_box(&scores), 10)
        })
    });
}

/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_index
}
criterion_main!(benches);
