//! Benchmarks of the full-ranking evaluator and statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use logirec_data::{DatasetSpec, Scale, Split};
use logirec_eval::ranking::top_k_indices;
use logirec_eval::{evaluate, wilcoxon_signed_rank};
use logirec_linalg::SplitMix64;
use std::hint::black_box;

fn bench_eval(c: &mut Criterion) {
    let ds = DatasetSpec::cd(Scale::Tiny).generate(1);
    let mut rng = SplitMix64::new(2);
    let scores: Vec<f64> = (0..10_000).map(|_| rng.normal()).collect();
    c.bench_function("top_k_20_of_10000", |b| {
        b.iter(|| top_k_indices(black_box(&scores), 20))
    });

    // Catalog-scale selection: 200k scores is the ≥10× synthetic catalog
    // the retrieval-index experiments use, so the exact tier's selection
    // cost at that size stays on the record.
    let big: Vec<f64> = (0..200_000).map(|_| rng.normal()).collect();
    c.bench_function("top_k_10_of_200000", |b| {
        b.iter(|| top_k_indices(black_box(&big), 10))
    });

    let scorer = |u: usize, out: &mut [f64]| {
        for (v, o) in out.iter_mut().enumerate() {
            *o = ((u * 31 + v * 17) % 97) as f64;
        }
    };
    c.bench_function("evaluate_full_ranking_1thread", |b| {
        b.iter(|| evaluate(black_box(&scorer), &ds, Split::Test, &[10, 20], 1))
    });
    c.bench_function("evaluate_full_ranking_4threads", |b| {
        b.iter(|| evaluate(black_box(&scorer), &ds, Split::Test, &[10, 20], 4))
    });

    let a: Vec<f64> = (0..500).map(|i| (i % 13) as f64 + 0.5).collect();
    let b2: Vec<f64> = (0..500).map(|i| (i % 11) as f64).collect();
    c.bench_function("wilcoxon_500_pairs", |b| {
        b.iter(|| wilcoxon_signed_rank(black_box(&a), black_box(&b2)))
    });
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_eval
}
criterion_main!(benches);
