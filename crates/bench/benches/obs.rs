//! Benchmarks of the telemetry hot-path cost — the "zero cost when
//! disabled" guarantee of `logirec-obs` made measurable.
//!
//! `raw` is the uninstrumented workload; `disabled` runs the identical
//! workload with counter/histogram/span calls on a disabled handle (every
//! call must reduce to a branch on `None`); `enabled` shows the real cost
//! of live in-memory aggregation for contrast. `disabled` staying within
//! noise of `raw` is the acceptance criterion — a regression here means an
//! instrumentation call stopped short-circuiting.

use criterion::{criterion_group, criterion_main, Criterion};
use logirec_obs::Telemetry;
use std::hint::black_box;

/// A stand-in for one batch-loop iteration: enough arithmetic that the
/// workload dominates unless the telemetry calls do real work.
fn workload(x: u64) -> u64 {
    let mut acc = x;
    for i in 0..64u64 {
        acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(7) ^ i;
    }
    acc
}

fn instrumented(tel: &Telemetry, x: u64) -> u64 {
    let c = tel.counter("bench.iterations");
    let h = tel.histogram("bench.work_us");
    let mut span = tel.span("batch");
    let t = tel.timer();
    let out = workload(x);
    span.field("pairs", out & 0xff);
    c.incr();
    if h.is_enabled() {
        h.record(out & 0x3f);
    }
    tel.observe_us("bench.work_us", t);
    out
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("raw", |b| b.iter(|| workload(black_box(42))));
    let disabled = Telemetry::disabled();
    group.bench_function("disabled", |b| {
        b.iter(|| instrumented(black_box(&disabled), black_box(42)))
    });
    let enabled = Telemetry::enabled();
    group.bench_function("enabled", |b| {
        b.iter(|| instrumented(black_box(&enabled), black_box(42)))
    });
    group.finish();
}

/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_overhead
}
criterion_main!(benches);
