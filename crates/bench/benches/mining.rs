//! Benchmarks of the LogiRec++ mining weights (Eq. 11–14).

use criterion::{criterion_group, criterion_main, Criterion};
use logirec_core::mining::{combine_weights, consistency_weights, granularity_weights};
use logirec_core::{LogiRec, LogiRecConfig};
use logirec_data::{DatasetSpec, Scale};
use std::hint::black_box;

fn bench_mining(c: &mut Criterion) {
    let ds = DatasetSpec::cd(Scale::Tiny).generate(1);
    let mut model: LogiRec = LogiRec::new(LogiRecConfig::default(), &ds);
    model.propagate(&ds.train);

    c.bench_function("consistency_weights", |b| {
        b.iter(|| consistency_weights(black_box(&ds)))
    });
    c.bench_function("granularity_weights", |b| {
        b.iter(|| granularity_weights(black_box(&model), ds.n_users()))
    });
    let con = consistency_weights(&ds);
    let gr = granularity_weights(&model, ds.n_users());
    c.bench_function("combine_weights", |b| {
        b.iter(|| combine_weights(black_box(&con), black_box(&gr), 0.1))
    });
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_mining
}
criterion_main!(benches);
