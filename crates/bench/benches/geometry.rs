//! Micro-benchmarks of the hyperbolic geometry kernels — the innermost
//! loops of every experiment (Section III primitives).

use criterion::{criterion_group, criterion_main, Criterion};
use logirec_hyperbolic::{hyperplane, lorentz, maps, poincare, Ball};
use logirec_linalg::SplitMix64;
use std::hint::black_box;

fn vecs(dim: usize, scale: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SplitMix64::new(seed);
    let a: Vec<f64> = (0..dim).map(|_| rng.uniform(-scale, scale)).collect();
    let b: Vec<f64> = (0..dim).map(|_| rng.uniform(-scale, scale)).collect();
    (a, b)
}

fn bench_geometry(c: &mut Criterion) {
    let dim = 64;
    let (x, y) = vecs(dim, 0.08, 1);
    let (zx, zy) = vecs(dim, 0.5, 2);
    let lx = lorentz::exp_origin(&zx);
    let ly = lorentz::exp_origin(&zy);

    c.bench_function("poincare_distance_d64", |b| {
        b.iter(|| poincare::distance(black_box(&x), black_box(&y)))
    });
    c.bench_function("poincare_distance_vjp_d64", |b| {
        b.iter(|| poincare::distance_vjp(black_box(&x), black_box(&y), 1.0))
    });
    c.bench_function("mobius_add_d64", |b| {
        b.iter(|| poincare::mobius_add(black_box(&x), black_box(&y)))
    });
    c.bench_function("poincare_exp_map_d64", |b| {
        b.iter(|| poincare::exp_map_paper(black_box(&x), black_box(&zy)))
    });
    c.bench_function("lorentz_distance_d64", |b| {
        b.iter(|| lorentz::distance(black_box(&lx), black_box(&ly)))
    });
    c.bench_function("lorentz_distance_vjp_d64", |b| {
        b.iter(|| lorentz::distance_vjp(black_box(&lx), black_box(&ly), 1.0))
    });
    c.bench_function("lorentz_exp_origin_d64", |b| {
        b.iter(|| lorentz::exp_origin(black_box(&zx)))
    });
    c.bench_function("lorentz_log_origin_d64", |b| {
        b.iter(|| lorentz::log_origin(black_box(&lx)))
    });
    c.bench_function("lorentz_exp_origin_vjp_d64", |b| {
        b.iter(|| lorentz::exp_origin_vjp(black_box(&zx), black_box(&lx)))
    });
    c.bench_function("p_inv_poincare_to_lorentz_d64", |b| {
        b.iter(|| maps::poincare_to_lorentz(black_box(&x)))
    });
    c.bench_function("p_inv_vjp_d64", |b| {
        b.iter(|| maps::poincare_to_lorentz_vjp(black_box(&x), black_box(&lx)))
    });
    c.bench_function("ball_from_center_d64", |b| {
        b.iter(|| Ball::from_center(black_box(&zx)))
    });
    c.bench_function("ball_vjp_d64", |b| {
        b.iter(|| hyperplane::ball_vjp(black_box(&zx), black_box(&zy), 0.5))
    });
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_geometry
}
criterion_main!(benches);
