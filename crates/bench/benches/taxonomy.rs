//! Benchmarks of taxonomy generation and logical relation extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logirec_linalg::SplitMix64;
use logirec_taxonomy::{ExclusionRule, LogicalRelations, TaxonomyConfig};
use std::hint::black_box;

fn bench_taxonomy(c: &mut Criterion) {
    let mut group = c.benchmark_group("taxonomy_generate");
    for tags in [28usize, 379, 3051] {
        group.bench_with_input(BenchmarkId::from_parameter(tags), &tags, |b, &t| {
            let cfg = TaxonomyConfig { tags: t, ..Default::default() };
            b.iter(|| {
                let mut rng = SplitMix64::new(1);
                black_box(cfg.generate(&mut rng))
            })
        });
    }
    group.finish();

    let cfg = TaxonomyConfig { tags: 379, ..Default::default() };
    let taxonomy = cfg.generate(&mut SplitMix64::new(1));
    // 2000 items, two tags each.
    let mut rng = SplitMix64::new(2);
    let item_tags: Vec<Vec<usize>> = (0..2000)
        .map(|_| vec![rng.index(taxonomy.len()), rng.index(taxonomy.len())])
        .collect();

    c.bench_function("extract_relations_all_siblings", |b| {
        b.iter(|| {
            LogicalRelations::extract(
                black_box(&taxonomy),
                &item_tags,
                ExclusionRule::AllSiblings,
            )
        })
    });
    c.bench_function("extract_relations_with_item_veto", |b| {
        b.iter(|| {
            LogicalRelations::extract(
                black_box(&taxonomy),
                &item_tags,
                ExclusionRule::SiblingsWithoutCommonItems,
            )
        })
    });
    let rel = LogicalRelations::extract(&taxonomy, &item_tags, ExclusionRule::AllSiblings);
    c.bench_function("exclusion_index_build", |b| {
        b.iter(|| black_box(rel.exclusion_index()))
    });
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_taxonomy
}
criterion_main!(benches);
