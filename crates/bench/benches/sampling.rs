//! Benchmarks of negative sampling and mini-batching.

use criterion::{criterion_group, criterion_main, Criterion};
use logirec_data::{BatchIter, DatasetSpec, NegativeSampler, Scale};
use logirec_linalg::SplitMix64;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let ds = DatasetSpec::cd(Scale::Tiny).generate(1);
    c.bench_function("negative_sample_single", |b| {
        let mut s = NegativeSampler::new(&ds.train, SplitMix64::new(1));
        let mut u = 0;
        b.iter(|| {
            u = (u + 1) % ds.n_users();
            black_box(s.sample(u))
        })
    });
    c.bench_function("negative_sample_many_32", |b| {
        let mut s = NegativeSampler::new(&ds.train, SplitMix64::new(2));
        b.iter(|| black_box(s.sample_many(3, 32)))
    });
    c.bench_function("batch_iter_full_epoch", |b| {
        b.iter(|| {
            let mut rng = SplitMix64::new(3);
            let n: usize =
                BatchIter::new(black_box(&ds.train), 256, &mut rng).map(|b| b.len()).sum();
            black_box(n)
        })
    });
    c.bench_function("dataset_generate_ciao_tiny", |b| {
        let spec = DatasetSpec::ciao(Scale::Tiny);
        b.iter(|| black_box(spec.generate(7)))
    });
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_sampling
}
criterion_main!(benches);
