//! Before/after benchmarks for the precision-generic, allocation-free
//! math kernels: the allocating f64 wrappers (the pre-refactor shape of
//! the hot path) against the write-into-caller-buffer `_into` kernels in
//! both f64 and f32, plus the GCN propagate pass per precision. Numbers
//! from this bin are committed to `results/kernels.txt`.

use criterion::{criterion_group, criterion_main, Criterion};
use logirec_core::graph;
use logirec_data::{DatasetSpec, Scale};
use logirec_hyperbolic::lorentz;
use logirec_linalg::{Embedding, Scalar, SplitMix64};
use std::hint::black_box;

const DIM: usize = 64;

/// Two points on the hyperboloid (`DIM + 1` ambient coordinates), the
/// spatial tangent coordinates of the first (`DIM`), an ambient gradient
/// (`DIM + 1`), and a tangent gradient (`DIM`), in precision `S`.
#[allow(clippy::type_complexity)]
fn fixtures<S: Scalar>(seed: u64) -> (Vec<S>, Vec<S>, Vec<S>, Vec<S>, Vec<S>) {
    let mut rng = SplitMix64::new(seed);
    let mut unit = || S::from_f64(2.0 * rng.next_f64() - 1.0);
    let z: Vec<S> = (0..DIM).map(|_| unit() * S::from_f64(0.1)).collect();
    let w: Vec<S> = (0..DIM).map(|_| unit() * S::from_f64(0.1)).collect();
    let g_tan: Vec<S> = (0..DIM).map(|_| unit()).collect();
    let mut g_amb = vec![S::ZERO; DIM + 1];
    for v in g_amb.iter_mut() {
        *v = unit();
    }
    let x = lorentz::exp_origin(&z);
    let y = lorentz::exp_origin(&w);
    (x, y, z, g_amb, g_tan)
}

fn bench_distance(c: &mut Criterion) {
    let (x64, y64, _, _, _) = fixtures::<f64>(7);
    let (x32, y32, _, _, _) = fixtures::<f32>(7);
    let mut group = c.benchmark_group("lorentz_distance");
    group.bench_function("f64", |b| {
        b.iter(|| lorentz::distance(black_box(&x64), black_box(&y64)))
    });
    group.bench_function("f32", |b| {
        b.iter(|| lorentz::distance(black_box(&x32), black_box(&y32)))
    });
    group.finish();

    let mut group = c.benchmark_group("distance_vjp");
    group.bench_function("alloc_f64", |b| {
        b.iter(|| lorentz::distance_vjp(black_box(&x64), black_box(&y64), 1.0))
    });
    let mut gx = vec![0.0f64; DIM + 1];
    let mut gy = vec![0.0f64; DIM + 1];
    group.bench_function("into_f64", |b| {
        b.iter(|| {
            lorentz::distance_vjp_into(black_box(&x64), black_box(&y64), 1.0, &mut gx, &mut gy)
        })
    });
    let mut gx = vec![0.0f32; DIM + 1];
    let mut gy = vec![0.0f32; DIM + 1];
    group.bench_function("into_f32", |b| {
        b.iter(|| {
            lorentz::distance_vjp_into(black_box(&x32), black_box(&y32), 1.0f32, &mut gx, &mut gy)
        })
    });
    group.finish();
}

fn bench_exp_log_vjp(c: &mut Criterion) {
    let (x64, _, z64, ga64, gt64) = fixtures::<f64>(11);
    let (x32, _, z32, ga32, gt32) = fixtures::<f32>(11);

    let mut group = c.benchmark_group("exp_origin_vjp");
    group.bench_function("alloc_f64", |b| {
        b.iter(|| lorentz::exp_origin_vjp(black_box(&z64), black_box(&ga64)))
    });
    let mut out = vec![0.0f64; DIM];
    group.bench_function("into_f64", |b| {
        b.iter(|| lorentz::exp_origin_vjp_into(black_box(&z64), black_box(&ga64), &mut out))
    });
    let mut out = vec![0.0f32; DIM];
    group.bench_function("into_f32", |b| {
        b.iter(|| lorentz::exp_origin_vjp_into(black_box(&z32), black_box(&ga32), &mut out))
    });
    group.finish();

    let mut group = c.benchmark_group("log_origin_vjp");
    group.bench_function("alloc_f64", |b| {
        b.iter(|| lorentz::log_origin_vjp(black_box(&x64), black_box(&gt64)))
    });
    let mut out = vec![0.0f64; DIM + 1];
    group.bench_function("into_f64", |b| {
        b.iter(|| lorentz::log_origin_vjp_into(black_box(&x64), black_box(&gt64), &mut out))
    });
    let mut out = vec![0.0f32; DIM + 1];
    group.bench_function("into_f32", |b| {
        b.iter(|| lorentz::log_origin_vjp_into(black_box(&x32), black_box(&gt32), &mut out))
    });
    group.finish();
}

fn bench_propagate(c: &mut Criterion) {
    let ds = DatasetSpec::cd(Scale::Tiny).generate(1);
    let mut rng = SplitMix64::new(2);
    let zu: Embedding = Embedding::normal(ds.n_users(), DIM, 0.1, &mut rng);
    let zv: Embedding = Embedding::normal(ds.n_items(), DIM, 0.1, &mut rng);
    let zu32 = zu.cast::<f32>();
    let zv32 = zv.cast::<f32>();

    let mut group = c.benchmark_group("propagate_forward");
    group.bench_function("f64", |b| {
        b.iter(|| graph::propagate_forward(black_box(&ds.train), &zu, &zv, 2))
    });
    group.bench_function("f32", |b| {
        b.iter(|| graph::propagate_forward(black_box(&ds.train), &zu32, &zv32, 2))
    });
    group.finish();
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_distance, bench_exp_log_vjp, bench_propagate
}
criterion_main!(benches);
