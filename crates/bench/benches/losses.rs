//! Benchmarks of the four loss kernels (Eq. 3–5, 9) with their gradients.

use criterion::{criterion_group, criterion_main, Criterion};
use logirec_core::losses::{
    exclusion_loss_grad, hierarchy_loss_grad, membership_loss_grad, rank_loss_grad, LogicGrads,
};
use logirec_core::{LogiRec, LogiRecConfig};
use logirec_data::{DatasetSpec, NegativeSampler, Scale};
use logirec_linalg::SplitMix64;
use logirec_taxonomy::TagId;
use std::hint::black_box;

fn bench_losses(c: &mut Criterion) {
    let ds = DatasetSpec::cd(Scale::Tiny).generate(1);
    let cfg = LogiRecConfig { dim: 64, ..LogiRecConfig::default() };
    let mut model: LogiRec = LogiRec::new(cfg, &ds);
    model.propagate(&ds.train);

    // A 256-triplet ranking batch.
    let mut sampler = NegativeSampler::new(&ds.train, SplitMix64::new(3));
    let triplets: Vec<(usize, usize, usize)> = ds
        .train
        .iter_pairs()
        .take(256)
        .map(|(u, v)| (u, v, sampler.sample(u)))
        .collect();
    c.bench_function("rank_loss_grad_256", |b| {
        b.iter(|| rank_loss_grad(black_box(&model), &triplets, 0.1, None, 1.0 / 256.0))
    });

    let mem: Vec<(usize, TagId)> =
        ds.relations.membership.iter().copied().take(256).collect();
    let hie: Vec<(TagId, TagId)> =
        ds.relations.hierarchy.iter().copied().take(256).collect();
    let ex: Vec<(TagId, TagId)> =
        ds.relations.exclusion.iter().map(|&(a, b, _)| (a, b)).take(256).collect();
    let mut acc = LogicGrads::zeros(&model);
    c.bench_function("membership_loss_grad_256", |b| {
        b.iter(|| {
            acc.reset();
            membership_loss_grad(black_box(&model), &mem, 0.1, &mut acc)
        })
    });
    c.bench_function("hierarchy_loss_grad", |b| {
        b.iter(|| {
            acc.reset();
            hierarchy_loss_grad(black_box(&model), &hie, 0.1, &mut acc)
        })
    });
    c.bench_function("exclusion_loss_grad", |b| {
        b.iter(|| {
            acc.reset();
            exclusion_loss_grad(black_box(&model), &ex, 0.1, &mut acc)
        })
    });
    c.bench_function("full_backward_rank", |b| {
        let rg = rank_loss_grad(&model, &triplets, 0.1, None, 1.0 / 256.0);
        b.iter(|| model.backward_rank(black_box(&rg.user_final), &rg.item_final, &ds.train))
    });
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_losses
}
criterion_main!(benches);
