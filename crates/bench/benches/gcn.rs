//! Benchmarks of the hyperbolic GCN propagation (Eq. 7) — forward and
//! transpose passes over the interaction graph, per layer depth (the
//! Table IV `L` ablation's compute side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logirec_core::graph;
use logirec_data::{DatasetSpec, Scale};
use logirec_linalg::{Embedding, SplitMix64};
use std::hint::black_box;

fn bench_gcn(c: &mut Criterion) {
    let ds = DatasetSpec::cd(Scale::Tiny).generate(1);
    let dim = 64;
    let mut rng = SplitMix64::new(2);
    let zu: Embedding = Embedding::normal(ds.n_users(), dim, 0.1, &mut rng);
    let zv: Embedding = Embedding::normal(ds.n_items(), dim, 0.1, &mut rng);

    let mut group = c.benchmark_group("gcn_propagate");
    for layers in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("forward", layers), &layers, |b, &l| {
            b.iter(|| graph::propagate_forward(black_box(&ds.train), &zu, &zv, l))
        });
        group.bench_with_input(BenchmarkId::new("backward", layers), &layers, |b, &l| {
            b.iter(|| graph::propagate_backward(black_box(&ds.train), &zu, &zv, l))
        });
    }
    group.finish();
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_gcn
}
criterion_main!(benches);
