//! Benchmarks of one-epoch training cost per baseline method — the
//! compute side of the Table II comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logirec_baselines::{train_method, BaselineConfig, Method};
use logirec_data::{DatasetSpec, Scale};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
    let cfg = BaselineConfig { dim: 32, epochs: 1, layers: 2, ..BaselineConfig::default() };
    let mut group = c.benchmark_group("baseline_one_epoch");
    group.sample_size(10);
    for method in Method::all() {
        group.bench_with_input(BenchmarkId::from_parameter(method.label()), &method, |b, &m| {
            b.iter(|| train_method(black_box(m), &cfg, &ds))
        });
    }
    group.finish();
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_baselines
}
criterion_main!(benches);
