//! End-to-end benchmarks: one full LogiRec++/LogiRec training epoch and a
//! complete test evaluation on a tiny benchmark — the unit of work behind
//! every table binary.

use criterion::{criterion_group, criterion_main, Criterion};
use logirec_core::{train, Geometry, LogiRecConfig};
use logirec_data::{DatasetSpec, Scale, Split};
use logirec_eval::evaluate;
use std::hint::black_box;

fn one_epoch_cfg(mining: bool, geometry: Geometry) -> LogiRecConfig {
    LogiRecConfig {
        dim: 32,
        epochs: 1,
        eval_every: 0,
        patience: 0,
        mining,
        geometry,
        ..LogiRecConfig::default()
    }
}

fn bench_e2e(c: &mut Criterion) {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
    let mut group = c.benchmark_group("e2e");
    group.sample_size(10);
    group.bench_function("logirec_one_epoch", |b| {
        b.iter(|| train(black_box(one_epoch_cfg(false, Geometry::Hyperbolic)), &ds))
    });
    group.bench_function("logirec_pp_one_epoch", |b| {
        b.iter(|| train(black_box(one_epoch_cfg(true, Geometry::Hyperbolic)), &ds))
    });
    group.bench_function("logirec_pp_euclid_one_epoch", |b| {
        b.iter(|| train(black_box(one_epoch_cfg(true, Geometry::Euclidean)), &ds))
    });
    let (model, _) = train(one_epoch_cfg(true, Geometry::Hyperbolic), &ds);
    group.bench_function("full_test_evaluation", |b| {
        b.iter(|| evaluate(black_box(&model), &ds, Split::Test, &[10, 20], 4))
    });
    group.finish();
}


/// Short measurement windows: these benches run on constrained CI-like
/// machines (often a single core); trends matter more than tight CIs.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_e2e
}
criterion_main!(benches);
