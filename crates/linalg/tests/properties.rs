//! Property-based tests of the numeric kernels.

use logirec_linalg::{ops, Embedding, SplitMix64};
use proptest::prelude::*;

fn vecs(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        prop::collection::vec(-100.0f64..100.0, n),
        prop::collection::vec(-100.0f64..100.0, n),
    )
}

proptest! {
    #[test]
    fn dot_is_symmetric_and_bilinear((x, y) in vecs(8), a in -5.0f64..5.0) {
        prop_assert!((ops::dot(&x, &y) - ops::dot(&y, &x)).abs() < 1e-9);
        let ax = ops::scaled(&x, a);
        prop_assert!((ops::dot(&ax, &y) - a * ops::dot(&x, &y)).abs() < 1e-6);
    }

    #[test]
    fn cauchy_schwarz((x, y) in vecs(8)) {
        prop_assert!(ops::dot(&x, &y).abs() <= ops::norm(&x) * ops::norm(&y) + 1e-6);
    }

    #[test]
    fn triangle_inequality((x, y) in vecs(8)) {
        let s = ops::add(&x, &y);
        prop_assert!(ops::norm(&s) <= ops::norm(&x) + ops::norm(&y) + 1e-9);
    }

    #[test]
    fn dist_is_a_metric((x, y) in vecs(8)) {
        prop_assert!(ops::dist(&x, &x) < 1e-12);
        prop_assert!((ops::dist(&x, &y) - ops::dist(&y, &x)).abs() < 1e-9);
        prop_assert!(ops::dist(&x, &y) >= 0.0);
        prop_assert!((ops::dist_sq(&x, &y).sqrt() - ops::dist(&x, &y)).abs() < 1e-9);
    }

    #[test]
    fn axpy_matches_definition((x, y) in vecs(8), a in -5.0f64..5.0) {
        let mut z = y.clone();
        ops::axpy(a, &x, &mut z);
        for i in 0..8 {
            prop_assert!((z[i] - (y[i] + a * x[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn clip_norm_is_idempotent_and_bounded((x, _) in vecs(8), max in 0.1f64..10.0) {
        let mut a = x.clone();
        ops::clip_norm(&mut a, max);
        prop_assert!(ops::norm(&a) <= max + 1e-9);
        let once = a.clone();
        ops::clip_norm(&mut a, max);
        for (u, v) in a.iter().zip(&once) {
            prop_assert!((u - v).abs() < 1e-12, "clip must be idempotent");
        }
        // Direction is preserved.
        if ops::norm(&x) > 1e-9 {
            let cos = ops::dot(&x, &a) / (ops::norm(&x) * ops::norm(&a)).max(1e-12);
            prop_assert!(cos > 0.999_999 || ops::norm(&a) < 1e-9);
        }
    }

    #[test]
    fn acosh_clamped_inverts_cosh(t in 0.0f64..20.0) {
        prop_assert!((ops::acosh_clamped(t.cosh()) - t).abs() < 1e-6 * (1.0 + t));
    }

    #[test]
    fn embedding_rows_are_independent(seed in 0u64..1000, r1 in 0usize..10, r2 in 0usize..10) {
        prop_assume!(r1 != r2);
        let mut rng = SplitMix64::new(seed);
        let mut m = Embedding::normal(10, 4, 1.0, &mut rng);
        let before = m.row(r2).to_vec();
        m.row_mut(r1).fill(42.0);
        prop_assert_eq!(m.row(r2), &before[..], "writing row {} touched row {}", r1, r2);
    }

    #[test]
    fn splitmix_uniform_respects_bounds(seed in 0u64..1000, lo in -10.0f64..0.0, hi in 0.1f64..10.0) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..100 {
            let v = rng.uniform(lo, hi);
            prop_assert!((lo..hi).contains(&v));
        }
    }
}
