//! Deterministic k-means building blocks for coarse quantizers.
//!
//! The serving layer's approximate-retrieval index (see
//! `crates/serve/src/index.rs`) partitions the item-embedding table with
//! plain Euclidean Lloyd iterations. Everything here is written for
//! **bit-reproducibility**, not peak throughput: initialization is
//! [`SplitMix64`]-seeded, every pass visits points and clusters in a fixed
//! ascending order, all ties break toward the smaller index, and centroid
//! accumulation is strictly sequential. Two builds from the same table and
//! seed produce byte-identical centroids and assignments on any machine.
//!
//! Kernels are generic over [`Scalar`]; the per-point distance work goes
//! through [`Scalar::dist_sq`], so the `f32` instantiation inherits the
//! chunked (SIMD-friendly) reduction from `scalar.rs`.

use crate::matrix::Embedding;
use crate::rng::SplitMix64;
use crate::scalar::Scalar;

/// The output of [`kmeans`]: `k × dim` centroids plus the cluster id of
/// every input row.
#[derive(Debug, Clone)]
pub struct KMeans<S: Scalar = f64> {
    /// Cluster centers, one row per cluster.
    pub centroids: Embedding<S>,
    /// `assignment[i]` is the cluster of input row `i`.
    pub assignment: Vec<u32>,
    /// Lloyd iterations actually run (stops early on a fixed point).
    pub iterations: usize,
}

/// Index (and squared distance) of the centroid nearest to `x`.
///
/// Clusters are scanned in ascending index order and ties keep the earlier
/// index, so the result is deterministic for any input.
pub fn nearest_centroid<S: Scalar>(x: &[S], centroids: &Embedding<S>) -> (usize, S) {
    debug_assert!(centroids.rows() > 0, "need at least one centroid");
    let mut best = 0usize;
    let mut best_d = S::dist_sq(x, centroids.row(0));
    for c in 1..centroids.rows() {
        let d = S::dist_sq(x, centroids.row(c));
        if d < best_d {
            best = c;
            best_d = d;
        }
    }
    (best, best_d)
}

/// One assignment pass: writes the nearest-centroid id of every point into
/// `assignment` (fixed ascending point order) and returns how many points
/// changed cluster.
pub fn assign_clusters<S: Scalar>(
    points: &Embedding<S>,
    centroids: &Embedding<S>,
    assignment: &mut [u32],
) -> usize {
    debug_assert_eq!(points.rows(), assignment.len());
    let mut changed = 0;
    for (i, slot) in assignment.iter_mut().enumerate() {
        let (c, _) = nearest_centroid(points.row(i), centroids);
        if *slot != c as u32 {
            *slot = c as u32;
            changed += 1;
        }
    }
    changed
}

/// One update pass: recomputes each centroid as the mean of its members,
/// accumulating strictly in ascending point order (the order is part of the
/// bit-reproducibility contract). A cluster with no members keeps its old
/// centroid; the members of each empty cluster are the caller's problem
/// (see the reseeding step in [`kmeans`]). Returns per-cluster member
/// counts.
pub fn update_centroids<S: Scalar>(
    points: &Embedding<S>,
    assignment: &[u32],
    centroids: &mut Embedding<S>,
) -> Vec<usize> {
    let k = centroids.rows();
    let dim = centroids.dim();
    let mut counts = vec![0usize; k];
    let mut sums = vec![S::ZERO; k * dim];
    for (i, &c) in assignment.iter().enumerate() {
        let c = c as usize;
        counts[c] += 1;
        let row = points.row(i);
        let acc = &mut sums[c * dim..(c + 1) * dim];
        for (a, &x) in acc.iter_mut().zip(row) {
            *a += x;
        }
    }
    for c in 0..k {
        if counts[c] == 0 {
            continue;
        }
        let inv = S::ONE / S::from_f64(counts[c] as f64);
        let out = centroids.row_mut(c);
        for (o, &s) in out.iter_mut().zip(&sums[c * dim..(c + 1) * dim]) {
            *o = s * inv;
        }
    }
    counts
}

/// Deterministic Lloyd k-means over the rows of `points`.
///
/// * **Init** — `k` distinct rows sampled with a [`SplitMix64`] seeded by
///   `seed` (resampling on collision, in a fixed procedure).
/// * **Iterate** — at most `max_iters` assignment/update rounds, stopping
///   early when no point changes cluster.
/// * **Empty clusters** — reseeded to the point farthest from its current
///   centroid (ties toward the smaller point index), which both fills the
///   cluster and splits the worst-fit region.
///
/// `k` is clamped to the number of rows; `points` must be non-empty.
pub fn kmeans<S: Scalar>(
    points: &Embedding<S>,
    k: usize,
    max_iters: usize,
    seed: u64,
) -> KMeans<S> {
    let n = points.rows();
    assert!(n > 0, "kmeans needs at least one point");
    let k = k.clamp(1, n);
    let dim = points.dim();

    let mut rng = SplitMix64::new(seed);
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    while chosen.len() < k {
        let i = rng.index(n);
        if !chosen.contains(&i) {
            chosen.push(i);
        }
    }
    let mut centroids = Embedding::<S>::zeros(k, dim);
    for (c, &i) in chosen.iter().enumerate() {
        centroids.row_mut(c).copy_from_slice(points.row(i));
    }

    let mut assignment = vec![u32::MAX; n];
    let mut iterations = 0;
    for _ in 0..max_iters.max(1) {
        iterations += 1;
        let changed = assign_clusters(points, &centroids, &mut assignment);
        let counts = update_centroids(points, &assignment, &mut centroids);
        // Reseed empty clusters from the farthest-from-home point so every
        // cluster ends non-empty (deterministic: clusters ascending, the
        // farthest point with ties toward the smaller index).
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                continue;
            }
            let mut far = 0usize;
            let mut far_d = S::from_f64(-1.0);
            for (i, &home) in assignment.iter().enumerate() {
                let d = S::dist_sq(points.row(i), centroids.row(home as usize));
                if d > far_d {
                    far = i;
                    far_d = d;
                }
            }
            centroids.row_mut(c).copy_from_slice(points.row(far));
            assignment[far] = c as u32;
        }
        if changed == 0 {
            break;
        }
    }
    // Final pass so the returned assignment matches the returned centroids.
    assign_clusters(points, &centroids, &mut assignment);
    KMeans { centroids, assignment, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_points() -> Embedding<f64> {
        // Three well-separated blobs of four points each on a line.
        let mut e = Embedding::zeros(12, 2);
        for i in 0..12 {
            let blob = (i / 4) as f64 * 10.0;
            e.row_mut(i)[0] = blob + (i % 4) as f64 * 0.1;
            e.row_mut(i)[1] = -blob;
        }
        e
    }

    #[test]
    fn kmeans_separates_obvious_blobs() {
        let pts = toy_points();
        let km = kmeans(&pts, 3, 20, 42);
        // Every blob must land in a single cluster.
        for blob in 0..3 {
            let c = km.assignment[blob * 4];
            for j in 0..4 {
                assert_eq!(km.assignment[blob * 4 + j], c, "blob {blob} split");
            }
        }
        // And the three blobs in three distinct clusters.
        let mut ids: Vec<u32> = (0..3).map(|b| km.assignment[b * 4]).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn kmeans_is_bit_reproducible() {
        let mut rng = SplitMix64::new(9);
        let pts = Embedding::<f64>::normal(200, 7, 1.0, &mut rng);
        let a = kmeans(&pts, 16, 10, 1234);
        let b = kmeans(&pts, 16, 10, 1234);
        assert_eq!(a.assignment, b.assignment);
        for (x, y) in a.centroids.as_slice().iter().zip(b.centroids.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // A different seed is allowed to (and here does) pick different
        // initial centers.
        let c = kmeans(&pts, 16, 10, 4321);
        assert!(
            a.assignment != c.assignment
                || a.centroids.as_slice() != c.centroids.as_slice(),
            "distinct seeds collapsed to identical runs"
        );
    }

    #[test]
    fn k_clamps_to_point_count_and_no_cluster_ends_empty() {
        let mut rng = SplitMix64::new(3);
        let pts = Embedding::<f64>::normal(5, 3, 1.0, &mut rng);
        let km = kmeans(&pts, 64, 10, 7);
        assert_eq!(km.centroids.rows(), 5);
        let mut counts = vec![0usize; 5];
        for &c in &km.assignment {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "empty cluster survived: {counts:?}");
    }

    #[test]
    fn assignment_ties_break_toward_the_smaller_cluster() {
        // Two identical centroids: every point must pick cluster 0.
        let mut cents = Embedding::<f64>::zeros(2, 2);
        cents.row_mut(0).copy_from_slice(&[1.0, 1.0]);
        cents.row_mut(1).copy_from_slice(&[1.0, 1.0]);
        let mut pts = Embedding::<f64>::zeros(3, 2);
        pts.row_mut(1).copy_from_slice(&[5.0, -2.0]);
        let mut assignment = vec![u32::MAX; 3];
        assign_clusters(&pts, &cents, &mut assignment);
        assert_eq!(assignment, vec![0, 0, 0]);
    }

    #[test]
    fn f32_kmeans_runs_the_chunked_kernels() {
        let mut rng = SplitMix64::new(5);
        let pts = Embedding::<f32>::normal(100, 16, 1.0, &mut rng);
        let km = kmeans(&pts, 8, 10, 99);
        assert_eq!(km.assignment.len(), 100);
        assert!(km.centroids.all_finite());
    }
}
