//! Free-standing vector kernels.
//!
//! All functions operate on slices and assume equal lengths; they panic (via
//! `debug_assert!` + indexing) on mismatch in debug builds, which is the
//! contract every caller in this workspace upholds by construction.
//!
//! Every kernel is generic over [`Scalar`]. The element-wise kernels are
//! order-preserving, so the `f64` instantiation is bit-identical to the
//! historical `f64`-only versions; the reductions delegate to
//! [`Scalar::dot`] / [`Scalar::dist_sq`], whose accumulation order is part
//! of the trait contract (sequential for `f64`, chunked for `f32`).

use crate::Scalar;

/// Dot product `x · y`.
#[inline]
pub fn dot<S: Scalar>(x: &[S], y: &[S]) -> S {
    debug_assert_eq!(x.len(), y.len());
    S::dot(x, y)
}

/// Squared Euclidean norm `‖x‖²`.
#[inline]
pub fn norm_sq<S: Scalar>(x: &[S]) -> S {
    S::dot(x, x)
}

/// Euclidean norm `‖x‖`.
#[inline]
pub fn norm<S: Scalar>(x: &[S]) -> S {
    norm_sq(x).sqrt()
}

/// Squared Euclidean distance `‖x − y‖²`.
#[inline]
pub fn dist_sq<S: Scalar>(x: &[S], y: &[S]) -> S {
    debug_assert_eq!(x.len(), y.len());
    S::dist_sq(x, y)
}

/// Euclidean distance `‖x − y‖`.
#[inline]
pub fn dist<S: Scalar>(x: &[S], y: &[S]) -> S {
    dist_sq(x, y).sqrt()
}

/// `out ← x`.
#[inline]
pub fn copy<S: Scalar>(out: &mut [S], x: &[S]) {
    out.copy_from_slice(x);
}

/// `y ← y + a·x` (the BLAS `axpy`).
#[inline]
pub fn axpy<S: Scalar>(a: S, x: &[S], y: &mut [S]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * *xi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale<S: Scalar>(x: &mut [S], a: S) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Returns `x + y` as a fresh vector.
#[inline]
pub fn add<S: Scalar>(x: &[S], y: &[S]) -> Vec<S> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| *a + *b).collect()
}

/// Returns `x − y` as a fresh vector.
#[inline]
pub fn sub<S: Scalar>(x: &[S], y: &[S]) -> Vec<S> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| *a - *b).collect()
}

/// Returns `a·x` as a fresh vector.
#[inline]
pub fn scaled<S: Scalar>(x: &[S], a: S) -> Vec<S> {
    x.iter().map(|v| a * *v).collect()
}

/// Fills `x` with zeros.
#[inline]
pub fn zero<S: Scalar>(x: &mut [S]) {
    x.fill(S::ZERO);
}

/// Rescales `x` in place so that `‖x‖ ≤ max_norm`.
///
/// This is the norm clipping used by metric-learning baselines (CML keeps all
/// embeddings in the unit ball) and by Poincaré parameters, which must stay
/// strictly inside the unit ball.
#[inline]
pub fn clip_norm<S: Scalar>(x: &mut [S], max_norm: S) {
    let n = norm(x);
    if n > max_norm {
        scale(x, max_norm / n);
    }
}

/// True when every component is finite (neither NaN nor ±∞).
#[inline]
pub fn all_finite<S: Scalar>(x: &[S]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Numerically safe `acosh`: clamps the argument to `[1, ∞)` before applying
/// `acosh`, absorbing the `1 − ε` values produced by floating-point noise in
/// hyperbolic distance formulas.
#[inline]
pub fn acosh_clamped<S: Scalar>(x: S) -> S {
    if x <= S::ONE {
        S::ZERO
    } else {
        x.acosh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms_agree() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm_sq(&x), 25.0);
        assert_eq!(norm(&x), 5.0);
    }

    #[test]
    fn dist_matches_manual_subtraction() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 3.0];
        assert_eq!(dist_sq(&x, &y), 25.0);
        assert_eq!(dist(&x, &y), 5.0);
        let d = sub(&x, &y);
        assert_eq!(norm(&d), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, -2.0];
        let mut y = [10.0, 10.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 9.0]);
    }

    #[test]
    fn scale_and_scaled_match() {
        let mut x = [2.0, -4.0];
        let s = scaled(&x, -0.5);
        scale(&mut x, -0.5);
        assert_eq!(x.to_vec(), s);
        assert_eq!(x, [-1.0, 2.0]);
    }

    #[test]
    fn clip_norm_only_shrinks() {
        let mut x = [3.0, 4.0];
        clip_norm(&mut x, 10.0);
        assert_eq!(x, [3.0, 4.0]);
        clip_norm(&mut x, 1.0);
        assert!((norm(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acosh_clamped_handles_sub_one_arguments() {
        assert_eq!(acosh_clamped(0.999_999_9), 0.0);
        assert_eq!(acosh_clamped(1.0), 0.0);
        assert!((acosh_clamped(f64::cosh(2.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.5, -2.5, 0.0];
        let y = [0.25, 4.0, -1.0];
        let s = add(&x, &y);
        let back = sub(&s, &y);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[0.0, 1.0, -1.0]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    fn f32_instantiation_matches_f64_on_exact_inputs() {
        let x64 = [1.0f64, -2.0, 3.5, 0.25];
        let y64 = [0.5f64, 2.0, -1.0, 4.0];
        let x32: Vec<f32> = x64.iter().map(|&v| v as f32).collect();
        let y32: Vec<f32> = y64.iter().map(|&v| v as f32).collect();
        // Dyadic inputs: every intermediate is exact in both precisions.
        assert_eq!(f64::from(dot(&x32, &y32)), dot(&x64, &y64));
        assert_eq!(f64::from(dist_sq(&x32, &y32)), dist_sq(&x64, &y64));
        let mut c32 = x32.clone();
        clip_norm(&mut c32, 0.5f32);
        assert!(norm(&c32) <= 0.5 + 1e-6);
    }
}
