//! Free-standing vector kernels.
//!
//! All functions operate on slices and assume equal lengths; they panic (via
//! `debug_assert!` + indexing) on mismatch in debug builds, which is the
//! contract every caller in this workspace upholds by construction.

/// Dot product `x · y`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Squared Euclidean norm `‖x‖²`.
#[inline]
pub fn norm_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Euclidean norm `‖x‖`.
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    norm_sq(x).sqrt()
}

/// Squared Euclidean distance `‖x − y‖²`.
#[inline]
pub fn dist_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Euclidean distance `‖x − y‖`.
#[inline]
pub fn dist(x: &[f64], y: &[f64]) -> f64 {
    dist_sq(x, y).sqrt()
}

/// `out ← x`.
#[inline]
pub fn copy(out: &mut [f64], x: &[f64]) {
    out.copy_from_slice(x);
}

/// `y ← y + a·x` (the BLAS `axpy`).
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(x: &mut [f64], a: f64) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Returns `x + y` as a fresh vector.
#[inline]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Returns `x − y` as a fresh vector.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Returns `a·x` as a fresh vector.
#[inline]
pub fn scaled(x: &[f64], a: f64) -> Vec<f64> {
    x.iter().map(|v| a * v).collect()
}

/// Fills `x` with zeros.
#[inline]
pub fn zero(x: &mut [f64]) {
    x.fill(0.0);
}

/// Rescales `x` in place so that `‖x‖ ≤ max_norm`.
///
/// This is the norm clipping used by metric-learning baselines (CML keeps all
/// embeddings in the unit ball) and by Poincaré parameters, which must stay
/// strictly inside the unit ball.
#[inline]
pub fn clip_norm(x: &mut [f64], max_norm: f64) {
    let n = norm(x);
    if n > max_norm {
        scale(x, max_norm / n);
    }
}

/// True when every component is finite (neither NaN nor ±∞).
#[inline]
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Numerically safe `acosh`: clamps the argument to `[1, ∞)` before applying
/// `acosh`, absorbing the `1 − ε` values produced by floating-point noise in
/// hyperbolic distance formulas.
#[inline]
pub fn acosh_clamped(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.acosh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms_agree() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm_sq(&x), 25.0);
        assert_eq!(norm(&x), 5.0);
    }

    #[test]
    fn dist_matches_manual_subtraction() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 3.0];
        assert_eq!(dist_sq(&x, &y), 25.0);
        assert_eq!(dist(&x, &y), 5.0);
        let d = sub(&x, &y);
        assert_eq!(norm(&d), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, -2.0];
        let mut y = [10.0, 10.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 9.0]);
    }

    #[test]
    fn scale_and_scaled_match() {
        let mut x = [2.0, -4.0];
        let s = scaled(&x, -0.5);
        scale(&mut x, -0.5);
        assert_eq!(x.to_vec(), s);
        assert_eq!(x, [-1.0, 2.0]);
    }

    #[test]
    fn clip_norm_only_shrinks() {
        let mut x = [3.0, 4.0];
        clip_norm(&mut x, 10.0);
        assert_eq!(x, [3.0, 4.0]);
        clip_norm(&mut x, 1.0);
        assert!((norm(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acosh_clamped_handles_sub_one_arguments() {
        assert_eq!(acosh_clamped(0.999_999_9), 0.0);
        assert_eq!(acosh_clamped(1.0), 0.0);
        assert!((acosh_clamped(f64::cosh(2.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.5, -2.5, 0.0];
        let y = [0.25, 4.0, -1.0];
        let s = add(&x, &y);
        let back = sub(&s, &y);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[0.0, 1.0, -1.0]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
