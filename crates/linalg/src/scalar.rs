//! Precision abstraction for the numeric kernels.
//!
//! [`Scalar`] is a **sealed** trait implemented for exactly two types,
//! `f64` and `f32`. Element-wise operations ([`crate::ops`], the hyperbolic
//! kernels) are generic over it and order-preserving, so the `f64`
//! instantiation performs bit-identical arithmetic to the historical
//! `f64`-only code. The *reductions* ([`Scalar::dot`] / [`Scalar::dist_sq`])
//! are trait methods with per-type bodies: the `f64` body keeps the
//! historical strictly-sequential single-accumulator order (bit-identical
//! results, pinned by the determinism suite), while the `f32` body
//! accumulates in eight independent lanes so LLVM's autovectorizer keeps the
//! whole reduction in SIMD registers (see DESIGN.md, "Precision & kernels").

mod sealed {
    /// Prevents downstream impls: the numeric kernels are only validated for
    /// the two IEEE-754 binary formats.
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A floating-point element type the numeric kernels can run in.
///
/// Implemented for `f64` (the default everywhere) and `f32` (the packed
/// serving/training precision). All conversions go through `f64`:
/// [`Scalar::from_f64`] rounds, [`Scalar::to_f64`] widens exactly.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Send
    + Sync
    + 'static
    + PartialEq
    + PartialOrd
    + core::fmt::Debug
    + core::fmt::Display
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
    + core::ops::AddAssign
    + core::ops::SubAssign
    + core::ops::MulAssign
    + core::ops::DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Rounds an `f64` into this precision (identity for `f64`).
    fn from_f64(v: f64) -> Self;
    /// Widens to `f64` (exact for both implementors).
    fn to_f64(self) -> f64;

    /// Square root.
    fn sqrt(self) -> Self;
    /// Hyperbolic cosine.
    fn cosh(self) -> Self;
    /// Hyperbolic sine.
    fn sinh(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Inverse hyperbolic tangent.
    fn atanh(self) -> Self;
    /// Inverse hyperbolic cosine.
    fn acosh(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE maximum (NaN-ignoring, like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum (NaN-ignoring, like `f64::min`).
    fn min(self, other: Self) -> Self;
    /// Clamps into `[lo, hi]`.
    fn clamp(self, lo: Self, hi: Self) -> Self;
    /// True when neither NaN nor ±∞.
    fn is_finite(self) -> bool;

    /// Dot-product reduction `Σ xᵢ·yᵢ`.
    ///
    /// Accumulation order is part of this method's contract: `f64` sums
    /// strictly left-to-right (the historical order the determinism suite
    /// byte-compares against); `f32` sums in fixed-width chunks.
    fn dot(x: &[Self], y: &[Self]) -> Self;

    /// Squared-distance reduction `Σ (xᵢ−yᵢ)²`, same order contract as
    /// [`Scalar::dot`].
    fn dist_sq(x: &[Self], y: &[Self]) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn cosh(self) -> Self {
        f64::cosh(self)
    }
    #[inline(always)]
    fn sinh(self) -> Self {
        f64::sinh(self)
    }
    #[inline(always)]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline(always)]
    fn atanh(self) -> Self {
        f64::atanh(self)
    }
    #[inline(always)]
    fn acosh(self) -> Self {
        f64::acosh(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn clamp(self, lo: Self, hi: Self) -> Self {
        f64::clamp(self, lo, hi)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn dot(x: &[Self], y: &[Self]) -> Self {
        // Historical sequential order — must stay bit-identical to the
        // pre-generic `ops::dot`.
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    #[inline]
    fn dist_sq(x: &[Self], y: &[Self]) -> Self {
        x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
    }
}

/// Lane count of the chunked `f32` reductions. Eight `f32` lanes fill one
/// 256-bit vector register; narrower targets still vectorize the inner loop
/// as two 128-bit operations.
const F32_LANES: usize = 8;

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn cosh(self) -> Self {
        f32::cosh(self)
    }
    #[inline(always)]
    fn sinh(self) -> Self {
        f32::sinh(self)
    }
    #[inline(always)]
    fn tanh(self) -> Self {
        f32::tanh(self)
    }
    #[inline(always)]
    fn atanh(self) -> Self {
        f32::atanh(self)
    }
    #[inline(always)]
    fn acosh(self) -> Self {
        f32::acosh(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn clamp(self, lo: Self, hi: Self) -> Self {
        f32::clamp(self, lo, hi)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[inline]
    fn dot(x: &[Self], y: &[Self]) -> Self {
        let mut acc = [0.0f32; F32_LANES];
        let mut xc = x.chunks_exact(F32_LANES);
        let mut yc = y.chunks_exact(F32_LANES);
        for (xb, yb) in (&mut xc).zip(&mut yc) {
            for l in 0..F32_LANES {
                acc[l] += xb[l] * yb[l];
            }
        }
        let mut tail = 0.0f32;
        for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
            tail += a * b;
        }
        reduce_lanes(&acc) + tail
    }

    #[inline]
    fn dist_sq(x: &[Self], y: &[Self]) -> Self {
        let mut acc = [0.0f32; F32_LANES];
        let mut xc = x.chunks_exact(F32_LANES);
        let mut yc = y.chunks_exact(F32_LANES);
        for (xb, yb) in (&mut xc).zip(&mut yc) {
            for l in 0..F32_LANES {
                let d = xb[l] - yb[l];
                acc[l] += d * d;
            }
        }
        let mut tail = 0.0f32;
        for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
            let d = a - b;
            tail += d * d;
        }
        reduce_lanes(&acc) + tail
    }
}

/// Pairwise horizontal reduction of the lane accumulators (fixed shape, so
/// the summation order is deterministic).
#[inline]
fn reduce_lanes(acc: &[f32; F32_LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_reductions_keep_the_sequential_order() {
        // A sequence whose sequential and pairwise sums differ in the last
        // bits: the f64 impl must match the literal sequential loop.
        let x: Vec<f64> = (0..23).map(|i| 1.0 + (i as f64) * 1e-13).collect();
        let y: Vec<f64> = (0..23).map(|i| 1.0 - (i as f64) * 3e-7).collect();
        let sequential: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(<f64 as Scalar>::dot(&x, &y), sequential);
        let seq_d: f64 = x.iter().zip(&y).map(|(a, b)| (a - b) * (a - b)).sum();
        assert_eq!(<f64 as Scalar>::dist_sq(&x, &y), seq_d);
    }

    #[test]
    fn f32_reductions_match_f64_within_single_precision() {
        let x: Vec<f32> = (0..67).map(|i| ((i * 37) % 19) as f32 * 0.083 - 0.7).collect();
        let y: Vec<f32> = (0..67).map(|i| ((i * 11) % 23) as f32 * 0.041 - 0.4).collect();
        let wide: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| f64::from(*a) * f64::from(*b))
            .sum();
        let narrow = <f32 as Scalar>::dot(&x, &y);
        assert!(
            (f64::from(narrow) - wide).abs() < 1e-3 * (1.0 + wide.abs()),
            "{narrow} vs {wide}"
        );
        let wide_d: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
            .sum();
        let narrow_d = <f32 as Scalar>::dist_sq(&x, &y);
        assert!((f64::from(narrow_d) - wide_d).abs() < 1e-3 * (1.0 + wide_d.abs()));
    }

    #[test]
    fn f32_reductions_cover_remainder_lengths() {
        for len in 0..=17 {
            let x: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let expect: f32 = x.iter().map(|v| v * v).sum();
            // Small integer-valued inputs are exact in every order.
            assert_eq!(<f32 as Scalar>::dot(&x, &x), expect, "len {len}");
            assert_eq!(<f32 as Scalar>::dist_sq(&x, &x), 0.0, "len {len}");
        }
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(<f64 as Scalar>::from_f64(0.1), 0.1);
        assert_eq!(<f32 as Scalar>::from_f64(0.1), 0.1f32);
        assert_eq!(Scalar::to_f64(0.5f32), 0.5);
        assert_eq!(<f32 as Scalar>::ONE + <f32 as Scalar>::ZERO, 1.0);
    }
}
