#![warn(missing_docs)]

//! Dense numeric substrate for the LogiRec reproduction.
//!
//! Every model in this workspace stores its parameters as rows of an
//! [`Embedding`] matrix and manipulates them with the free functions in
//! [`ops`]. Keeping the numeric kernel in one tiny crate lets the geometry,
//! model, and baseline crates share identical, well-tested primitives.
//!
//! Arithmetic is precision-generic over the sealed [`Scalar`] trait
//! (`f64` + `f32`), with `f64` as the default everywhere: hyperbolic maps
//! amplify rounding error near the boundary of the Poincaré ball, and the
//! paper's optimization (Riemannian SGD with exponential maps) is far more
//! stable in double precision. The `f32` instantiation exists for the packed
//! training/serving path; its reductions run in fixed-width chunks that the
//! autovectorizer keeps in SIMD registers (see DESIGN.md, "Precision &
//! kernels").

pub mod cluster;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod scalar;

pub use cluster::{assign_clusters, kmeans, nearest_centroid, update_centroids, KMeans};
pub use matrix::Embedding;
pub use rng::SplitMix64;
pub use scalar::Scalar;
