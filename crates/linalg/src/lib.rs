#![warn(missing_docs)]

//! Dense numeric substrate for the LogiRec reproduction.
//!
//! Every model in this workspace stores its parameters as rows of an
//! [`Embedding`] matrix and manipulates them with the free functions in
//! [`ops`]. Keeping the numeric kernel in one tiny crate lets the geometry,
//! model, and baseline crates share identical, well-tested primitives.
//!
//! All arithmetic is `f64`: hyperbolic maps amplify rounding error near the
//! boundary of the Poincaré ball, and the paper's optimization (Riemannian
//! SGD with exponential maps) is far more stable in double precision.

pub mod matrix;
pub mod ops;
pub mod rng;

pub use matrix::Embedding;
pub use rng::SplitMix64;
