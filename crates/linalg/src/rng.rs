//! A tiny, deterministic PRNG for reproducible experiments.
//!
//! Experiments in this workspace must be exactly reproducible across runs and
//! platforms given a seed (the paper reports mean ± std over repeated runs).
//! Third-party generators are reproducible per crate version, but a local
//! SplitMix64 keeps the stream format under our control and costs a handful
//! of lines, with zero external dependencies.

/// SplitMix64 generator (Steele, Lea & Flood, 2014). Passes BigCrush when
/// used as a 64-bit stream; more than adequate for embedding init and
/// negative sampling.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for all practical purposes.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child stream; used to give each dataset /
    /// model / epoch its own generator without coupling their draws.
    pub fn fork(&mut self, stream: u64) -> Self {
        let mixed = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(mixed)
    }

    /// The raw internal state, for checkpointing. Feeding it back through
    /// [`SplitMix64::from_state`] continues the stream bit-identically.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a [`SplitMix64::state`] snapshot.
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Next value in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection-free mapping is fine here: the
        // modulo bias for n ≪ 2^64 is negligible for sampling workloads.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal draw via Box–Muller (one value per call; the spare
    /// value is discarded for simplicity — init is not a hot path).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an index from an (unnormalized) non-negative weight vector.
    /// Panics if the total weight is not positive.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index requires positive total weight");
        let mut t = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Next raw 64-bit value (SplitMix64 core step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit value (high half of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[lo, hi)` rounded into precision `S`.
    ///
    /// The draw itself always consumes the `f64` stream (one `next_u64`),
    /// so an `S = f32` run sees the *same* random sequence as `f64`, merely
    /// rounded — initialization parity between precisions is exact up to
    /// rounding, and the `f64` instantiation is the identity.
    #[inline]
    pub fn uniform_in<S: crate::Scalar>(&mut self, lo: f64, hi: f64) -> S {
        S::from_f64(self.uniform(lo, hi))
    }

    /// Standard normal draw rounded into precision `S`; same stream-sharing
    /// contract as [`SplitMix64::uniform_in`].
    #[inline]
    pub fn normal_in<S: crate::Scalar>(&mut self) -> S {
        S::from_f64(self.normal())
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_diverge() {
        let mut root = SplitMix64::new(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn state_snapshot_resumes_the_stream_exactly() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = SplitMix64::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn index_covers_range_uniformly_enough() {
        let mut rng = SplitMix64::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.index(10)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow ±10 %.
            assert!((9_000..=11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SplitMix64::new(9);
        let n = 200_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let v = rng.normal();
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SplitMix64::new(11);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }

    #[test]
    fn fill_bytes_handles_non_multiple_lengths() {
        let mut rng = SplitMix64::new(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
