//! Row-major embedding storage.
//!
//! An [`Embedding`] is an `n × d` matrix whose rows are the latent vectors of
//! users, items, or tags. It is deliberately minimal: contiguous storage,
//! row views, and the initialization schemes the paper's models need.
//!
//! The element type is generic over [`Scalar`] with an `f64` default, so the
//! plain `Embedding` spelling every existing caller uses still means the
//! double-precision matrix. The random initializers always *draw* in `f64`
//! (one stream regardless of precision) and round into `S`, which makes an
//! `f32` table the rounding of the corresponding `f64` table rather than a
//! different random model.

use crate::ops;
use crate::rng::SplitMix64;
use crate::Scalar;

/// Dense row-major `n × d` matrix of scalars (default `f64`).
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding<S: Scalar = f64> {
    rows: usize,
    dim: usize,
    data: Vec<S>,
}

impl<S: Scalar> Embedding<S> {
    /// Zero-initialized `rows × dim` matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self { rows, dim, data: vec![S::ZERO; rows * dim] }
    }

    /// Uniform init in `[-scale, scale)`, the classic MF/GCN initialization.
    pub fn uniform(rows: usize, dim: usize, scale: f64, rng: &mut SplitMix64) -> Self {
        let mut m = Self::zeros(rows, dim);
        for v in &mut m.data {
            *v = rng.uniform_in(-scale, scale);
        }
        m
    }

    /// Gaussian init with standard deviation `std`.
    pub fn normal(rows: usize, dim: usize, std: f64, rng: &mut SplitMix64) -> Self {
        let mut m = Self::zeros(rows, dim);
        for v in &mut m.data {
            *v = S::from_f64(rng.normal() * std);
        }
        m
    }

    /// "Burn-in" init used for Poincaré embeddings (Nickel & Kiela 2017):
    /// uniform in a small ball of radius `radius` around the origin so every
    /// point starts well inside the unit ball with room to spread out.
    pub fn poincare_burn_in(rows: usize, dim: usize, radius: f64, rng: &mut SplitMix64) -> Self {
        let mut m = Self::uniform(rows, dim, radius, rng);
        for r in 0..rows {
            ops::clip_norm(m.row_mut(r), S::from_f64(radius));
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension (columns).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[S] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [S] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Two disjoint mutable rows; panics if `i == j`.
    pub fn rows_mut2(&mut self, i: usize, j: usize) -> (&mut [S], &mut [S]) {
        assert_ne!(i, j, "rows_mut2 requires distinct rows");
        let d = self.dim;
        if i < j {
            let (a, b) = self.data.split_at_mut(j * d);
            (&mut a[i * d..(i + 1) * d], &mut b[..d])
        } else {
            let (a, b) = self.data.split_at_mut(i * d);
            (&mut b[..d], &mut a[j * d..(j + 1) * d])
        }
    }

    /// Flat view of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Flat mutable view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Sets every element to zero (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.data.fill(S::ZERO);
    }

    /// Iterator over row views.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[S]> {
        self.data.chunks_exact(self.dim)
    }

    /// Frobenius norm of the whole matrix.
    pub fn frobenius_norm(&self) -> S {
        ops::norm(&self.data)
    }

    /// True when all entries are finite — the invariant every optimizer step
    /// in this workspace must maintain.
    pub fn all_finite(&self) -> bool {
        ops::all_finite(&self.data)
    }

    /// Appends one row to the bottom of the matrix. The streaming fold-in
    /// path uses this to grow a table in place without reallocating the
    /// existing rows into a new matrix.
    ///
    /// Panics if `row.len() != dim` (a shape bug, not a data error).
    pub fn push_row(&mut self, row: &[S]) {
        assert_eq!(row.len(), self.dim, "push_row requires a {}-dim row", self.dim);
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Converts every entry through `f64` into precision `T` (exact when
    /// widening `f32 → f64`, round-to-nearest when narrowing).
    pub fn cast<T: Scalar>(&self) -> Embedding<T> {
        Embedding {
            rows: self.rows,
            dim: self.dim,
            data: self.data.iter().map(|v| T::from_f64(v.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_accessors() {
        let m: Embedding = Embedding::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.as_slice().len(), 12);
    }

    #[test]
    fn row_views_are_disjoint_and_ordered() {
        let mut m = Embedding::zeros(3, 2);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0]);
        m.row_mut(2).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[0.0, 0.0]);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn rows_mut2_both_orders() {
        let mut m = Embedding::zeros(4, 2);
        {
            let (a, b) = m.rows_mut2(1, 3);
            a[0] = 1.0;
            b[0] = 3.0;
        }
        {
            let (a, b) = m.rows_mut2(3, 1);
            assert_eq!(a[0], 3.0);
            assert_eq!(b[0], 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn rows_mut2_rejects_same_row() {
        let mut m: Embedding = Embedding::zeros(2, 2);
        let _ = m.rows_mut2(1, 1);
    }

    #[test]
    fn uniform_init_stays_in_range() {
        let mut rng = SplitMix64::new(1);
        let m = Embedding::uniform(100, 8, 0.1, &mut rng);
        assert!(m.as_slice().iter().all(|v| (-0.1..0.1).contains(v)));
    }

    #[test]
    fn burn_in_rows_stay_inside_radius() {
        let mut rng = SplitMix64::new(2);
        let m: Embedding = Embedding::poincare_burn_in(50, 16, 1e-3, &mut rng);
        for r in m.iter_rows() {
            assert!(crate::ops::norm(r) <= 1e-3 + 1e-12);
        }
    }

    #[test]
    fn frobenius_norm_matches_flat_norm() {
        let mut rng = SplitMix64::new(3);
        let m: Embedding = Embedding::normal(10, 5, 1.0, &mut rng);
        assert!((m.frobenius_norm() - crate::ops::norm(m.as_slice())).abs() < 1e-15);
        assert!(m.all_finite());
    }

    #[test]
    fn f32_init_consumes_the_same_stream_as_f64() {
        let mut rng64 = SplitMix64::new(17);
        let mut rng32 = SplitMix64::new(17);
        let m64: Embedding<f64> = Embedding::uniform(6, 5, 0.3, &mut rng64);
        let m32: Embedding<f32> = Embedding::uniform(6, 5, 0.3, &mut rng32);
        // Same draw count → generators end in the same state…
        assert_eq!(rng64.state(), rng32.state());
        // …and every f32 entry is the rounding of the f64 entry.
        for (a, b) in m64.as_slice().iter().zip(m32.as_slice()) {
            assert_eq!(*b, *a as f32);
        }
    }

    #[test]
    fn push_row_grows_without_disturbing_existing_rows() {
        let mut m = Embedding::zeros(2, 3);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        m.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        let before = m.as_slice().to_vec();
        m.push_row(&[7.0, 8.0, 9.0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(&m.as_slice()[..6], &before[..]);
        assert_eq!(m.row(2), &[7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "push_row requires")]
    fn push_row_rejects_wrong_width() {
        let mut m: Embedding = Embedding::zeros(1, 3);
        m.push_row(&[1.0, 2.0]);
    }

    #[test]
    fn cast_round_trips_through_wider_precision() {
        let mut rng = SplitMix64::new(4);
        let m: Embedding<f32> = Embedding::normal(4, 3, 0.5, &mut rng);
        let wide: Embedding<f64> = m.cast();
        let back: Embedding<f32> = wide.cast();
        assert_eq!(m, back);
        assert_eq!(wide.rows(), 4);
        assert_eq!(wide.dim(), 3);
    }
}
