//! Property-based gradient checks for the model's loss kernels: every
//! analytic gradient must match central finite differences on random
//! parameter configurations. This is the contract that lets the trainer
//! chain kernels without an autodiff engine.

use logirec_core::losses::{
    exclusion_loss_grad, hierarchy_loss_grad, membership_loss_grad, LogicGrads,
};
use logirec_core::{LogiRec, LogiRecConfig};
use logirec_data::{DatasetSpec, Scale};
use logirec_taxonomy::TagId;
use proptest::prelude::*;

fn model_with_params(tag_jitter: &[f64], item_jitter: &[f64]) -> (LogiRec, logirec_data::Dataset) {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(17);
    let mut cfg = LogiRecConfig::test_config();
    cfg.dim = 4;
    let mut m: LogiRec = LogiRec::new(cfg, &ds);
    // Jitter a few parameters so proptest explores distinct configurations.
    for (i, &j) in tag_jitter.iter().enumerate() {
        let t = i % m.tags.rows();
        let col = i % 4;
        m.tags.row_mut(t)[col] = (m.tags.row(t)[col] + 0.3 * j).clamp(-0.6, 0.6);
    }
    for (i, &j) in item_jitter.iter().enumerate() {
        let v = i % m.items.rows();
        let col = (i + 1) % 4;
        m.items.row_mut(v)[col] = (m.items.row(v)[col] + 0.3 * j).clamp(-0.6, 0.6);
    }
    (m, ds)
}

fn fd_tag_grad(
    m: &LogiRec,
    f: &dyn Fn(&LogiRec) -> f64,
    t: usize,
    col: usize,
    h: f64,
) -> f64 {
    let mut mp = m.clone();
    mp.tags.row_mut(t)[col] += h;
    let mut mm = m.clone();
    mm.tags.row_mut(t)[col] -= h;
    (f(&mp) - f(&mm)) / (2.0 * h)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn membership_gradients_are_exact(
        tj in prop::collection::vec(-1.0f64..1.0, 6),
        ij in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let (m, ds) = model_with_params(&tj, &ij);
        let pairs = &ds.relations.membership[..12.min(ds.relations.membership.len())];
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            membership_loss_grad(m, pairs, 1.0, &mut a);
            a.loss
        };
        let mut acc = LogicGrads::zeros(&m);
        membership_loss_grad(&m, pairs, 1.0, &mut acc);
        for t in 0..2 {
            for col in 0..2 {
                let num = fd_tag_grad(&m, &f, t, col, 1e-7);
                let ana = acc.tags.row(t)[col];
                prop_assert!(
                    (num - ana).abs() < 2e-4 * (1.0 + num.abs()),
                    "tag[{t}][{col}]: {num} vs {ana}"
                );
            }
        }
        // Item gradient on the first referenced item.
        let v = pairs[0].0;
        for col in 0..2 {
            let mut mp = m.clone();
            mp.items.row_mut(v)[col] += 1e-7;
            let mut mm = m.clone();
            mm.items.row_mut(v)[col] -= 1e-7;
            let num = (f(&mp) - f(&mm)) / 2e-7;
            let ana = acc.items.row(v)[col];
            prop_assert!((num - ana).abs() < 2e-4 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn hierarchy_gradients_are_exact(
        tj in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let (m, ds) = model_with_params(&tj, &[]);
        let pairs = &ds.relations.hierarchy[..10.min(ds.relations.hierarchy.len())];
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            hierarchy_loss_grad(m, pairs, 1.0, &mut a);
            a.loss
        };
        let mut acc = LogicGrads::zeros(&m);
        hierarchy_loss_grad(&m, pairs, 1.0, &mut acc);
        for &(p, c) in pairs.iter().take(3) {
            for col in 0..2 {
                for tag in [p, c] {
                    let num = fd_tag_grad(&m, &f, tag, col, 1e-7);
                    let ana = acc.tags.row(tag)[col];
                    prop_assert!(
                        (num - ana).abs() < 2e-4 * (1.0 + num.abs()),
                        "tag[{tag}][{col}]: {num} vs {ana}"
                    );
                }
            }
        }
    }

    #[test]
    fn exclusion_gradients_are_exact(
        tj in prop::collection::vec(-1.0f64..1.0, 6),
    ) {
        let (m, ds) = model_with_params(&tj, &[]);
        let pairs: Vec<(TagId, TagId)> =
            ds.relations.exclusion.iter().take(10).map(|&(a, b, _)| (a, b)).collect();
        prop_assume!(!pairs.is_empty());
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            exclusion_loss_grad(m, &pairs, 1.0, &mut a);
            a.loss
        };
        let mut acc = LogicGrads::zeros(&m);
        exclusion_loss_grad(&m, &pairs, 1.0, &mut acc);
        for &(a, b) in pairs.iter().take(3) {
            for col in 0..2 {
                for tag in [a, b] {
                    let num = fd_tag_grad(&m, &f, tag, col, 1e-7);
                    let ana = acc.tags.row(tag)[col];
                    prop_assert!(
                        (num - ana).abs() < 2e-4 * (1.0 + num.abs()),
                        "tag[{tag}][{col}]: {num} vs {ana}"
                    );
                }
            }
        }
    }
}
