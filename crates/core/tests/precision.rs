//! f32 parity bounds for the precision-generic kernels.
//!
//! The f64 path is pinned bit-exactly by the determinism suite; these
//! tests bound the *single-precision* path instead: the sharded logic
//! losses must still match central finite differences (at f32-appropriate
//! step sizes and tolerances), and a short f32 training run must land
//! within a small absolute drift of the f64 run on ranking metrics.

use logirec_core::losses::{logic_loss_grad_sharded, LogicBatch};
use logirec_core::{train, LogiRec, LogiRecConfig, Precision};
use logirec_data::{DatasetSpec, Scale, Split};
use logirec_eval::evaluate;
use logirec_linalg::Scalar;
use logirec_taxonomy::TagId;

fn f32_model() -> (LogiRec<f32>, logirec_data::Dataset) {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(17);
    let mut cfg = LogiRecConfig::test_config();
    cfg.dim = 4;
    let m: LogiRec = LogiRec::new(cfg, &ds);
    (m.cast::<f32>(), ds)
}

/// Central finite differences of the sharded loss w.r.t. a few tag
/// coordinates, in f32. The loss is accumulated in f64 but every margin
/// and distance is computed in f32, so the step and tolerance are much
/// coarser than the f64 checks in `gradients.rs`.
fn fd_check_tags(m: &LogiRec<f32>, batch: LogicBatch<'_>, tags: &[TagId]) {
    let f = |m: &LogiRec<f32>| logic_loss_grad_sharded(m, &[(batch, 1.0)], 2).loss;
    let shard = logic_loss_grad_sharded(m, &[(batch, 1.0)], 2);
    assert!(shard.all_finite(), "f32 shard produced non-finite values");
    let h = 1e-3f32;
    for &t in tags {
        for col in 0..2 {
            let mut mp = m.clone();
            mp.tags.row_mut(t)[col] += h;
            let mut mm = m.clone();
            mm.tags.row_mut(t)[col] -= h;
            let num = (f(&mp) - f(&mm)) / (2.0 * h as f64);
            let ana = shard.tags.get(t).map(|r| r[col].to_f64()).unwrap_or(0.0);
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "tag[{t}][{col}]: fd {num} vs analytic {ana}"
            );
        }
    }
}

#[test]
fn f32_membership_gradients_match_fd() {
    let (m, ds) = f32_model();
    let pairs = &ds.relations.membership[..12.min(ds.relations.membership.len())];
    let tags: Vec<TagId> = pairs.iter().take(3).map(|&(_, t)| t).collect();
    fd_check_tags(&m, LogicBatch::Membership(pairs), &tags);
}

#[test]
fn f32_hierarchy_gradients_match_fd() {
    let (m, ds) = f32_model();
    let pairs = &ds.relations.hierarchy[..10.min(ds.relations.hierarchy.len())];
    let tags: Vec<TagId> = pairs.iter().take(2).flat_map(|&(p, c)| [p, c]).collect();
    fd_check_tags(&m, LogicBatch::Hierarchy(pairs), &tags);
}

#[test]
fn f32_exclusion_gradients_match_fd() {
    let (m, ds) = f32_model();
    let pairs: Vec<(TagId, TagId)> =
        ds.relations.exclusion.iter().take(10).map(|&(a, b, _)| (a, b)).collect();
    assert!(!pairs.is_empty());
    let tags: Vec<TagId> = pairs.iter().take(2).flat_map(|&(a, b)| [a, b]).collect();
    fd_check_tags(&m, LogicBatch::Exclusion(&pairs), &tags);
}

#[test]
fn f32_intersection_gradients_match_fd() {
    let (m, ds) = f32_model();
    let pairs = ds.relations.intersection_pairs();
    assert!(!pairs.is_empty());
    let probe = &pairs[..10.min(pairs.len())];
    let tags: Vec<TagId> = probe.iter().take(2).flat_map(|&(a, b)| [a, b]).collect();
    fd_check_tags(&m, LogicBatch::Intersection(probe), &tags);
}

/// Same seed, same dataset, same epochs — the f32 run's ranking metrics
/// must land within a small absolute drift of the f64 run. This is the
/// end-to-end bound on accumulated rounding across sharded gradients,
/// RSGD steps, and the propagate pass.
#[test]
fn f32_training_metrics_track_f64() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
    let mut cfg = LogiRecConfig::test_config();
    cfg.epochs = 3;
    cfg.eval_every = 0;

    let (m64, r64) = train(cfg.clone(), &ds);
    cfg.precision = Precision::F32;
    let (m32, r32) = train(cfg, &ds);

    assert!(m32.all_finite(), "f32-trained model has non-finite values");
    let last32 = r32.history.last().expect("f32 run recorded no epochs");
    let last64 = r64.history.last().expect("f64 run recorded no epochs");
    let (l32, l64) = (last32.rank_loss + last32.logic_loss, last64.rank_loss + last64.logic_loss);
    assert!(l32.is_finite(), "f32 training diverged");
    assert!(
        (l32 - l64).abs() < 0.05 * (1.0 + l64.abs()),
        "loss drift: f32 {l32} vs f64 {l64}"
    );

    let e64 = evaluate(&m64, &ds, Split::Test, &[10], 2);
    let e32 = evaluate(&m32, &ds, Split::Test, &[10], 2);
    let dr = (e32.recall_at(10) - e64.recall_at(10)).abs();
    let dn = (e32.ndcg_at(10) - e64.ndcg_at(10)).abs();
    assert!(dr <= 0.05, "Recall@10 drift {dr}: f32 {} vs f64 {}", e32.recall_at(10), e64.recall_at(10));
    assert!(dn <= 0.05, "NDCG@10 drift {dn}: f32 {} vs f64 {}", e32.ndcg_at(10), e64.ndcg_at(10));
}

/// Evaluating a model cast to f32 (the `--precision f32` serving path)
/// must produce nearly the same metrics as scoring in f64.
#[test]
fn f32_serving_metrics_track_f64() {
    let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
    let mut cfg = LogiRecConfig::test_config();
    cfg.epochs = 2;
    cfg.eval_every = 0;
    let (m64, _) = train(cfg, &ds);

    let mut m32 = m64.cast::<f32>();
    m32.propagate(&ds.train);

    let e64 = evaluate(&m64, &ds, Split::Test, &[10, 20], 2);
    let e32 = evaluate(&m32, &ds, Split::Test, &[10, 20], 2);
    for k in [10usize, 20] {
        assert!(
            (e32.recall_at(k) - e64.recall_at(k)).abs() <= 0.05,
            "Recall@{k} drift: f32 {} vs f64 {}",
            e32.recall_at(k),
            e64.recall_at(k)
        );
    }
}
