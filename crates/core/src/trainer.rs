//! The joint training loop (Eq. 10 for LogiRec, Eq. 15 for LogiRec++).
//!
//! Each SGD step: full forward propagation, an LMNN ranking batch with
//! sampled negatives (α-weighted when mining is on), sampled logical
//! relation batches for L_Mem/L_Hie/L_Ex scaled by λ, exact backward
//! passes, and Riemannian SGD updates per parameter family (Section V-C).
//! Validation Recall@10 is tracked for snapshotting/early stopping.

use logirec_data::{BatchIter, Dataset, NegativeSampler, Split};
use logirec_eval::evaluate;
use logirec_hyperbolic::rsgd;
use logirec_linalg::{ops, Embedding, SplitMix64};
use logirec_taxonomy::TagId;

use crate::config::{Geometry, LogiRecConfig};
use crate::losses::{
    exclusion_loss_grad, hierarchy_loss_grad, intersection_loss_grad, membership_loss_grad,
    rank_loss_grad, LogicGrads,
};
use crate::mining::{combine_weights, consistency_weights, granularity_weights};
use crate::model::LogiRec;

/// Per-epoch training statistics.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean ranking loss over the epoch's steps.
    pub rank_loss: f64,
    /// Mean logical relation loss (already λ-scaled).
    pub logic_loss: f64,
    /// Validation Recall@10, when evaluated this epoch.
    pub val_recall10: Option<f64>,
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub history: Vec<EpochStats>,
    /// Best validation Recall@10 observed (None when never evaluated).
    pub best_val_recall10: Option<f64>,
    /// Number of epochs actually run (≤ `cfg.epochs` with early stopping).
    pub epochs_run: usize,
}

/// Trains LogiRec/LogiRec++ on `dataset` and returns the model with a
/// fresh forward state (ready for ranking) plus the training report.
///
/// ```
/// use logirec_core::{train, LogiRecConfig};
/// use logirec_data::{DatasetSpec, Scale};
/// let dataset = DatasetSpec::ciao(Scale::Tiny).generate(42);
/// let cfg = LogiRecConfig { dim: 8, epochs: 2, eval_every: 0, ..LogiRecConfig::default() };
/// let (model, report) = train(cfg, &dataset);
/// assert!(model.all_finite());
/// assert_eq!(report.epochs_run, 2);
/// ```
pub fn train(cfg: LogiRecConfig, dataset: &Dataset) -> (LogiRec, TrainReport) {
    let mut model = LogiRec::new(cfg.clone(), dataset);
    let n_users = dataset.n_users();
    let rel = &dataset.relations;
    let exclusion_pairs: Vec<(TagId, TagId)> =
        rel.exclusion.iter().map(|&(a, b, _)| (a, b)).collect();
    let intersection_pairs: Vec<(TagId, TagId)> =
        if cfg.use_int { rel.intersection_pairs() } else { Vec::new() };

    let con = if cfg.mining { Some(consistency_weights(dataset)) } else { None };
    let mut alpha: Option<Vec<f64>> = None;

    let mut rng = SplitMix64::new(cfg.seed.wrapping_mul(0x9E37_79B9) ^ 0x1357_9BDF);
    let mut history = Vec::new();
    let mut best: Option<(f64, Embedding, Embedding, Embedding)> = None;
    let mut bad_rounds = 0usize;
    let mut epochs_run = 0usize;

    for epoch in 0..cfg.epochs {
        epochs_run = epoch + 1;
        let lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
        // Refresh LogiRec++ weights from the current geometry.
        if let Some(con) = &con {
            if alpha.is_none() || epoch % cfg.mining_refresh.max(1) == 0 {
                model.propagate(&dataset.train);
                let gr = granularity_weights(&model, n_users);
                alpha = Some(combine_weights(con, &gr, cfg.alpha_floor));
            }
        }

        let mut sampler =
            NegativeSampler::new(&dataset.train, rng.fork(1_000 + epoch as u64));
        let mut batch_rng = rng.fork(2_000 + epoch as u64);
        let mut logic_rng = rng.fork(3_000 + epoch as u64);

        let (mut rank_sum, mut logic_sum, mut steps) = (0.0, 0.0, 0usize);
        for batch in BatchIter::new(&dataset.train, cfg.batch_size, &mut batch_rng) {
            model.propagate(&dataset.train);

            // Ranking triplets with sampled negatives.
            let mut triplets = Vec::with_capacity(batch.len() * cfg.negatives);
            for &(u, vp) in &batch {
                for _ in 0..cfg.negatives.max(1) {
                    triplets.push((u, vp, sampler.sample(u)));
                }
            }
            // Sum-weighted per positive (each user's triplets contribute a
            // full gradient unit regardless of batch size): batched
            // full-graph steps then match the effective per-sample step
            // size of classic metric-learning SGD.
            let per_triplet = 1.0 / cfg.negatives.max(1) as f64;
            let rg =
                rank_loss_grad(&model, &triplets, cfg.margin, alpha.as_deref(), per_triplet);
            let (g_users, mut g_items) =
                model.backward_rank(&rg.user_final, &rg.item_final, &dataset.train);

            // Logical relation batches. Per-relation weights make the
            // stochastic objective an unbiased estimate of the batch's
            // share of Eq. 10/15: the rank part covers batch_len of
            // n_pairs positives, so each relation type is scaled by
            // λ · (batch_len / n_pairs) · (N_type / sample_len).
            let mut lg = LogicGrads::zeros(&model);
            if cfg.lambda > 0.0 {
                let batch_frac = batch.len() as f64 / dataset.train.len().max(1) as f64;
                if cfg.use_mem && !rel.membership.is_empty() {
                    let s = sample_slice(&rel.membership, cfg.logic_batch, &mut logic_rng);
                    let w = cfg.lambda * batch_frac * rel.membership.len() as f64
                        / s.len() as f64;
                    membership_loss_grad(&model, &s, w, &mut lg);
                }
                if cfg.use_hie && !rel.hierarchy.is_empty() {
                    let s = sample_slice(&rel.hierarchy, cfg.logic_batch, &mut logic_rng);
                    let w =
                        cfg.lambda * batch_frac * rel.hierarchy.len() as f64 / s.len() as f64;
                    hierarchy_loss_grad(&model, &s, w, &mut lg);
                }
                if cfg.use_ex && !exclusion_pairs.is_empty() {
                    let s = sample_slice(&exclusion_pairs, cfg.logic_batch, &mut logic_rng);
                    let w =
                        cfg.lambda * batch_frac * exclusion_pairs.len() as f64 / s.len() as f64;
                    exclusion_loss_grad(&model, &s, w, &mut lg);
                }
                if cfg.use_int && !intersection_pairs.is_empty() {
                    let s = sample_slice(&intersection_pairs, cfg.logic_batch, &mut logic_rng);
                    let w = cfg.lambda * batch_frac * intersection_pairs.len() as f64
                        / s.len() as f64;
                    intersection_loss_grad(&model, &s, w, &mut lg);
                }
            }
            ops::axpy(1.0, lg.items.as_slice(), g_items.as_mut_slice());

            apply_updates(&mut model, &g_users, &g_items, &lg.tags, lr);
            rank_sum += rg.loss;
            logic_sum += lg.loss;
            steps += 1;
        }

        // Validation tracking / early stopping.
        let mut val = None;
        if cfg.eval_every > 0 && (epoch + 1) % cfg.eval_every == 0 {
            model.propagate(&dataset.train);
            let res =
                evaluate(&model, dataset, Split::Validation, &[10], cfg.eval_threads);
            let r10 = res.recall_at(10);
            val = Some(r10);
            let improved = best.as_ref().is_none_or(|(b, _, _, _)| r10 > *b);
            if improved {
                best = Some((r10, model.tags.clone(), model.items.clone(), model.users.clone()));
                bad_rounds = 0;
            } else {
                bad_rounds += 1;
            }
        }
        let denom = steps.max(1) as f64;
        history.push(EpochStats {
            epoch,
            rank_loss: rank_sum / denom,
            logic_loss: logic_sum / denom,
            val_recall10: val,
        });
        if cfg.patience > 0 && bad_rounds >= cfg.patience {
            break;
        }
    }

    // Restore the best validation snapshot, if any.
    let best_val = best.as_ref().map(|(b, _, _, _)| *b);
    if let Some((_, tags, items, users)) = best {
        model.tags = tags;
        model.items = items;
        model.users = users;
    }
    model.propagate(&dataset.train);
    debug_assert!(model.all_finite());
    (model, TrainReport { history, best_val_recall10: best_val, epochs_run })
}

/// Applies one optimizer step per parameter family with the geometry's
/// Riemannian (or plain) SGD rules.
fn apply_updates(
    model: &mut LogiRec,
    g_users: &Embedding,
    g_items: &Embedding,
    g_tags: &Embedding,
    lr: f64,
) {
    let threads = model.cfg.eval_threads;
    match model.cfg.geometry {
        Geometry::Hyperbolic => {
            crate::parallel::for_each_row(&mut model.users, threads, |u, row| {
                let g = g_users.row(u);
                if !is_zero(g) {
                    rsgd::lorentz_step(row, g, lr);
                }
            });
            crate::parallel::for_each_row(&mut model.items, threads, |v, row| {
                let g = g_items.row(v);
                if !is_zero(g) {
                    rsgd::poincare_step(row, g, lr);
                }
            });
            crate::parallel::for_each_row(&mut model.tags, threads, |t, row| {
                let g = g_tags.row(t);
                if !is_zero(g) {
                    rsgd::hyperplane_step(row, g, lr);
                }
            });
        }
        Geometry::Euclidean => {
            crate::parallel::for_each_row(&mut model.users, threads, |u, row| {
                rsgd::euclidean_step(row, g_users.row(u), lr);
            });
            crate::parallel::for_each_row(&mut model.items, threads, |v, row| {
                rsgd::euclidean_step(row, g_items.row(v), lr);
                // Keep the ball parametrization of the tag losses valid.
                ops::clip_norm(row, 1.0 - 1e-5);
            });
            crate::parallel::for_each_row(&mut model.tags, threads, |t, row| {
                rsgd::euclidean_step(row, g_tags.row(t), lr);
                logirec_hyperbolic::hyperplane::clamp_center(row);
            });
        }
    }
}

#[inline]
fn is_zero(g: &[f64]) -> bool {
    g.iter().all(|&x| x == 0.0)
}

/// Samples up to `n` elements uniformly without replacement-ish (with
/// replacement for simplicity; duplicates are harmless for SGD estimates).
fn sample_slice<T: Copy>(all: &[T], n: usize, rng: &mut SplitMix64) -> Vec<T> {
    if all.len() <= n {
        return all.to_vec();
    }
    (0..n).map(|_| all[rng.index(all.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale};
    use logirec_hyperbolic::{lorentz, poincare};

    fn quick_cfg() -> LogiRecConfig {
        LogiRecConfig {
            epochs: 6,
            eval_every: 0,
            patience: 0,
            ..LogiRecConfig::test_config()
        }
    }

    #[test]
    fn training_reduces_rank_loss() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let (_, report) = train(quick_cfg(), &ds);
        let first = report.history.first().unwrap().rank_loss;
        let last = report.history.last().unwrap().rank_loss;
        assert!(last < first, "rank loss did not drop: {first} → {last}");
    }

    #[test]
    fn trained_model_beats_untrained_on_validation() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(2);
        let cfg = quick_cfg();
        let mut untrained = LogiRec::new(cfg.clone(), &ds);
        untrained.propagate(&ds.train);
        let base = evaluate(&untrained, &ds, Split::Validation, &[10], 2).recall_at(10);
        let (model, _) = train(cfg, &ds);
        let trained = evaluate(&model, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(
            trained > base,
            "training should improve recall: {base:.4} → {trained:.4}"
        );
    }

    #[test]
    fn parameters_stay_on_manifolds_and_finite() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(3);
        let (model, _) = train(quick_cfg(), &ds);
        assert!(model.all_finite());
        for v in 0..model.items.rows() {
            assert!(poincare::in_ball(model.items.row(v)));
        }
        for u in 0..model.users.rows() {
            assert!(lorentz::on_manifold(model.users.row(u), 1e-6));
        }
        for t in 0..model.tags.rows() {
            let n = ops::norm(model.tags.row(t));
            assert!(n > 0.0 && n < 1.0, "tag {t} norm {n}");
        }
    }

    #[test]
    fn logic_losses_shrink_relation_violations() {
        // Training with λ > 0 must leave strictly less logical-relation
        // violation than training without the logic losses.
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(4);
        let violation = |model: &LogiRec| {
            let mut acc = crate::losses::LogicGrads::zeros(model);
            crate::losses::membership_loss_grad(model, &ds.relations.membership, 1.0, &mut acc);
            crate::losses::hierarchy_loss_grad(model, &ds.relations.hierarchy, 1.0, &mut acc);
            let ex: Vec<(TagId, TagId)> =
                ds.relations.exclusion.iter().map(|&(a, b, _)| (a, b)).collect();
            crate::losses::exclusion_loss_grad(model, &ex, 1.0, &mut acc);
            acc.loss
        };
        let mut with = quick_cfg();
        with.lambda = 1.0;
        with.epochs = 10;
        let mut without = with.clone();
        without.lambda = 0.0;
        let (m_with, _) = train(with, &ds);
        let (m_without, _) = train(without, &ds);
        assert!(m_with.all_finite());
        let (v_with, v_without) = (violation(&m_with), violation(&m_without));
        assert!(
            v_with < v_without,
            "λ>0 should reduce violations: {v_with} vs {v_without}"
        );
    }

    #[test]
    fn euclidean_ablation_trains() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(5);
        let mut cfg = quick_cfg();
        cfg.geometry = Geometry::Euclidean;
        let (model, report) = train(cfg, &ds);
        assert!(model.all_finite());
        assert!(report.history.last().unwrap().rank_loss.is_finite());
    }

    #[test]
    fn early_stopping_respects_patience() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(6);
        let cfg = LogiRecConfig {
            epochs: 50,
            eval_every: 1,
            patience: 2,
            lr: 0.0, // nothing improves → stop after exactly 1 + patience rounds
            ..LogiRecConfig::test_config()
        };
        let (_, report) = train(cfg, &ds);
        assert!(report.epochs_run <= 4, "ran {} epochs", report.epochs_run);
        assert!(report.best_val_recall10.is_some());
    }

    #[test]
    fn mining_weights_are_refreshed_and_used() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(7);
        let mut cfg = quick_cfg();
        cfg.mining = true;
        cfg.mining_refresh = 2;
        let (model, _) = train(cfg, &ds);
        assert!(model.all_finite());
    }

    #[test]
    fn lr_decay_reduces_late_epoch_movement() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(8);
        // With aggressive decay the model after many epochs should equal
        // (almost) the model after a few: steps vanish geometrically.
        let mut cfg = quick_cfg();
        cfg.lr_decay = 0.05;
        cfg.epochs = 3;
        let (short, _) = train(cfg.clone(), &ds);
        cfg.epochs = 10;
        let (long, _) = train(cfg, &ds);
        let drift = short
            .items
            .as_slice()
            .iter()
            .zip(long.items.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 1e-3, "decayed steps should freeze the model, drift {drift}");
    }

    #[test]
    fn sample_slice_caps_at_population() {
        let mut rng = SplitMix64::new(1);
        let all = [1, 2, 3];
        assert_eq!(sample_slice(&all, 10, &mut rng), vec![1, 2, 3]);
        assert_eq!(sample_slice(&all, 2, &mut rng).len(), 2);
    }
}
