//! The joint training loop (Eq. 10 for LogiRec, Eq. 15 for LogiRec++).
//!
//! Each SGD step: full forward propagation, an LMNN ranking batch with
//! sampled negatives (α-weighted when mining is on), sampled logical
//! relation batches for L_Mem/L_Hie/L_Ex scaled by λ, exact backward
//! passes, and Riemannian SGD updates per parameter family (Section V-C).
//! Validation Recall@10 is tracked for snapshotting/early stopping.
//!
//! ## Fault tolerance
//!
//! The loop is built to survive crashes and numerical blow-ups:
//!
//! * **Checkpoint/resume** — with `checkpoint_every`/`checkpoint_path` set,
//!   a durable [`crate::checkpoint`] is written after healthy epochs; with
//!   `resume_from`, training continues bit-identically from where the
//!   checkpoint left off (same RNG stream, LR schedule position, best-val
//!   snapshot, and history). An unreadable checkpoint falls back to a fresh
//!   start and records a [`Recovery`].
//! * **Step guards** — a batch whose gradients contain non-finite values is
//!   skipped (and recorded) instead of poisoning the tables.
//! * **Divergence rollback** — after every epoch the trainer validates that
//!   losses are finite, the epoch loss has not exploded, and all parameters
//!   are finite and on their manifolds (items inside the Poincaré ball,
//!   users on the Lorentz sheet, tag centers in the valid norm range). On
//!   violation it rolls back to the last healthy epoch, halves the learning
//!   rate, and retries, up to `max_recoveries` times; every action lands in
//!   [`TrainReport::recoveries`].

use logirec_data::{BatchIter, Dataset, NegativeSampler, Split};
use logirec_eval::evaluate_traced;
use logirec_hyperbolic::{lorentz, poincare, rsgd};
use logirec_linalg::{ops, Embedding, Scalar, SplitMix64};
use logirec_obs::{Telemetry, Value};
use logirec_taxonomy::TagId;

use crate::checkpoint::{self, BestSnapshot, Checkpoint};
use crate::config::{Geometry, LogiRecConfig, Precision};
use crate::graph::PropGraph;
use crate::losses::{logic_loss_grad_sharded, rank_loss_grad_sharded, LogicBatch};
use crate::mining::{combine_weights, consistency_weights, granularity_weights};
use crate::model::LogiRec;
use crate::shard::shard_count;

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean ranking loss over the epoch's steps.
    pub rank_loss: f64,
    /// Mean logical relation loss (already λ-scaled).
    pub logic_loss: f64,
    /// Validation Recall@10, when evaluated this epoch.
    pub val_recall10: Option<f64>,
}

/// What the trainer did about a detected problem.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// Batches with non-finite gradients were skipped during the epoch.
    SkippedSteps {
        /// Number of skipped optimizer steps.
        steps: usize,
    },
    /// Parameters and trainer state were rolled back to the last healthy
    /// epoch and the learning rate was scaled down.
    RolledBack {
        /// The LR backoff factor now in effect.
        lr_scale: f64,
    },
    /// A `resume_from` checkpoint was unreadable or incompatible; training
    /// restarted from scratch.
    RestartedFresh,
    /// The rollback budget (`max_recoveries`) was exhausted; training
    /// stopped at the last healthy state.
    Aborted,
}

/// One recovery performed by the fault-tolerant trainer.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Epoch at which the problem was detected.
    pub epoch: usize,
    /// Human-readable description of what was detected.
    pub reason: String,
    /// What the trainer did about it.
    pub action: RecoveryAction,
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Per-epoch statistics (healthy epochs only; rolled-back attempts are
    /// not recorded here).
    pub history: Vec<EpochStats>,
    /// Best validation Recall@10 observed (None when never evaluated).
    pub best_val_recall10: Option<f64>,
    /// Number of healthy epochs completed (≤ `cfg.epochs` with early
    /// stopping or an exhausted recovery budget).
    pub epochs_run: usize,
    /// Every divergence/corruption recovery performed during the run, in
    /// order. Empty for a clean run.
    pub recoveries: Vec<Recovery>,
}

/// Best validation model: `(recall@10, tags, items, users)`.
type BestModel<S> = Option<(f64, Embedding<S>, Embedding<S>, Embedding<S>)>;

/// Everything that evolves across epochs besides the model parameters.
/// Snapshotted wholesale for rollback and serialized into checkpoints.
#[derive(Debug, Clone)]
struct TrainerState<S: Scalar = f64> {
    /// Next epoch to run (== number of completed healthy epochs).
    epoch: usize,
    rng: SplitMix64,
    lr_scale: f64,
    bad_rounds: usize,
    history: Vec<EpochStats>,
    alpha: Option<Vec<f64>>,
    best: BestModel<S>,
}

impl<S: Scalar> TrainerState<S> {
    fn fresh(cfg: &LogiRecConfig) -> Self {
        Self {
            epoch: 0,
            rng: SplitMix64::new(cfg.seed.wrapping_mul(0x9E37_79B9) ^ 0x1357_9BDF),
            lr_scale: 1.0,
            bad_rounds: 0,
            history: Vec::new(),
            alpha: None,
            best: None,
        }
    }
}

/// The last healthy (state, parameters) pair, for divergence rollback.
struct GoodSnapshot<S: Scalar = f64> {
    state: TrainerState<S>,
    tags: Embedding<S>,
    items: Embedding<S>,
    users: Embedding<S>,
}

impl<S: Scalar> GoodSnapshot<S> {
    fn capture(state: &TrainerState<S>, model: &LogiRec<S>) -> Self {
        Self {
            state: state.clone(),
            tags: model.tags.clone(),
            items: model.items.clone(),
            users: model.users.clone(),
        }
    }

    fn restore(&self, state: &mut TrainerState<S>, model: &mut LogiRec<S>) {
        *state = self.state.clone();
        model.tags = self.tags.clone();
        model.items = self.items.clone();
        model.users = self.users.clone();
    }
}

/// Trains LogiRec/LogiRec++ on `dataset` and returns the model with a
/// fresh forward state (ready for ranking) plus the training report.
///
/// ```
/// use logirec_core::{train, LogiRecConfig};
/// use logirec_data::{DatasetSpec, Scale};
/// let dataset = DatasetSpec::ciao(Scale::Tiny).generate(42);
/// let cfg = LogiRecConfig { dim: 8, epochs: 2, eval_every: 0, ..LogiRecConfig::default() };
/// let (model, report) = train(cfg, &dataset);
/// assert!(model.all_finite());
/// assert_eq!(report.epochs_run, 2);
/// assert!(report.recoveries.is_empty());
/// ```
pub fn train(cfg: LogiRecConfig, dataset: &Dataset) -> (LogiRec, TrainReport) {
    let cfg = cfg.validated();
    match cfg.precision {
        Precision::F64 => train_typed::<f64>(cfg, dataset),
        Precision::F32 => {
            let (model32, report) = train_typed::<f32>(cfg, dataset);
            // Serve in f64: widen the learned tables exactly and rebuild the
            // forward state at serving precision.
            let mut model = model32.cast::<f64>();
            model.propagate(&dataset.train);
            (model, report)
        }
    }
}

/// [`train`] instantiated at an explicit working precision `S`. The `f64`
/// instantiation is the bit-identical reference path the determinism suite
/// byte-compares; `f32` runs the same kernels in single precision, with
/// gradient accuracy bounded by the parity tests (`tests/precision.rs`).
pub fn train_typed<S: Scalar>(
    cfg: LogiRecConfig,
    dataset: &Dataset,
) -> (LogiRec<S>, TrainReport) {
    let cfg = cfg.validated();
    let tel = cfg.telemetry.clone();
    let mut train_span = tel.span("train");
    let c_steps = tel.counter("trainer.steps");
    let c_skipped = tel.counter("trainer.skipped_steps");
    let c_ckpt_fail = tel.counter("checkpoint.write_failures");
    let c_grad_rows = tel.counter("trainer.grad_rows_touched");

    let mut model = LogiRec::new(cfg.clone(), dataset);
    let mut state = TrainerState::fresh(&cfg);
    let mut recoveries: Vec<Recovery> = Vec::new();

    if let Some(path) = &cfg.resume_from {
        match checkpoint::load(path).map_err(|e| e.to_string()).and_then(|ck| {
            apply_checkpoint(ck, &cfg, &mut model, &mut state, &mut recoveries)
        }) {
            Ok(()) => {}
            Err(msg) => {
                // The checkpoint is unusable; a fresh start is the only safe
                // recovery. Make sure no half-applied state leaks through.
                model = LogiRec::new(cfg.clone(), dataset);
                state = TrainerState::fresh(&cfg);
                let rec = Recovery {
                    epoch: 0,
                    reason: format!("resume from {} failed: {msg}", path.display()),
                    action: RecoveryAction::RestartedFresh,
                };
                record_recovery(&tel, &rec);
                recoveries.push(rec);
            }
        }
    }

    let n_users = dataset.n_users();
    // Adjacency normalization + neighbor CSR, built once per dataset and
    // reused by every forward/backward pass instead of per call.
    let pg = PropGraph::build(&dataset.train);
    let rel = &dataset.relations;
    let exclusion_pairs: Vec<(TagId, TagId)> =
        rel.exclusion.iter().map(|&(a, b, _)| (a, b)).collect();
    let intersection_pairs: Vec<(TagId, TagId)> =
        if cfg.use_int { rel.intersection_pairs() } else { Vec::new() };
    let con = if cfg.mining { Some(consistency_weights(dataset)) } else { None };

    let mut last_good = GoodSnapshot::capture(&state, &model);
    let mut rollbacks =
        recoveries.iter().filter(|r| matches!(r.action, RecoveryAction::RolledBack { .. })).count();

    // Early stopping gates the top of the loop so that resuming from a
    // checkpoint written after patience ran out stops immediately instead
    // of training one extra epoch.
    while state.epoch < cfg.epochs
        && !(cfg.patience > 0 && state.bad_rounds >= cfg.patience)
    {
        let epoch = state.epoch;
        let lr = cfg.lr * cfg.lr_decay.powi(epoch as i32) * state.lr_scale;
        let mut ep_span = tel.span("epoch");
        ep_span.field("epoch", epoch as u64);
        tel.gauge("trainer.lr").set(lr);
        // Refresh LogiRec++ weights from the current geometry.
        if let Some(con) = &con {
            if state.alpha.is_none() || epoch.is_multiple_of(cfg.mining_refresh.max(1)) {
                let mut mine_span = tel.span("mining");
                mine_span.field("users", n_users as u64);
                model.propagate_graph(&pg);
                let gr = granularity_weights(&model, n_users);
                state.alpha = Some(combine_weights(con, &gr, cfg.alpha_floor));
            }
        }

        let mut sampler =
            NegativeSampler::new(&dataset.train, state.rng.fork(1_000 + epoch as u64));
        sampler.instrument(&tel);
        let mut batch_rng = state.rng.fork(2_000 + epoch as u64);
        let mut logic_rng = state.rng.fork(3_000 + epoch as u64);

        let (mut rank_sum, mut logic_sum, mut steps) = (0.0, 0.0, 0usize);
        let mut skipped_steps = 0usize;
        for batch in BatchIter::new(&dataset.train, cfg.batch_size, &mut batch_rng) {
            let mut batch_span = tel.span("batch");
            batch_span.field("pairs", batch.len() as u64);
            model.propagate_graph(&pg);

            let mut rank_span = tel.span("loss");
            rank_span.field("term", "rank");
            // Ranking triplets with sampled negatives (sampling stays
            // serial: the RNG stream must not depend on train_threads).
            let mut triplets = Vec::with_capacity(batch.len() * cfg.negatives);
            for &(u, vp) in &batch {
                for _ in 0..cfg.negatives {
                    triplets.push((u, vp, sampler.sample(u)));
                }
            }
            // Sum-weighted per positive (each user's triplets contribute a
            // full gradient unit regardless of batch size): batched
            // full-graph steps then match the effective per-sample step
            // size of classic metric-learning SGD.
            let per_triplet = 1.0 / cfg.negatives as f64;
            let mut fan_span = tel.span("loss.shards");
            fan_span.field("term", "rank");
            fan_span.field("shards", shard_count(triplets.len()) as u64);
            fan_span.field("threads", cfg.train_threads as u64);
            let rg = rank_loss_grad_sharded(
                &model,
                &triplets,
                cfg.margin,
                state.alpha.as_deref(),
                per_triplet,
                cfg.train_threads,
            );
            fan_span.close();
            let mut merge_span = tel.span("grad.merge");
            merge_span.field("term", "rank");
            let rank_rows = rg.users.nnz() + rg.items.nnz();
            merge_span.field("rows", rank_rows as u64);
            let ambient = cfg.ambient_dim();
            let mut g_user_final = Embedding::zeros(model.users.rows(), ambient);
            let mut g_item_final = Embedding::zeros(model.items.rows(), ambient);
            rg.users.scatter_add(&mut g_user_final);
            rg.items.scatter_add(&mut g_item_final);
            merge_span.close();
            let (mut g_users, mut g_items) =
                model.backward_rank_graph(&g_user_final, &g_item_final, &pg);
            rank_span.close();

            let mut logic_span = tel.span("loss");
            logic_span.field("term", "logic");
            // Logical relation batches. Per-relation weights make the
            // stochastic objective an unbiased estimate of the batch's
            // share of Eq. 10/15: the rank part covers batch_len of
            // n_pairs positives, so each relation type is scaled by
            // λ · (batch_len / n_pairs) · (N_type / sample_len).
            // Sampling is serial (fixed RNG stream); only the gradient
            // accumulation fans out across shards.
            let (mem_s, hie_s, ex_s, int_s);
            let mut batches: Vec<(LogicBatch<'_>, f64)> = Vec::new();
            if cfg.lambda > 0.0 {
                let batch_frac = batch.len() as f64 / dataset.train.len().max(1) as f64;
                let type_weight = |n_total: usize, n_sampled: usize| {
                    cfg.lambda * batch_frac * n_total as f64 / n_sampled as f64
                };
                if cfg.use_mem && !rel.membership.is_empty() {
                    mem_s = sample_slice(&rel.membership, cfg.logic_batch, &mut logic_rng);
                    let w = type_weight(rel.membership.len(), mem_s.len());
                    batches.push((LogicBatch::Membership(&mem_s), w));
                }
                if cfg.use_hie && !rel.hierarchy.is_empty() {
                    hie_s = sample_slice(&rel.hierarchy, cfg.logic_batch, &mut logic_rng);
                    let w = type_weight(rel.hierarchy.len(), hie_s.len());
                    batches.push((LogicBatch::Hierarchy(&hie_s), w));
                }
                if cfg.use_ex && !exclusion_pairs.is_empty() {
                    ex_s = sample_slice(&exclusion_pairs, cfg.logic_batch, &mut logic_rng);
                    let w = type_weight(exclusion_pairs.len(), ex_s.len());
                    batches.push((LogicBatch::Exclusion(&ex_s), w));
                }
                if cfg.use_int && !intersection_pairs.is_empty() {
                    int_s = sample_slice(&intersection_pairs, cfg.logic_batch, &mut logic_rng);
                    let w = type_weight(intersection_pairs.len(), int_s.len());
                    batches.push((LogicBatch::Intersection(&int_s), w));
                }
            }
            let mut fan_span = tel.span("loss.shards");
            fan_span.field("term", "logic");
            fan_span.field("threads", cfg.train_threads as u64);
            let lg = logic_loss_grad_sharded(&model, &batches, cfg.train_threads);
            fan_span.close();
            let mut merge_span = tel.span("grad.merge");
            merge_span.field("term", "logic");
            merge_span.field("rows", lg.rows_touched() as u64);
            let mut g_tags = Embedding::zeros(model.tags.rows(), cfg.dim);
            lg.tags.scatter_add(&mut g_tags);
            lg.items.scatter_add(&mut g_items);
            merge_span.close();
            logic_span.close();
            c_grad_rows.add((rank_rows + lg.rows_touched()) as u64);

            inject_gradient_faults(&cfg, epoch, steps, &mut g_users, &mut g_items);

            // Step guard: a poisoned gradient batch (NaN/Inf from upstream
            // corruption or injection) is dropped, not applied. The RSGD
            // steps have their own per-row guards, but skipping here keeps
            // the whole update consistent and lets us report it.
            if g_users.all_finite() && g_items.all_finite() && g_tags.all_finite() {
                apply_updates(&mut model, &g_users, &g_items, &g_tags, lr);
                c_steps.incr();
            } else {
                skipped_steps += 1;
                c_skipped.incr();
            }
            rank_sum += rg.loss;
            logic_sum += lg.loss;
            steps += 1;
        }

        inject_model_faults(&cfg, epoch, &mut model);

        let denom = steps.max(1) as f64;
        let mut stats = EpochStats {
            epoch,
            rank_loss: rank_sum / denom,
            logic_loss: logic_sum / denom,
            val_recall10: None,
        };
        ep_span.field("steps", steps as u64);
        ep_span.field("rank_loss", stats.rank_loss);
        ep_span.field("logic_loss", stats.logic_loss);

        // Divergence check — before validation, so a corrupted model never
        // reaches the evaluator or the best-snapshot logic.
        let baseline = state
            .history
            .iter()
            .map(|h| h.rank_loss)
            .filter(|l| l.is_finite())
            .fold(None, |acc: Option<f64>, l| Some(acc.map_or(l, |a| a.min(l))));
        let health = check_health(&model, &stats, baseline, cfg.explosion_factor);
        if tel.is_enabled() {
            let mut fields = vec![
                ("epoch", Value::U64(epoch as u64)),
                ("ok", Value::Bool(health.is_none())),
            ];
            if let Some(reason) = &health {
                fields.push(("reason", Value::Str(reason.clone())));
            }
            tel.event("health", "epoch", fields);
        }
        if let Some(reason) = health {
            if rollbacks >= cfg.max_recoveries {
                let rec = Recovery {
                    epoch,
                    reason: format!(
                        "{reason}; recovery budget ({}) exhausted, stopping at the last \
                         healthy epoch",
                        cfg.max_recoveries
                    ),
                    action: RecoveryAction::Aborted,
                };
                record_recovery(&tel, &rec);
                recoveries.push(rec);
                last_good.restore(&mut state, &mut model);
                break;
            }
            let new_scale = state.lr_scale * 0.5;
            {
                let mut roll_span = tel.span("recovery");
                roll_span.field("epoch", epoch as u64);
                roll_span.field("lr_scale", new_scale);
                last_good.restore(&mut state, &mut model);
            }
            // The backoff survives the rollback (the snapshot carries the
            // pre-divergence scale) and compounds across repeated failures.
            state.lr_scale = new_scale;
            tel.gauge("trainer.lr_scale").set(new_scale);
            rollbacks += 1;
            let rec = Recovery {
                epoch,
                reason,
                action: RecoveryAction::RolledBack { lr_scale: new_scale },
            };
            record_recovery(&tel, &rec);
            recoveries.push(rec);
            continue;
        }
        if skipped_steps > 0 {
            let rec = Recovery {
                epoch,
                reason: format!("non-finite gradients in {skipped_steps} of {steps} steps"),
                action: RecoveryAction::SkippedSteps { steps: skipped_steps },
            };
            record_recovery(&tel, &rec);
            recoveries.push(rec);
        }

        // Validation tracking / early stopping (model is known healthy).
        if cfg.eval_every > 0 && (epoch + 1).is_multiple_of(cfg.eval_every) {
            let mut eval_span = tel.span("eval");
            eval_span.field("split", "validation");
            model.propagate_graph(&pg);
            let res = evaluate_traced(
                &model,
                dataset,
                Split::Validation,
                &[10],
                cfg.eval_threads,
                &tel,
            );
            let r10 = res.recall_at(10);
            eval_span.field("recall10", r10);
            eval_span.close();
            stats.val_recall10 = Some(r10);
            let improved = state.best.as_ref().is_none_or(|(b, _, _, _)| r10 > *b);
            if improved {
                state.best =
                    Some((r10, model.tags.clone(), model.items.clone(), model.users.clone()));
                state.bad_rounds = 0;
            } else {
                state.bad_rounds += 1;
            }
        }
        state.history.push(stats);
        state.epoch += 1;
        last_good = GoodSnapshot::capture(&state, &model);

        if cfg.checkpoint_every > 0 && state.epoch.is_multiple_of(cfg.checkpoint_every) {
            if let Some(path) = &cfg.checkpoint_path {
                let mut ck_span = tel.span("checkpoint");
                ck_span.field("op", "epoch");
                ck_span.field("epoch", state.epoch as u64);
                let ck = make_checkpoint(&cfg, &state, &model, &recoveries);
                logirec_obs::rss::set_peak_rss_gauge(&tel);
                match checkpoint::save(&ck, path) {
                    Ok(bytes) => ck_span.field("bytes", bytes),
                    Err(e) => {
                        // Checkpointing is belt-and-braces; a failed write
                        // must not kill an otherwise healthy run.
                        ck_span.field("failed", true);
                        c_ckpt_fail.incr();
                        tel.warn(
                            "checkpoint.write_failed",
                            format!("checkpoint write to {} failed: {e}", path.display()),
                        );
                    }
                }
            }
        }
        // Epoch boundaries are the natural RSS sampling points: peak
        // memory grows with the propagation buffers allocated per epoch.
        logirec_obs::rss::set_peak_rss_gauge(&tel);
        ep_span.close();
    }

    // Restore the best validation snapshot, if any.
    let best_val = state.best.as_ref().map(|(b, _, _, _)| *b);
    if let Some((_, tags, items, users)) = state.best {
        model.tags = tags;
        model.items = items;
        model.users = users;
    }
    model.propagate_graph(&pg);
    debug_assert!(model.all_finite());
    train_span.field("epochs_run", state.epoch as u64);
    train_span.field("recoveries", recoveries.len() as u64);
    train_span.close();
    (
        model,
        TrainReport {
            history: state.history,
            best_val_recall10: best_val,
            epochs_run: state.epoch,
            recoveries,
        },
    )
}

/// Emits the structured telemetry for one [`Recovery`]: a `recovery` event
/// carrying the action details (LR backoff scale for rollbacks, skipped
/// step count, the failed invariant in `reason`) and a bump of the
/// `trainer.recoveries` counter.
fn record_recovery(tel: &Telemetry, r: &Recovery) {
    if !tel.is_enabled() {
        return;
    }
    tel.counter("trainer.recoveries").incr();
    let mut fields: Vec<(&'static str, Value)> = vec![
        ("epoch", Value::U64(r.epoch as u64)),
        ("reason", Value::Str(r.reason.clone())),
    ];
    let action = match &r.action {
        RecoveryAction::SkippedSteps { steps } => {
            fields.push(("steps", Value::U64(*steps as u64)));
            "skipped_steps"
        }
        RecoveryAction::RolledBack { lr_scale } => {
            fields.push(("lr_scale", Value::F64(*lr_scale)));
            "rolled_back"
        }
        RecoveryAction::RestartedFresh => "restarted_fresh",
        RecoveryAction::Aborted => "aborted",
    };
    fields.push(("action", Value::Str(action.to_string())));
    tel.event("recovery", action, fields);
}

/// Validates the post-epoch state; returns a reason string when the epoch
/// must be rolled back.
fn check_health<S: Scalar>(
    model: &LogiRec<S>,
    stats: &EpochStats,
    baseline_rank_loss: Option<f64>,
    explosion_factor: f64,
) -> Option<String> {
    if !stats.rank_loss.is_finite() || !stats.logic_loss.is_finite() {
        return Some(format!(
            "non-finite epoch loss (rank {}, logic {})",
            stats.rank_loss, stats.logic_loss
        ));
    }
    if explosion_factor > 0.0 {
        if let Some(b) = baseline_rank_loss {
            let limit = explosion_factor * b.abs().max(1e-6);
            if stats.rank_loss > limit {
                return Some(format!(
                    "rank loss exploded: {} > {explosion_factor} × best epoch loss {b}",
                    stats.rank_loss
                ));
            }
        }
    }
    if !model.all_finite() {
        return Some("non-finite model parameter".into());
    }
    if model.cfg.geometry == Geometry::Hyperbolic {
        for v in 0..model.items.rows() {
            if !poincare::in_ball(model.items.row(v)) {
                return Some(format!("item {v} escaped the Poincaré ball"));
            }
        }
        for u in 0..model.users.rows() {
            if !lorentz::on_manifold(model.users.row(u), 1e-6) {
                return Some(format!("user {u} left the Lorentz sheet"));
            }
        }
        for t in 0..model.tags.rows() {
            let n = ops::norm(model.tags.row(t)).to_f64();
            if !(n > 0.0 && n < 1.0) {
                return Some(format!("tag {t} hyperplane center has invalid norm {n}"));
            }
        }
    }
    None
}

fn make_checkpoint<S: Scalar>(
    cfg: &LogiRecConfig,
    state: &TrainerState<S>,
    model: &LogiRec<S>,
    recoveries: &[Recovery],
) -> Checkpoint {
    Checkpoint {
        geometry: cfg.geometry,
        dim: cfg.dim,
        layers: cfg.layers,
        precision: cfg.precision,
        epoch: state.epoch,
        rng_state: state.rng.state(),
        lr_scale: state.lr_scale,
        bad_rounds: state.bad_rounds,
        history: state.history.clone(),
        recoveries: recoveries.to_vec(),
        alpha: state.alpha.clone(),
        best: state.best.as_ref().map(|(recall, tags, items, users)| BestSnapshot {
            recall: *recall,
            tags: tags.cast(),
            items: items.cast(),
            users: users.cast(),
        }),
        tags: model.tags.cast(),
        items: model.items.cast(),
        users: model.users.cast(),
    }
}

/// Validates a loaded checkpoint against the live config/dataset shapes and
/// installs it into the trainer. Any mismatch is an error (the caller falls
/// back to a fresh start).
fn apply_checkpoint<S: Scalar>(
    ck: Checkpoint,
    cfg: &LogiRecConfig,
    model: &mut LogiRec<S>,
    state: &mut TrainerState<S>,
    recoveries: &mut Vec<Recovery>,
) -> Result<(), String> {
    if ck.precision != cfg.precision {
        return Err(format!(
            "checkpoint was written at {} precision but the config trains in {}",
            ck.precision, cfg.precision
        ));
    }
    if ck.geometry != cfg.geometry || ck.dim != cfg.dim || ck.layers != cfg.layers {
        return Err(format!(
            "checkpoint geometry/dim/layers ({:?}/{}/{}) do not match the config \
             ({:?}/{}/{})",
            ck.geometry, ck.dim, ck.layers, cfg.geometry, cfg.dim, cfg.layers
        ));
    }
    if ck.epoch > cfg.epochs {
        return Err(format!(
            "checkpoint is at epoch {} but the config trains only {}",
            ck.epoch, cfg.epochs
        ));
    }
    let shape = |m: &Embedding| (m.rows(), m.dim());
    let shape_s = |m: &Embedding<S>| (m.rows(), m.dim());
    for (name, got, want) in [
        ("tags", shape(&ck.tags), shape_s(&model.tags)),
        ("items", shape(&ck.items), shape_s(&model.items)),
        ("users", shape(&ck.users), shape_s(&model.users)),
    ] {
        if got != want {
            return Err(format!(
                "checkpoint {name} table is {}×{} but the dataset needs {}×{}",
                got.0, got.1, want.0, want.1
            ));
        }
    }
    if let Some(b) = &ck.best {
        if shape(&b.tags) != shape_s(&model.tags)
            || shape(&b.items) != shape_s(&model.items)
            || shape(&b.users) != shape_s(&model.users)
        {
            return Err("checkpoint best-snapshot tables do not match the dataset".into());
        }
    }
    if let Some(a) = &ck.alpha {
        if a.len() != model.users.rows() {
            return Err(format!(
                "checkpoint has {} mining weights for {} users",
                a.len(),
                model.users.rows()
            ));
        }
    }
    model.tags = ck.tags.cast();
    model.items = ck.items.cast();
    model.users = ck.users.cast();
    *state = TrainerState {
        epoch: ck.epoch,
        rng: SplitMix64::from_state(ck.rng_state),
        lr_scale: ck.lr_scale,
        bad_rounds: ck.bad_rounds,
        history: ck.history,
        alpha: ck.alpha,
        best: ck.best.map(|b| (b.recall, b.tags.cast(), b.items.cast(), b.users.cast())),
    };
    *recoveries = ck.recoveries;
    Ok(())
}

#[cfg(feature = "fault-injection")]
fn inject_gradient_faults<S: Scalar>(
    cfg: &LogiRecConfig,
    epoch: usize,
    step: usize,
    g_users: &mut Embedding<S>,
    g_items: &mut Embedding<S>,
) {
    if let Some(plan) = &cfg.faults {
        plan.corrupt_gradients(epoch, step, g_users, g_items);
    }
}

#[cfg(not(feature = "fault-injection"))]
fn inject_gradient_faults<S: Scalar>(
    _cfg: &LogiRecConfig,
    _epoch: usize,
    _step: usize,
    _g_users: &mut Embedding<S>,
    _g_items: &mut Embedding<S>,
) {
}

#[cfg(feature = "fault-injection")]
fn inject_model_faults<S: Scalar>(cfg: &LogiRecConfig, epoch: usize, model: &mut LogiRec<S>) {
    if let Some(plan) = &cfg.faults {
        plan.corrupt_model(epoch, model);
    }
}

#[cfg(not(feature = "fault-injection"))]
fn inject_model_faults<S: Scalar>(_cfg: &LogiRecConfig, _epoch: usize, _model: &mut LogiRec<S>) {}

/// Applies one optimizer step per parameter family with the geometry's
/// Riemannian (or plain) SGD rules.
fn apply_updates<S: Scalar>(
    model: &mut LogiRec<S>,
    g_users: &Embedding<S>,
    g_items: &Embedding<S>,
    g_tags: &Embedding<S>,
    lr: f64,
) {
    let threads = model.cfg.train_threads;
    match model.cfg.geometry {
        Geometry::Hyperbolic => {
            crate::parallel::for_each_row(&mut model.users, threads, |u, row| {
                let g = g_users.row(u);
                if !is_zero(g) {
                    rsgd::lorentz_step(row, g, lr);
                }
            });
            crate::parallel::for_each_row(&mut model.items, threads, |v, row| {
                let g = g_items.row(v);
                if !is_zero(g) {
                    rsgd::poincare_step(row, g, lr);
                }
            });
            crate::parallel::for_each_row(&mut model.tags, threads, |t, row| {
                let g = g_tags.row(t);
                if !is_zero(g) {
                    rsgd::hyperplane_step(row, g, lr);
                }
            });
        }
        Geometry::Euclidean => {
            crate::parallel::for_each_row(&mut model.users, threads, |u, row| {
                rsgd::euclidean_step(row, g_users.row(u), lr);
            });
            crate::parallel::for_each_row(&mut model.items, threads, |v, row| {
                rsgd::euclidean_step(row, g_items.row(v), lr);
                // Keep the ball parametrization of the tag losses valid.
                ops::clip_norm(row, S::from_f64(1.0 - 1e-5));
            });
            crate::parallel::for_each_row(&mut model.tags, threads, |t, row| {
                rsgd::euclidean_step(row, g_tags.row(t), lr);
                logirec_hyperbolic::hyperplane::clamp_center(row);
            });
        }
    }
}

#[inline]
fn is_zero<S: Scalar>(g: &[S]) -> bool {
    g.iter().all(|&x| x == S::ZERO)
}

/// Samples up to `n` elements uniformly without replacement-ish (with
/// replacement for simplicity; duplicates are harmless for SGD estimates).
fn sample_slice<T: Copy>(all: &[T], n: usize, rng: &mut SplitMix64) -> Vec<T> {
    if all.len() <= n {
        return all.to_vec();
    }
    (0..n).map(|_| all[rng.index(all.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale};
    use logirec_eval::evaluate;

    fn quick_cfg() -> LogiRecConfig {
        LogiRecConfig {
            epochs: 6,
            eval_every: 0,
            patience: 0,
            ..LogiRecConfig::test_config()
        }
    }

    #[test]
    fn training_reduces_rank_loss() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let (_, report) = train(quick_cfg(), &ds);
        let first = report.history.first().unwrap().rank_loss;
        let last = report.history.last().unwrap().rank_loss;
        assert!(last < first, "rank loss did not drop: {first} → {last}");
    }

    #[test]
    fn trained_model_beats_untrained_on_validation() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(2);
        let cfg = quick_cfg();
        let mut untrained: LogiRec = LogiRec::new(cfg.clone(), &ds);
        untrained.propagate(&ds.train);
        let base = evaluate(&untrained, &ds, Split::Validation, &[10], 2).recall_at(10);
        let (model, _) = train(cfg, &ds);
        let trained = evaluate(&model, &ds, Split::Validation, &[10], 2).recall_at(10);
        assert!(
            trained > base,
            "training should improve recall: {base:.4} → {trained:.4}"
        );
    }

    #[test]
    fn parameters_stay_on_manifolds_and_finite() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(3);
        let (model, _) = train(quick_cfg(), &ds);
        assert!(model.all_finite());
        for v in 0..model.items.rows() {
            assert!(poincare::in_ball(model.items.row(v)));
        }
        for u in 0..model.users.rows() {
            assert!(lorentz::on_manifold(model.users.row(u), 1e-6));
        }
        for t in 0..model.tags.rows() {
            let n = ops::norm(model.tags.row(t));
            assert!(n > 0.0 && n < 1.0, "tag {t} norm {n}");
        }
    }

    #[test]
    fn logic_losses_shrink_relation_violations() {
        // Training with λ > 0 must leave strictly less logical-relation
        // violation than training without the logic losses.
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(4);
        let violation = |model: &LogiRec| {
            let mut acc = crate::losses::LogicGrads::zeros(model);
            crate::losses::membership_loss_grad(model, &ds.relations.membership, 1.0, &mut acc);
            crate::losses::hierarchy_loss_grad(model, &ds.relations.hierarchy, 1.0, &mut acc);
            let ex: Vec<(TagId, TagId)> =
                ds.relations.exclusion.iter().map(|&(a, b, _)| (a, b)).collect();
            crate::losses::exclusion_loss_grad(model, &ex, 1.0, &mut acc);
            acc.loss
        };
        let mut with = quick_cfg();
        with.lambda = 1.0;
        with.epochs = 10;
        let mut without = with.clone();
        without.lambda = 0.0;
        let (m_with, _) = train(with, &ds);
        let (m_without, _) = train(without, &ds);
        assert!(m_with.all_finite());
        let (v_with, v_without) = (violation(&m_with), violation(&m_without));
        assert!(
            v_with < v_without,
            "λ>0 should reduce violations: {v_with} vs {v_without}"
        );
    }

    #[test]
    fn euclidean_ablation_trains() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(5);
        let mut cfg = quick_cfg();
        cfg.geometry = Geometry::Euclidean;
        let (model, report) = train(cfg, &ds);
        assert!(model.all_finite());
        assert!(report.history.last().unwrap().rank_loss.is_finite());
    }

    #[test]
    fn early_stopping_respects_patience() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(6);
        let cfg = LogiRecConfig {
            epochs: 50,
            eval_every: 1,
            patience: 2,
            lr: 0.0, // nothing improves → stop after exactly 1 + patience rounds
            ..LogiRecConfig::test_config()
        };
        let (_, report) = train(cfg, &ds);
        assert!(report.epochs_run <= 4, "ran {} epochs", report.epochs_run);
        assert!(report.best_val_recall10.is_some());
    }

    #[test]
    fn mining_weights_are_refreshed_and_used() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(7);
        let mut cfg = quick_cfg();
        cfg.mining = true;
        cfg.mining_refresh = 2;
        let (model, _) = train(cfg, &ds);
        assert!(model.all_finite());
    }

    #[test]
    fn lr_decay_reduces_late_epoch_movement() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(8);
        // With aggressive decay the model after many epochs should equal
        // (almost) the model after a few: steps vanish geometrically.
        let mut cfg = quick_cfg();
        cfg.lr_decay = 0.05;
        cfg.epochs = 3;
        let (short, _) = train(cfg.clone(), &ds);
        cfg.epochs = 10;
        let (long, _) = train(cfg, &ds);
        let drift = short
            .items
            .as_slice()
            .iter()
            .zip(long.items.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 1e-3, "decayed steps should freeze the model, drift {drift}");
    }

    #[test]
    fn sample_slice_caps_at_population() {
        let mut rng = SplitMix64::new(1);
        let all = [1, 2, 3];
        assert_eq!(sample_slice(&all, 10, &mut rng), vec![1, 2, 3]);
        assert_eq!(sample_slice(&all, 2, &mut rng).len(), 2);
    }

    #[test]
    fn clean_runs_report_no_recoveries() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(9);
        let (_, report) = train(quick_cfg(), &ds);
        assert!(report.recoveries.is_empty(), "{:?}", report.recoveries);
    }

    #[test]
    fn missing_resume_checkpoint_falls_back_to_fresh_start() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(10);
        let mut cfg = quick_cfg();
        cfg.epochs = 2;
        cfg.resume_from = Some(std::path::PathBuf::from("/nonexistent/checkpoint.ckpt"));
        let (model, report) = train(cfg, &ds);
        assert!(model.all_finite());
        assert_eq!(report.epochs_run, 2);
        assert_eq!(report.recoveries.len(), 1);
        assert!(matches!(report.recoveries[0].action, RecoveryAction::RestartedFresh));
    }

    #[test]
    fn checkpoints_are_written_at_the_configured_cadence() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(11);
        let path = std::env::temp_dir()
            .join(format!("logirec-trainer-ckpt-{}", std::process::id()));
        let mut cfg = quick_cfg();
        cfg.epochs = 3;
        cfg.checkpoint_every = 2;
        cfg.checkpoint_path = Some(path.clone());
        let _ = train(cfg.clone(), &ds);
        let ck = checkpoint::load(&path).expect("checkpoint written");
        // Written at epoch 2, not overwritten at 3 (3 % 2 != 0).
        assert_eq!(ck.epoch, 2);
        assert_eq!(ck.dim, cfg.dim);
        assert_eq!(ck.history.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
