//! Configuration of the LogiRec / LogiRec++ models.

use std::path::PathBuf;

/// Which carrier space the model trains in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Geometry {
    /// The paper's design: Poincaré items/tags + Lorentz users with RSGD.
    Hyperbolic,
    /// The "w/o Hyper" ablation: identical architecture projected into
    /// Euclidean space (Euclidean distances and plain SGD; the tag-ball
    /// derivation is kept as a parametrization).
    Euclidean,
}

/// Numeric precision the training and serving hot path runs in.
///
/// `F64` is the reference path: bit-identical to the original
/// double-precision implementation (the determinism suite byte-compares
/// trained models across thread counts against it). `F32` instantiates the
/// same generic kernels at single precision — roughly half the memory
/// traffic and wider autovectorization — with accuracy bounded by the
/// parity tests (see DESIGN.md, "Precision & kernels"). Model files on disk
/// stay f64 in both modes; checkpoints record the precision they were
/// written with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Single precision (`f32`) training/serving.
    F32,
    /// Double precision (`f64`) — the default, bit-identical reference.
    #[default]
    F64,
}

impl Precision {
    /// Parses the CLI spelling (`"f32"` / `"f64"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(Self::F32),
            "f64" => Some(Self::F64),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::F32 => "f32",
            Self::F64 => "f64",
        })
    }
}

/// Hyperparameters of LogiRec / LogiRec++.
///
/// Defaults follow the paper's structural choices (`d = 64`, `L = 3`,
/// Section VI-A4 / Table IV). The LMNN margin and learning rate were
/// re-tuned on the synthetic benchmarks' validation splits: with plain
/// RSGD (no Adam) and the layer-sum aggregation of Eq. 7, carrier-space
/// distances are several times larger than in the authors' setup, moving
/// the optimal margin from the paper's 0.1 to ≈1 (see EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct LogiRecConfig {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Number of GCN layers `L` (0 disables propagation — "w/o HGCN").
    pub layers: usize,
    /// Weight `λ` on the logical relation losses (Eq. 10 / 15).
    pub lambda: f64,
    /// LMNN margin `m` (Eq. 9).
    pub margin: f64,
    /// Riemannian SGD learning rate.
    pub lr: f64,
    /// Per-epoch multiplicative learning-rate decay (1.0 = constant).
    pub lr_decay: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Positive pairs per SGD step.
    pub batch_size: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Logical-relation samples (per relation type) per SGD step.
    pub logic_batch: usize,
    /// Carrier space.
    pub geometry: Geometry,
    /// Numeric precision of the training/serving hot path. `F64` (the
    /// default) reproduces the original double-precision arithmetic bit for
    /// bit; `F32` runs the same kernels in single precision (see
    /// [`Precision`]).
    pub precision: Precision,
    /// Enable L_Mem (Eq. 3).
    pub use_mem: bool,
    /// Enable L_Hie (Eq. 4).
    pub use_hie: bool,
    /// Enable L_Ex (Eq. 5).
    pub use_ex: bool,
    /// Enable the intersection extension loss L_Int (future work in the
    /// paper's conclusion; off by default to match the published model).
    pub use_int: bool,
    /// Enable the LogiRec++ mining weights α_u (Eq. 15). Off = plain
    /// LogiRec (Eq. 10).
    pub mining: bool,
    /// Epoch interval at which the granularity weights GR_u are refreshed
    /// from the current embeddings.
    pub mining_refresh: usize,
    /// Lower clamp on α_u so no user is silenced entirely (the paper's
    /// case-study weights range 0.31–0.87; see DESIGN.md on normalization).
    pub alpha_floor: f64,
    /// RNG seed for init and sampling.
    pub seed: u64,
    /// Threads used by the training hot path: sharded gradient
    /// accumulation, GCN propagation, and the per-row optimizer updates.
    /// Results are bit-identical for every value — shard layout and merge
    /// order depend only on the workload (see `crate::shard`).
    pub train_threads: usize,
    /// Threads used during evaluation.
    pub eval_threads: usize,
    /// Validate every `eval_every` epochs (0 disables tracking).
    pub eval_every: usize,
    /// Early-stopping patience in validation rounds without improvement
    /// (0 disables early stopping; the best snapshot is still restored
    /// when `eval_every > 0`).
    pub patience: usize,
    /// Write a durable checkpoint every `checkpoint_every` completed epochs
    /// (0 disables checkpointing; also requires `checkpoint_path`).
    pub checkpoint_every: usize,
    /// Destination file for checkpoints (written atomically; see
    /// `crate::checkpoint`).
    pub checkpoint_path: Option<PathBuf>,
    /// Resume training from this checkpoint. An unreadable or mismatched
    /// checkpoint falls back to a fresh start and records a recovery in the
    /// `TrainReport` rather than failing the run.
    pub resume_from: Option<PathBuf>,
    /// Retry budget for divergence recovery: how many rollback-and-halve-LR
    /// recoveries are attempted before training stops at the last healthy
    /// state.
    pub max_recoveries: usize,
    /// Loss-explosion threshold: an epoch whose mean rank loss exceeds
    /// `explosion_factor ×` the best epoch loss so far is treated as
    /// divergence (0.0 disables the explosion check; non-finite losses and
    /// manifold violations are always checked).
    pub explosion_factor: f64,
    /// Telemetry sink for spans, metrics, and structured events (see
    /// `logirec_obs`). The default is [`logirec_obs::Telemetry::disabled`],
    /// which makes every instrumentation point in the trainer, data path,
    /// and evaluator a no-op branch.
    pub telemetry: logirec_obs::Telemetry,
    /// Deterministic fault-injection plan used by robustness tests. Only
    /// present with the `fault-injection` feature; never set in production.
    #[cfg(feature = "fault-injection")]
    pub faults: Option<crate::faults::FaultPlan>,
}

impl Default for LogiRecConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            layers: 3,
            lambda: 0.1,
            margin: 1.0,
            lr: 0.02,
            lr_decay: 1.0,
            epochs: 40,
            batch_size: 256,
            negatives: 8,
            logic_batch: 256,
            geometry: Geometry::Hyperbolic,
            precision: Precision::F64,
            use_mem: true,
            use_hie: true,
            use_ex: true,
            use_int: false,
            mining: true,
            mining_refresh: 5,
            alpha_floor: 0.1,
            seed: 2024,
            train_threads: 4,
            eval_threads: 4,
            eval_every: 5,
            patience: 3,
            checkpoint_every: 0,
            checkpoint_path: None,
            resume_from: None,
            max_recoveries: 4,
            explosion_factor: 100.0,
            telemetry: logirec_obs::Telemetry::disabled(),
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }
}

impl LogiRecConfig {
    /// Quick config for unit tests: tiny dimension, few epochs.
    pub fn test_config() -> Self {
        Self {
            dim: 8,
            layers: 2,
            epochs: 5,
            batch_size: 128,
            logic_batch: 32,
            train_threads: 2,
            eval_threads: 2,
            ..Self::default()
        }
    }

    /// Normalizes degenerate knob values into the form the trainer actually
    /// runs with, in **one** place:
    ///
    /// * `negatives = 0` → 1 (a positive with no negatives still trains on
    ///   one sampled negative; previously two call sites independently
    ///   applied `.max(1)`),
    /// * `logic_batch = 0` → 1 (previously `sample_slice` silently returned
    ///   an empty slice and the per-sample weight divided by zero),
    /// * `batch_size = 0` → 1,
    /// * `train_threads` / `eval_threads` = 0 → 1.
    ///
    /// [`crate::train`] calls this on entry, so a config built with zeros
    /// behaves exactly like the equivalent config built with ones.
    #[must_use]
    pub fn validated(mut self) -> Self {
        self.negatives = self.negatives.max(1);
        self.logic_batch = self.logic_batch.max(1);
        self.batch_size = self.batch_size.max(1);
        self.train_threads = self.train_threads.max(1);
        self.eval_threads = self.eval_threads.max(1);
        self
    }

    /// Ambient width of user/item vectors in the carrier space:
    /// `d + 1` on the hyperboloid, `d` in Euclidean space.
    pub fn ambient_dim(&self) -> usize {
        match self.geometry {
            Geometry::Hyperbolic => self.dim + 1,
            Geometry::Euclidean => self.dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_choices() {
        let c = LogiRecConfig::default();
        assert_eq!(c.dim, 64);
        assert_eq!(c.layers, 3);
        assert!((c.lambda - 0.1).abs() < 1e-12);
        assert!((c.margin - 1.0).abs() < 1e-12);
        assert!(c.use_mem && c.use_hie && c.use_ex && c.mining);
        assert_eq!(c.geometry, Geometry::Hyperbolic);
    }

    #[test]
    fn validated_clamps_every_zero_knob() {
        let c = LogiRecConfig {
            negatives: 0,
            logic_batch: 0,
            batch_size: 0,
            train_threads: 0,
            eval_threads: 0,
            ..LogiRecConfig::default()
        }
        .validated();
        assert_eq!(c.negatives, 1);
        assert_eq!(c.logic_batch, 1);
        assert_eq!(c.batch_size, 1);
        assert_eq!(c.train_threads, 1);
        assert_eq!(c.eval_threads, 1);
        // Non-degenerate values pass through untouched.
        let d = LogiRecConfig::default().validated();
        assert_eq!(d.negatives, LogiRecConfig::default().negatives);
        assert_eq!(d.logic_batch, LogiRecConfig::default().logic_batch);
    }

    #[test]
    fn precision_defaults_to_f64_and_parses() {
        assert_eq!(LogiRecConfig::default().precision, Precision::F64);
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse("f64"), Some(Precision::F64));
        assert_eq!(Precision::parse("f16"), None);
        assert_eq!(Precision::F32.to_string(), "f32");
        assert_eq!(Precision::F64.to_string(), "f64");
    }

    #[test]
    fn ambient_dim_depends_on_geometry() {
        let mut c = LogiRecConfig::default();
        assert_eq!(c.ambient_dim(), 65);
        c.geometry = Geometry::Euclidean;
        assert_eq!(c.ambient_dim(), 64);
    }
}
