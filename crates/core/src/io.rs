//! Model persistence: a small self-describing binary format for trained
//! LogiRec models (magic + version header, config scalars, then the three
//! parameter tables as little-endian `f64`).

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use logirec_linalg::Embedding;

use crate::config::{Geometry, LogiRecConfig};
use crate::model::LogiRec;

const MAGIC: &[u8; 8] = b"LOGIREC1";

/// Errors from model loading.
#[derive(Debug)]
pub enum ModelIoError {
    /// Filesystem error.
    Io(io::Error),
    /// Not a LogiRec model file, or an unsupported version.
    BadMagic,
    /// Structurally invalid contents.
    Corrupt(String),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "io error: {e}"),
            ModelIoError::BadMagic => write!(f, "not a LogiRec model file"),
            ModelIoError::Corrupt(m) => write!(f, "corrupt model file: {m}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Writes `bytes` to `path` atomically and durably: the bytes go to a
/// `<name>.tmp` sibling in the same directory, the file is fsynced, then
/// renamed over `path`, and finally the directory entry is synced. A crash
/// at any point leaves either the old file or the complete new one — never
/// a torn write. Shared by model saves, dataset saves, and checkpoints.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync is best-effort:
        // some filesystems refuse to sync directory handles.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Saves a trained model's parameters and core hyperparameters, returning
/// the number of bytes written. The write is atomic (`.tmp` + fsync +
/// rename): a crash never leaves a half-written model behind.
///
/// The forward state is not saved; call [`LogiRec::propagate`] against the
/// training graph after loading to score users.
pub fn save_model(model: &LogiRec, path: &Path) -> io::Result<u64> {
    let mut w = Vec::new();
    w.write_all(MAGIC)?;
    let geom: u8 = match model.cfg.geometry {
        Geometry::Hyperbolic => 0,
        Geometry::Euclidean => 1,
    };
    w.write_all(&[geom])?;
    for v in [
        model.cfg.dim as u64,
        model.cfg.layers as u64,
        model.tags.rows() as u64,
        model.items.rows() as u64,
        model.users.rows() as u64,
        model.users.dim() as u64,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    for table in [&model.tags, &model.items, &model.users] {
        for &x in table.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    atomic_write(path, &w)?;
    Ok(w.len() as u64)
}

/// Loads a model saved by [`save_model`]. The returned model carries the
/// saved `dim`/`layers`/`geometry` on top of `base_cfg` (training knobs
/// like the learning rate come from `base_cfg`).
///
/// Every failure names the file and the byte offset where parsing stopped,
/// so a truncated or bit-flipped model surfaced during a serving reload is
/// immediately actionable (`<path>: corrupt model file at byte N: …`).
pub fn load_model(path: &Path, base_cfg: LogiRecConfig) -> Result<LogiRec, ModelIoError> {
    let where_io = |e: io::Error| {
        ModelIoError::Io(io::Error::new(e.kind(), format!("{}: {e}", path.display())))
    };
    let corrupt_at = |offset: usize, msg: String| {
        ModelIoError::Corrupt(format!("{} at byte {offset}: {msg}", path.display()))
    };
    let bytes = fs::read(path).map_err(where_io)?;

    /// Offset-tracking cursor so every parse error can name the exact byte.
    struct Cursor<'a> {
        bytes: &'a [u8],
        offset: usize,
        path: &'a Path,
    }
    impl<'a> Cursor<'a> {
        fn corrupt(&self, offset: usize, msg: String) -> ModelIoError {
            ModelIoError::Corrupt(format!("{} at byte {offset}: {msg}", self.path.display()))
        }
        fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ModelIoError> {
            let end = self.offset.checked_add(n).filter(|&e| e <= self.bytes.len());
            let Some(end) = end else {
                return Err(self.corrupt(
                    self.offset,
                    format!(
                        "file truncated inside {what} (wanted {n} more bytes, {} left)",
                        self.bytes.len() - self.offset
                    ),
                ));
            };
            let s = &self.bytes[self.offset..end];
            self.offset = end;
            Ok(s)
        }
        fn u64(&mut self, what: &str) -> Result<u64, ModelIoError> {
            Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
        }
    }
    let mut r = Cursor { bytes: &bytes, offset: 0, path };

    if r.take(8, "the magic header")? != MAGIC {
        return Err(ModelIoError::BadMagic);
    }
    let geom_offset = r.offset;
    let geometry = match r.take(1, "the geometry tag")?[0] {
        0 => Geometry::Hyperbolic,
        1 => Geometry::Euclidean,
        g => return Err(corrupt_at(geom_offset, format!("unknown geometry tag {g}"))),
    };
    let dim = r.u64("the dim field")? as usize;
    let layers = r.u64("the layers field")? as usize;
    let n_tags = r.u64("the tag count")? as usize;
    let n_items = r.u64("the item count")? as usize;
    let n_users = r.u64("the user count")? as usize;
    let user_dim = r.u64("the user width")? as usize;
    let header_end = r.offset;

    let expected_user_dim = match geometry {
        Geometry::Hyperbolic => dim + 1,
        Geometry::Euclidean => dim,
    };
    if user_dim != expected_user_dim {
        return Err(corrupt_at(
            header_end,
            format!("user width {user_dim} does not match geometry/dim {dim}"),
        ));
    }
    if dim == 0 || n_tags == 0 || n_items == 0 || n_users == 0 {
        return Err(corrupt_at(header_end, "zero-sized table in header".into()));
    }

    // The header fully determines the file size; reject truncation,
    // trailing garbage, and absurd header values before reading tables.
    let overflow = || corrupt_at(header_end, "table shapes overflow".into());
    let table_elems = [(n_tags, dim), (n_items, dim), (n_users, user_dim)]
        .iter()
        .try_fold(0u64, |acc, &(rows, cols)| {
            (rows as u64)
                .checked_mul(cols as u64)
                .and_then(|n| acc.checked_add(n))
        })
        .ok_or_else(overflow)?;
    let expected_len = table_elems
        .checked_mul(8)
        .and_then(|n| n.checked_add(8 + 1 + 6 * 8))
        .ok_or_else(overflow)?;
    if bytes.len() as u64 != expected_len {
        return Err(corrupt_at(
            bytes.len().min(expected_len.min(usize::MAX as u64) as usize),
            format!(
                "file is {} bytes but the header implies {expected_len} \
                 (truncated or trailing garbage)",
                bytes.len()
            ),
        ));
    }

    let read_table = |r: &mut Cursor<'_>,
                          name: &str,
                          rows: usize,
                          cols: usize|
     -> Result<Embedding, ModelIoError> {
        let table_start = r.offset;
        let mut m = Embedding::zeros(rows, cols);
        for (i, x) in m.as_mut_slice().iter_mut().enumerate() {
            let b = r.take(8, "a parameter table")?;
            let v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
            if !v.is_finite() {
                return Err(corrupt_at(
                    table_start + i * 8,
                    format!("non-finite parameter in the {name} table (entry {i}: {v})"),
                ));
            }
            *x = v;
        }
        Ok(m)
    };
    let tags = read_table(&mut r, "tags", n_tags, dim)?;
    let items = read_table(&mut r, "items", n_items, dim)?;
    let users = read_table(&mut r, "users", n_users, user_dim)?;

    let cfg = LogiRecConfig { dim, layers, geometry, ..base_cfg };
    Ok(LogiRec::from_parts(cfg, tags, items, users))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::evaluate;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("logirec-model-{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_rankings() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
        let cfg = LogiRecConfig { epochs: 4, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("roundtrip");
        save_model(&model, &path).expect("save");

        let mut loaded = load_model(&path, cfg).expect("load");
        loaded.propagate(&ds.train);
        let a = evaluate(&model, &ds, Split::Test, &[10], 2);
        let b = evaluate(&loaded, &ds, Split::Test, &[10], 2);
        assert_eq!(a.recall_at(10), b.recall_at(10));
        assert_eq!(a.per_user_recall, b.per_user_recall);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("magic");
        fs::write(&path, b"NOTAMODELxxxxxxxxxxxxxxxx").unwrap();
        let err = load_model(&path, LogiRecConfig::test_config()).unwrap_err();
        assert!(matches!(err, ModelIoError::BadMagic));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_truncated_file() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(4);
        let cfg = LogiRecConfig { epochs: 1, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("truncated");
        save_model(&model, &path).expect("save");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_model(&path, cfg).unwrap_err();
        assert!(matches!(err, ModelIoError::Corrupt(_)), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(5);
        let cfg = LogiRecConfig { epochs: 1, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("garbage");
        save_model(&model, &path).expect("save");
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        fs::write(&path, &bytes).unwrap();
        let err = load_model(&path, cfg).unwrap_err();
        assert!(matches!(err, ModelIoError::Corrupt(_)), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_non_finite_parameters() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(6);
        let cfg = LogiRecConfig { epochs: 1, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("nonfinite");
        save_model(&model, &path).expect("save");
        let mut bytes = fs::read(&path).unwrap();
        // Overwrite the first f64 of the first table with NaN.
        let header = 8 + 1 + 6 * 8;
        bytes[header..header + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = load_model(&path, cfg).unwrap_err();
        assert!(
            matches!(&err, ModelIoError::Corrupt(m) if m.contains("non-finite")),
            "{err}"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_errors_name_the_file_and_byte_offset() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(8);
        let cfg = LogiRecConfig { epochs: 1, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("offsets");
        save_model(&model, &path).expect("save");
        let bytes = fs::read(&path).unwrap();
        let path_str = path.display().to_string();

        // Truncation inside the header names the header field and the file.
        fs::write(&path, &bytes[..12]).unwrap();
        let err = load_model(&path, cfg.clone()).unwrap_err().to_string();
        assert!(err.contains(&path_str), "missing path: {err}");
        assert!(err.contains("at byte"), "missing offset: {err}");

        // A NaN parameter names the table, the entry, and its byte offset.
        let header = 8 + 1 + 6 * 8;
        let mut nan_bytes = bytes.clone();
        let hit = header + 3 * 8; // entry 3 of the tags table
        nan_bytes[hit..hit + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        fs::write(&path, &nan_bytes).unwrap();
        let err = load_model(&path, cfg.clone()).unwrap_err().to_string();
        assert!(err.contains(&format!("at byte {hit}")), "wrong offset: {err}");
        assert!(err.contains("tags table"), "missing table name: {err}");
        assert!(err.contains("entry 3"), "missing entry index: {err}");

        // A missing file reports the path through the Io variant too.
        let _ = fs::remove_file(&path);
        let err = load_model(&path, cfg).unwrap_err().to_string();
        assert!(err.contains(&path_str), "missing path in io error: {err}");
    }

    #[test]
    fn save_model_is_atomic_and_leaves_no_temp_file() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(7);
        let cfg = LogiRecConfig { epochs: 1, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("atomic");
        save_model(&model, &path).expect("first save");
        let first = fs::read(&path).unwrap();
        save_model(&model, &path).expect("overwrite save");
        assert_eq!(fs::read(&path).unwrap(), first, "deterministic rewrite");
        let mut name = path.file_name().unwrap().to_os_string();
        name.push(".tmp");
        assert!(!path.with_file_name(name).exists(), "temp file left behind");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_to_invalid_path_cleans_up() {
        let err = atomic_write(Path::new("/"), b"x");
        assert!(err.is_err());
    }
}
