//! Model persistence: a small self-describing binary format for trained
//! LogiRec models (magic + version header, config scalars, then the three
//! parameter tables as little-endian `f64`).

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use logirec_linalg::Embedding;

use crate::config::{Geometry, LogiRecConfig};
use crate::model::LogiRec;

const MAGIC: &[u8; 8] = b"LOGIREC1";

/// Errors from model loading.
#[derive(Debug)]
pub enum ModelIoError {
    /// Filesystem error.
    Io(io::Error),
    /// Not a LogiRec model file, or an unsupported version.
    BadMagic,
    /// Structurally invalid contents.
    Corrupt(String),
}

impl std::fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelIoError::Io(e) => write!(f, "io error: {e}"),
            ModelIoError::BadMagic => write!(f, "not a LogiRec model file"),
            ModelIoError::Corrupt(m) => write!(f, "corrupt model file: {m}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<io::Error> for ModelIoError {
    fn from(e: io::Error) -> Self {
        ModelIoError::Io(e)
    }
}

/// Writes `bytes` to `path` atomically and durably: the bytes go to a
/// `<name>.tmp` sibling in the same directory, the file is fsynced, then
/// renamed over `path`, and finally the directory entry is synced. A crash
/// at any point leaves either the old file or the complete new one — never
/// a torn write. Shared by model saves, dataset saves, and checkpoints.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync is best-effort:
        // some filesystems refuse to sync directory handles.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Saves a trained model's parameters and core hyperparameters, returning
/// the number of bytes written. The write is atomic (`.tmp` + fsync +
/// rename): a crash never leaves a half-written model behind.
///
/// The forward state is not saved; call [`LogiRec::propagate`] against the
/// training graph after loading to score users.
pub fn save_model(model: &LogiRec, path: &Path) -> io::Result<u64> {
    let mut w = Vec::new();
    w.write_all(MAGIC)?;
    let geom: u8 = match model.cfg.geometry {
        Geometry::Hyperbolic => 0,
        Geometry::Euclidean => 1,
    };
    w.write_all(&[geom])?;
    for v in [
        model.cfg.dim as u64,
        model.cfg.layers as u64,
        model.tags.rows() as u64,
        model.items.rows() as u64,
        model.users.rows() as u64,
        model.users.dim() as u64,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    for table in [&model.tags, &model.items, &model.users] {
        for &x in table.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    atomic_write(path, &w)?;
    Ok(w.len() as u64)
}

/// Loads a model saved by [`save_model`]. The returned model carries the
/// saved `dim`/`layers`/`geometry` on top of `base_cfg` (training knobs
/// like the learning rate come from `base_cfg`).
pub fn load_model(path: &Path, base_cfg: LogiRecConfig) -> Result<LogiRec, ModelIoError> {
    let mut r = io::BufReader::new(fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ModelIoError::BadMagic);
    }
    let mut geom = [0u8; 1];
    r.read_exact(&mut geom)?;
    let geometry = match geom[0] {
        0 => Geometry::Hyperbolic,
        1 => Geometry::Euclidean,
        g => return Err(ModelIoError::Corrupt(format!("unknown geometry tag {g}"))),
    };
    let mut read_u64 = || -> Result<u64, ModelIoError> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    };
    let dim = read_u64()? as usize;
    let layers = read_u64()? as usize;
    let n_tags = read_u64()? as usize;
    let n_items = read_u64()? as usize;
    let n_users = read_u64()? as usize;
    let user_dim = read_u64()? as usize;

    let expected_user_dim = match geometry {
        Geometry::Hyperbolic => dim + 1,
        Geometry::Euclidean => dim,
    };
    if user_dim != expected_user_dim {
        return Err(ModelIoError::Corrupt(format!(
            "user width {user_dim} does not match geometry/dim {dim}"
        )));
    }
    if dim == 0 || n_tags == 0 || n_items == 0 || n_users == 0 {
        return Err(ModelIoError::Corrupt("zero-sized table".into()));
    }

    // The header fully determines the file size; reject truncation,
    // trailing garbage, and absurd header values before reading tables.
    let table_elems = [(n_tags, dim), (n_items, dim), (n_users, user_dim)]
        .iter()
        .try_fold(0u64, |acc, &(rows, cols)| {
            (rows as u64)
                .checked_mul(cols as u64)
                .and_then(|n| acc.checked_add(n))
        })
        .ok_or_else(|| ModelIoError::Corrupt("table shapes overflow".into()))?;
    let expected_len = table_elems
        .checked_mul(8)
        .and_then(|n| n.checked_add(8 + 1 + 6 * 8))
        .ok_or_else(|| ModelIoError::Corrupt("table shapes overflow".into()))?;
    let actual_len = fs::metadata(path)?.len();
    if actual_len != expected_len {
        return Err(ModelIoError::Corrupt(format!(
            "file is {actual_len} bytes but the header implies {expected_len} \
             (truncated or trailing garbage)"
        )));
    }

    let mut read_table = |rows: usize, cols: usize| -> Result<Embedding, ModelIoError> {
        let mut m = Embedding::zeros(rows, cols);
        let mut buf = [0u8; 8];
        for x in m.as_mut_slice() {
            r.read_exact(&mut buf).map_err(|_| {
                ModelIoError::Corrupt("file truncated inside a parameter table".into())
            })?;
            *x = f64::from_le_bytes(buf);
        }
        if !m.all_finite() {
            return Err(ModelIoError::Corrupt("non-finite parameter".into()));
        }
        Ok(m)
    };
    let tags = read_table(n_tags, dim)?;
    let items = read_table(n_items, dim)?;
    let users = read_table(n_users, user_dim)?;

    let cfg = LogiRecConfig { dim, layers, geometry, ..base_cfg };
    Ok(LogiRec::from_parts(cfg, tags, items, users))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::train;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::evaluate;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("logirec-model-{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_rankings() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
        let cfg = LogiRecConfig { epochs: 4, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("roundtrip");
        save_model(&model, &path).expect("save");

        let mut loaded = load_model(&path, cfg).expect("load");
        loaded.propagate(&ds.train);
        let a = evaluate(&model, &ds, Split::Test, &[10], 2);
        let b = evaluate(&loaded, &ds, Split::Test, &[10], 2);
        assert_eq!(a.recall_at(10), b.recall_at(10));
        assert_eq!(a.per_user_recall, b.per_user_recall);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("magic");
        fs::write(&path, b"NOTAMODELxxxxxxxxxxxxxxxx").unwrap();
        let err = load_model(&path, LogiRecConfig::test_config()).unwrap_err();
        assert!(matches!(err, ModelIoError::BadMagic));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_truncated_file() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(4);
        let cfg = LogiRecConfig { epochs: 1, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("truncated");
        save_model(&model, &path).expect("save");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_model(&path, cfg).unwrap_err();
        assert!(matches!(err, ModelIoError::Corrupt(_)), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(5);
        let cfg = LogiRecConfig { epochs: 1, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("garbage");
        save_model(&model, &path).expect("save");
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 16]);
        fs::write(&path, &bytes).unwrap();
        let err = load_model(&path, cfg).unwrap_err();
        assert!(matches!(err, ModelIoError::Corrupt(_)), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_non_finite_parameters() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(6);
        let cfg = LogiRecConfig { epochs: 1, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("nonfinite");
        save_model(&model, &path).expect("save");
        let mut bytes = fs::read(&path).unwrap();
        // Overwrite the first f64 of the first table with NaN.
        let header = 8 + 1 + 6 * 8;
        bytes[header..header + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = load_model(&path, cfg).unwrap_err();
        assert!(
            matches!(&err, ModelIoError::Corrupt(m) if m.contains("non-finite")),
            "{err}"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn save_model_is_atomic_and_leaves_no_temp_file() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(7);
        let cfg = LogiRecConfig { epochs: 1, eval_every: 0, ..LogiRecConfig::test_config() };
        let (model, _) = train(cfg.clone(), &ds);
        let path = tmp("atomic");
        save_model(&model, &path).expect("first save");
        let first = fs::read(&path).unwrap();
        save_model(&model, &path).expect("overwrite save");
        assert_eq!(fs::read(&path).unwrap(), first, "deterministic rewrite");
        let mut name = path.file_name().unwrap().to_os_string();
        name.push(".tmp");
        assert!(!path.with_file_name(name).exists(), "temp file left behind");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_to_invalid_path_cleans_up() {
        let err = atomic_write(Path::new("/"), b"x");
        assert!(err.is_err());
    }
}
