//! Logic-consistent inference (the Fig. 1 narrative): "we can skip items
//! under `<Classical>` when recommending items for Lisa or Linda since
//! they only interact with items under `<Rock>`".
//!
//! After training, tag regions encode the *mined* logical relations: two
//! tags are (refined-)exclusive exactly when their learned balls are
//! geometrically disjoint (Lemma 3). The [`LogicFilter`] penalizes items
//! **all** of whose tags are confidently disjoint from **all** of the
//! user's interacted tags — a soft version of the paper's "skip", which
//! also yields the promised computation reduction when used as a hard
//! pre-filter.

use logirec_data::{Dataset, Split};
use logirec_hyperbolic::Ball;
use logirec_linalg::ops;

use crate::model::LogiRec;

/// Typed errors from the filtering layer: every id is validated against the
/// filter's dimensions before it indexes anything, so callers (the serving
/// path in particular, where user/item ids arrive over the wire) get a
/// recoverable error instead of a slice-index panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// A user id at or beyond the filter's user count.
    UserOutOfRange {
        /// The offending user id.
        user: usize,
        /// Number of users the filter was built for.
        n_users: usize,
    },
    /// An item id at or beyond the filter's item count.
    ItemOutOfRange {
        /// The offending item id.
        item: usize,
        /// Number of items the filter was built for.
        n_items: usize,
    },
    /// A tag id at or beyond the filter's tag count.
    TagOutOfRange {
        /// The offending tag id.
        tag: usize,
        /// Number of tags the filter was built for.
        n_tags: usize,
    },
    /// A score buffer whose length does not match the item count.
    ScoresLengthMismatch {
        /// The item count the filter expects.
        expected: usize,
        /// The buffer length the caller passed.
        got: usize,
    },
}

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterError::UserOutOfRange { user, n_users } => {
                write!(f, "user {user} out of range ({n_users} users)")
            }
            FilterError::ItemOutOfRange { item, n_items } => {
                write!(f, "item {item} out of range ({n_items} items)")
            }
            FilterError::TagOutOfRange { tag, n_tags } => {
                write!(f, "tag {tag} out of range ({n_tags} tags)")
            }
            FilterError::ScoresLengthMismatch { expected, got } => {
                write!(f, "score buffer holds {got} items but the filter expects {expected}")
            }
        }
    }
}

impl std::error::Error for FilterError {}

/// Per-user seen-item filter: the candidate mask the evaluator applies
/// before top-K selection, packaged as a reusable, bounds-checked value so
/// the serving path can apply **exactly** the same mask (and therefore
/// return byte-identical rankings to offline evaluation).
///
/// Built from one or more dataset splits; masking writes `f64::NEG_INFINITY`
/// over every seen item's score, which [`logirec_eval::ranking::top_k_indices`]
/// then skips.
#[derive(Debug, Clone)]
pub struct SeenFilter {
    n_items: usize,
    /// `seen[u]` = sorted, distinct item ids user `u` has interacted with
    /// in the splits the filter was built from.
    seen: Vec<Vec<usize>>,
}

impl SeenFilter {
    /// Builds the filter from the union of `splits` of `dataset`.
    pub fn from_splits(dataset: &Dataset, splits: &[Split]) -> Self {
        let n_users = dataset.n_users();
        let mut seen: Vec<Vec<usize>> = vec![Vec::new(); n_users];
        for &split in splits {
            let set = dataset.split(split);
            for (u, list) in seen.iter_mut().enumerate() {
                list.extend_from_slice(set.items_of(u));
            }
        }
        for list in &mut seen {
            list.sort_unstable();
            list.dedup();
        }
        Self { n_items: dataset.n_items(), seen }
    }

    /// The mask offline test-split evaluation applies (Train ∪ Validation)
    /// — the serving default, so exact-path responses match `evaluate`.
    pub fn eval_mask(dataset: &Dataset) -> Self {
        Self::from_splits(dataset, &[Split::Train, Split::Validation])
    }

    /// Number of users the filter covers.
    pub fn n_users(&self) -> usize {
        self.seen.len()
    }

    /// Number of items the filter covers.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The sorted seen-item list of `u`, or a typed error for unknown users.
    pub fn seen_of(&self, u: usize) -> Result<&[usize], FilterError> {
        self.seen
            .get(u)
            .map(Vec::as_slice)
            .ok_or(FilterError::UserOutOfRange { user: u, n_users: self.seen.len() })
    }

    /// True when user `u` has already interacted with item `v`.
    pub fn is_seen(&self, u: usize, v: usize) -> Result<bool, FilterError> {
        if v >= self.n_items {
            return Err(FilterError::ItemOutOfRange { item: v, n_items: self.n_items });
        }
        Ok(self.seen_of(u)?.binary_search(&v).is_ok())
    }

    /// Appends one user with the given seen-item list (sorted and deduped
    /// here, so callers may pass events in arrival order). The streaming
    /// fold-in path uses this to grow the filter in lockstep with the
    /// embedding tables. Item ids at or beyond [`Self::n_items`] are a
    /// typed error — nothing is modified in that case.
    pub fn push_user(&mut self, items: &[usize]) -> Result<usize, FilterError> {
        if let Some(&bad) = items.iter().find(|&&v| v >= self.n_items) {
            return Err(FilterError::ItemOutOfRange { item: bad, n_items: self.n_items });
        }
        let mut list = items.to_vec();
        list.sort_unstable();
        list.dedup();
        self.seen.push(list);
        Ok(self.seen.len() - 1)
    }

    /// Grows the item space by one (a freshly folded-in item no user has
    /// seen yet). Returns the new item's id.
    pub fn push_item(&mut self) -> usize {
        self.n_items += 1;
        self.n_items - 1
    }

    /// Records that existing user `u` interacted with item `v` (a streamed
    /// event), keeping the per-user list sorted and distinct.
    pub fn record_seen(&mut self, u: usize, v: usize) -> Result<(), FilterError> {
        if v >= self.n_items {
            return Err(FilterError::ItemOutOfRange { item: v, n_items: self.n_items });
        }
        let n_users = self.seen.len();
        let list =
            self.seen.get_mut(u).ok_or(FilterError::UserOutOfRange { user: u, n_users })?;
        if let Err(pos) = list.binary_search(&v) {
            list.insert(pos, v);
        }
        Ok(())
    }

    /// Masks every seen item of `u` out of `scores` (sets the slot to
    /// `f64::NEG_INFINITY`). Returns the number of items masked. The buffer
    /// length must equal [`Self::n_items`].
    pub fn mask_scores(&self, u: usize, scores: &mut [f64]) -> Result<usize, FilterError> {
        if scores.len() != self.n_items {
            return Err(FilterError::ScoresLengthMismatch {
                expected: self.n_items,
                got: scores.len(),
            });
        }
        let seen = self.seen_of(u)?;
        for &v in seen {
            // Construction guarantees v < n_items (ids come from the
            // dataset's interaction sets), so this indexing cannot panic.
            scores[v] = f64::NEG_INFINITY;
        }
        Ok(seen.len())
    }
}

/// Precomputed logic-consistency filter.
#[derive(Debug, Clone)]
pub struct LogicFilter {
    /// `S × S` row-major matrix: `true` when the learned balls of the two
    /// tags are disjoint by at least [`Self::margin`].
    disjoint: Vec<bool>,
    n_tags: usize,
    /// `user_tags[u]` = distinct tags the user interacted with (train).
    user_tags: Vec<Vec<usize>>,
    /// Score penalty applied to fully-excluded items.
    penalty: f64,
    /// Disjointness slack: balls must be separated by more than this
    /// (Euclidean gap between the derived regions) to count as exclusive.
    /// The exclusion hinge (Eq. 5) drives violating pairs exactly *to* the
    /// disjointness boundary, so a small **negative** margin ("separated
    /// or barely overlapping") matches the trained equilibrium.
    pub margin: f64,
}

impl LogicFilter {
    /// Builds the filter from a trained model's tag geometry and the
    /// training interactions.
    pub fn build(model: &LogiRec, dataset: &Dataset, margin: f64, penalty: f64) -> Self {
        let n_tags = model.tags.rows();
        let balls: Vec<Ball> =
            (0..n_tags).map(|t| Ball::from_center(model.tags.row(t))).collect();
        let mut disjoint = vec![false; n_tags * n_tags];
        for i in 0..n_tags {
            for j in (i + 1)..n_tags {
                // Exclusion margin < −margin ⇔ confidently disjoint.
                let d = balls[i].exclusion_margin(&balls[j]) < -margin;
                disjoint[i * n_tags + j] = d;
                disjoint[j * n_tags + i] = d;
            }
        }
        let user_tags = (0..dataset.n_users())
            .map(|u| {
                let mut tags = dataset.user_tag_list(u);
                tags.sort_unstable();
                tags.dedup();
                tags
            })
            .collect();
        Self { disjoint, n_tags, user_tags, penalty, margin }
    }

    /// True when tags `a` and `b` are confidently disjoint in the learned
    /// geometry (the model's *refined* exclusion relation). Panics on
    /// out-of-range tags; see [`Self::try_tags_disjoint`] for the checked
    /// form.
    #[inline]
    pub fn tags_disjoint(&self, a: usize, b: usize) -> bool {
        self.try_tags_disjoint(a, b).expect("tag id out of range")
    }

    /// Bounds-checked [`Self::tags_disjoint`].
    #[inline]
    pub fn try_tags_disjoint(&self, a: usize, b: usize) -> Result<bool, FilterError> {
        for t in [a, b] {
            if t >= self.n_tags {
                return Err(FilterError::TagOutOfRange { tag: t, n_tags: self.n_tags });
            }
        }
        Ok(self.disjoint[a * self.n_tags + b])
    }

    /// True when every tag of `item_tags` is disjoint from every tag in
    /// the user's profile — the "skip this item" condition. Untagged items
    /// and users with empty profiles are never excluded. Panics on
    /// out-of-range ids; see [`Self::try_item_excluded`] for the checked
    /// form used by the serving path.
    pub fn item_excluded(&self, u: usize, item_tags: &[usize]) -> bool {
        self.try_item_excluded(u, item_tags).expect("user or tag id out of range")
    }

    /// Bounds-checked [`Self::item_excluded`]: validates the user id and
    /// every tag id before touching the disjointness matrix, so ids taken
    /// from the wire surface as a typed [`FilterError`] instead of a panic.
    pub fn try_item_excluded(&self, u: usize, item_tags: &[usize]) -> Result<bool, FilterError> {
        let profile = self
            .user_tags
            .get(u)
            .ok_or(FilterError::UserOutOfRange { user: u, n_users: self.user_tags.len() })?;
        if profile.is_empty() || item_tags.is_empty() {
            return Ok(false);
        }
        for &t in item_tags {
            if t >= self.n_tags {
                return Err(FilterError::TagOutOfRange { tag: t, n_tags: self.n_tags });
            }
        }
        // Profile tags come from the dataset the filter was built from, so
        // only the caller-supplied item tags needed validation above.
        Ok(item_tags
            .iter()
            .all(|&it| profile.iter().all(|&ut| it != ut && self.disjoint[it * self.n_tags + ut])))
    }

    /// Applies the penalty in place to a user's score vector. Panics on
    /// out-of-range ids; see [`Self::try_apply`] for the checked form.
    pub fn apply(&self, u: usize, item_tags: &[Vec<usize>], scores: &mut [f64]) {
        self.try_apply(u, item_tags, scores).expect("user or tag id out of range");
    }

    /// Bounds-checked [`Self::apply`]. Returns the number of penalized
    /// items.
    pub fn try_apply(
        &self,
        u: usize,
        item_tags: &[Vec<usize>],
        scores: &mut [f64],
    ) -> Result<usize, FilterError> {
        if scores.len() != item_tags.len() {
            return Err(FilterError::ScoresLengthMismatch {
                expected: item_tags.len(),
                got: scores.len(),
            });
        }
        let mut penalized = 0;
        for (v, s) in scores.iter_mut().enumerate() {
            if self.try_item_excluded(u, &item_tags[v])? {
                *s -= self.penalty;
                penalized += 1;
            }
        }
        Ok(penalized)
    }

    /// Fraction of (user, item) pairs the hard version of the filter would
    /// skip — the paper's "significant reductions on computation cost".
    pub fn skip_fraction(&self, item_tags: &[Vec<usize>]) -> f64 {
        let mut skipped = 0usize;
        let mut total = 0usize;
        for u in 0..self.user_tags.len() {
            for tags in item_tags {
                total += 1;
                if self.item_excluded(u, tags) {
                    skipped += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            skipped as f64 / total as f64
        }
    }
}

/// A ranker that composes a trained model with its logic filter.
pub struct FilteredRanker<'a> {
    /// The trained model (must have a forward state).
    pub model: &'a LogiRec,
    /// The logic filter.
    pub filter: &'a LogicFilter,
    /// Item tag lists (shared with the dataset).
    pub item_tags: &'a [Vec<usize>],
}

impl logirec_eval::Ranker for FilteredRanker<'_> {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        logirec_eval::Ranker::score_user(self.model, u, out);
        self.filter.apply(u, self.item_tags, out);
        debug_assert!(ops::all_finite(out));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LogiRecConfig;
    use crate::trainer::train;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::{evaluate, Ranker};

    fn trained() -> (LogiRec, Dataset) {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(41);
        let cfg = LogiRecConfig {
            epochs: 12,
            lambda: 1.0,
            eval_every: 0,
            ..LogiRecConfig::test_config()
        };
        let (m, _) = train(cfg, &ds);
        (m, ds)
    }

    #[test]
    fn filter_is_symmetric_and_irreflexive() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.05, 100.0);
        for a in 0..ds.n_tags() {
            assert!(!f.tags_disjoint(a, a), "a ball always overlaps itself");
            for b in 0..ds.n_tags() {
                assert_eq!(f.tags_disjoint(a, b), f.tags_disjoint(b, a));
            }
        }
    }

    #[test]
    fn hierarchically_related_tags_are_never_disjoint() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.0, 100.0);
        let mut violations = 0;
        let mut checked = 0;
        for &(p, c) in &ds.relations.hierarchy {
            checked += 1;
            if f.tags_disjoint(p, c) {
                violations += 1;
            }
        }
        // The hierarchy loss keeps children inside parents, so learned
        // disjointness should almost never cut parent–child pairs.
        assert!(
            violations * 5 <= checked,
            "{violations}/{checked} parent-child pairs learned as disjoint"
        );
    }

    #[test]
    fn excluded_items_get_penalized_and_recall_does_not_collapse() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.05, 1_000.0);
        let plain = evaluate(&m, &ds, Split::Test, &[10], 2);
        let ranker = FilteredRanker { model: &m, filter: &f, item_tags: &ds.item_tags };
        let filtered = evaluate(&ranker, &ds, Split::Test, &[10], 2);
        // The filter may help or be neutral, but must never destroy the
        // ranking (it only touches items fully outside the user's logic).
        assert!(
            filtered.recall_at(10) >= plain.recall_at(10) * 0.9,
            "filter collapsed recall: {} → {}",
            plain.recall_at(10),
            filtered.recall_at(10)
        );
    }

    #[test]
    fn skip_fraction_is_a_valid_fraction() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.05, 100.0);
        let frac = f.skip_fraction(&ds.item_tags);
        assert!((0.0..=1.0).contains(&frac), "{frac}");
    }

    #[test]
    fn seen_filter_masks_exactly_the_eval_mask() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(9);
        let f = SeenFilter::eval_mask(&ds);
        assert_eq!(f.n_users(), ds.n_users());
        assert_eq!(f.n_items(), ds.n_items());
        for u in 0..ds.n_users() {
            let mut scores = vec![1.0; ds.n_items()];
            let masked = f.mask_scores(u, &mut scores).expect("in range");
            // Reproduce the evaluator's inline mask and compare.
            let mut reference = vec![1.0; ds.n_items()];
            for &v in ds.train.items_of(u) {
                reference[v] = f64::NEG_INFINITY;
            }
            for &v in ds.validation.items_of(u) {
                reference[v] = f64::NEG_INFINITY;
            }
            assert_eq!(scores, reference, "user {u}");
            assert_eq!(
                masked,
                reference.iter().filter(|s| **s == f64::NEG_INFINITY).count(),
                "user {u}"
            );
            for &v in ds.train.items_of(u) {
                assert!(f.is_seen(u, v).unwrap());
            }
        }
    }

    #[test]
    fn seen_filter_returns_typed_errors_instead_of_panicking() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(10);
        let f = SeenFilter::eval_mask(&ds);
        let n_users = ds.n_users();
        let n_items = ds.n_items();

        let mut scores = vec![0.0; n_items];
        assert_eq!(
            f.mask_scores(n_users + 3, &mut scores),
            Err(FilterError::UserOutOfRange { user: n_users + 3, n_users })
        );
        assert_eq!(
            f.is_seen(0, n_items),
            Err(FilterError::ItemOutOfRange { item: n_items, n_items })
        );
        let mut short = vec![0.0; n_items - 1];
        assert_eq!(
            f.mask_scores(0, &mut short),
            Err(FilterError::ScoresLengthMismatch { expected: n_items, got: n_items - 1 })
        );
        assert!(f.seen_of(usize::MAX).is_err());
        // The messages carry the ids so reload/serve logs are actionable.
        let msg = f.seen_of(n_users).unwrap_err().to_string();
        assert!(msg.contains(&n_users.to_string()), "{msg}");
    }

    #[test]
    fn seen_filter_grows_for_streamed_entities() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(11);
        let mut f = SeenFilter::eval_mask(&ds);
        let n_users = f.n_users();
        let n_items = f.n_items();

        // New user arrives with unordered, duplicated events.
        let u = f.push_user(&[3, 1, 3, 0]).expect("valid items");
        assert_eq!(u, n_users);
        assert_eq!(f.n_users(), n_users + 1);
        assert_eq!(f.seen_of(u).unwrap(), &[0, 1, 3]);

        // New item: no user has seen it, but it is in range everywhere.
        let v = f.push_item();
        assert_eq!(v, n_items);
        assert!(!f.is_seen(u, v).unwrap());

        // Streamed event on the new user and new item.
        f.record_seen(u, v).expect("in range");
        assert!(f.is_seen(u, v).unwrap());
        // Recording the same event twice keeps the list distinct.
        f.record_seen(u, v).expect("in range");
        assert_eq!(f.seen_of(u).unwrap(), &[0, 1, 3, v]);

        // Bad ids are typed errors and leave the filter untouched.
        assert_eq!(
            f.push_user(&[f.n_items()]),
            Err(FilterError::ItemOutOfRange { item: f.n_items(), n_items: f.n_items() })
        );
        assert_eq!(f.n_users(), n_users + 1);
        assert!(f.record_seen(f.n_users(), 0).is_err());
        assert!(f.record_seen(0, f.n_items()).is_err());
    }

    #[test]
    fn logic_filter_checked_apis_reject_bad_ids() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.05, 100.0);
        let n_tags = ds.n_tags();
        assert_eq!(
            f.try_tags_disjoint(n_tags, 0),
            Err(FilterError::TagOutOfRange { tag: n_tags, n_tags })
        );
        assert_eq!(
            f.try_item_excluded(ds.n_users(), &[0]),
            Err(FilterError::UserOutOfRange { user: ds.n_users(), n_users: ds.n_users() })
        );
        assert_eq!(
            f.try_item_excluded(0, &[n_tags + 1]),
            Err(FilterError::TagOutOfRange { tag: n_tags + 1, n_tags })
        );
        // The checked and panicking forms agree on valid input.
        for u in 0..ds.n_users().min(4) {
            for v in 0..ds.n_items().min(8) {
                assert_eq!(
                    f.try_item_excluded(u, &ds.item_tags[v]).unwrap(),
                    f.item_excluded(u, &ds.item_tags[v])
                );
            }
        }
        let mut scores = vec![0.0; ds.n_items()];
        let penalized = f.try_apply(0, &ds.item_tags, &mut scores).expect("valid input");
        assert_eq!(penalized, scores.iter().filter(|s| **s != 0.0).count());
    }

    #[test]
    fn filtered_scores_differ_only_by_penalty() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.05, 123.0);
        let ranker = FilteredRanker { model: &m, filter: &f, item_tags: &ds.item_tags };
        let mut plain = vec![0.0; ds.n_items()];
        Ranker::score_user(&m, 0, &mut plain);
        let mut filt = vec![0.0; ds.n_items()];
        ranker.score_user(0, &mut filt);
        for v in 0..ds.n_items() {
            let diff = plain[v] - filt[v];
            assert!(diff == 0.0 || (diff - 123.0).abs() < 1e-9, "item {v}: diff {diff}");
        }
    }
}
