//! Logic-consistent inference (the Fig. 1 narrative): "we can skip items
//! under `<Classical>` when recommending items for Lisa or Linda since
//! they only interact with items under `<Rock>`".
//!
//! After training, tag regions encode the *mined* logical relations: two
//! tags are (refined-)exclusive exactly when their learned balls are
//! geometrically disjoint (Lemma 3). The [`LogicFilter`] penalizes items
//! **all** of whose tags are confidently disjoint from **all** of the
//! user's interacted tags — a soft version of the paper's "skip", which
//! also yields the promised computation reduction when used as a hard
//! pre-filter.

use logirec_data::Dataset;
use logirec_hyperbolic::Ball;
use logirec_linalg::ops;

use crate::model::LogiRec;

/// Precomputed logic-consistency filter.
#[derive(Debug, Clone)]
pub struct LogicFilter {
    /// `S × S` row-major matrix: `true` when the learned balls of the two
    /// tags are disjoint by at least [`Self::margin`].
    disjoint: Vec<bool>,
    n_tags: usize,
    /// `user_tags[u]` = distinct tags the user interacted with (train).
    user_tags: Vec<Vec<usize>>,
    /// Score penalty applied to fully-excluded items.
    penalty: f64,
    /// Disjointness slack: balls must be separated by more than this
    /// (Euclidean gap between the derived regions) to count as exclusive.
    /// The exclusion hinge (Eq. 5) drives violating pairs exactly *to* the
    /// disjointness boundary, so a small **negative** margin ("separated
    /// or barely overlapping") matches the trained equilibrium.
    pub margin: f64,
}

impl LogicFilter {
    /// Builds the filter from a trained model's tag geometry and the
    /// training interactions.
    pub fn build(model: &LogiRec, dataset: &Dataset, margin: f64, penalty: f64) -> Self {
        let n_tags = model.tags.rows();
        let balls: Vec<Ball> =
            (0..n_tags).map(|t| Ball::from_center(model.tags.row(t))).collect();
        let mut disjoint = vec![false; n_tags * n_tags];
        for i in 0..n_tags {
            for j in (i + 1)..n_tags {
                // Exclusion margin < −margin ⇔ confidently disjoint.
                let d = balls[i].exclusion_margin(&balls[j]) < -margin;
                disjoint[i * n_tags + j] = d;
                disjoint[j * n_tags + i] = d;
            }
        }
        let user_tags = (0..dataset.n_users())
            .map(|u| {
                let mut tags = dataset.user_tag_list(u);
                tags.sort_unstable();
                tags.dedup();
                tags
            })
            .collect();
        Self { disjoint, n_tags, user_tags, penalty, margin }
    }

    /// True when tags `a` and `b` are confidently disjoint in the learned
    /// geometry (the model's *refined* exclusion relation).
    #[inline]
    pub fn tags_disjoint(&self, a: usize, b: usize) -> bool {
        self.disjoint[a * self.n_tags + b]
    }

    /// True when every tag of `item_tags` is disjoint from every tag in
    /// the user's profile — the "skip this item" condition. Untagged items
    /// and users with empty profiles are never excluded.
    pub fn item_excluded(&self, u: usize, item_tags: &[usize]) -> bool {
        let profile = &self.user_tags[u];
        if profile.is_empty() || item_tags.is_empty() {
            return false;
        }
        item_tags
            .iter()
            .all(|&it| profile.iter().all(|&ut| it != ut && self.tags_disjoint(it, ut)))
    }

    /// Applies the penalty in place to a user's score vector.
    pub fn apply(&self, u: usize, item_tags: &[Vec<usize>], scores: &mut [f64]) {
        for (v, s) in scores.iter_mut().enumerate() {
            if self.item_excluded(u, &item_tags[v]) {
                *s -= self.penalty;
            }
        }
    }

    /// Fraction of (user, item) pairs the hard version of the filter would
    /// skip — the paper's "significant reductions on computation cost".
    pub fn skip_fraction(&self, item_tags: &[Vec<usize>]) -> f64 {
        let mut skipped = 0usize;
        let mut total = 0usize;
        for u in 0..self.user_tags.len() {
            for tags in item_tags {
                total += 1;
                if self.item_excluded(u, tags) {
                    skipped += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            skipped as f64 / total as f64
        }
    }
}

/// A ranker that composes a trained model with its logic filter.
pub struct FilteredRanker<'a> {
    /// The trained model (must have a forward state).
    pub model: &'a LogiRec,
    /// The logic filter.
    pub filter: &'a LogicFilter,
    /// Item tag lists (shared with the dataset).
    pub item_tags: &'a [Vec<usize>],
}

impl logirec_eval::Ranker for FilteredRanker<'_> {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        logirec_eval::Ranker::score_user(self.model, u, out);
        self.filter.apply(u, self.item_tags, out);
        debug_assert!(ops::all_finite(out));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LogiRecConfig;
    use crate::trainer::train;
    use logirec_data::{DatasetSpec, Scale, Split};
    use logirec_eval::{evaluate, Ranker};

    fn trained() -> (LogiRec, Dataset) {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(41);
        let cfg = LogiRecConfig {
            epochs: 12,
            lambda: 1.0,
            eval_every: 0,
            ..LogiRecConfig::test_config()
        };
        let (m, _) = train(cfg, &ds);
        (m, ds)
    }

    #[test]
    fn filter_is_symmetric_and_irreflexive() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.05, 100.0);
        for a in 0..ds.n_tags() {
            assert!(!f.tags_disjoint(a, a), "a ball always overlaps itself");
            for b in 0..ds.n_tags() {
                assert_eq!(f.tags_disjoint(a, b), f.tags_disjoint(b, a));
            }
        }
    }

    #[test]
    fn hierarchically_related_tags_are_never_disjoint() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.0, 100.0);
        let mut violations = 0;
        let mut checked = 0;
        for &(p, c) in &ds.relations.hierarchy {
            checked += 1;
            if f.tags_disjoint(p, c) {
                violations += 1;
            }
        }
        // The hierarchy loss keeps children inside parents, so learned
        // disjointness should almost never cut parent–child pairs.
        assert!(
            violations * 5 <= checked,
            "{violations}/{checked} parent-child pairs learned as disjoint"
        );
    }

    #[test]
    fn excluded_items_get_penalized_and_recall_does_not_collapse() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.05, 1_000.0);
        let plain = evaluate(&m, &ds, Split::Test, &[10], 2);
        let ranker = FilteredRanker { model: &m, filter: &f, item_tags: &ds.item_tags };
        let filtered = evaluate(&ranker, &ds, Split::Test, &[10], 2);
        // The filter may help or be neutral, but must never destroy the
        // ranking (it only touches items fully outside the user's logic).
        assert!(
            filtered.recall_at(10) >= plain.recall_at(10) * 0.9,
            "filter collapsed recall: {} → {}",
            plain.recall_at(10),
            filtered.recall_at(10)
        );
    }

    #[test]
    fn skip_fraction_is_a_valid_fraction() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.05, 100.0);
        let frac = f.skip_fraction(&ds.item_tags);
        assert!((0.0..=1.0).contains(&frac), "{frac}");
    }

    #[test]
    fn filtered_scores_differ_only_by_penalty() {
        let (m, ds) = trained();
        let f = LogicFilter::build(&m, &ds, 0.05, 123.0);
        let ranker = FilteredRanker { model: &m, filter: &f, item_tags: &ds.item_tags };
        let mut plain = vec![0.0; ds.n_items()];
        Ranker::score_user(&m, 0, &mut plain);
        let mut filt = vec![0.0; ds.n_items()];
        ranker.score_user(0, &mut filt);
        for v in 0..ds.n_items() {
            let diff = plain[v] - filt[v];
            assert!(diff == 0.0 || (diff - 123.0).abs() < 1e-9, "item {v}: diff {diff}");
        }
    }
}
