//! Streaming updates and cold-start fold-in (ROADMAP item 2).
//!
//! The north star serves millions of users, and a full retrain per signup
//! is not an option. This module folds *new* entities into a **frozen**
//! trained model:
//!
//! * [`fold_in_user`] / [`fold_in_item`] optimize only the new row — a few
//!   deterministic RSGD steps of the hinge ranking objective against the
//!   frozen final-space embeddings of the opposite side. Pre-existing rows
//!   are byte-untouched and the result is bit-identical for every
//!   `train_threads` value (the optimization is a serial loop over one
//!   row).
//! * [`EventLog`] is the append-only ingest buffer for streamed
//!   interaction events.
//! * [`compact`] periodically folds accumulated events into an incremental
//!   training pass over the streamed pairs (anchored by a seeded rehearsal
//!   sample of warm pairs), with a durable
//!   pre-compaction checkpoint ([`recover_from_checkpoint`] is the
//!   kill-recovery path) and in-memory rollback when an epoch diverges.
//!
//! ## Why optimizing in final space is sound
//!
//! A brand-new entity has no edges in the propagation graph, so every GCN
//! layer passes its tangent through unchanged and its final tangent is
//! `L·z₀` (see `graph::propagate_forward_graph`). The fold-in therefore
//! optimizes the entity's **final** carrier-space point `x` directly —
//! where the ranking distances live — and stores the base parameter row
//! whose degree-0 propagation reproduces `x`: for users
//! `exp₀(log₀(x)/L)`, for items the Poincaré image of that point. After
//! the snapshot re-propagates, the folded row's final embedding equals the
//! optimized point up to one exp/log round trip (~1e-9), while every
//! pre-existing final embedding is untouched because the new node
//! contributes no messages.

use std::path::{Path, PathBuf};

use logirec_data::InteractionSet;
use logirec_hyperbolic::{lorentz, maps, poincare, rsgd};
use logirec_linalg::{ops, Embedding, Scalar, SplitMix64};

use crate::checkpoint::{self, Checkpoint, CheckpointError};
use crate::config::{Geometry, LogiRecConfig};
use crate::graph::PropGraph;
use crate::losses::rank_loss_grad_sharded;
use crate::model::LogiRec;

/// Typed errors from the fold-in path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FoldInError {
    /// The model has no cached forward state (`propagate` must run first:
    /// fold-in optimizes against the frozen final embeddings).
    NoForwardState,
    /// A positive id at or beyond the frozen table it indexes.
    PositiveOutOfRange {
        /// The offending id.
        id: usize,
        /// Number of rows in the frozen table.
        limit: usize,
    },
    /// The optimized row failed the manifold/finiteness check — the model
    /// is left untouched.
    NonFinite,
}

impl std::fmt::Display for FoldInError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldInError::NoForwardState => {
                write!(f, "fold-in requires a propagated model (no forward state)")
            }
            FoldInError::PositiveOutOfRange { id, limit } => {
                write!(f, "fold-in positive {id} out of range ({limit} rows)")
            }
            FoldInError::NonFinite => {
                write!(f, "fold-in produced a non-finite or off-manifold row")
            }
        }
    }
}

impl std::error::Error for FoldInError {}

/// Options controlling a single-entity fold-in.
#[derive(Debug, Clone)]
pub struct FoldInOptions {
    /// RSGD steps on the new row.
    pub steps: usize,
    /// Learning rate of those steps (larger than training LR: one row,
    /// frozen landscape).
    pub lr: f64,
    /// Negatives sampled per positive when building the hinge triplets.
    pub negatives: usize,
    /// Hinge margin (use the model's training margin).
    pub margin: f64,
    /// Seed of the deterministic negative sampler.
    pub seed: u64,
}

impl FoldInOptions {
    /// Defaults derived from a model config: the training margin and seed,
    /// with fold-in-specific step count and learning rate.
    pub fn for_config(cfg: &LogiRecConfig) -> Self {
        Self { steps: 30, lr: 0.1, negatives: 4, margin: cfg.margin, seed: cfg.seed }
    }
}

/// Outcome of one fold-in.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldInReport {
    /// Id of the appended row.
    pub id: usize,
    /// Objective before the first step.
    pub initial_loss: f64,
    /// Objective after the last step.
    pub final_loss: f64,
    /// Steps taken.
    pub steps: usize,
    /// Hinge triplets the objective averaged over.
    pub triplets: usize,
}

/// Deterministic `(positive, negative)` index pairs for the fold-in
/// objective: `negatives` draws per distinct positive, vetoing positives
/// with bounded retries. Pure function of its arguments — the basis of the
/// bit-reproducibility guarantee.
pub fn fold_in_triplets(
    positives: &[usize],
    n_candidates: usize,
    negatives: usize,
    seed: u64,
) -> Vec<(usize, usize)> {
    let mut sorted = positives.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() >= n_candidates {
        return Vec::new(); // no negative candidates exist
    }
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(sorted.len() * negatives);
    for &p in &sorted {
        for _ in 0..negatives {
            for _ in 0..16 {
                let q = rng.index(n_candidates);
                if sorted.binary_search(&q).is_err() {
                    out.push((p, q));
                    break;
                }
            }
        }
    }
    out
}

/// The fold-in objective: mean hinge
/// `(1/|T|) Σ [m + d(x, f_pos) − d(x, f_neg)]₊` of a candidate final-space
/// point `x` against the frozen final embeddings `finals`. Public so the
/// finite-difference gradient tests can probe it directly.
pub fn fold_in_objective<S: Scalar>(
    geometry: Geometry,
    x: &[S],
    finals: &Embedding<S>,
    triplets: &[(usize, usize)],
    margin: f64,
) -> f64 {
    if triplets.is_empty() {
        return 0.0;
    }
    let w = 1.0 / triplets.len() as f64;
    let mut loss = 0.0;
    for &(vp, vq) in triplets {
        let hinge = S::from_f64(margin) + carrier_distance(geometry, x, finals.row(vp))
            - carrier_distance(geometry, x, finals.row(vq));
        if hinge > S::ZERO {
            loss += w * hinge.to_f64();
        }
    }
    loss
}

/// Analytic gradient of [`fold_in_objective`] w.r.t. `x` (ambient
/// coordinates), written into `gx`. Returns the objective value.
pub fn fold_in_grad_into<S: Scalar>(
    geometry: Geometry,
    x: &[S],
    finals: &Embedding<S>,
    triplets: &[(usize, usize)],
    margin: f64,
    gx: &mut [S],
) -> f64 {
    debug_assert_eq!(gx.len(), x.len());
    gx.fill(S::ZERO);
    if triplets.is_empty() {
        return 0.0;
    }
    let w = 1.0 / triplets.len() as f64;
    let mut tmp_gx = vec![S::ZERO; x.len()];
    let mut tmp_gy = vec![S::ZERO; x.len()];
    let mut loss = 0.0;
    for &(vp, vq) in triplets {
        let fp = finals.row(vp);
        let fq = finals.row(vq);
        let hinge = S::from_f64(margin) + carrier_distance(geometry, x, fp)
            - carrier_distance(geometry, x, fq);
        if hinge <= S::ZERO {
            continue;
        }
        loss += w * hinge.to_f64();
        accumulate_distance_grad(geometry, x, fp, S::from_f64(w), gx, &mut tmp_gx, &mut tmp_gy);
        accumulate_distance_grad(geometry, x, fq, S::from_f64(-w), gx, &mut tmp_gx, &mut tmp_gy);
    }
    loss
}

/// Folds a brand-new user with the given interacted items into the model:
/// optimizes only the new row against the frozen item finals, then appends
/// the base parameter row (and extends the cached state). Every
/// pre-existing parameter stays byte-identical. Returns the new user id in
/// the report.
pub fn fold_in_user<S: Scalar>(
    model: &mut LogiRec<S>,
    positives: &[usize],
    opts: &FoldInOptions,
) -> Result<FoldInReport, FoldInError> {
    if !model.has_state() {
        return Err(FoldInError::NoForwardState);
    }
    let n_items = model.items.rows();
    if let Some(&bad) = positives.iter().find(|&&v| v >= n_items) {
        return Err(FoldInError::PositiveOutOfRange { id: bad, limit: n_items });
    }
    let geometry = model.cfg.geometry;
    let (x, initial_loss, final_loss, triplets) =
        optimize_new_row(geometry, &model.state().item_final, positives, opts)?;
    let base = match geometry {
        Geometry::Hyperbolic => {
            let mut z = lorentz::log_origin(&x);
            scale_in_place(&mut z, 1.0 / model.cfg.layers.max(1) as f64);
            lorentz::exp_origin(&z)
        }
        Geometry::Euclidean => {
            let mut z = x;
            scale_in_place(&mut z, 1.0 / model.cfg.layers.max(1) as f64);
            z
        }
    };
    if !ops::all_finite(&base) {
        return Err(FoldInError::NonFinite);
    }
    let id = model.push_user_row(&base);
    Ok(FoldInReport { id, initial_loss, final_loss, steps: opts.steps, triplets })
}

/// Folds a brand-new item with the given interacting users into the model
/// (the mirror of [`fold_in_user`]: optimizes against the frozen user
/// finals and appends a Poincaré / Euclidean item row).
pub fn fold_in_item<S: Scalar>(
    model: &mut LogiRec<S>,
    positives: &[usize],
    opts: &FoldInOptions,
) -> Result<FoldInReport, FoldInError> {
    if !model.has_state() {
        return Err(FoldInError::NoForwardState);
    }
    let n_users = model.users.rows();
    if let Some(&bad) = positives.iter().find(|&&u| u >= n_users) {
        return Err(FoldInError::PositiveOutOfRange { id: bad, limit: n_users });
    }
    let geometry = model.cfg.geometry;
    let (x, initial_loss, final_loss, triplets) =
        optimize_new_row(geometry, &model.state().user_final, positives, opts)?;
    let base = match geometry {
        Geometry::Hyperbolic => {
            // Final point → layer-0 tangent → carrier → Poincaré
            // parameter: the inverse of the item forward chain for a
            // degree-0 node.
            let mut z = lorentz::log_origin(&x);
            scale_in_place(&mut z, 1.0 / model.cfg.layers.max(1) as f64);
            let carrier = lorentz::exp_origin(&z);
            let mut p = maps::lorentz_to_poincare(&carrier);
            if !poincare::in_ball(&p) {
                poincare::project(&mut p);
            }
            p
        }
        Geometry::Euclidean => {
            let mut z = x;
            scale_in_place(&mut z, 1.0 / model.cfg.layers.max(1) as f64);
            z
        }
    };
    if !ops::all_finite(&base) {
        return Err(FoldInError::NonFinite);
    }
    let id = model.push_item_row(&base);
    Ok(FoldInReport { id, initial_loss, final_loss, steps: opts.steps, triplets })
}

/// Shared fold-in optimizer: a serial RSGD loop on one final-space point
/// against the frozen `finals` table. Returns the optimized point and the
/// objective before/after.
fn optimize_new_row<S: Scalar>(
    geometry: Geometry,
    finals: &Embedding<S>,
    positives: &[usize],
    opts: &FoldInOptions,
) -> Result<(Vec<S>, f64, f64, usize), FoldInError> {
    let ambient = finals.dim();
    // Initialize at the tangent-space mean of the positives' finals — the
    // hyperbolic analogue of "average of what the user touched". With no
    // positives the entity starts at the origin.
    //
    // On a well-trained table this init is already near-stationary for the
    // hinge objective: when most triplets are active, the pulls toward the
    // positives cancel at their own mean and the pushes from uniformly
    // sampled negatives cancel in expectation, so the RSGD loop below is a
    // polish (it matters on small/degenerate tables where the active set
    // is asymmetric). Most of the fold-in quality comes from this init;
    // closing the residual gap to a full retrain is [`compact`]'s job.
    let mut x: Vec<S> = match geometry {
        Geometry::Hyperbolic => {
            let mut t = vec![S::ZERO; ambient - 1];
            if !positives.is_empty() {
                for &p in positives {
                    let z = lorentz::log_origin(finals.row(p));
                    ops::axpy(S::ONE, &z, &mut t);
                }
                scale_in_place(&mut t, 1.0 / positives.len() as f64);
            }
            lorentz::exp_origin(&t)
        }
        Geometry::Euclidean => {
            let mut t = vec![S::ZERO; ambient];
            if !positives.is_empty() {
                for &p in positives {
                    ops::axpy(S::ONE, finals.row(p), &mut t);
                }
                scale_in_place(&mut t, 1.0 / positives.len() as f64);
            }
            t
        }
    };

    let triplets = fold_in_triplets(positives, finals.rows(), opts.negatives, opts.seed);
    let initial_loss = fold_in_objective(geometry, &x, finals, &triplets, opts.margin);
    let mut gx = vec![S::ZERO; x.len()];
    for _ in 0..opts.steps {
        if triplets.is_empty() {
            break;
        }
        fold_in_grad_into(geometry, &x, finals, &triplets, opts.margin, &mut gx);
        match geometry {
            Geometry::Hyperbolic => rsgd::lorentz_step(&mut x, &gx, opts.lr),
            Geometry::Euclidean => rsgd::euclidean_step(&mut x, &gx, opts.lr),
        }
    }
    if !ops::all_finite(&x)
        || (geometry == Geometry::Hyperbolic && !lorentz::on_manifold(&x, 1e-6))
    {
        return Err(FoldInError::NonFinite);
    }
    // Divergence guard: a runaway learning rate can fling the row far from
    // everything while staying finite and on-manifold (each RSGD step is
    // individually overflow-guarded). Reject rows that land outside the
    // frozen table's span by a wide margin — downstream that keeps the
    // last-good snapshot serving.
    let origin_span = |v: &[S]| match geometry {
        // The Lorentz time component is cosh(distance from origin).
        Geometry::Hyperbolic => v[0].to_f64(),
        Geometry::Euclidean => ops::norm(v).to_f64(),
    };
    let mut max_span = 1.0f64;
    for r in 0..finals.rows() {
        max_span = max_span.max(origin_span(finals.row(r)));
    }
    if origin_span(&x) > FOLD_IN_EXPLOSION_FACTOR * max_span {
        return Err(FoldInError::NonFinite);
    }
    let final_loss = fold_in_objective(geometry, &x, finals, &triplets, opts.margin);
    Ok((x, initial_loss, final_loss, triplets.len()))
}

/// How far outside the frozen table's origin-span an optimized fold-in row
/// may land before it is rejected as divergent (mirrors the trainer's
/// `explosion_factor` health check).
const FOLD_IN_EXPLOSION_FACTOR: f64 = 100.0;

/// Carrier-space distance matching the ranking head.
fn carrier_distance<S: Scalar>(geometry: Geometry, x: &[S], y: &[S]) -> S {
    match geometry {
        Geometry::Hyperbolic => lorentz::distance(x, y),
        Geometry::Euclidean => ops::dist(x, y),
    }
}

/// Accumulates `upstream · ∂d(x, y)/∂x` into `acc` (the `y` side is
/// frozen and discarded).
fn accumulate_distance_grad<S: Scalar>(
    geometry: Geometry,
    x: &[S],
    y: &[S],
    upstream: S,
    acc: &mut [S],
    tmp_gx: &mut [S],
    tmp_gy: &mut [S],
) {
    match geometry {
        Geometry::Hyperbolic => {
            lorentz::distance_vjp_into(x, y, upstream, tmp_gx, tmp_gy);
            ops::axpy(S::ONE, tmp_gx, acc);
        }
        Geometry::Euclidean => {
            let d = ops::dist(x, y);
            if d > S::from_f64(1e-12) {
                let s = upstream / d;
                for ((a, &xi), &yi) in acc.iter_mut().zip(x).zip(y) {
                    *a += s * (xi - yi);
                }
            }
        }
    }
}

fn scale_in_place<S: Scalar>(v: &mut [S], factor: f64) {
    let f = S::from_f64(factor);
    for x in v.iter_mut() {
        *x *= f;
    }
}

// ---------------------------------------------------------------------------
// Event ingest
// ---------------------------------------------------------------------------

/// One streamed interaction event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// User id (may be at or beyond the current user table — a cold-start
    /// signup).
    pub user: usize,
    /// Item id (may be at or beyond the current item table).
    pub item: usize,
    /// Event timestamp (only ordering matters).
    pub time: u64,
}

/// Append-only ingest buffer for streamed interaction events. Appending is
/// O(1) and never touches the model; [`compact`] periodically folds the
/// pending suffix into the embedding tables and marks it consumed.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
    /// Prefix length already folded in by compaction.
    compacted: usize,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn append(&mut self, user: usize, item: usize, time: u64) {
        self.events.push(Event { user, item, time });
    }

    /// Total events ever appended.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, compacted prefix included.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events appended since the last compaction.
    pub fn pending(&self) -> &[Event] {
        &self.events[self.compacted..]
    }

    /// Number of events already folded in.
    pub fn compacted(&self) -> usize {
        self.compacted
    }

    fn mark_compacted(&mut self) {
        self.compacted = self.events.len();
    }
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

/// Errors from [`compact`].
#[derive(Debug)]
pub enum CompactionError {
    /// Growing a table for a new entity failed.
    FoldIn(FoldInError),
    /// Writing or restoring the pre-compaction checkpoint failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for CompactionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactionError::FoldIn(e) => write!(f, "compaction fold-in failed: {e}"),
            CompactionError::Checkpoint(e) => write!(f, "compaction checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for CompactionError {}

impl From<FoldInError> for CompactionError {
    fn from(e: FoldInError) -> Self {
        CompactionError::FoldIn(e)
    }
}

impl From<CheckpointError> for CompactionError {
    fn from(e: CheckpointError) -> Self {
        CompactionError::Checkpoint(e)
    }
}

/// Options controlling one compaction pass.
#[derive(Debug, Clone)]
pub struct CompactionOptions {
    /// Incremental training epochs over the streamed pairs.
    pub epochs: usize,
    /// Negatives per streamed positive.
    pub negatives: usize,
    /// Learning rate of the incremental pass.
    pub lr: f64,
    /// Hinge margin (the model's training margin).
    pub margin: f64,
    /// Seed of the deterministic triplet sampler.
    pub seed: u64,
    /// Warm-pair rehearsal ratio: each incremental epoch also samples
    /// `rehearsal × |streamed pairs|` pairs from the pre-stream training
    /// set, so the update is anchored by the interactions the frozen
    /// geometry was trained on instead of walking it toward the streamed
    /// pairs alone (the catastrophic-forgetting counterweight). `0.0`
    /// disables rehearsal.
    pub rehearsal: f64,
    /// Fold-in options used to grow tables for brand-new entities.
    pub fold_in: FoldInOptions,
    /// Durable pre-compaction checkpoint destination (the kill-recovery
    /// point); `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
}

impl CompactionOptions {
    /// Defaults derived from a model config.
    pub fn for_config(cfg: &LogiRecConfig) -> Self {
        Self {
            epochs: 3,
            negatives: cfg.negatives.max(1),
            lr: cfg.lr,
            margin: cfg.margin,
            seed: cfg.seed,
            rehearsal: 1.0,
            fold_in: FoldInOptions::for_config(cfg),
            checkpoint_path: None,
        }
    }
}

/// Outcome of one compaction pass.
#[derive(Debug, Clone)]
pub struct CompactionReport {
    /// Events folded in by this pass.
    pub events_folded: usize,
    /// Users appended to the table.
    pub new_users: usize,
    /// Items appended to the table.
    pub new_items: usize,
    /// Incremental epochs completed.
    pub epochs_run: usize,
    /// True when a health violation rolled the model back to its
    /// pre-compaction parameters (the grown shapes are kept).
    pub rolled_back: bool,
    /// The violation that triggered the rollback, when one occurred.
    pub rollback_reason: Option<String>,
    /// Rank loss of the last completed epoch.
    pub final_loss: f64,
}

/// Folds the log's pending events into the model:
///
/// 1. writes a durable pre-compaction checkpoint (when configured) — the
///    recovery point if the process dies mid-compaction;
/// 2. grows the embedding tables via fold-in for every brand-new entity
///    (items first, so a new user's positives are always in range);
/// 3. rebuilds the training graph with the streamed interactions;
/// 4. runs a few epochs of rank-SGD over the streamed pairs plus a seeded
///    rehearsal sample of warm pairs (deterministic serial sampling; the
///    sharded gradient and per-row updates are bit-identical across
///    `train_threads`);
/// 5. health-checks after every epoch and rolls back to the
///    pre-compaction parameters on divergence.
///
/// Returns the grown training set (use it for serving masks and future
/// propagation) alongside the report. On success the model's forward state
/// is freshly propagated against the grown graph.
pub fn compact<S: Scalar>(
    model: &mut LogiRec<S>,
    train: &InteractionSet,
    log: &mut EventLog,
    opts: &CompactionOptions,
) -> Result<(InteractionSet, CompactionReport), CompactionError> {
    let pending: Vec<Event> = log.pending().to_vec();
    if pending.is_empty() {
        return Ok((
            train.clone(),
            CompactionReport {
                events_folded: 0,
                new_users: 0,
                new_items: 0,
                epochs_run: 0,
                rolled_back: false,
                rollback_reason: None,
                final_loss: 0.0,
            },
        ));
    }
    if !model.has_state() {
        model.propagate(train);
    }

    if let Some(path) = &opts.checkpoint_path {
        let ck = pre_compaction_checkpoint(model, opts.seed);
        checkpoint::save(&ck, path)?;
    }

    // Grow the tables. Items first: a new user's positives may include new
    // items; a new item is folded against the *old* users only (new users
    // do not exist yet).
    let old_users = model.users.rows();
    let old_items = model.items.rows();
    let max_user = pending.iter().map(|e| e.user).max().expect("non-empty");
    let max_item = pending.iter().map(|e| e.item).max().expect("non-empty");
    let mut new_items = 0;
    if max_item >= old_items {
        for v in old_items..=max_item {
            let users_of_v: Vec<usize> = pending
                .iter()
                .filter(|e| e.item == v && e.user < old_users)
                .map(|e| e.user)
                .collect();
            let fi = FoldInOptions {
                seed: entity_seed(opts.fold_in.seed, 1, v),
                ..opts.fold_in.clone()
            };
            fold_in_item(model, &users_of_v, &fi)?;
            new_items += 1;
        }
    }
    let mut new_users = 0;
    if max_user >= old_users {
        for u in old_users..=max_user {
            let items_of_u: Vec<usize> =
                pending.iter().filter(|e| e.user == u).map(|e| e.item).collect();
            let fi = FoldInOptions {
                seed: entity_seed(opts.fold_in.seed, 2, u),
                ..opts.fold_in.clone()
            };
            fold_in_user(model, &items_of_u, &fi)?;
            new_users += 1;
        }
    }

    // Rebuild the training graph with the streamed interactions.
    let warm_pairs: Vec<(usize, usize)> = train.iter_pairs().collect();
    let mut pairs = warm_pairs.clone();
    pairs.extend(pending.iter().map(|e| (e.user, e.item)));
    let grown = InteractionSet::from_pairs(model.users.rows(), model.items.rows(), &pairs);
    let graph = PropGraph::build(&grown);

    // Incremental rank-SGD over the streamed pairs (plus rehearsal).
    let pre = model.clone();
    let threads = model.cfg.train_threads.max(1);
    let negatives = opts.negatives.max(1);
    let per_triplet = 1.0 / negatives as f64;
    let mut rng = SplitMix64::new(opts.seed);
    let event_pairs: Vec<(usize, usize)> = {
        let mut p: Vec<(usize, usize)> = pending.iter().map(|e| (e.user, e.item)).collect();
        p.sort_unstable();
        p.dedup();
        p
    };
    let mut rolled_back = false;
    let mut rollback_reason = None;
    let mut final_loss = 0.0;
    let mut epochs_run = 0;
    let mut triplets = Vec::with_capacity(event_pairs.len() * negatives);
    for epoch in 0..opts.epochs {
        model.propagate_graph(&graph);
        // Serial, seeded sampling: bit-identical for every thread count.
        triplets.clear();
        for &(u, vp) in &event_pairs {
            for _ in 0..negatives {
                let mut vq = rng.index(grown.n_items());
                for _ in 0..16 {
                    if !grown.contains(u, vq) {
                        break;
                    }
                    vq = rng.index(grown.n_items());
                }
                triplets.push((u, vp, vq));
            }
        }
        // Rehearsal: a seeded sample of warm pairs joins every epoch so
        // the incremental gradient pulls against the frozen geometry's own
        // training signal rather than the streamed pairs alone.
        if opts.rehearsal > 0.0 && !warm_pairs.is_empty() {
            let n_rehearsal = (opts.rehearsal * event_pairs.len() as f64).round() as usize;
            for _ in 0..n_rehearsal {
                let (u, vp) = warm_pairs[rng.index(warm_pairs.len())];
                for _ in 0..negatives {
                    let mut vq = rng.index(grown.n_items());
                    for _ in 0..16 {
                        if !grown.contains(u, vq) {
                            break;
                        }
                        vq = rng.index(grown.n_items());
                    }
                    triplets.push((u, vp, vq));
                }
            }
        }
        let shard =
            rank_loss_grad_sharded(model, &triplets, opts.margin, None, per_triplet, threads);
        let loss = shard.loss / triplets.len().max(1) as f64;
        let ambient = model.cfg.ambient_dim();
        let mut g_user_final = Embedding::zeros(model.users.rows(), ambient);
        let mut g_item_final = Embedding::zeros(model.items.rows(), ambient);
        shard.users.scatter_add(&mut g_user_final);
        shard.items.scatter_add(&mut g_item_final);
        let (g_users, g_items) = model.backward_rank_graph(&g_user_final, &g_item_final, &graph);
        apply_stream_updates(model, &g_users, &g_items, opts.lr);
        inject_compaction_faults(model, epoch);
        epochs_run += 1;
        final_loss = loss;
        if let Some(reason) = stream_health_violation(model, loss) {
            *model = pre.clone();
            rolled_back = true;
            rollback_reason = Some(reason);
            break;
        }
    }
    // Leave a fresh forward state against the grown graph for serving.
    model.propagate_graph(&graph);
    log.mark_compacted();
    Ok((
        grown,
        CompactionReport {
            events_folded: pending.len(),
            new_users,
            new_items,
            epochs_run,
            rolled_back,
            rollback_reason,
            final_loss,
        },
    ))
}

/// Restores a model's parameter tables from a pre-compaction checkpoint
/// written by [`compact`] — the recovery path after a mid-compaction kill.
/// Geometry/dim/layers must match the model's config; the restored tables
/// may be *smaller* than the current ones (rolled-back growth), which is
/// exactly the point. The forward state is dropped; re-propagate before
/// scoring.
pub fn recover_from_checkpoint<S: Scalar>(
    model: &mut LogiRec<S>,
    path: &Path,
) -> Result<(), CheckpointError> {
    let ck = checkpoint::load(path)?;
    if ck.geometry != model.cfg.geometry
        || ck.dim != model.cfg.dim
        || ck.layers != model.cfg.layers
    {
        return Err(CheckpointError::Corrupt(format!(
            "checkpoint geometry/dim/layers ({:?}/{}/{}) do not match the model \
             ({:?}/{}/{})",
            ck.geometry, ck.dim, ck.layers, model.cfg.geometry, model.cfg.dim, model.cfg.layers
        )));
    }
    model.tags = ck.tags.cast();
    model.items = ck.items.cast();
    model.users = ck.users.cast();
    model.clear_state();
    Ok(())
}

/// Per-entity fold-in seed: decorrelates the negative streams of entities
/// grown in one compaction pass while staying a pure function of
/// (base seed, side, id).
fn entity_seed(base: u64, side: u64, id: usize) -> u64 {
    base ^ (id as u64 ^ (side << 62)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn pre_compaction_checkpoint<S: Scalar>(model: &LogiRec<S>, seed: u64) -> Checkpoint {
    Checkpoint {
        geometry: model.cfg.geometry,
        dim: model.cfg.dim,
        layers: model.cfg.layers,
        precision: model.cfg.precision,
        epoch: 0,
        rng_state: seed,
        lr_scale: 1.0,
        bad_rounds: 0,
        history: Vec::new(),
        recoveries: Vec::new(),
        alpha: None,
        best: None,
        tags: model.tags.cast(),
        items: model.items.cast(),
        users: model.users.cast(),
    }
}

/// One optimizer step per parameter family, mirroring the trainer's rules
/// (tags are untouched: compaction only moves users/items). Per-row steps
/// are independent, so the result is bit-identical across thread counts.
fn apply_stream_updates<S: Scalar>(
    model: &mut LogiRec<S>,
    g_users: &Embedding<S>,
    g_items: &Embedding<S>,
    lr: f64,
) {
    let threads = model.cfg.train_threads.max(1);
    match model.cfg.geometry {
        Geometry::Hyperbolic => {
            crate::parallel::for_each_row(&mut model.users, threads, |u, row| {
                let g = g_users.row(u);
                if g.iter().any(|&x| x != S::ZERO) {
                    rsgd::lorentz_step(row, g, lr);
                }
            });
            crate::parallel::for_each_row(&mut model.items, threads, |v, row| {
                let g = g_items.row(v);
                if g.iter().any(|&x| x != S::ZERO) {
                    rsgd::poincare_step(row, g, lr);
                }
            });
        }
        Geometry::Euclidean => {
            crate::parallel::for_each_row(&mut model.users, threads, |u, row| {
                rsgd::euclidean_step(row, g_users.row(u), lr);
            });
            crate::parallel::for_each_row(&mut model.items, threads, |v, row| {
                rsgd::euclidean_step(row, g_items.row(v), lr);
                ops::clip_norm(row, S::from_f64(1.0 - 1e-5));
            });
        }
    }
}

/// The trainer's health predicate, mirrored for the compaction mini-loop:
/// finite loss, finite parameters, items in the ball, users on the
/// hyperboloid.
fn stream_health_violation<S: Scalar>(model: &LogiRec<S>, loss: f64) -> Option<String> {
    if !loss.is_finite() {
        return Some(format!("non-finite rank loss {loss}"));
    }
    if !model.all_finite() {
        return Some("non-finite parameter after update".into());
    }
    if model.cfg.geometry == Geometry::Hyperbolic {
        for v in 0..model.items.rows() {
            if !poincare::in_ball(model.items.row(v)) {
                return Some(format!("item {v} escaped the Poincaré ball"));
            }
        }
        for u in 0..model.users.rows() {
            if !lorentz::on_manifold(model.users.row(u), 1e-6) {
                return Some(format!("user {u} left the hyperboloid"));
            }
        }
    }
    None
}

#[cfg(feature = "fault-injection")]
fn inject_compaction_faults<S: Scalar>(model: &mut LogiRec<S>, epoch: usize) {
    let plan = model.cfg.faults.clone();
    if let Some(plan) = plan {
        plan.corrupt_model(epoch, model);
    }
}

#[cfg(not(feature = "fault-injection"))]
fn inject_compaction_faults<S: Scalar>(_model: &mut LogiRec<S>, _epoch: usize) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LogiRecConfig;
    use crate::trainer::train;
    use logirec_data::{Dataset, DatasetSpec, Scale};

    fn trained() -> (LogiRec, Dataset) {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(71);
        let cfg = LogiRecConfig { epochs: 8, eval_every: 0, ..LogiRecConfig::test_config() };
        let (mut m, _) = train(cfg, &ds);
        m.propagate(&ds.train);
        (m, ds)
    }

    #[test]
    fn fold_in_triplets_are_deterministic_and_avoid_positives() {
        let positives = [3usize, 1, 7];
        let a = fold_in_triplets(&positives, 50, 4, 99);
        let b = fold_in_triplets(&positives, 50, 4, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        for &(p, q) in &a {
            assert!(positives.contains(&p));
            assert!(!positives.contains(&q), "negative {q} is a positive");
        }
        // A different seed draws different negatives.
        let c = fold_in_triplets(&positives, 50, 4, 100);
        assert_ne!(a, c);
        // No negatives exist when every candidate is a positive.
        assert!(fold_in_triplets(&[0, 1, 2], 3, 4, 1).is_empty());
    }

    #[test]
    fn fold_in_user_reduces_the_objective_and_freezes_the_rest() {
        let (mut m, ds) = trained();
        let before_users = m.users.as_slice().to_vec();
        let before_items = m.items.as_slice().to_vec();
        let positives: Vec<usize> = ds.train.items_of(0).to_vec();
        let opts = FoldInOptions::for_config(&m.cfg);
        let report = fold_in_user(&mut m, &positives, &opts).expect("fold in");
        assert_eq!(report.id, ds.n_users());
        assert!(report.final_loss <= report.initial_loss + 1e-12,
            "objective rose: {} -> {}", report.initial_loss, report.final_loss);
        // Frozen model: every pre-existing byte untouched.
        assert_eq!(&m.users.as_slice()[..before_users.len()], &before_users[..]);
        assert_eq!(m.items.as_slice(), &before_items[..]);
        // The new row is on the manifold and servable from the state.
        assert!(lorentz::on_manifold(m.users.row(report.id), 1e-9));
        assert!(lorentz::on_manifold(m.state().user_final.row(report.id), 1e-8));
    }

    #[test]
    fn fold_in_rejects_a_divergent_learning_rate() {
        let (mut m, ds) = trained();
        let positives: Vec<usize> = ds.train.items_of(0).to_vec();
        let before = m.users.as_slice().to_vec();
        // Overshooting steps walk the row far outside the frozen table's
        // span while each individual step stays finite.
        let opts = FoldInOptions { lr: 100.0, ..FoldInOptions::for_config(&m.cfg) };
        assert_eq!(fold_in_user(&mut m, &positives, &opts), Err(FoldInError::NonFinite));
        // A rejected fold-in leaves the model byte-untouched.
        assert_eq!(m.users.as_slice(), &before[..]);
    }

    #[test]
    fn fold_in_item_appends_a_ball_point() {
        let (mut m, ds) = trained();
        let positives = vec![0usize, 2, 5];
        let opts = FoldInOptions::for_config(&m.cfg);
        let report = fold_in_item(&mut m, &positives, &opts).expect("fold in");
        assert_eq!(report.id, ds.n_items());
        assert!(poincare::in_ball(m.items.row(report.id)));
        assert!(lorentz::on_manifold(m.state().item_final.row(report.id), 1e-8));
    }

    #[test]
    fn fold_in_rejects_bad_input() {
        let (mut m, ds) = trained();
        let opts = FoldInOptions::for_config(&m.cfg);
        let mut cold = m.cast::<f64>();
        assert_eq!(fold_in_user(&mut cold, &[0], &opts), Err(FoldInError::NoForwardState));
        assert_eq!(
            fold_in_user(&mut m, &[ds.n_items() + 3], &opts),
            Err(FoldInError::PositiveOutOfRange { id: ds.n_items() + 3, limit: ds.n_items() })
        );
        assert_eq!(
            fold_in_item(&mut m, &[ds.n_users()], &opts),
            Err(FoldInError::PositiveOutOfRange { id: ds.n_users(), limit: ds.n_users() })
        );
    }

    #[test]
    fn event_log_tracks_pending_suffix() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.append(0, 1, 10);
        log.append(2, 3, 11);
        assert_eq!(log.len(), 2);
        assert_eq!(log.pending().len(), 2);
        log.mark_compacted();
        assert_eq!(log.pending().len(), 0);
        assert_eq!(log.compacted(), 2);
        log.append(4, 5, 12);
        assert_eq!(log.pending(), &[Event { user: 4, item: 5, time: 12 }]);
        assert_eq!(log.events().len(), 3);
    }

    #[test]
    fn compaction_folds_events_and_stays_healthy() {
        let (mut m, ds) = trained();
        let mut log = EventLog::new();
        // Existing users interact with existing items, plus one brand-new
        // user and one brand-new item.
        log.append(0, 3, 100);
        log.append(1, 4, 101);
        log.append(ds.n_users(), 0, 102);
        log.append(ds.n_users(), 5, 103);
        log.append(2, ds.n_items(), 104);
        let opts = CompactionOptions::for_config(&m.cfg);
        let (grown, report) = compact(&mut m, &ds.train, &mut log, &opts).expect("compact");
        assert_eq!(report.events_folded, 5);
        assert_eq!(report.new_users, 1);
        assert_eq!(report.new_items, 1);
        assert!(!report.rolled_back, "{:?}", report.rollback_reason);
        assert_eq!(report.epochs_run, opts.epochs);
        assert_eq!(grown.n_users(), ds.n_users() + 1);
        assert_eq!(grown.n_items(), ds.n_items() + 1);
        assert!(grown.contains(ds.n_users(), 5));
        assert!(grown.contains(2, ds.n_items()));
        assert!(m.all_finite());
        assert!(m.has_state());
        assert!(log.pending().is_empty());
        // A second compaction with no new events is a no-op.
        let (again, r2) = compact(&mut m, &grown, &mut log, &opts).expect("no-op");
        assert_eq!(r2.events_folded, 0);
        assert_eq!(again.len(), grown.len());
    }

    #[test]
    fn checkpoint_recovery_restores_pre_compaction_tables() {
        let (mut m, ds) = trained();
        let path = std::env::temp_dir()
            .join(format!("logirec-stream-ckpt-{}", std::process::id()));
        let mut log = EventLog::new();
        log.append(ds.n_users(), 0, 1);
        let opts = CompactionOptions {
            checkpoint_path: Some(path.clone()),
            ..CompactionOptions::for_config(&m.cfg)
        };
        let before = m.users.as_slice().to_vec();
        compact(&mut m, &ds.train, &mut log, &opts).expect("compact");
        assert_eq!(m.users.rows(), ds.n_users() + 1);
        // Simulated kill: recover from the durable checkpoint.
        recover_from_checkpoint(&mut m, &path).expect("recover");
        assert_eq!(m.users.rows(), ds.n_users());
        assert_eq!(m.users.as_slice(), &before[..]);
        assert!(!m.has_state());
        let _ = std::fs::remove_file(&path);
    }
}
