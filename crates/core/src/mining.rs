//! LogiRec++'s logical relation mining weights (Section V).
//!
//! * **Consistency** CON_u (Eq. 11–12): users whose interacted tag list
//!   contains few, deep-level exclusive tag pairs are consistent and get
//!   weights near 1; users spanning many coarse-level exclusions get
//!   weights near 0.
//! * **Granularity** GR_u (Eq. 13): the Lorentz distance of the user
//!   embedding to the origin. Fine-grained users live far from the origin
//!   and need larger optimization effort.
//! * α_u = sqrt(CON_u · GR_u) (Eq. 14), with GR min–max normalized across
//!   users (the paper's Table V reports GR values in [0, 1]) and a floor so
//!   no user is silenced.

use std::collections::HashMap;

use logirec_data::Dataset;
use logirec_linalg::Scalar;
use logirec_taxonomy::relations::tag_frequency;
use logirec_taxonomy::TagId;

use crate::model::LogiRec;

/// Per-user consistency scores CON_u ∈ (0, 1] (Eq. 12). These depend only
/// on the dataset, so they are computed once before training.
///
/// CON is computed against the **raw** all-siblings exclusion set derived
/// from the taxonomy (as the paper does): the weighting mechanism is
/// designed to cope with inaccurate exclusions, so it must not depend on
/// whichever cleaned rule the exclusion *loss* uses.
pub fn consistency_weights(dataset: &Dataset) -> Vec<f64> {
    let eta = dataset.taxonomy.max_level() as f64;
    let raw = logirec_taxonomy::LogicalRelations::extract(
        &dataset.taxonomy,
        &[],
        logirec_taxonomy::ExclusionRule::AllSiblings,
    );
    let exclusion = raw.exclusion_index();
    (0..dataset.n_users())
        .map(|u| user_consistency(dataset, u, eta, &exclusion))
        .collect()
}

fn user_consistency(
    dataset: &Dataset,
    u: usize,
    eta: f64,
    exclusion: &HashMap<(TagId, TagId), usize>,
) -> f64 {
    let list = dataset.user_tag_list(u);
    if list.len() < 2 {
        return 1.0;
    }
    // Occurrence counts per distinct tag.
    let mut counts: HashMap<TagId, usize> = HashMap::new();
    for &t in &list {
        *counts.entry(t).or_insert(0) += 1;
    }
    let total = list.len();
    let mut distinct: Vec<(TagId, f64)> =
        counts.iter().map(|(&t, &c)| (t, tag_frequency(c, total))).collect();
    distinct.sort_unstable_by_key(|&(t, _)| t);

    let mut penalty = 0.0;
    for (i, &(ti, tf_i)) in distinct.iter().enumerate() {
        for &(tj, tf_j) in &distinct[i + 1..] {
            if let Some(&level) = exclusion.get(&(ti, tj)) {
                // exp(η − k): coarse-level exclusions dominate the penalty.
                penalty += tf_i * tf_j * (eta - level as f64).exp();
            }
        }
    }
    (-penalty).exp()
}

/// Per-user raw granularity scores GR_u (Eq. 13) from the model's current
/// propagated embeddings. Requires [`LogiRec::propagate`] to have run.
pub fn granularity_weights<S: Scalar>(model: &LogiRec<S>, n_users: usize) -> Vec<f64> {
    (0..n_users).map(|u| model.user_origin_distance(u)).collect()
}

/// Combines consistency and (min–max normalized) granularity into the
/// personalized weights α_u = sqrt(CON_u · GR̃_u) (Eq. 14), clamped below
/// by `floor`, then rescaled to mean 1 so mining redistributes gradient
/// mass across users without changing the effective learning rate (the
/// paper's Adam-style optimizer absorbs global scale; plain RSGD does not,
/// see DESIGN.md).
pub fn combine_weights(con: &[f64], gr_raw: &[f64], floor: f64) -> Vec<f64> {
    assert_eq!(con.len(), gr_raw.len());
    let min = gr_raw.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = gr_raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let mut alpha: Vec<f64> = con
        .iter()
        .zip(gr_raw)
        .map(|(&c, &g)| {
            let g_norm = ((g - min) / span).clamp(0.0, 1.0);
            (c * g_norm).sqrt().clamp(floor, 1.0)
        })
        .collect();
    let mean = alpha.iter().sum::<f64>() / alpha.len().max(1) as f64;
    if mean > 0.0 {
        for a in &mut alpha {
            *a /= mean;
        }
    }
    alpha
}

/// A user profile row for the paper's Table V case studies.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// User id.
    pub user: usize,
    /// CON_u.
    pub consistency: f64,
    /// Normalized GR_u.
    pub granularity: f64,
    /// α_u.
    pub alpha: f64,
    /// The user's most-interacted tags (id, occurrence count), descending.
    pub top_tags: Vec<(TagId, usize)>,
}

/// Builds Table V-style profiles for all users given the mining weights.
pub fn user_profiles(
    dataset: &Dataset,
    con: &[f64],
    gr_raw: &[f64],
    alpha: &[f64],
    top_k_tags: usize,
) -> Vec<UserProfile> {
    let min = gr_raw.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = gr_raw.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    (0..dataset.n_users())
        .map(|u| {
            let mut counts: HashMap<TagId, usize> = HashMap::new();
            for t in dataset.user_tag_list(u) {
                *counts.entry(t).or_insert(0) += 1;
            }
            let mut top: Vec<(TagId, usize)> = counts.into_iter().collect();
            top.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            top.truncate(top_k_tags);
            UserProfile {
                user: u,
                consistency: con[u],
                granularity: ((gr_raw[u] - min) / span).clamp(0.0, 1.0),
                alpha: alpha[u],
                top_tags: top,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LogiRecConfig;
    use logirec_data::{DatasetSpec, Scale};

    #[test]
    fn consistency_is_in_unit_interval() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(1);
        let con = consistency_weights(&ds);
        assert_eq!(con.len(), ds.n_users());
        assert!(con.iter().all(|&c| (0.0..=1.0).contains(&c)));
    }

    #[test]
    fn users_spanning_exclusions_score_lower() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(2);
        let con = consistency_weights(&ds);
        // Correlate CON with the number of exclusive pairs in the user's
        // tag set: compute penalty ordering directly.
        let exclusion = ds.relations.exclusion_index();
        let pair_counts: Vec<usize> = (0..ds.n_users())
            .map(|u| {
                let mut tags = ds.user_tag_list(u);
                tags.sort_unstable();
                tags.dedup();
                let mut n = 0;
                for i in 0..tags.len() {
                    for j in i + 1..tags.len() {
                        if exclusion.contains_key(&(tags[i], tags[j])) {
                            n += 1;
                        }
                    }
                }
                n
            })
            .collect();
        let max_pairs = *pair_counts.iter().max().unwrap();
        let min_pairs = *pair_counts.iter().min().unwrap();
        if max_pairs > min_pairs {
            let most = pair_counts.iter().position(|&c| c == max_pairs).unwrap();
            let least = pair_counts.iter().position(|&c| c == min_pairs).unwrap();
            assert!(
                con[most] <= con[least],
                "user with {max_pairs} exclusive pairs should not out-score one with {min_pairs}"
            );
        }
    }

    #[test]
    fn granularity_tracks_distance_to_origin() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
        let mut m: LogiRec = LogiRec::new(LogiRecConfig::test_config(), &ds);
        m.propagate(&ds.train);
        let gr = granularity_weights(&m, ds.n_users());
        assert_eq!(gr.len(), ds.n_users());
        assert!(gr.iter().all(|&g| g.is_finite() && g >= 0.0));
        for (u, &g) in gr.iter().enumerate().take(5) {
            assert!((g - m.user_origin_distance(u)).abs() < 1e-12);
        }
    }

    #[test]
    fn combine_normalizes_and_floors() {
        let con = vec![1.0, 0.25, 0.0, 1.0];
        let gr = vec![2.0, 4.0, 6.0, 6.0];
        let alpha = combine_weights(&con, &gr, 0.1);
        // Mean-1 rescaling preserves ratios: pre-rescale values are
        // [0.1 (floored min-GR), sqrt(0.25·0.5), 0.1 (floored CON 0), 1.0].
        let pre = [0.1, (0.25f64 * 0.5).sqrt(), 0.1, 1.0];
        let mean: f64 = pre.iter().sum::<f64>() / 4.0;
        for (a, p) in alpha.iter().zip(&pre) {
            assert!((a - p / mean).abs() < 1e-12, "{a} vs {}", p / mean);
        }
        // Gradient mass is preserved: mean α = 1.
        let m = alpha.iter().sum::<f64>() / 4.0;
        assert!((m - 1.0).abs() < 1e-12);
        // The consistent fine-grained user carries the largest weight.
        assert!(alpha[3] > alpha[1] && alpha[1] > alpha[0]);
    }

    #[test]
    fn combine_handles_constant_granularity() {
        let alpha = combine_weights(&[0.5, 0.5], &[3.0, 3.0], 0.1);
        assert!(alpha.iter().all(|a| a.is_finite()));
        let mean = alpha.iter().sum::<f64>() / 2.0;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn profiles_surface_top_tags() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(4);
        let mut m: LogiRec = LogiRec::new(LogiRecConfig::test_config(), &ds);
        m.propagate(&ds.train);
        let con = consistency_weights(&ds);
        let gr = granularity_weights(&m, ds.n_users());
        let alpha = combine_weights(&con, &gr, 0.1);
        let profiles = user_profiles(&ds, &con, &gr, &alpha, 3);
        assert_eq!(profiles.len(), ds.n_users());
        for p in &profiles {
            assert!(p.top_tags.len() <= 3);
            assert!((0.0..=1.0).contains(&p.granularity));
            assert!(p.alpha > 0.0 && p.alpha.is_finite());
            // Top tags are sorted by count descending.
            for w in p.top_tags.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }
}
