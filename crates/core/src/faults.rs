//! Deterministic fault injection for robustness testing.
//!
//! Only compiled with the `fault-injection` feature (enabled by the suite's
//! dev-dependencies, never by release builds). A [`FaultPlan`] carries a
//! list of faults scheduled against specific epochs/steps; the trainer calls
//! its hooks at the two vulnerable points of the loop:
//!
//! * [`FaultPlan::corrupt_gradients`] — before an optimizer step, to poison
//!   gradient tables with NaN/Inf entries,
//! * [`FaultPlan::corrupt_model`] — after an epoch's updates, to push a
//!   parameter off its manifold (an item outside the Poincaré ball, a user
//!   off the Lorentz sheet).
//!
//! Each fault fires **once** and is then removed from the plan, so a
//! rolled-back epoch retries clean — exactly the situation the divergence
//! recovery is designed for. Which rows/entries get corrupted is decided by
//! an embedded SplitMix64, so runs are reproducible.
//!
//! The module also provides file-corruption helpers ([`truncate_file`],
//! [`flip_bit`]) used by the checkpoint robustness tests.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use logirec_linalg::{ops, Embedding, Scalar, SplitMix64};

use crate::model::LogiRec;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Overwrite one item-gradient entry with NaN at (epoch, step).
    NanGradient {
        /// Epoch the fault fires in.
        epoch: usize,
        /// SGD step within the epoch.
        step: usize,
    },
    /// Overwrite one user-gradient entry with +Inf at (epoch, step).
    InfGradient {
        /// Epoch the fault fires in.
        epoch: usize,
        /// SGD step within the epoch.
        step: usize,
    },
    /// After the epoch's updates, scale one item embedding to norm 1.5 —
    /// outside the Poincaré ball.
    ItemBoundaryEscape {
        /// Epoch the fault fires in.
        epoch: usize,
    },
    /// After the epoch's updates, double one user's time coordinate —
    /// a finite point off the Lorentz sheet.
    UserOffSheet {
        /// Epoch the fault fires in.
        epoch: usize,
    },
}

#[derive(Debug)]
struct Inner {
    pending: Vec<Fault>,
    fired: Vec<Fault>,
    rng: SplitMix64,
}

/// A deterministic, fire-once schedule of faults, shared across config
/// clones (the trainer clones its config into the model).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// A plan injecting `faults`, with row/entry choices seeded by `seed`.
    pub fn new(seed: u64, faults: Vec<Fault>) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                pending: faults,
                fired: Vec::new(),
                rng: SplitMix64::new(seed),
            })),
        }
    }

    /// Trainer hook: poisons gradient tables for faults scheduled at
    /// (`epoch`, `step`). Fired faults are removed from the plan.
    pub fn corrupt_gradients<S: Scalar>(
        &self,
        epoch: usize,
        step: usize,
        g_users: &mut Embedding<S>,
        g_items: &mut Embedding<S>,
    ) {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        let mut i = 0;
        while i < inner.pending.len() {
            let fault = inner.pending[i];
            let value = match fault {
                Fault::NanGradient { epoch: e, step: s } if e == epoch && s == step => {
                    Some((f64::NAN, true))
                }
                Fault::InfGradient { epoch: e, step: s } if e == epoch && s == step => {
                    Some((f64::INFINITY, false))
                }
                _ => None,
            };
            if let Some((bad, into_items)) = value {
                let table = if into_items { &mut *g_items } else { &mut *g_users };
                let row = inner.rng.index(table.rows().max(1));
                let col = inner.rng.index(table.dim().max(1));
                table.row_mut(row)[col] = S::from_f64(bad);
                inner.pending.remove(i);
                inner.fired.push(fault);
            } else {
                i += 1;
            }
        }
    }

    /// Trainer hook: corrupts model parameters for faults scheduled at the
    /// end of `epoch`. Fired faults are removed from the plan.
    pub fn corrupt_model<S: Scalar>(&self, epoch: usize, model: &mut LogiRec<S>) {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        let mut i = 0;
        while i < inner.pending.len() {
            match inner.pending[i] {
                Fault::ItemBoundaryEscape { epoch: e } if e == epoch => {
                    let v = inner.rng.index(model.items.rows().max(1));
                    let row = model.items.row_mut(v);
                    let n = ops::norm(row).max(S::from_f64(1e-9));
                    ops::scale(row, S::from_f64(1.5) / n);
                    let fault = inner.pending.remove(i);
                    inner.fired.push(fault);
                }
                Fault::UserOffSheet { epoch: e } if e == epoch => {
                    let u = inner.rng.index(model.users.rows().max(1));
                    model.users.row_mut(u)[0] *= S::from_f64(2.0);
                    let fault = inner.pending.remove(i);
                    inner.fired.push(fault);
                }
                _ => i += 1,
            }
        }
    }

    /// Faults that have fired so far.
    pub fn fired(&self) -> Vec<Fault> {
        self.inner.lock().expect("fault plan poisoned").fired.clone()
    }

    /// True when every scheduled fault has fired.
    pub fn exhausted(&self) -> bool {
        self.inner.lock().expect("fault plan poisoned").pending.is_empty()
    }
}

/// Truncates the file at `path` to `keep_fraction` of its length
/// (simulates a crash mid-write of a non-atomic writer).
pub fn truncate_file(path: &Path, keep_fraction: f64) -> io::Result<()> {
    let bytes = std::fs::read(path)?;
    let keep = ((bytes.len() as f64) * keep_fraction.clamp(0.0, 1.0)) as usize;
    std::fs::write(path, &bytes[..keep.min(bytes.len())])
}

/// Flips one pseudo-randomly chosen bit of the file at `path`
/// (simulates silent media corruption). Returns the corrupted byte offset.
pub fn flip_bit(path: &Path, seed: u64) -> io::Result<usize> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty file"));
    }
    let mut rng = SplitMix64::new(seed);
    let pos = rng.index(bytes.len());
    bytes[pos] ^= 1 << rng.index(8);
    std::fs::write(path, &bytes)?;
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_faults_fire_once_at_their_slot() {
        let plan = FaultPlan::new(
            1,
            vec![Fault::NanGradient { epoch: 2, step: 0 }, Fault::InfGradient { epoch: 2, step: 1 }],
        );
        let mut gu: Embedding = Embedding::zeros(4, 3);
        let mut gi: Embedding = Embedding::zeros(5, 3);
        plan.corrupt_gradients(0, 0, &mut gu, &mut gi);
        assert!(gu.all_finite() && gi.all_finite(), "wrong slot must not fire");
        plan.corrupt_gradients(2, 0, &mut gu, &mut gi);
        assert!(!gi.all_finite(), "NaN fault should hit the item table");
        assert!(gu.all_finite());
        plan.corrupt_gradients(2, 1, &mut gu, &mut gi);
        assert!(!gu.all_finite(), "Inf fault should hit the user table");
        assert!(plan.exhausted());
        // Firing again is a no-op.
        let mut gu2: Embedding = Embedding::zeros(4, 3);
        let mut gi2: Embedding = Embedding::zeros(5, 3);
        plan.corrupt_gradients(2, 0, &mut gu2, &mut gi2);
        assert!(gu2.all_finite() && gi2.all_finite());
        assert_eq!(plan.fired().len(), 2);
    }

    #[test]
    fn clones_share_one_plan() {
        let plan = FaultPlan::new(3, vec![Fault::NanGradient { epoch: 0, step: 0 }]);
        let clone = plan.clone();
        let mut gu: Embedding = Embedding::zeros(2, 2);
        let mut gi: Embedding = Embedding::zeros(2, 2);
        clone.corrupt_gradients(0, 0, &mut gu, &mut gi);
        assert!(plan.exhausted(), "clone firing must drain the original");
    }

    #[test]
    fn file_helpers_corrupt_files() {
        let path = std::env::temp_dir()
            .join(format!("logirec-faults-{}", std::process::id()));
        std::fs::write(&path, vec![0xAAu8; 100]).unwrap();
        truncate_file(&path, 0.4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 40);
        let pos = flip_bit(&path, 9).unwrap();
        assert!(pos < 40);
        assert_ne!(std::fs::read(&path).unwrap()[pos], 0xAA);
        let _ = std::fs::remove_file(&path);
    }
}
