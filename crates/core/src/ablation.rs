//! The Table III ablation variants.

use crate::config::{Geometry, LogiRecConfig};

/// A named model variant from the paper's ablation study (Table III),
/// plus the two headline configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Full LogiRec++ (mining on).
    LogiRecPlusPlus,
    /// Plain LogiRec — identical to "LogiRec++ w/o. LRM".
    LogiRec,
    /// Without the membership loss L_Mem.
    WithoutMem,
    /// Without the hierarchy loss L_Hie.
    WithoutHie,
    /// Without the exclusion loss L_Ex.
    WithoutEx,
    /// Without the hyperbolic GCN (L = 0).
    WithoutHgcn,
    /// Projected to Euclidean space.
    WithoutHyper,
    /// Extension: with the intersection relation loss L_Int enabled
    /// (the paper's future work; not a Table III row).
    WithIntersection,
}

impl Variant {
    /// All Table III rows, LogiRec++ first.
    pub fn table3() -> [Variant; 7] {
        [
            Variant::LogiRecPlusPlus,
            Variant::WithoutMem,
            Variant::WithoutHie,
            Variant::WithoutEx,
            Variant::WithoutHgcn,
            Variant::LogiRec, // "w/o. LRM"
            Variant::WithoutHyper,
        ]
    }

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::LogiRecPlusPlus => "LogiRec++",
            Variant::LogiRec => "- w/o. LRM",
            Variant::WithoutMem => "- w/o. L_Mem",
            Variant::WithoutHie => "- w/o. L_Hie",
            Variant::WithoutEx => "- w/o. L_Ex",
            Variant::WithoutHgcn => "- w/o. HGCN",
            Variant::WithoutHyper => "- w/o. Hyper",
            Variant::WithIntersection => "+ w. L_Int (ext.)",
        }
    }

    /// Applies the variant to a base configuration.
    pub fn apply(&self, mut cfg: LogiRecConfig) -> LogiRecConfig {
        match self {
            Variant::LogiRecPlusPlus => cfg.mining = true,
            Variant::LogiRec => cfg.mining = false,
            Variant::WithoutMem => cfg.use_mem = false,
            Variant::WithoutHie => cfg.use_hie = false,
            Variant::WithoutEx => cfg.use_ex = false,
            Variant::WithoutHgcn => cfg.layers = 0,
            Variant::WithoutHyper => cfg.geometry = Geometry::Euclidean,
            Variant::WithIntersection => cfg.use_int = true,
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_toggle_expected_fields() {
        let base = LogiRecConfig::default();
        assert!(!Variant::LogiRec.apply(base.clone()).mining);
        assert!(!Variant::WithoutMem.apply(base.clone()).use_mem);
        assert!(!Variant::WithoutHie.apply(base.clone()).use_hie);
        assert!(!Variant::WithoutEx.apply(base.clone()).use_ex);
        assert_eq!(Variant::WithoutHgcn.apply(base.clone()).layers, 0);
        assert_eq!(Variant::WithoutHyper.apply(base.clone()).geometry, Geometry::Euclidean);
        assert!(Variant::LogiRecPlusPlus.apply(base.clone()).mining);
        let ext = Variant::WithIntersection.apply(base);
        assert!(ext.use_int);
    }

    #[test]
    fn table3_has_seven_rows_with_unique_labels() {
        let rows = Variant::table3();
        let mut labels: Vec<&str> = rows.iter().map(|v| v.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 7);
    }
}
