#![warn(missing_docs)]

//! LogiRec and LogiRec++ — the paper's primary contribution.
//!
//! * [`model`] holds the learnable state: tag hyperplane centers and item
//!   points in the Poincaré ball, user points on the Lorentz hyperboloid,
//!   and the forward pass that maps items into the Lorentz model (Eq. 2)
//!   and runs the hyperbolic GCN (Eq. 6–8).
//! * [`graph`] implements the tangent-space propagation (Eq. 7) with its
//!   exact transpose for backpropagation.
//! * [`losses`] implements the logical relation losses L_Mem / L_Hie / L_Ex
//!   (Eq. 3–5) and the LMNN ranking loss L_Rec (Eq. 9), each with analytic
//!   gradients.
//! * [`mining`] implements LogiRec++'s consistency (CON, Eq. 11–12) and
//!   granularity (GR, Eq. 13) weights combined into α (Eq. 14).
//! * [`trainer`] joins everything into the objectives of Eq. 10 / Eq. 15
//!   with Riemannian SGD (Section V-C), fault-tolerant via [`checkpoint`]
//!   (durable checkpoint/resume) and divergence rollback with LR backoff.
//! * [`ablation`] provides the Table III variants.

pub mod ablation;
pub mod checkpoint;
pub mod config;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod filter;
pub mod graph;
pub mod io;
pub mod losses;
pub mod mining;
pub mod parallel;
pub mod model;
pub mod shard;
pub mod stream;
pub mod trainer;

pub use ablation::Variant;
pub use config::{Geometry, LogiRecConfig, Precision};
pub use filter::{FilterError, FilteredRanker, LogicFilter, SeenFilter};
pub use graph::PropGraph;
pub use model::LogiRec;
pub use shard::{merge_tree, shard_count, shard_ranges, Merge, SparseGrad};
pub use stream::{
    compact, fold_in_item, fold_in_user, recover_from_checkpoint, CompactionError,
    CompactionOptions, CompactionReport, Event, EventLog, FoldInError, FoldInOptions, FoldInReport,
};
pub use trainer::{train, train_typed, Recovery, RecoveryAction, TrainReport};
