//! Sparse gradient shards and their deterministic tree reduction.
//!
//! The training hot path splits every sample list (ranking triplets, logic
//! relation batches) into **shards** — contiguous sample ranges whose count
//! is a pure function of the workload size, never of the thread count. Each
//! worker accumulates its shards into a [`SparseGrad`] (a touched-row map,
//! not a dense clone of the embedding tables), and the shards are then
//! combined by [`merge_tree`], a fixed-shape pairwise reduction.
//!
//! ## Determinism argument
//!
//! Floating-point addition is not associative, so "the same sum" must mean
//! "the same additions in the same order". Three properties pin that down:
//!
//! 1. [`shard_ranges`] depends only on the number of samples, so the
//!    partition of work into shards is identical for any `train_threads`.
//! 2. Each shard's accumulation order is its samples' order — a pure
//!    function of the (serially sampled) batch, not of scheduling.
//! 3. [`merge_tree`] always merges shard `2k` with shard `2k+1`, level by
//!    level, regardless of which worker produced which shard.
//!
//! Together these make `train_threads = N` bit-identical to
//! `train_threads = 1`: the thread pool only changes *who* computes a
//! shard, never *what* is summed with *what* in *which order*.

use std::collections::HashMap;
use std::ops::Range;

use logirec_linalg::{ops, Embedding, Scalar};

/// Target samples per shard: below this, splitting further only buys merge
/// overhead.
const MIN_SHARD_LEN: usize = 64;

/// Upper bound on shards per sample list; bounds merge depth and keeps the
/// fan-out proportional to realistic `train_threads` values.
pub const MAX_SHARDS: usize = 16;

/// Number of shards for a sample list of length `len` — a pure function of
/// `len` (NOT of the thread count), which is what makes the reduction shape
/// reproducible across `train_threads` settings.
pub fn shard_count(len: usize) -> usize {
    (len / MIN_SHARD_LEN).clamp(1, MAX_SHARDS)
}

/// Splits `0..len` into [`shard_count`] contiguous ranges (the last one
/// absorbs the remainder; every range is non-empty for `len > 0`).
pub fn shard_ranges(len: usize) -> Vec<Range<usize>> {
    let n = shard_count(len);
    let chunk = len.div_ceil(n);
    (0..n)
        .map(|i| (i * chunk).min(len)..((i + 1) * chunk).min(len))
        .collect()
}

/// A gradient accumulator that stores only the rows a shard actually
/// touched. Row order is insertion order (first touch), which is itself
/// deterministic because samples are walked in order.
#[derive(Debug, Clone)]
pub struct SparseGrad<S: Scalar = f64> {
    dim: usize,
    /// Touched row ids in first-touch order; `data[k*dim..]` is row `rows[k]`.
    rows: Vec<usize>,
    slot: HashMap<usize, usize>,
    data: Vec<S>,
}

impl<S: Scalar> SparseGrad<S> {
    /// Empty accumulator for `dim`-wide gradient rows.
    pub fn new(dim: usize) -> Self {
        Self { dim, rows: Vec::new(), slot: HashMap::new(), data: Vec::new() }
    }

    /// Gradient row width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct rows touched.
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// True when no row has been touched.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds `g` into row `row` (allocating the row on first touch).
    pub fn add(&mut self, row: usize, g: &[S]) {
        debug_assert_eq!(g.len(), self.dim);
        let k = *self.slot.entry(row).or_insert_with(|| {
            self.rows.push(row);
            self.data.resize(self.data.len() + self.dim, S::ZERO);
            self.rows.len() - 1
        });
        ops::axpy(S::ONE, g, &mut self.data[k * self.dim..(k + 1) * self.dim]);
    }

    /// Read-only view of a touched row's accumulated gradient.
    pub fn get(&self, row: usize) -> Option<&[S]> {
        self.slot.get(&row).map(|&k| &self.data[k * self.dim..(k + 1) * self.dim])
    }

    /// Iterates `(row, gradient)` in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[S])> {
        self.rows.iter().zip(self.data.chunks_exact(self.dim)).map(|(&r, g)| (r, g))
    }

    /// Folds `other` into `self`: for every row of `other` (in `other`'s
    /// touch order) one vector addition `self[row] += other[row]`. The
    /// per-row addition count and order are therefore fixed by the merge
    /// schedule, not by scheduling.
    pub fn merge(&mut self, other: Self) {
        for (row, g) in other.iter() {
            self.add(row, g);
        }
    }

    /// Scatters the accumulated rows into a dense table (`out[row] += g`).
    pub fn scatter_add(&self, out: &mut Embedding<S>) {
        for (row, g) in self.iter() {
            ops::axpy(S::ONE, g, out.row_mut(row));
        }
    }

    /// All entries finite?
    pub fn all_finite(&self) -> bool {
        ops::all_finite(&self.data)
    }
}

/// Anything that can be pairwise-combined by [`merge_tree`].
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
}

impl<S: Scalar> Merge for SparseGrad<S> {
    fn merge(&mut self, other: Self) {
        SparseGrad::merge(self, other);
    }
}

/// Fixed-order pairwise tree reduction: level by level, shard `2k` absorbs
/// shard `2k+1` (an odd tail passes through). The tree's shape depends only
/// on `shards.len()`, so the floating-point association of the final sums
/// is reproducible for a given workload no matter how many threads computed
/// the leaves.
pub fn merge_tree<T: Merge>(mut shards: Vec<T>) -> Option<T> {
    while shards.len() > 1 {
        let mut next = Vec::with_capacity(shards.len().div_ceil(2));
        let mut it = shards.into_iter();
        while let Some(mut left) = it.next() {
            if let Some(right) = it.next() {
                left.merge(right);
            }
            next.push(left);
        }
        shards = next;
    }
    shards.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_is_a_pure_function_of_len() {
        assert_eq!(shard_count(0), 1);
        assert_eq!(shard_count(1), 1);
        assert_eq!(shard_count(MIN_SHARD_LEN - 1), 1);
        assert_eq!(shard_count(MIN_SHARD_LEN * 3), 3);
        assert_eq!(shard_count(1_000_000), MAX_SHARDS);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for len in [0usize, 1, 63, 64, 129, 1000, 10_000] {
            let ranges = shard_ranges(len);
            assert_eq!(ranges.len(), shard_count(len));
            let mut expect = 0;
            for r in &ranges {
                assert_eq!(r.start, expect, "gap at len {len}");
                expect = r.end;
            }
            assert_eq!(expect, len, "ranges must cover 0..{len}");
        }
    }

    #[test]
    fn sparse_add_and_get_roundtrip() {
        let mut g = SparseGrad::new(2);
        g.add(5, &[1.0, 2.0]);
        g.add(3, &[0.5, 0.5]);
        g.add(5, &[1.0, -1.0]);
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.get(5), Some(&[2.0, 1.0][..]));
        assert_eq!(g.get(3), Some(&[0.5, 0.5][..]));
        assert_eq!(g.get(0), None);
        // First-touch order preserved.
        let rows: Vec<usize> = g.iter().map(|(r, _)| r).collect();
        assert_eq!(rows, vec![5, 3]);
    }

    #[test]
    fn scatter_add_writes_only_touched_rows() {
        let mut g = SparseGrad::new(3);
        g.add(1, &[1.0, 1.0, 1.0]);
        let mut dense = Embedding::zeros(4, 3);
        dense.row_mut(0)[0] = 9.0;
        g.scatter_add(&mut dense);
        assert_eq!(dense.row(0), &[9.0, 0.0, 0.0]);
        assert_eq!(dense.row(1), &[1.0, 1.0, 1.0]);
        assert_eq!(dense.row(2), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn merge_tree_handles_empty_odd_and_single() {
        assert!(merge_tree::<SparseGrad>(Vec::new()).is_none());
        let mk = |row: usize, v: f64| {
            let mut g = SparseGrad::new(1);
            g.add(row, &[v]);
            g
        };
        // Odd count with an empty shard in the middle.
        let shards = vec![mk(0, 1.0), SparseGrad::new(1), mk(0, 2.0)];
        let merged = merge_tree(shards).unwrap();
        assert_eq!(merged.get(0), Some(&[3.0][..]));
        let single = merge_tree(vec![mk(7, 4.0)]).unwrap();
        assert_eq!(single.get(7), Some(&[4.0][..]));
    }

    #[test]
    fn merge_tree_shape_is_independent_of_producer() {
        // 5 shards, each touching an overlapping row set; the merged result
        // must be identical no matter how the shard values were produced
        // (here: same inputs, so identical bits are required).
        let build = || {
            (0..5)
                .map(|i| {
                    let mut g = SparseGrad::new(2);
                    g.add(i % 3, &[0.1 * i as f64, 1.0]);
                    g.add(2, &[1e-17, -1.0]);
                    g
                })
                .collect::<Vec<_>>()
        };
        let a = merge_tree(build()).unwrap();
        let b = merge_tree(build()).unwrap();
        for row in 0..3 {
            assert_eq!(a.get(row), b.get(row));
        }
    }
}
