//! Scoped-thread row parallelism for the training hot loops.
//!
//! Forward/backward propagation, the per-row exp/log maps, and the
//! optimizer updates are all embarrassingly parallel over rows. At the
//! `paper` scale (Book: 79k users, 62k items) this is the difference
//! between minutes and hours per run; at test scale the helpers fall back
//! to straight loops.

use logirec_linalg::{Embedding, Scalar};

/// Rows below which spawning threads costs more than it saves.
const PAR_THRESHOLD: usize = 4_096;

/// Applies `f(row_index, row)` to every row of `out`, splitting across up
/// to `threads` scoped threads. Deterministic: each row is written by
/// exactly one thread and `f` must not depend on other rows of `out`.
pub fn for_each_row<S, F>(out: &mut Embedding<S>, threads: usize, f: F)
where
    S: Scalar,
    F: Fn(usize, &mut [S]) + Sync,
{
    let rows = out.rows();
    let dim = out.dim();
    let threads = threads.max(1);
    if threads == 1 || rows < PAR_THRESHOLD {
        for r in 0..rows {
            f(r, out.row_mut(r));
        }
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    let data = out.as_mut_slice();
    std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .chunks_mut(chunk_rows * dim)
            .enumerate()
            .map(|(ci, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    let base = ci * chunk_rows;
                    for (i, row) in chunk.chunks_mut(dim).enumerate() {
                        f(base + i, row);
                    }
                })
            })
            .collect();
        // Join explicitly and re-raise the first worker panic with its
        // original payload (std's scope exit would replace it with a generic
        // "a scoped thread panicked" message). Remaining threads are joined
        // by the scope during unwinding.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// Runs `f(0), f(1), …, f(jobs - 1)` across up to `threads` scoped threads
/// and returns the results **in job order**. Jobs are statically chunked
/// (worker `w` gets a contiguous slice of job indices), so which worker
/// computes a job is fixed — but results are independent of that anyway:
/// every job sees only its own index.
///
/// This is the fan-out primitive for sharded gradient accumulation: jobs
/// are shards, and the caller feeds the ordered results into
/// [`crate::shard::merge_tree`].
pub fn map_jobs<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(jobs.max(1));
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let chunk = jobs.div_ceil(threads);
    let mut results: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let f = &f;
                let start = (w * chunk).min(jobs);
                let end = ((w + 1) * chunk).min(jobs);
                scope.spawn(move || (start..end).map(f).collect::<Vec<T>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(jobs);
    for part in &mut results {
        out.append(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_linalg::SplitMix64;

    #[test]
    fn parallel_matches_serial() {
        let mut rng = SplitMix64::new(1);
        let src: Embedding = Embedding::normal(PAR_THRESHOLD + 123, 7, 1.0, &mut rng);
        let mut serial: Embedding = Embedding::zeros(src.rows(), 7);
        for r in 0..src.rows() {
            let row = serial.row_mut(r);
            for (o, x) in row.iter_mut().zip(src.row(r)) {
                *o = x * 2.0 + r as f64;
            }
        }
        let mut parallel: Embedding = Embedding::zeros(src.rows(), 7);
        for_each_row(&mut parallel, 8, |r, row| {
            for (o, x) in row.iter_mut().zip(src.row(r)) {
                *o = x * 2.0 + r as f64;
            }
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn small_matrices_use_the_serial_path() {
        let mut m: Embedding = Embedding::zeros(10, 3);
        for_each_row(&mut m, 8, |r, row| row.fill(r as f64));
        for r in 0..10 {
            assert!(m.row(r).iter().all(|&x| x == r as f64));
        }
    }

    #[test]
    fn single_thread_request_is_honored() {
        let mut m: Embedding = Embedding::zeros(PAR_THRESHOLD * 2, 2);
        for_each_row(&mut m, 1, |r, row| row.fill((r % 5) as f64));
        assert_eq!(m.row(6)[0], 1.0);
    }

    #[test]
    fn map_jobs_preserves_job_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            let out = map_jobs(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>(), "threads {threads}");
        }
        assert!(map_jobs(0, 4, |i| i).is_empty());
        assert_eq!(map_jobs(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn map_jobs_panic_propagates_original_payload() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map_jobs(8, 4, |i| {
                if i == 5 {
                    panic!("injected job panic at {i}");
                }
                i
            });
        }));
        let payload = result.expect_err("job panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected job panic"), "got: {msg:?}");
    }

    #[test]
    fn worker_panic_propagates_with_its_original_message() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Large enough to take the threaded path; the panic fires in a
            // worker thread, not the caller.
            let mut m: Embedding = Embedding::zeros(PAR_THRESHOLD + 1, 2);
            for_each_row(&mut m, 4, |r, _row| {
                if r == PAR_THRESHOLD / 2 {
                    panic!("injected worker panic at row {r}");
                }
            });
        }));
        let payload = result.expect_err("worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("injected worker panic"),
            "original panic message lost, got: {msg:?}"
        );
    }
}
