//! Scoped-thread row parallelism for the training hot loops.
//!
//! Forward/backward propagation, the per-row exp/log maps, and the
//! optimizer updates are all embarrassingly parallel over rows. At the
//! `paper` scale (Book: 79k users, 62k items) this is the difference
//! between minutes and hours per run; at test scale the helpers fall back
//! to straight loops.

use logirec_linalg::Embedding;

/// Rows below which spawning threads costs more than it saves.
const PAR_THRESHOLD: usize = 4_096;

/// Applies `f(row_index, row)` to every row of `out`, splitting across up
/// to `threads` scoped threads. Deterministic: each row is written by
/// exactly one thread and `f` must not depend on other rows of `out`.
pub fn for_each_row<F>(out: &mut Embedding, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let rows = out.rows();
    let dim = out.dim();
    let threads = threads.max(1);
    if threads == 1 || rows < PAR_THRESHOLD {
        for r in 0..rows {
            f(r, out.row_mut(r));
        }
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    let data = out.as_mut_slice();
    std::thread::scope(|scope| {
        let handles: Vec<_> = data
            .chunks_mut(chunk_rows * dim)
            .enumerate()
            .map(|(ci, chunk)| {
                let f = &f;
                scope.spawn(move || {
                    let base = ci * chunk_rows;
                    for (i, row) in chunk.chunks_mut(dim).enumerate() {
                        f(base + i, row);
                    }
                })
            })
            .collect();
        // Join explicitly and re-raise the first worker panic with its
        // original payload (std's scope exit would replace it with a generic
        // "a scoped thread panicked" message). Remaining threads are joined
        // by the scope during unwinding.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_linalg::SplitMix64;

    #[test]
    fn parallel_matches_serial() {
        let mut rng = SplitMix64::new(1);
        let src = Embedding::normal(PAR_THRESHOLD + 123, 7, 1.0, &mut rng);
        let mut serial = Embedding::zeros(src.rows(), 7);
        for r in 0..src.rows() {
            let row = serial.row_mut(r);
            for (o, x) in row.iter_mut().zip(src.row(r)) {
                *o = x * 2.0 + r as f64;
            }
        }
        let mut parallel = Embedding::zeros(src.rows(), 7);
        for_each_row(&mut parallel, 8, |r, row| {
            for (o, x) in row.iter_mut().zip(src.row(r)) {
                *o = x * 2.0 + r as f64;
            }
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn small_matrices_use_the_serial_path() {
        let mut m = Embedding::zeros(10, 3);
        for_each_row(&mut m, 8, |r, row| row.fill(r as f64));
        for r in 0..10 {
            assert!(m.row(r).iter().all(|&x| x == r as f64));
        }
    }

    #[test]
    fn single_thread_request_is_honored() {
        let mut m = Embedding::zeros(PAR_THRESHOLD * 2, 2);
        for_each_row(&mut m, 1, |r, row| row.fill((r % 5) as f64));
        assert_eq!(m.row(6)[0], 1.0);
    }

    #[test]
    fn worker_panic_propagates_with_its_original_message() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Large enough to take the threaded path; the panic fires in a
            // worker thread, not the caller.
            let mut m = Embedding::zeros(PAR_THRESHOLD + 1, 2);
            for_each_row(&mut m, 4, |r, _row| {
                if r == PAR_THRESHOLD / 2 {
                    panic!("injected worker panic at row {r}");
                }
            });
        }));
        let payload = result.expect_err("worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("injected worker panic"),
            "original panic message lost, got: {msg:?}"
        );
    }
}
