//! The four training losses with analytic gradients.
//!
//! * L_Mem (Eq. 3): item point inside the tag's enclosing d-ball.
//! * L_Hie (Eq. 4): child ball geometrically inside the parent ball.
//! * L_Ex  (Eq. 5): exclusive balls geometrically disjoint.
//! * L_Rec (Eq. 9): LMNN hinge on carrier-space distances, optionally
//!   weighted per user by LogiRec++'s α_u (Eq. 15).
//!
//! All three logic losses are hinge functions of Euclidean norms of the
//! derived ball parameters `(o_t, r_t)`; their gradients flow to the tag
//! defining points through
//! [`logirec_hyperbolic::hyperplane::ball_vjp_into`].
//!
//! Everything here is generic over the working precision [`Scalar`] and
//! **allocation-free per sample**: each loss function owns a small
//! [`LogicScratch`] / [`RankScratch`] (allocated once per call — i.e. once
//! per shard job in the parallel trainer) and every per-pair or per-triplet
//! kernel writes into those buffers via the `*_into` variants. The `f64`
//! instantiation performs the identical floating-point operation sequence
//! as the historical allocating code, so sharded results stay bit-exact.

use logirec_hyperbolic::{hyperplane, lorentz};
use logirec_linalg::{ops, Embedding, Scalar};
use logirec_taxonomy::TagId;

use crate::config::Geometry;
use crate::model::LogiRec;
use crate::shard::{Merge, SparseGrad};

/// Destination for logic-loss gradients. One trait, two accumulators: the
/// dense [`LogicGrads`] (serial reference path, ablation probes) and the
/// sparse [`LogicShard`] (per-worker shards in the parallel trainer). The
/// loss functions are generic over the sink so the gradient math exists
/// exactly once.
pub trait LogicSink<S: Scalar> {
    /// Adds a (weighted) loss contribution.
    fn add_loss(&mut self, l: f64);
    /// Adds `g` to the gradient of tag `t`'s defining point.
    fn add_tag(&mut self, t: TagId, g: &[S]);
    /// Adds `g` to the gradient of item `v`'s point.
    fn add_item(&mut self, v: usize, g: &[S]);
}

/// Accumulated Euclidean gradients for the logical relation losses.
#[derive(Debug)]
pub struct LogicGrads<S: Scalar = f64> {
    /// Gradients on the tag defining points (`S × d`).
    pub tags: Embedding<S>,
    /// Gradients on the item points (`V × d`).
    pub items: Embedding<S>,
    /// Summed (weighted) loss value.
    pub loss: f64,
}

impl<S: Scalar> LogicGrads<S> {
    /// Fresh zero accumulator matching `model`'s shapes.
    pub fn zeros(model: &LogiRec<S>) -> Self {
        Self {
            tags: Embedding::zeros(model.tags.rows(), model.tags.dim()),
            items: Embedding::zeros(model.items.rows(), model.items.dim()),
            loss: 0.0,
        }
    }

    /// Resets the accumulator in place.
    pub fn reset(&mut self) {
        self.tags.fill_zero();
        self.items.fill_zero();
        self.loss = 0.0;
    }
}

impl<S: Scalar> LogicSink<S> for LogicGrads<S> {
    fn add_loss(&mut self, l: f64) {
        self.loss += l;
    }

    fn add_tag(&mut self, t: TagId, g: &[S]) {
        ops::axpy(S::ONE, g, self.tags.row_mut(t));
    }

    fn add_item(&mut self, v: usize, g: &[S]) {
        ops::axpy(S::ONE, g, self.items.row_mut(v));
    }
}

/// One worker's sparse share of the logic-loss gradients: touched-row maps
/// instead of dense `S × d` / `V × d` clones, so fanning out across
/// `train_threads` workers costs memory proportional to the rows a shard
/// actually hits.
#[derive(Debug, Clone)]
pub struct LogicShard<S: Scalar = f64> {
    /// Sparse gradients on tag defining points.
    pub tags: SparseGrad<S>,
    /// Sparse gradients on item points.
    pub items: SparseGrad<S>,
    /// Summed (weighted) loss of this shard.
    pub loss: f64,
}

impl<S: Scalar> LogicShard<S> {
    /// Empty shard matching `model`'s embedding width.
    pub fn new(model: &LogiRec<S>) -> Self {
        Self {
            tags: SparseGrad::new(model.tags.dim()),
            items: SparseGrad::new(model.items.dim()),
            loss: 0.0,
        }
    }

    /// Distinct gradient rows this shard touches.
    pub fn rows_touched(&self) -> usize {
        self.tags.nnz() + self.items.nnz()
    }

    /// True when every accumulated value is finite.
    pub fn all_finite(&self) -> bool {
        self.loss.is_finite() && self.tags.all_finite() && self.items.all_finite()
    }
}

impl<S: Scalar> LogicSink<S> for LogicShard<S> {
    fn add_loss(&mut self, l: f64) {
        self.loss += l;
    }

    fn add_tag(&mut self, t: TagId, g: &[S]) {
        self.tags.add(t, g);
    }

    fn add_item(&mut self, v: usize, g: &[S]) {
        self.items.add(v, g);
    }
}

impl<S: Scalar> Merge for LogicShard<S> {
    fn merge(&mut self, other: Self) {
        self.tags.merge(other.tags);
        self.items.merge(other.items);
        self.loss += other.loss;
    }
}

/// Reusable scratch for the logic-loss inner loops: two derived ball
/// centers, the (later rescaled and negated in place) difference vector,
/// and the `ball_vjp` output. Allocated once per loss-function call — the
/// per-pair loop never touches the allocator.
struct LogicScratch<S: Scalar> {
    ci: Vec<S>,
    cj: Vec<S>,
    unit: Vec<S>,
    gc: Vec<S>,
}

impl<S: Scalar> LogicScratch<S> {
    fn new(dim: usize) -> Self {
        Self {
            ci: vec![S::ZERO; dim],
            cj: vec![S::ZERO; dim],
            unit: vec![S::ZERO; dim],
            gc: vec![S::ZERO; dim],
        }
    }
}

/// `unit ← (a − b) · k` with `‖a − b‖` floored at `1e-12`; returns nothing,
/// the caller reads `s.unit`. Identical operation sequence to the former
/// `sub` / `norm` / `scaled` chain.
#[inline]
fn scaled_diff_into<S: Scalar>(a: &[S], b: &[S], k_over_n: impl FnOnce(S) -> S, unit: &mut [S]) {
    unit.copy_from_slice(a);
    for (u, bi) in unit.iter_mut().zip(b) {
        *u -= *bi;
    }
    let n = ops::norm(unit).max(S::from_f64(1e-12));
    ops::scale(unit, k_over_n(n));
}

/// Flips the sign of every element in place (bit-exact equivalent of the
/// former `scaled(·, −1.0)`).
#[inline]
fn negate<S: Scalar>(x: &mut [S]) {
    for v in x.iter_mut() {
        *v = -*v;
    }
}

/// L_Mem (Eq. 3) over `(item, tag)` pairs, each weighted by `weight`.
pub fn membership_loss_grad<S: Scalar>(
    model: &LogiRec<S>,
    pairs: &[(usize, TagId)],
    weight: f64,
    out: &mut impl LogicSink<S>,
) {
    let mut s = LogicScratch::new(model.tags.dim());
    for &(v, t) in pairs {
        let c = model.tags.row(t);
        let radius = hyperplane::from_center_into(c, &mut s.ci);
        let x = model.items.row(v);
        let margin = ops::dist(x, &s.ci) - radius;
        if margin <= S::ZERO {
            continue;
        }
        out.add_loss(weight * margin.to_f64());
        scaled_diff_into(x, &s.ci, |n| S::from_f64(weight) / n, &mut s.unit);
        // ∂/∂x = unit; ∂/∂o = −unit; ∂/∂r = −weight.
        out.add_item(v, &s.unit);
        negate(&mut s.unit);
        hyperplane::ball_vjp_into(c, &s.unit, S::from_f64(-weight), &mut s.gc);
        out.add_tag(t, &s.gc);
    }
}

/// L_Hie (Eq. 4) over `(parent, child)` pairs.
pub fn hierarchy_loss_grad<S: Scalar>(
    model: &LogiRec<S>,
    pairs: &[(TagId, TagId)],
    weight: f64,
    out: &mut impl LogicSink<S>,
) {
    let mut s = LogicScratch::new(model.tags.dim());
    for &(parent, child) in pairs {
        let (ci, cj) = (model.tags.row(parent), model.tags.row(child));
        let ri = hyperplane::from_center_into(ci, &mut s.ci);
        let rj = hyperplane::from_center_into(cj, &mut s.cj);
        // margin = ‖o_i − o_j‖ + r_j − r_i.
        let margin = ops::dist(&s.ci, &s.cj) + rj - ri;
        if margin <= S::ZERO {
            continue;
        }
        out.add_loss(weight * margin.to_f64());
        scaled_diff_into(&s.ci, &s.cj, |n| S::from_f64(weight) / n, &mut s.unit);
        hyperplane::ball_vjp_into(ci, &s.unit, S::from_f64(-weight), &mut s.gc);
        out.add_tag(parent, &s.gc);
        negate(&mut s.unit);
        hyperplane::ball_vjp_into(cj, &s.unit, S::from_f64(weight), &mut s.gc);
        out.add_tag(child, &s.gc);
    }
}

/// L_Ex (Eq. 5) over exclusion pairs (levels are carried by the relation
/// records but do not enter the loss itself).
pub fn exclusion_loss_grad<S: Scalar>(
    model: &LogiRec<S>,
    pairs: &[(TagId, TagId)],
    weight: f64,
    out: &mut impl LogicSink<S>,
) {
    let mut s = LogicScratch::new(model.tags.dim());
    for &(a, b) in pairs {
        let (ci, cj) = (model.tags.row(a), model.tags.row(b));
        let ri = hyperplane::from_center_into(ci, &mut s.ci);
        let rj = hyperplane::from_center_into(cj, &mut s.cj);
        // margin = r_i + r_j − ‖o_i − o_j‖.
        let margin = ri + rj - ops::dist(&s.ci, &s.cj);
        if margin <= S::ZERO {
            continue;
        }
        out.add_loss(weight * margin.to_f64());
        scaled_diff_into(&s.ci, &s.cj, |n| S::from_f64(-weight) / n, &mut s.unit);
        hyperplane::ball_vjp_into(ci, &s.unit, S::from_f64(weight), &mut s.gc);
        out.add_tag(a, &s.gc);
        negate(&mut s.unit);
        hyperplane::ball_vjp_into(cj, &s.unit, S::from_f64(weight), &mut s.gc);
        out.add_tag(b, &s.gc);
    }
}

/// L_Int (extension; the paper's conclusion lists the intersection
/// relation as future work): two overlapping tags' balls must actually
/// overlap — the reverse of exclusion, hinged on geometric disjointness
/// `[‖o_i − o_j‖ − (r_i + r_j)]₊`.
pub fn intersection_loss_grad<S: Scalar>(
    model: &LogiRec<S>,
    pairs: &[(TagId, TagId)],
    weight: f64,
    out: &mut impl LogicSink<S>,
) {
    let mut s = LogicScratch::new(model.tags.dim());
    for &(a, b) in pairs {
        let (ci, cj) = (model.tags.row(a), model.tags.row(b));
        let ri = hyperplane::from_center_into(ci, &mut s.ci);
        let rj = hyperplane::from_center_into(cj, &mut s.cj);
        // margin = ‖o_i − o_j‖ − r_i − r_j (positive ⇔ disjoint).
        let margin = -(ri + rj - ops::dist(&s.ci, &s.cj));
        if margin <= S::ZERO {
            continue;
        }
        out.add_loss(weight * margin.to_f64());
        scaled_diff_into(&s.ci, &s.cj, |n| S::from_f64(weight) / n, &mut s.unit);
        hyperplane::ball_vjp_into(ci, &s.unit, S::from_f64(-weight), &mut s.gc);
        out.add_tag(a, &s.gc);
        negate(&mut s.unit);
        hyperplane::ball_vjp_into(cj, &s.unit, S::from_f64(-weight), &mut s.gc);
        out.add_tag(b, &s.gc);
    }
}

/// Output of [`rank_loss_grad`]: dense ambient gradients w.r.t. the final
/// (propagated) user and item embeddings.
#[derive(Debug)]
pub struct RankGrads<S: Scalar = f64> {
    /// `U × ambient` gradient on the final user embeddings.
    pub user_final: Embedding<S>,
    /// `V × ambient` gradient on the final item embeddings.
    pub item_final: Embedding<S>,
    /// Summed (weighted) hinge loss.
    pub loss: f64,
    /// Number of triplets with a positive hinge.
    pub active: usize,
}

/// L_Rec (Eq. 9 / Eq. 15): for each triplet `(u, v⁺, v⁻)` accumulate the
/// hinge `[m + d(u,v⁺) − d(u,v⁻)]₊`, weighted by `alpha[u]` when mining
/// weights are supplied.
pub fn rank_loss_grad<S: Scalar>(
    model: &LogiRec<S>,
    triplets: &[(usize, usize, usize)],
    margin: f64,
    alpha: Option<&[f64]>,
    per_triplet_weight: f64,
) -> RankGrads<S> {
    let st = model.state();
    let ambient = st.user_final.dim();
    let mut out = RankGrads {
        user_final: Embedding::zeros(st.user_final.rows(), ambient),
        item_final: Embedding::zeros(st.item_final.rows(), ambient),
        loss: 0.0,
        active: 0,
    };
    let (user_final, item_final) = (&mut out.user_final, &mut out.item_final);
    let (loss, active) = rank_accumulate(
        model,
        triplets,
        margin,
        alpha,
        per_triplet_weight,
        |u, g| ops::axpy(S::ONE, g, user_final.row_mut(u)),
        |v, g| ops::axpy(S::ONE, g, item_final.row_mut(v)),
    );
    out.loss = loss;
    out.active = active;
    out
}

/// Reusable scratch for the ranking inner loop: the two distance-VJP
/// outputs. Allocated once per [`rank_accumulate`] call (one shard job);
/// the per-triplet loop writes into these via `distance_vjp_into`.
struct RankScratch<S: Scalar> {
    gx: Vec<S>,
    gy: Vec<S>,
}

/// The triplet walk shared by the dense and sharded ranking paths: calls
/// `add_user(u, g)` / `add_item(v, g)` for every gradient contribution, in
/// a fixed per-triplet order (`u⁺, v⁺, u⁻, v⁻` gradient computation with
/// adds ordered `u⁺, u⁻, v⁺, v⁻`), and returns `(loss, active)`.
fn rank_accumulate<S: Scalar>(
    model: &LogiRec<S>,
    triplets: &[(usize, usize, usize)],
    margin: f64,
    alpha: Option<&[f64]>,
    per_triplet_weight: f64,
    mut add_user: impl FnMut(usize, &[S]),
    mut add_item: impl FnMut(usize, &[S]),
) -> (f64, usize) {
    let st = model.state();
    let ambient = st.user_final.dim();
    let mut sp = RankScratch { gx: vec![S::ZERO; ambient], gy: vec![S::ZERO; ambient] };
    let mut sq = RankScratch { gx: vec![S::ZERO; ambient], gy: vec![S::ZERO; ambient] };
    let (mut loss, mut active) = (0.0, 0usize);
    for &(u, vp, vq) in triplets {
        let urow = st.user_final.row(u);
        let dp = carrier_distance(model.cfg.geometry, urow, st.item_final.row(vp));
        let dq = carrier_distance(model.cfg.geometry, urow, st.item_final.row(vq));
        let hinge = S::from_f64(margin) + dp - dq;
        if hinge <= S::ZERO {
            continue;
        }
        active += 1;
        let w = per_triplet_weight * alpha.map_or(1.0, |a| a[u]);
        loss += w * hinge.to_f64();
        // + d(u, v⁺): upstream +w on both ends.
        carrier_distance_vjp(
            model.cfg.geometry,
            urow,
            st.item_final.row(vp),
            S::from_f64(w),
            &mut sp,
        );
        // − d(u, v⁻): upstream −w.
        carrier_distance_vjp(
            model.cfg.geometry,
            urow,
            st.item_final.row(vq),
            S::from_f64(-w),
            &mut sq,
        );
        add_user(u, &sp.gx);
        add_user(u, &sq.gx);
        add_item(vp, &sp.gy);
        add_item(vq, &sq.gy);
    }
    (loss, active)
}

/// One worker's sparse share of the ranking gradients (w.r.t. the final
/// carrier-space embeddings).
#[derive(Debug, Clone)]
pub struct RankShard<S: Scalar = f64> {
    /// Sparse gradient on the final user embeddings (`ambient`-wide rows).
    pub users: SparseGrad<S>,
    /// Sparse gradient on the final item embeddings.
    pub items: SparseGrad<S>,
    /// Summed (weighted) hinge loss of this shard.
    pub loss: f64,
    /// Triplets with a positive hinge in this shard.
    pub active: usize,
}

impl<S: Scalar> Merge for RankShard<S> {
    fn merge(&mut self, other: Self) {
        self.users.merge(other.users);
        self.items.merge(other.items);
        self.loss += other.loss;
        self.active += other.active;
    }
}

/// [`rank_loss_grad`] over one contiguous shard of the triplet list,
/// accumulating into touched-row maps instead of dense tables.
pub fn rank_loss_shard<S: Scalar>(
    model: &LogiRec<S>,
    triplets: &[(usize, usize, usize)],
    margin: f64,
    alpha: Option<&[f64]>,
    per_triplet_weight: f64,
) -> RankShard<S> {
    let ambient = model.state().user_final.dim();
    let mut users = SparseGrad::new(ambient);
    let mut items = SparseGrad::new(ambient);
    let (loss, active) = rank_accumulate(
        model,
        triplets,
        margin,
        alpha,
        per_triplet_weight,
        |u, g| users.add(u, g),
        |v, g| items.add(v, g),
    );
    RankShard { users, items, loss, active }
}

/// Parallel deterministic [`rank_loss_grad`]: shards the triplet list with
/// [`crate::shard::shard_ranges`] (a pure function of `triplets.len()`),
/// computes each shard's sparse gradient on up to `threads` workers, and
/// combines them with the fixed-order [`crate::shard::merge_tree`]. The
/// result is bit-identical for every `threads` value; it differs from the
/// serial [`rank_loss_grad`] only in floating-point association (dense
/// serial accumulation sums a row's triplets strictly left-to-right).
///
/// Returns the merged shard; scatter it into dense tables with
/// [`SparseGrad::scatter_add`].
pub fn rank_loss_grad_sharded<S: Scalar>(
    model: &LogiRec<S>,
    triplets: &[(usize, usize, usize)],
    margin: f64,
    alpha: Option<&[f64]>,
    per_triplet_weight: f64,
    threads: usize,
) -> RankShard<S> {
    let ranges = crate::shard::shard_ranges(triplets.len());
    let shards = crate::parallel::map_jobs(ranges.len(), threads, |i| {
        rank_loss_shard(model, &triplets[ranges[i].clone()], margin, alpha, per_triplet_weight)
    });
    crate::shard::merge_tree(shards).expect("shard_ranges yields at least one shard")
}

/// One sampled logic-relation batch, tagged with its loss type.
#[derive(Debug, Clone, Copy)]
pub enum LogicBatch<'a> {
    /// L_Mem samples (`(item, tag)` pairs).
    Membership(&'a [(usize, TagId)]),
    /// L_Hie samples (`(parent, child)` pairs).
    Hierarchy(&'a [(TagId, TagId)]),
    /// L_Ex samples.
    Exclusion(&'a [(TagId, TagId)]),
    /// L_Int samples.
    Intersection(&'a [(TagId, TagId)]),
}

impl LogicBatch<'_> {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        match self {
            LogicBatch::Membership(p) => p.len(),
            LogicBatch::Hierarchy(p) | LogicBatch::Exclusion(p) | LogicBatch::Intersection(p) => {
                p.len()
            }
        }
    }

    /// True when the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the batch's loss/gradient accumulation into `out`.
    pub fn accumulate<S: Scalar>(
        &self,
        model: &LogiRec<S>,
        range: std::ops::Range<usize>,
        weight: f64,
        out: &mut impl LogicSink<S>,
    ) {
        match self {
            LogicBatch::Membership(p) => membership_loss_grad(model, &p[range], weight, out),
            LogicBatch::Hierarchy(p) => hierarchy_loss_grad(model, &p[range], weight, out),
            LogicBatch::Exclusion(p) => exclusion_loss_grad(model, &p[range], weight, out),
            LogicBatch::Intersection(p) => intersection_loss_grad(model, &p[range], weight, out),
        }
    }
}

/// Parallel deterministic accumulation of all four logic losses: every
/// `(batch, weight)` is sharded with [`crate::shard::shard_ranges`], all
/// shards across all batches form one fixed-order job list (batch-major,
/// range-minor), and the per-shard sparse gradients are combined by the
/// fixed-shape [`crate::shard::merge_tree`]. Bit-identical for every
/// `threads` value, because both the job list and the merge shape depend
/// only on the batch lengths.
pub fn logic_loss_grad_sharded<S: Scalar>(
    model: &LogiRec<S>,
    batches: &[(LogicBatch<'_>, f64)],
    threads: usize,
) -> LogicShard<S> {
    let mut jobs: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    for (bi, (batch, _)) in batches.iter().enumerate() {
        for range in crate::shard::shard_ranges(batch.len()) {
            if !range.is_empty() {
                jobs.push((bi, range));
            }
        }
    }
    let shards = crate::parallel::map_jobs(jobs.len(), threads, |ji| {
        let (bi, range) = &jobs[ji];
        let (batch, weight) = &batches[*bi];
        let mut shard = LogicShard::new(model);
        batch.accumulate(model, range.clone(), *weight, &mut shard);
        shard
    });
    crate::shard::merge_tree(shards).unwrap_or_else(|| LogicShard::new(model))
}

fn carrier_distance<S: Scalar>(geometry: Geometry, x: &[S], y: &[S]) -> S {
    match geometry {
        Geometry::Hyperbolic => lorentz::distance(x, y),
        Geometry::Euclidean => ops::dist(x, y),
    }
}

/// Writes the two carrier-distance gradients into `s.gx` / `s.gy` (every
/// element overwritten).
fn carrier_distance_vjp<S: Scalar>(
    geometry: Geometry,
    x: &[S],
    y: &[S],
    upstream: S,
    s: &mut RankScratch<S>,
) {
    match geometry {
        Geometry::Hyperbolic => lorentz::distance_vjp_into(x, y, upstream, &mut s.gx, &mut s.gy),
        Geometry::Euclidean => {
            s.gx.copy_from_slice(x);
            for (d, yi) in s.gx.iter_mut().zip(y) {
                *d -= *yi;
            }
            let n = ops::norm(&s.gx).max(S::from_f64(1e-12));
            let k = upstream / n;
            let mk = -upstream / n;
            for (gy, d) in s.gy.iter_mut().zip(&s.gx) {
                *gy = *d * mk;
            }
            ops::scale(&mut s.gx, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LogiRecConfig;
    use logirec_data::{DatasetSpec, Scale};

    fn setup() -> (LogiRec, logirec_data::Dataset) {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let mut cfg = LogiRecConfig::test_config();
        cfg.dim = 4;
        let mut m = LogiRec::new(cfg, &ds);
        m.propagate(&ds.train);
        (m, ds)
    }

    fn total_logic_loss(model: &LogiRec, ds: &logirec_data::Dataset) -> f64 {
        let mut acc = LogicGrads::zeros(model);
        membership_loss_grad(model, &ds.relations.membership, 1.0, &mut acc);
        hierarchy_loss_grad(model, &ds.relations.hierarchy, 1.0, &mut acc);
        let ex: Vec<(TagId, TagId)> =
            ds.relations.exclusion.iter().map(|&(a, b, _)| (a, b)).collect();
        exclusion_loss_grad(model, &ex, 1.0, &mut acc);
        acc.loss
    }

    #[test]
    fn logic_losses_are_nonnegative_and_finite() {
        let (m, ds) = setup();
        let loss = total_logic_loss(&m, &ds);
        assert!(loss.is_finite() && loss >= 0.0);
    }

    #[test]
    fn membership_grad_matches_finite_differences() {
        let (m, ds) = setup();
        let pairs = &ds.relations.membership[..8.min(ds.relations.membership.len())];
        let mut acc = LogicGrads::zeros(&m);
        membership_loss_grad(&m, pairs, 1.0, &mut acc);
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            membership_loss_grad(m, pairs, 1.0, &mut a);
            a.loss
        };
        fd_check_tags_and_items(&m, &acc, f);
    }

    #[test]
    fn hierarchy_grad_matches_finite_differences() {
        let (m, ds) = setup();
        let pairs = &ds.relations.hierarchy[..8.min(ds.relations.hierarchy.len())];
        let mut acc = LogicGrads::zeros(&m);
        hierarchy_loss_grad(&m, pairs, 1.0, &mut acc);
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            hierarchy_loss_grad(m, pairs, 1.0, &mut a);
            a.loss
        };
        fd_check_tags_and_items(&m, &acc, f);
    }

    #[test]
    fn exclusion_grad_matches_finite_differences() {
        let (m, ds) = setup();
        let pairs: Vec<(TagId, TagId)> =
            ds.relations.exclusion.iter().take(8).map(|&(a, b, _)| (a, b)).collect();
        assert!(!pairs.is_empty());
        let mut acc = LogicGrads::zeros(&m);
        exclusion_loss_grad(&m, &pairs, 1.0, &mut acc);
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            exclusion_loss_grad(m, &pairs, 1.0, &mut a);
            a.loss
        };
        fd_check_tags_and_items(&m, &acc, f);
    }

    /// Compares analytic tag/item gradients against central differences on
    /// a handful of coordinates.
    fn fd_check_tags_and_items(
        m: &LogiRec,
        acc: &LogicGrads,
        f: impl Fn(&LogiRec) -> f64,
    ) {
        let h = 1e-7;
        for t in 0..3.min(m.tags.rows()) {
            for col in 0..2 {
                let mut mp = m.clone();
                mp.tags.row_mut(t)[col] += h;
                let mut mm = m.clone();
                mm.tags.row_mut(t)[col] -= h;
                let num = (f(&mp) - f(&mm)) / (2.0 * h);
                let ana = acc.tags.row(t)[col];
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                    "tag grad[{t}][{col}]: {num} vs {ana}"
                );
            }
        }
        for v in 0..3.min(m.items.rows()) {
            for col in 0..2 {
                let mut mp = m.clone();
                mp.items.row_mut(v)[col] += h;
                let mut mm = m.clone();
                mm.items.row_mut(v)[col] -= h;
                let num = (f(&mp) - f(&mm)) / (2.0 * h);
                let ana = acc.items.row(v)[col];
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                    "item grad[{v}][{col}]: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn intersection_grad_matches_finite_differences() {
        let (m, ds) = setup();
        let pairs: Vec<(TagId, TagId)> = ds.relations.intersection_pairs();
        let pairs: Vec<(TagId, TagId)> = if pairs.is_empty() {
            // Force a pair of distant tags so the hinge activates.
            vec![(0, ds.n_tags() - 1)]
        } else {
            pairs.into_iter().take(8).collect()
        };
        let mut acc = LogicGrads::zeros(&m);
        intersection_loss_grad(&m, &pairs, 1.0, &mut acc);
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            intersection_loss_grad(m, &pairs, 1.0, &mut a);
            a.loss
        };
        fd_check_tags_and_items(&m, &acc, f);
    }

    #[test]
    fn intersection_and_exclusion_margins_are_opposite() {
        let (m, _) = setup();
        // For any tag pair, at most one of the two hinges can be active.
        let pairs = [(0usize, 1usize)];
        let mut ex = LogicGrads::zeros(&m);
        exclusion_loss_grad(&m, &pairs, 1.0, &mut ex);
        let mut int = LogicGrads::zeros(&m);
        intersection_loss_grad(&m, &pairs, 1.0, &mut int);
        assert!(
            ex.loss == 0.0 || int.loss == 0.0,
            "both hinges active: ex {} int {}",
            ex.loss,
            int.loss
        );
    }

    #[test]
    fn rank_loss_zero_when_positive_much_closer() {
        let (mut m, ds) = setup();
        // Force the positive item onto the user and the negative far away —
        // easiest via direct manipulation of the final embeddings through a
        // fresh propagate on modified parameters is complex; instead verify
        // via the hinge identity on the real state: margin 0 and identical
        // items give exactly zero loss.
        m.propagate(&ds.train);
        let v = ds.train.items_of(0)[0];
        let g = rank_loss_grad(&m, &[(0, v, v)], 0.0, None, 1.0);
        assert_eq!(g.active, 0);
        assert_eq!(g.loss, 0.0);
    }

    #[test]
    fn rank_loss_positive_margin_activates() {
        let (m, ds) = setup();
        let v = ds.train.items_of(0)[0];
        // v⁺ == v⁻ with positive margin → hinge == margin, grads cancel.
        let g = rank_loss_grad(&m, &[(0, v, v)], 0.5, None, 1.0);
        assert_eq!(g.active, 1);
        assert!((g.loss - 0.5).abs() < 1e-12);
        assert!(ops::norm(g.user_final.row(0)) < 1e-9, "identical pair grads cancel");
    }

    #[test]
    fn rank_grads_match_finite_differences_at_final_layer() {
        let (m, ds) = setup();
        let u = 0usize;
        let vp = ds.train.items_of(0)[0];
        let vq = (vp + 7) % ds.n_items();
        let g = rank_loss_grad(&m, &[(u, vp, vq)], 1.0, None, 1.0);
        if g.active == 0 {
            return; // hinge inactive for this seed; other tests cover it
        }
        // FD on the final user embedding along tangent directions: compare
        // against VJP by recomputing distances with a perturbed row.
        let st = m.state();
        let h = 1e-6;
        for col in 0..3 {
            let mut up = st.user_final.row(u).to_vec();
            up[col] += h;
            let mut um = st.user_final.row(u).to_vec();
            um[col] -= h;
            let f = |urow: &[f64]| {
                let dp = lorentz::distance(urow, st.item_final.row(vp));
                let dq = lorentz::distance(urow, st.item_final.row(vq));
                (1.0 + dp - dq).max(0.0)
            };
            let num = (f(&up) - f(&um)) / (2.0 * h);
            let ana = g.user_final.row(u)[col];
            assert!(
                (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                "final user grad[{col}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn alpha_weights_scale_gradients() {
        let (m, ds) = setup();
        let u = 0usize;
        let vp = ds.train.items_of(0)[0];
        let vq = (vp + 7) % ds.n_items();
        let alpha = vec![0.5; ds.n_users()];
        let g1 = rank_loss_grad(&m, &[(u, vp, vq)], 1.0, None, 1.0);
        let g2 = rank_loss_grad(&m, &[(u, vp, vq)], 1.0, Some(&alpha), 1.0);
        assert!((g1.loss * 0.5 - g2.loss).abs() < 1e-12);
        for col in 0..m.cfg.dim + 1 {
            assert!(
                (g1.user_final.row(u)[col] * 0.5 - g2.user_final.row(u)[col]).abs() < 1e-12
            );
        }
    }

    /// The scratch-buffer loss path must be bit-identical to a
    /// straightforward allocating reimplementation of the same math.
    #[test]
    fn scratch_membership_matches_allocating_reference_bitwise() {
        use logirec_hyperbolic::Ball;
        let (m, ds) = setup();
        let pairs = &ds.relations.membership[..16.min(ds.relations.membership.len())];
        let mut fast = LogicGrads::zeros(&m);
        membership_loss_grad(&m, pairs, 0.7, &mut fast);
        // Reference: the historical per-pair allocating implementation.
        let mut slow = LogicGrads::zeros(&m);
        for &(v, t) in pairs {
            let c = m.tags.row(t);
            let ball = Ball::from_center(c);
            let x = m.items.row(v);
            let margin = ball.membership_margin(x);
            if margin <= 0.0 {
                continue;
            }
            slow.loss += 0.7 * margin;
            let diff = ops::sub(x, &ball.center);
            let n = ops::norm(&diff).max(1e-12);
            let unit = ops::scaled(&diff, 0.7 / n);
            ops::axpy(1.0, &unit, slow.items.row_mut(v));
            let neg_unit = ops::scaled(&unit, -1.0);
            let g_c = hyperplane::ball_vjp(c, &neg_unit, -0.7);
            ops::axpy(1.0, &g_c, slow.tags.row_mut(t));
        }
        assert_eq!(fast.loss, slow.loss);
        assert_eq!(fast.tags, slow.tags);
        assert_eq!(fast.items, slow.items);
    }
}
