//! The four training losses with analytic gradients.
//!
//! * L_Mem (Eq. 3): item point inside the tag's enclosing d-ball.
//! * L_Hie (Eq. 4): child ball geometrically inside the parent ball.
//! * L_Ex  (Eq. 5): exclusive balls geometrically disjoint.
//! * L_Rec (Eq. 9): LMNN hinge on carrier-space distances, optionally
//!   weighted per user by LogiRec++'s α_u (Eq. 15).
//!
//! All three logic losses are hinge functions of Euclidean norms of the
//! derived ball parameters `(o_t, r_t)`; their gradients flow to the tag
//! defining points through [`logirec_hyperbolic::hyperplane::ball_vjp`].

use logirec_hyperbolic::{hyperplane, lorentz, Ball};
use logirec_linalg::{ops, Embedding};
use logirec_taxonomy::TagId;

use crate::config::Geometry;
use crate::model::LogiRec;
use crate::shard::{Merge, SparseGrad};

/// Destination for logic-loss gradients. One trait, two accumulators: the
/// dense [`LogicGrads`] (serial reference path, ablation probes) and the
/// sparse [`LogicShard`] (per-worker shards in the parallel trainer). The
/// loss functions are generic over the sink so the gradient math exists
/// exactly once.
pub trait LogicSink {
    /// Adds a (weighted) loss contribution.
    fn add_loss(&mut self, l: f64);
    /// Adds `g` to the gradient of tag `t`'s defining point.
    fn add_tag(&mut self, t: TagId, g: &[f64]);
    /// Adds `g` to the gradient of item `v`'s point.
    fn add_item(&mut self, v: usize, g: &[f64]);
}

/// Accumulated Euclidean gradients for the logical relation losses.
#[derive(Debug)]
pub struct LogicGrads {
    /// Gradients on the tag defining points (`S × d`).
    pub tags: Embedding,
    /// Gradients on the item points (`V × d`).
    pub items: Embedding,
    /// Summed (weighted) loss value.
    pub loss: f64,
}

impl LogicGrads {
    /// Fresh zero accumulator matching `model`'s shapes.
    pub fn zeros(model: &LogiRec) -> Self {
        Self {
            tags: Embedding::zeros(model.tags.rows(), model.tags.dim()),
            items: Embedding::zeros(model.items.rows(), model.items.dim()),
            loss: 0.0,
        }
    }

    /// Resets the accumulator in place.
    pub fn reset(&mut self) {
        self.tags.fill_zero();
        self.items.fill_zero();
        self.loss = 0.0;
    }
}

impl LogicSink for LogicGrads {
    fn add_loss(&mut self, l: f64) {
        self.loss += l;
    }

    fn add_tag(&mut self, t: TagId, g: &[f64]) {
        ops::axpy(1.0, g, self.tags.row_mut(t));
    }

    fn add_item(&mut self, v: usize, g: &[f64]) {
        ops::axpy(1.0, g, self.items.row_mut(v));
    }
}

/// One worker's sparse share of the logic-loss gradients: touched-row maps
/// instead of dense `S × d` / `V × d` clones, so fanning out across
/// `train_threads` workers costs memory proportional to the rows a shard
/// actually hits.
#[derive(Debug, Clone)]
pub struct LogicShard {
    /// Sparse gradients on tag defining points.
    pub tags: SparseGrad,
    /// Sparse gradients on item points.
    pub items: SparseGrad,
    /// Summed (weighted) loss of this shard.
    pub loss: f64,
}

impl LogicShard {
    /// Empty shard matching `model`'s embedding width.
    pub fn new(model: &LogiRec) -> Self {
        Self {
            tags: SparseGrad::new(model.tags.dim()),
            items: SparseGrad::new(model.items.dim()),
            loss: 0.0,
        }
    }

    /// Distinct gradient rows this shard touches.
    pub fn rows_touched(&self) -> usize {
        self.tags.nnz() + self.items.nnz()
    }

    /// True when every accumulated value is finite.
    pub fn all_finite(&self) -> bool {
        self.loss.is_finite() && self.tags.all_finite() && self.items.all_finite()
    }
}

impl LogicSink for LogicShard {
    fn add_loss(&mut self, l: f64) {
        self.loss += l;
    }

    fn add_tag(&mut self, t: TagId, g: &[f64]) {
        self.tags.add(t, g);
    }

    fn add_item(&mut self, v: usize, g: &[f64]) {
        self.items.add(v, g);
    }
}

impl Merge for LogicShard {
    fn merge(&mut self, other: Self) {
        self.tags.merge(other.tags);
        self.items.merge(other.items);
        self.loss += other.loss;
    }
}

/// L_Mem (Eq. 3) over `(item, tag)` pairs, each weighted by `weight`.
pub fn membership_loss_grad(
    model: &LogiRec,
    pairs: &[(usize, TagId)],
    weight: f64,
    out: &mut impl LogicSink,
) {
    for &(v, t) in pairs {
        let c = model.tags.row(t);
        let ball = Ball::from_center(c);
        let x = model.items.row(v);
        let margin = ball.membership_margin(x);
        if margin <= 0.0 {
            continue;
        }
        out.add_loss(weight * margin);
        let diff = ops::sub(x, &ball.center);
        let n = ops::norm(&diff).max(1e-12);
        let unit = ops::scaled(&diff, weight / n);
        // ∂/∂x = unit; ∂/∂o = −unit; ∂/∂r = −weight.
        out.add_item(v, &unit);
        let neg_unit = ops::scaled(&unit, -1.0);
        let g_c = hyperplane::ball_vjp(c, &neg_unit, -weight);
        out.add_tag(t, &g_c);
    }
}

/// L_Hie (Eq. 4) over `(parent, child)` pairs.
pub fn hierarchy_loss_grad(
    model: &LogiRec,
    pairs: &[(TagId, TagId)],
    weight: f64,
    out: &mut impl LogicSink,
) {
    for &(parent, child) in pairs {
        let (ci, cj) = (model.tags.row(parent), model.tags.row(child));
        let (bi, bj) = (Ball::from_center(ci), Ball::from_center(cj));
        let margin = bi.hierarchy_margin(&bj);
        if margin <= 0.0 {
            continue;
        }
        out.add_loss(weight * margin);
        let diff = ops::sub(&bi.center, &bj.center);
        let n = ops::norm(&diff).max(1e-12);
        let unit = ops::scaled(&diff, weight / n);
        // margin = ‖o_i − o_j‖ + r_j − r_i.
        let g_ci = hyperplane::ball_vjp(ci, &unit, -weight);
        let neg_unit = ops::scaled(&unit, -1.0);
        let g_cj = hyperplane::ball_vjp(cj, &neg_unit, weight);
        out.add_tag(parent, &g_ci);
        out.add_tag(child, &g_cj);
    }
}

/// L_Ex (Eq. 5) over exclusion pairs (levels are carried by the relation
/// records but do not enter the loss itself).
pub fn exclusion_loss_grad(
    model: &LogiRec,
    pairs: &[(TagId, TagId)],
    weight: f64,
    out: &mut impl LogicSink,
) {
    for &(a, b) in pairs {
        let (ci, cj) = (model.tags.row(a), model.tags.row(b));
        let (bi, bj) = (Ball::from_center(ci), Ball::from_center(cj));
        let margin = bi.exclusion_margin(&bj);
        if margin <= 0.0 {
            continue;
        }
        out.add_loss(weight * margin);
        let diff = ops::sub(&bi.center, &bj.center);
        let n = ops::norm(&diff).max(1e-12);
        // margin = r_i + r_j − ‖o_i − o_j‖.
        let unit = ops::scaled(&diff, -weight / n);
        let g_ci = hyperplane::ball_vjp(ci, &unit, weight);
        let neg_unit = ops::scaled(&unit, -1.0);
        let g_cj = hyperplane::ball_vjp(cj, &neg_unit, weight);
        out.add_tag(a, &g_ci);
        out.add_tag(b, &g_cj);
    }
}

/// L_Int (extension; the paper's conclusion lists the intersection
/// relation as future work): two overlapping tags' balls must actually
/// overlap — the reverse of exclusion, hinged on geometric disjointness
/// `[‖o_i − o_j‖ − (r_i + r_j)]₊`.
pub fn intersection_loss_grad(
    model: &LogiRec,
    pairs: &[(TagId, TagId)],
    weight: f64,
    out: &mut impl LogicSink,
) {
    for &(a, b) in pairs {
        let (ci, cj) = (model.tags.row(a), model.tags.row(b));
        let (bi, bj) = (Ball::from_center(ci), Ball::from_center(cj));
        // margin = ‖o_i − o_j‖ − r_i − r_j (positive ⇔ disjoint).
        let margin = -bi.exclusion_margin(&bj);
        if margin <= 0.0 {
            continue;
        }
        out.add_loss(weight * margin);
        let diff = ops::sub(&bi.center, &bj.center);
        let n = ops::norm(&diff).max(1e-12);
        let unit = ops::scaled(&diff, weight / n);
        let g_ci = hyperplane::ball_vjp(ci, &unit, -weight);
        let neg_unit = ops::scaled(&unit, -1.0);
        let g_cj = hyperplane::ball_vjp(cj, &neg_unit, -weight);
        out.add_tag(a, &g_ci);
        out.add_tag(b, &g_cj);
    }
}

/// Output of [`rank_loss_grad`]: dense ambient gradients w.r.t. the final
/// (propagated) user and item embeddings.
#[derive(Debug)]
pub struct RankGrads {
    /// `U × ambient` gradient on the final user embeddings.
    pub user_final: Embedding,
    /// `V × ambient` gradient on the final item embeddings.
    pub item_final: Embedding,
    /// Summed (weighted) hinge loss.
    pub loss: f64,
    /// Number of triplets with a positive hinge.
    pub active: usize,
}

/// L_Rec (Eq. 9 / Eq. 15): for each triplet `(u, v⁺, v⁻)` accumulate the
/// hinge `[m + d(u,v⁺) − d(u,v⁻)]₊`, weighted by `alpha[u]` when mining
/// weights are supplied.
pub fn rank_loss_grad(
    model: &LogiRec,
    triplets: &[(usize, usize, usize)],
    margin: f64,
    alpha: Option<&[f64]>,
    per_triplet_weight: f64,
) -> RankGrads {
    let st = model.state();
    let ambient = st.user_final.dim();
    let mut out = RankGrads {
        user_final: Embedding::zeros(st.user_final.rows(), ambient),
        item_final: Embedding::zeros(st.item_final.rows(), ambient),
        loss: 0.0,
        active: 0,
    };
    let (user_final, item_final) = (&mut out.user_final, &mut out.item_final);
    let (loss, active) = rank_accumulate(
        model,
        triplets,
        margin,
        alpha,
        per_triplet_weight,
        |u, g| ops::axpy(1.0, g, user_final.row_mut(u)),
        |v, g| ops::axpy(1.0, g, item_final.row_mut(v)),
    );
    out.loss = loss;
    out.active = active;
    out
}

/// The triplet walk shared by the dense and sharded ranking paths: calls
/// `add_user(u, g)` / `add_item(v, g)` for every gradient contribution, in
/// a fixed per-triplet order (`u⁺, u⁻, v⁺, v⁻`), and returns
/// `(loss, active)`.
fn rank_accumulate(
    model: &LogiRec,
    triplets: &[(usize, usize, usize)],
    margin: f64,
    alpha: Option<&[f64]>,
    per_triplet_weight: f64,
    mut add_user: impl FnMut(usize, &[f64]),
    mut add_item: impl FnMut(usize, &[f64]),
) -> (f64, usize) {
    let st = model.state();
    let (mut loss, mut active) = (0.0, 0usize);
    for &(u, vp, vq) in triplets {
        let urow = st.user_final.row(u);
        let dp = carrier_distance(model.cfg.geometry, urow, st.item_final.row(vp));
        let dq = carrier_distance(model.cfg.geometry, urow, st.item_final.row(vq));
        let hinge = margin + dp - dq;
        if hinge <= 0.0 {
            continue;
        }
        active += 1;
        let w = per_triplet_weight * alpha.map_or(1.0, |a| a[u]);
        loss += w * hinge;
        // + d(u, v⁺): upstream +w on both ends.
        let (gu_p, gv_p) =
            carrier_distance_vjp(model.cfg.geometry, urow, st.item_final.row(vp), w);
        // − d(u, v⁻): upstream −w.
        let (gu_q, gv_q) =
            carrier_distance_vjp(model.cfg.geometry, urow, st.item_final.row(vq), -w);
        add_user(u, &gu_p);
        add_user(u, &gu_q);
        add_item(vp, &gv_p);
        add_item(vq, &gv_q);
    }
    (loss, active)
}

/// One worker's sparse share of the ranking gradients (w.r.t. the final
/// carrier-space embeddings).
#[derive(Debug, Clone)]
pub struct RankShard {
    /// Sparse gradient on the final user embeddings (`ambient`-wide rows).
    pub users: SparseGrad,
    /// Sparse gradient on the final item embeddings.
    pub items: SparseGrad,
    /// Summed (weighted) hinge loss of this shard.
    pub loss: f64,
    /// Triplets with a positive hinge in this shard.
    pub active: usize,
}

impl Merge for RankShard {
    fn merge(&mut self, other: Self) {
        self.users.merge(other.users);
        self.items.merge(other.items);
        self.loss += other.loss;
        self.active += other.active;
    }
}

/// [`rank_loss_grad`] over one contiguous shard of the triplet list,
/// accumulating into touched-row maps instead of dense tables.
pub fn rank_loss_shard(
    model: &LogiRec,
    triplets: &[(usize, usize, usize)],
    margin: f64,
    alpha: Option<&[f64]>,
    per_triplet_weight: f64,
) -> RankShard {
    let ambient = model.state().user_final.dim();
    let mut users = SparseGrad::new(ambient);
    let mut items = SparseGrad::new(ambient);
    let (loss, active) = rank_accumulate(
        model,
        triplets,
        margin,
        alpha,
        per_triplet_weight,
        |u, g| users.add(u, g),
        |v, g| items.add(v, g),
    );
    RankShard { users, items, loss, active }
}

/// Parallel deterministic [`rank_loss_grad`]: shards the triplet list with
/// [`crate::shard::shard_ranges`] (a pure function of `triplets.len()`),
/// computes each shard's sparse gradient on up to `threads` workers, and
/// combines them with the fixed-order [`crate::shard::merge_tree`]. The
/// result is bit-identical for every `threads` value; it differs from the
/// serial [`rank_loss_grad`] only in floating-point association (dense
/// serial accumulation sums a row's triplets strictly left-to-right).
///
/// Returns the merged shard; scatter it into dense tables with
/// [`SparseGrad::scatter_add`].
pub fn rank_loss_grad_sharded(
    model: &LogiRec,
    triplets: &[(usize, usize, usize)],
    margin: f64,
    alpha: Option<&[f64]>,
    per_triplet_weight: f64,
    threads: usize,
) -> RankShard {
    let ranges = crate::shard::shard_ranges(triplets.len());
    let shards = crate::parallel::map_jobs(ranges.len(), threads, |i| {
        rank_loss_shard(model, &triplets[ranges[i].clone()], margin, alpha, per_triplet_weight)
    });
    crate::shard::merge_tree(shards).expect("shard_ranges yields at least one shard")
}

/// One sampled logic-relation batch, tagged with its loss type.
#[derive(Debug, Clone, Copy)]
pub enum LogicBatch<'a> {
    /// L_Mem samples (`(item, tag)` pairs).
    Membership(&'a [(usize, TagId)]),
    /// L_Hie samples (`(parent, child)` pairs).
    Hierarchy(&'a [(TagId, TagId)]),
    /// L_Ex samples.
    Exclusion(&'a [(TagId, TagId)]),
    /// L_Int samples.
    Intersection(&'a [(TagId, TagId)]),
}

impl LogicBatch<'_> {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        match self {
            LogicBatch::Membership(p) => p.len(),
            LogicBatch::Hierarchy(p) | LogicBatch::Exclusion(p) | LogicBatch::Intersection(p) => {
                p.len()
            }
        }
    }

    /// True when the batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs the batch's loss/gradient accumulation into `out`.
    pub fn accumulate(&self, model: &LogiRec, range: std::ops::Range<usize>, weight: f64, out: &mut impl LogicSink) {
        match self {
            LogicBatch::Membership(p) => membership_loss_grad(model, &p[range], weight, out),
            LogicBatch::Hierarchy(p) => hierarchy_loss_grad(model, &p[range], weight, out),
            LogicBatch::Exclusion(p) => exclusion_loss_grad(model, &p[range], weight, out),
            LogicBatch::Intersection(p) => intersection_loss_grad(model, &p[range], weight, out),
        }
    }
}

/// Parallel deterministic accumulation of all four logic losses: every
/// `(batch, weight)` is sharded with [`crate::shard::shard_ranges`], all
/// shards across all batches form one fixed-order job list (batch-major,
/// range-minor), and the per-shard sparse gradients are combined by the
/// fixed-shape [`crate::shard::merge_tree`]. Bit-identical for every
/// `threads` value, because both the job list and the merge shape depend
/// only on the batch lengths.
pub fn logic_loss_grad_sharded(
    model: &LogiRec,
    batches: &[(LogicBatch<'_>, f64)],
    threads: usize,
) -> LogicShard {
    let mut jobs: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    for (bi, (batch, _)) in batches.iter().enumerate() {
        for range in crate::shard::shard_ranges(batch.len()) {
            if !range.is_empty() {
                jobs.push((bi, range));
            }
        }
    }
    let shards = crate::parallel::map_jobs(jobs.len(), threads, |ji| {
        let (bi, range) = &jobs[ji];
        let (batch, weight) = &batches[*bi];
        let mut shard = LogicShard::new(model);
        batch.accumulate(model, range.clone(), *weight, &mut shard);
        shard
    });
    crate::shard::merge_tree(shards).unwrap_or_else(|| LogicShard::new(model))
}

fn carrier_distance(geometry: Geometry, x: &[f64], y: &[f64]) -> f64 {
    match geometry {
        Geometry::Hyperbolic => lorentz::distance(x, y),
        Geometry::Euclidean => ops::dist(x, y),
    }
}

fn carrier_distance_vjp(
    geometry: Geometry,
    x: &[f64],
    y: &[f64],
    upstream: f64,
) -> (Vec<f64>, Vec<f64>) {
    match geometry {
        Geometry::Hyperbolic => lorentz::distance_vjp(x, y, upstream),
        Geometry::Euclidean => {
            let diff = ops::sub(x, y);
            let n = ops::norm(&diff).max(1e-12);
            let gx = ops::scaled(&diff, upstream / n);
            let gy = ops::scaled(&diff, -upstream / n);
            (gx, gy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LogiRecConfig;
    use logirec_data::{DatasetSpec, Scale};

    fn setup() -> (LogiRec, logirec_data::Dataset) {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let mut cfg = LogiRecConfig::test_config();
        cfg.dim = 4;
        let mut m = LogiRec::new(cfg, &ds);
        m.propagate(&ds.train);
        (m, ds)
    }

    fn total_logic_loss(model: &LogiRec, ds: &logirec_data::Dataset) -> f64 {
        let mut acc = LogicGrads::zeros(model);
        membership_loss_grad(model, &ds.relations.membership, 1.0, &mut acc);
        hierarchy_loss_grad(model, &ds.relations.hierarchy, 1.0, &mut acc);
        let ex: Vec<(TagId, TagId)> =
            ds.relations.exclusion.iter().map(|&(a, b, _)| (a, b)).collect();
        exclusion_loss_grad(model, &ex, 1.0, &mut acc);
        acc.loss
    }

    #[test]
    fn logic_losses_are_nonnegative_and_finite() {
        let (m, ds) = setup();
        let loss = total_logic_loss(&m, &ds);
        assert!(loss.is_finite() && loss >= 0.0);
    }

    #[test]
    fn membership_grad_matches_finite_differences() {
        let (m, ds) = setup();
        let pairs = &ds.relations.membership[..8.min(ds.relations.membership.len())];
        let mut acc = LogicGrads::zeros(&m);
        membership_loss_grad(&m, pairs, 1.0, &mut acc);
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            membership_loss_grad(m, pairs, 1.0, &mut a);
            a.loss
        };
        fd_check_tags_and_items(&m, &acc, f);
    }

    #[test]
    fn hierarchy_grad_matches_finite_differences() {
        let (m, ds) = setup();
        let pairs = &ds.relations.hierarchy[..8.min(ds.relations.hierarchy.len())];
        let mut acc = LogicGrads::zeros(&m);
        hierarchy_loss_grad(&m, pairs, 1.0, &mut acc);
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            hierarchy_loss_grad(m, pairs, 1.0, &mut a);
            a.loss
        };
        fd_check_tags_and_items(&m, &acc, f);
    }

    #[test]
    fn exclusion_grad_matches_finite_differences() {
        let (m, ds) = setup();
        let pairs: Vec<(TagId, TagId)> =
            ds.relations.exclusion.iter().take(8).map(|&(a, b, _)| (a, b)).collect();
        assert!(!pairs.is_empty());
        let mut acc = LogicGrads::zeros(&m);
        exclusion_loss_grad(&m, &pairs, 1.0, &mut acc);
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            exclusion_loss_grad(m, &pairs, 1.0, &mut a);
            a.loss
        };
        fd_check_tags_and_items(&m, &acc, f);
    }

    /// Compares analytic tag/item gradients against central differences on
    /// a handful of coordinates.
    fn fd_check_tags_and_items(
        m: &LogiRec,
        acc: &LogicGrads,
        f: impl Fn(&LogiRec) -> f64,
    ) {
        let h = 1e-7;
        for t in 0..3.min(m.tags.rows()) {
            for col in 0..2 {
                let mut mp = m.clone();
                mp.tags.row_mut(t)[col] += h;
                let mut mm = m.clone();
                mm.tags.row_mut(t)[col] -= h;
                let num = (f(&mp) - f(&mm)) / (2.0 * h);
                let ana = acc.tags.row(t)[col];
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                    "tag grad[{t}][{col}]: {num} vs {ana}"
                );
            }
        }
        for v in 0..3.min(m.items.rows()) {
            for col in 0..2 {
                let mut mp = m.clone();
                mp.items.row_mut(v)[col] += h;
                let mut mm = m.clone();
                mm.items.row_mut(v)[col] -= h;
                let num = (f(&mp) - f(&mm)) / (2.0 * h);
                let ana = acc.items.row(v)[col];
                assert!(
                    (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                    "item grad[{v}][{col}]: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn intersection_grad_matches_finite_differences() {
        let (m, ds) = setup();
        let pairs: Vec<(TagId, TagId)> = ds.relations.intersection_pairs();
        let pairs: Vec<(TagId, TagId)> = if pairs.is_empty() {
            // Force a pair of distant tags so the hinge activates.
            vec![(0, ds.n_tags() - 1)]
        } else {
            pairs.into_iter().take(8).collect()
        };
        let mut acc = LogicGrads::zeros(&m);
        intersection_loss_grad(&m, &pairs, 1.0, &mut acc);
        let f = |m: &LogiRec| {
            let mut a = LogicGrads::zeros(m);
            intersection_loss_grad(m, &pairs, 1.0, &mut a);
            a.loss
        };
        fd_check_tags_and_items(&m, &acc, f);
    }

    #[test]
    fn intersection_and_exclusion_margins_are_opposite() {
        let (m, _) = setup();
        // For any tag pair, at most one of the two hinges can be active.
        let pairs = [(0usize, 1usize)];
        let mut ex = LogicGrads::zeros(&m);
        exclusion_loss_grad(&m, &pairs, 1.0, &mut ex);
        let mut int = LogicGrads::zeros(&m);
        intersection_loss_grad(&m, &pairs, 1.0, &mut int);
        assert!(
            ex.loss == 0.0 || int.loss == 0.0,
            "both hinges active: ex {} int {}",
            ex.loss,
            int.loss
        );
    }

    #[test]
    fn rank_loss_zero_when_positive_much_closer() {
        let (mut m, ds) = setup();
        // Force the positive item onto the user and the negative far away —
        // easiest via direct manipulation of the final embeddings through a
        // fresh propagate on modified parameters is complex; instead verify
        // via the hinge identity on the real state: margin 0 and identical
        // items give exactly zero loss.
        m.propagate(&ds.train);
        let v = ds.train.items_of(0)[0];
        let g = rank_loss_grad(&m, &[(0, v, v)], 0.0, None, 1.0);
        assert_eq!(g.active, 0);
        assert_eq!(g.loss, 0.0);
    }

    #[test]
    fn rank_loss_positive_margin_activates() {
        let (m, ds) = setup();
        let v = ds.train.items_of(0)[0];
        // v⁺ == v⁻ with positive margin → hinge == margin, grads cancel.
        let g = rank_loss_grad(&m, &[(0, v, v)], 0.5, None, 1.0);
        assert_eq!(g.active, 1);
        assert!((g.loss - 0.5).abs() < 1e-12);
        assert!(ops::norm(g.user_final.row(0)) < 1e-9, "identical pair grads cancel");
    }

    #[test]
    fn rank_grads_match_finite_differences_at_final_layer() {
        let (m, ds) = setup();
        let u = 0usize;
        let vp = ds.train.items_of(0)[0];
        let vq = (vp + 7) % ds.n_items();
        let g = rank_loss_grad(&m, &[(u, vp, vq)], 1.0, None, 1.0);
        if g.active == 0 {
            return; // hinge inactive for this seed; other tests cover it
        }
        // FD on the final user embedding along tangent directions: compare
        // against VJP by recomputing distances with a perturbed row.
        let st = m.state();
        let h = 1e-6;
        for col in 0..3 {
            let mut up = st.user_final.row(u).to_vec();
            up[col] += h;
            let mut um = st.user_final.row(u).to_vec();
            um[col] -= h;
            let f = |urow: &[f64]| {
                let dp = lorentz::distance(urow, st.item_final.row(vp));
                let dq = lorentz::distance(urow, st.item_final.row(vq));
                (1.0 + dp - dq).max(0.0)
            };
            let num = (f(&up) - f(&um)) / (2.0 * h);
            let ana = g.user_final.row(u)[col];
            assert!(
                (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                "final user grad[{col}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn alpha_weights_scale_gradients() {
        let (m, ds) = setup();
        let u = 0usize;
        let vp = ds.train.items_of(0)[0];
        let vq = (vp + 7) % ds.n_items();
        let alpha = vec![0.5; ds.n_users()];
        let g1 = rank_loss_grad(&m, &[(u, vp, vq)], 1.0, None, 1.0);
        let g2 = rank_loss_grad(&m, &[(u, vp, vq)], 1.0, Some(&alpha), 1.0);
        assert!((g1.loss * 0.5 - g2.loss).abs() < 1e-12);
        for col in 0..m.cfg.dim + 1 {
            assert!(
                (g1.user_final.row(u)[col] * 0.5 - g2.user_final.row(u)[col]).abs() < 1e-12
            );
        }
    }
}
