//! Tangent-space graph convolution (Eq. 7) with an exact transpose pass.
//!
//! Propagation is LightGCN-style and **linear** in the layer-0 embeddings:
//!
//! `z_u^{l+1} = z_u^l + (1/|N_u|) Σ_{v∈N_u} z_v^l`
//! `z_v^{l+1} = z_v^l + (1/|N_v|) Σ_{u∈N_v} z_u^l`
//! `z^final  = Σ_{l=1}^{L} z^l`
//!
//! Because the map is linear, backpropagation only needs the transposed
//! adjacency — no stored activations. [`propagate_backward`] implements the
//! reverse recurrence `G_l = g_l + Mᵀ G_{l+1}`, where `M = I + A` is the
//! joint propagation matrix and `g_l` is the direct contribution of layer
//! `l` to the final sum (`g_final` for `1 ≤ l ≤ L`, zero for `l = 0`).

use logirec_data::InteractionSet;
use logirec_linalg::{ops, Embedding, Scalar};

use crate::parallel::for_each_row;

/// Immutable propagation cache for one interaction graph: flat CSR
/// adjacency in both directions plus the pre-divided mean-aggregation
/// normalizers `1/|N_u|` and `1/|N_v|`.
///
/// [`InteractionSet`] stores one `Vec` per node, so walking it re-derefs a
/// heap pointer per row and recomputes `1.0 / len` per edge visit — every
/// batch, for every layer, in both passes. A `PropGraph` is built **once
/// per dataset** (the trainer builds it before the epoch loop) and reused
/// by every propagate/backward call. The arithmetic is unchanged: the same
/// neighbor order and the same `1/deg` values, so results are bit-identical
/// to the uncached path.
#[derive(Debug, Clone)]
pub struct PropGraph<S: Scalar = f64> {
    n_users: usize,
    n_items: usize,
    /// CSR of items per user: neighbors of user `u` are
    /// `u_adj[u_off[u]..u_off[u + 1]]`.
    u_off: Vec<usize>,
    u_adj: Vec<usize>,
    /// CSR of users per item.
    v_off: Vec<usize>,
    v_adj: Vec<usize>,
    /// `1/|N_u|` (0.0 for isolated users — never multiplied in that case).
    u_norm: Vec<S>,
    /// `1/|N_v|`.
    v_norm: Vec<S>,
}

impl<S: Scalar> PropGraph<S> {
    /// Builds the cache from an interaction set (one pass per direction).
    pub fn build(adj: &InteractionSet) -> Self {
        let n_users = adj.n_users();
        let n_items = adj.n_items();
        let mut u_off = Vec::with_capacity(n_users + 1);
        let mut u_adj = Vec::with_capacity(adj.len());
        let mut u_norm = Vec::with_capacity(n_users);
        u_off.push(0);
        for u in 0..n_users {
            let items = adj.items_of(u);
            u_adj.extend_from_slice(items);
            u_off.push(u_adj.len());
            u_norm.push(if items.is_empty() {
                S::ZERO
            } else {
                S::from_f64(1.0 / items.len() as f64)
            });
        }
        let mut v_off = Vec::with_capacity(n_items + 1);
        let mut v_adj = Vec::with_capacity(adj.len());
        let mut v_norm = Vec::with_capacity(n_items);
        v_off.push(0);
        for v in 0..n_items {
            let users = adj.users_of(v);
            v_adj.extend_from_slice(users);
            v_off.push(v_adj.len());
            v_norm.push(if users.is_empty() {
                S::ZERO
            } else {
                S::from_f64(1.0 / users.len() as f64)
            });
        }
        Self { n_users, n_items, u_off, u_adj, v_off, v_adj, u_norm, v_norm }
    }

    /// Number of user rows.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of item rows.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Sorted item neighbors of user `u`.
    #[inline]
    pub fn items_of(&self, u: usize) -> &[usize] {
        &self.u_adj[self.u_off[u]..self.u_off[u + 1]]
    }

    /// Sorted user neighbors of item `v`.
    #[inline]
    pub fn users_of(&self, v: usize) -> &[usize] {
        &self.v_adj[self.v_off[v]..self.v_off[v + 1]]
    }
}

/// Forward propagation: returns the final tangent embeddings
/// `(user_final, item_final)`; with `layers == 0` these are copies of the
/// inputs (the "w/o HGCN" variant).
pub fn propagate_forward<S: Scalar>(
    adj: &InteractionSet,
    z_u0: &Embedding<S>,
    z_v0: &Embedding<S>,
    layers: usize,
) -> (Embedding<S>, Embedding<S>) {
    propagate_forward_par(adj, z_u0, z_v0, layers, 1)
}

/// [`propagate_forward`] with row-parallel aggregation across `threads`
/// scoped threads (identical output; used at `paper` scale). Builds a
/// throwaway [`PropGraph`]; hot loops should build one and call
/// [`propagate_forward_graph`].
pub fn propagate_forward_par<S: Scalar>(
    adj: &InteractionSet,
    z_u0: &Embedding<S>,
    z_v0: &Embedding<S>,
    layers: usize,
    threads: usize,
) -> (Embedding<S>, Embedding<S>) {
    if layers == 0 {
        return (z_u0.clone(), z_v0.clone());
    }
    propagate_forward_graph(&PropGraph::build(adj), z_u0, z_v0, layers, threads)
}

/// Forward propagation against a cached [`PropGraph`].
pub fn propagate_forward_graph<S: Scalar>(
    adj: &PropGraph<S>,
    z_u0: &Embedding<S>,
    z_v0: &Embedding<S>,
    layers: usize,
    threads: usize,
) -> (Embedding<S>, Embedding<S>) {
    if layers == 0 {
        return (z_u0.clone(), z_v0.clone());
    }
    let dim = z_u0.dim();
    let mut zu = z_u0.clone();
    let mut zv = z_v0.clone();
    let mut acc_u = Embedding::zeros(z_u0.rows(), dim);
    let mut acc_v = Embedding::zeros(z_v0.rows(), dim);
    let mut next_u = Embedding::zeros(z_u0.rows(), dim);
    let mut next_v = Embedding::zeros(z_v0.rows(), dim);
    for _ in 0..layers {
        step_forward(adj, &zu, &zv, &mut next_u, &mut next_v, threads);
        std::mem::swap(&mut zu, &mut next_u);
        std::mem::swap(&mut zv, &mut next_v);
        accumulate(&mut acc_u, &zu);
        accumulate(&mut acc_v, &zv);
    }
    (acc_u, acc_v)
}

/// Backward pass: given gradients w.r.t. the final tangent embeddings,
/// returns gradients w.r.t. the layer-0 embeddings.
pub fn propagate_backward<S: Scalar>(
    adj: &InteractionSet,
    g_fu: &Embedding<S>,
    g_fv: &Embedding<S>,
    layers: usize,
) -> (Embedding<S>, Embedding<S>) {
    propagate_backward_par(adj, g_fu, g_fv, layers, 1)
}

/// [`propagate_backward`] with row-parallel aggregation (exact adjoint of
/// [`propagate_forward_par`]). Builds a throwaway [`PropGraph`]; hot loops
/// should build one and call [`propagate_backward_graph`].
pub fn propagate_backward_par<S: Scalar>(
    adj: &InteractionSet,
    g_fu: &Embedding<S>,
    g_fv: &Embedding<S>,
    layers: usize,
    threads: usize,
) -> (Embedding<S>, Embedding<S>) {
    if layers == 0 {
        return (g_fu.clone(), g_fv.clone());
    }
    propagate_backward_graph(&PropGraph::build(adj), g_fu, g_fv, layers, threads)
}

/// Backward propagation against a cached [`PropGraph`].
pub fn propagate_backward_graph<S: Scalar>(
    adj: &PropGraph<S>,
    g_fu: &Embedding<S>,
    g_fv: &Embedding<S>,
    layers: usize,
    threads: usize,
) -> (Embedding<S>, Embedding<S>) {
    if layers == 0 {
        return (g_fu.clone(), g_fv.clone());
    }
    // G_L = g_final.
    let mut gu = g_fu.clone();
    let mut gv = g_fv.clone();
    let mut next_u = Embedding::zeros(g_fu.rows(), g_fu.dim());
    let mut next_v = Embedding::zeros(g_fv.rows(), g_fv.dim());
    for l in (0..layers).rev() {
        step_transpose(adj, &gu, &gv, &mut next_u, &mut next_v, threads);
        std::mem::swap(&mut gu, &mut next_u);
        std::mem::swap(&mut gv, &mut next_v);
        if l >= 1 {
            accumulate(&mut gu, g_fu);
            accumulate(&mut gv, g_fv);
        }
    }
    (gu, gv)
}

/// One forward step `next = (I + A)·z`.
fn step_forward<S: Scalar>(
    adj: &PropGraph<S>,
    zu: &Embedding<S>,
    zv: &Embedding<S>,
    next_u: &mut Embedding<S>,
    next_v: &mut Embedding<S>,
    threads: usize,
) {
    for_each_row(next_u, threads, |u, out| {
        ops::copy(out, zu.row(u));
        let w = adj.u_norm[u];
        for &v in adj.items_of(u) {
            ops::axpy(w, zv.row(v), out);
        }
    });
    for_each_row(next_v, threads, |v, out| {
        ops::copy(out, zv.row(v));
        let w = adj.v_norm[v];
        for &u in adj.users_of(v) {
            ops::axpy(w, zu.row(u), out);
        }
    });
}

/// One transpose step `next = (I + Aᵀ)·g`.
///
/// Forward sends `z_v/|N_u|` into user `u`; the transpose therefore sends
/// `g_u/|N_u|` into item `v` for every edge `(u, v)` — note the
/// normalization stays with the *source side of the forward pass*.
fn step_transpose<S: Scalar>(
    adj: &PropGraph<S>,
    gu: &Embedding<S>,
    gv: &Embedding<S>,
    next_u: &mut Embedding<S>,
    next_v: &mut Embedding<S>,
    threads: usize,
) {
    for_each_row(next_u, threads, |u, out| {
        ops::copy(out, gu.row(u));
        for &v in adj.items_of(u) {
            ops::axpy(adj.v_norm[v], gv.row(v), out);
        }
    });
    for_each_row(next_v, threads, |v, out| {
        ops::copy(out, gv.row(v));
        for &u in adj.users_of(v) {
            ops::axpy(adj.u_norm[u], gu.row(u), out);
        }
    });
}

fn accumulate<S: Scalar>(acc: &mut Embedding<S>, x: &Embedding<S>) {
    ops::axpy(S::ONE, x.as_slice(), acc.as_mut_slice());
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_linalg::SplitMix64;

    fn toy_adj() -> InteractionSet {
        // 3 users, 4 items.
        InteractionSet::from_pairs(3, 4, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn zero_layers_is_identity() {
        let adj = toy_adj();
        let mut rng = SplitMix64::new(1);
        let zu: Embedding = Embedding::normal(3, 4, 1.0, &mut rng);
        let zv: Embedding = Embedding::normal(4, 4, 1.0, &mut rng);
        let (fu, fv) = propagate_forward(&adj, &zu, &zv, 0);
        assert_eq!(fu, zu);
        assert_eq!(fv, zv);
    }

    #[test]
    fn one_layer_matches_manual_mean_aggregation() {
        let adj = toy_adj();
        let mut zu: Embedding = Embedding::zeros(3, 1);
        let mut zv: Embedding = Embedding::zeros(4, 1);
        for u in 0..3 {
            zu.row_mut(u)[0] = (u + 1) as f64; // 1, 2, 3
        }
        for v in 0..4 {
            zv.row_mut(v)[0] = 10.0 * (v + 1) as f64; // 10, 20, 30, 40
        }
        let (fu, fv) = propagate_forward(&adj, &zu, &zv, 1);
        // user 0: 1 + (10+20)/2 = 16; user 1: 2 + (20+30)/2 = 27;
        // user 2: 3 + 40 = 43.
        assert_eq!(fu.row(0)[0], 16.0);
        assert_eq!(fu.row(1)[0], 27.0);
        assert_eq!(fu.row(2)[0], 43.0);
        // item 0: 10 + 1 = 11; item 1: 20 + (1+2)/2 = 21.5;
        // item 2: 30 + 2 = 32; item 3: 40 + 3 = 43.
        assert_eq!(fv.row(0)[0], 11.0);
        assert_eq!(fv.row(1)[0], 21.5);
        assert_eq!(fv.row(2)[0], 32.0);
        assert_eq!(fv.row(3)[0], 43.0);
    }

    #[test]
    fn isolated_nodes_pass_through() {
        let adj = InteractionSet::from_pairs(2, 2, &[(0, 0)]);
        let mut zu: Embedding = Embedding::zeros(2, 1);
        zu.row_mut(1)[0] = 5.0;
        let mut zv: Embedding = Embedding::zeros(2, 1);
        zv.row_mut(1)[0] = 7.0;
        let (fu, fv) = propagate_forward(&adj, &zu, &zv, 2);
        // Isolated user 1 / item 1 only self-accumulate: Σ_{l=1,2} z = 2z.
        assert_eq!(fu.row(1)[0], 10.0);
        assert_eq!(fv.row(1)[0], 14.0);
    }

    /// The transpose pass must compute the exact gradient of the linear
    /// forward map: check ⟨forward(x), g⟩ = ⟨x, backward(g)⟩ (adjoint
    /// identity) on random data for several depths.
    #[test]
    fn backward_is_exact_adjoint_of_forward() {
        let adj = toy_adj();
        let mut rng = SplitMix64::new(7);
        for layers in 1..=4 {
            let zu: Embedding = Embedding::normal(3, 5, 1.0, &mut rng);
            let zv = Embedding::normal(4, 5, 1.0, &mut rng);
            let gu = Embedding::normal(3, 5, 1.0, &mut rng);
            let gv = Embedding::normal(4, 5, 1.0, &mut rng);
            let (fu, fv) = propagate_forward(&adj, &zu, &zv, layers);
            let (bu, bv) = propagate_backward(&adj, &gu, &gv, layers);
            let lhs = ops::dot(fu.as_slice(), gu.as_slice())
                + ops::dot(fv.as_slice(), gv.as_slice());
            let rhs = ops::dot(zu.as_slice(), bu.as_slice())
                + ops::dot(zv.as_slice(), bv.as_slice());
            assert!(
                (lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()),
                "adjoint mismatch at L={layers}: {lhs} vs {rhs}"
            );
        }
    }

    /// Finite-difference check of the full chain: scalar loss
    /// f(z0) = Σ w ⊙ forward(z0).
    #[test]
    fn backward_matches_finite_differences() {
        let adj = toy_adj();
        let mut rng = SplitMix64::new(9);
        let layers = 3;
        let zu: Embedding = Embedding::normal(3, 2, 0.5, &mut rng);
        let zv = Embedding::normal(4, 2, 0.5, &mut rng);
        let wu = Embedding::normal(3, 2, 1.0, &mut rng);
        let wv = Embedding::normal(4, 2, 1.0, &mut rng);
        let f = |zu: &Embedding, zv: &Embedding| {
            let (fu, fv) = propagate_forward(&adj, zu, zv, layers);
            ops::dot(fu.as_slice(), wu.as_slice()) + ops::dot(fv.as_slice(), wv.as_slice())
        };
        let (bu, bv) = propagate_backward(&adj, &wu, &wv, layers);
        let h = 1e-6;
        // Probe a few coordinates of both tables.
        for (row, col) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let mut zp = zu.clone();
            let mut zm = zu.clone();
            zp.row_mut(row)[col] += h;
            zm.row_mut(row)[col] -= h;
            let num = (f(&zp, &zv) - f(&zm, &zv)) / (2.0 * h);
            let ana = bu.row(row)[col];
            assert!((num - ana).abs() < 1e-5, "user grad ({row},{col}): {num} vs {ana}");
        }
        for (row, col) in [(0usize, 1usize), (3, 0)] {
            let mut zp = zv.clone();
            let mut zm = zv.clone();
            zp.row_mut(row)[col] += h;
            zm.row_mut(row)[col] -= h;
            let num = (f(&zu, &zp) - f(&zu, &zm)) / (2.0 * h);
            let ana = bv.row(row)[col];
            assert!((num - ana).abs() < 1e-5, "item grad ({row},{col}): {num} vs {ana}");
        }
    }

    #[test]
    fn parallel_propagation_matches_serial() {
        let mut rng = SplitMix64::new(21);
        // A bigger random bipartite graph.
        let pairs: Vec<(usize, usize)> =
            (0..2000).map(|_| (rng.index(50), rng.index(80))).collect();
        let adj = InteractionSet::from_pairs(50, 80, &pairs);
        let zu: Embedding = Embedding::normal(50, 8, 1.0, &mut rng);
        let zv = Embedding::normal(80, 8, 1.0, &mut rng);
        for layers in [1usize, 3] {
            let (a_u, a_v) = propagate_forward(&adj, &zu, &zv, layers);
            let (b_u, b_v) = propagate_forward_par(&adj, &zu, &zv, layers, 6);
            assert_eq!(a_u, b_u);
            assert_eq!(a_v, b_v);
            let (c_u, c_v) = propagate_backward(&adj, &zu, &zv, layers);
            let (d_u, d_v) = propagate_backward_par(&adj, &zu, &zv, layers, 6);
            assert_eq!(c_u, d_u);
            assert_eq!(c_v, d_v);
        }
    }

    #[test]
    fn propagation_smooths_connected_components() {
        // Users 0 and 1 share item 1, so their embeddings should move
        // toward each other relative to disconnected user 2.
        let adj = toy_adj();
        let mut zu: Embedding = Embedding::zeros(3, 1);
        zu.row_mut(0)[0] = 1.0;
        zu.row_mut(1)[0] = -1.0;
        zu.row_mut(2)[0] = 1.0;
        let zv: Embedding = Embedding::zeros(4, 1);
        let (fu, _) = propagate_forward(&adj, &zu, &zv, 2);
        // After propagation through the shared item, user 0 picks up some
        // of user 1's negative mass.
        assert!(fu.row(0)[0] < 3.0 * 1.0, "shared structure must mix signals");
    }
}
