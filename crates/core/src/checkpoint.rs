//! Durable training checkpoints.
//!
//! A checkpoint captures everything the trainer needs to continue a run
//! bit-identically after a crash: the three parameter tables plus the
//! optimizer/trainer state (completed-epoch count, RNG state, LR backoff
//! scale, best-validation snapshot, bad-round counter, mining weights,
//! epoch history, and recovery log).
//!
//! ## On-disk format (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"LOGICKP1"
//! 8       4     format version (u32, currently 2)
//! 12      8     payload length in bytes (u64)
//! 20      4     CRC-32 (IEEE 802.3) of the payload (u32)
//! 24      n     payload (versioned binary serialization of [`Checkpoint`])
//! ```
//!
//! Version 2 appends a single precision byte (0 = `f64`, 1 = `f32`) at the
//! **end** of the version-1 payload, recording which [`Precision`] the run
//! trained in. Version-1 files (always double precision) still load and
//! decode as [`Precision::F64`].
//!
//! Writes are atomic and durable: the bytes go to a `.tmp` sibling, the file
//! is fsynced, then renamed over the destination (and the directory synced),
//! so a crash at any point leaves either the previous checkpoint or the new
//! one — never a torn file. Loads verify magic, version, length, and CRC
//! before any field is parsed, so truncation and bit corruption surface as
//! [`CheckpointError::Corrupt`] instead of garbage state.

use std::fs;
use std::io;
use std::path::Path;

use logirec_linalg::Embedding;

use crate::config::{Geometry, Precision};
use crate::trainer::{EpochStats, Recovery, RecoveryAction};

/// File magic for checkpoint files.
pub const MAGIC: &[u8; 8] = b"LOGICKP1";
/// Current checkpoint format version. Version 2 added the trailing
/// precision byte; version 1 files load as [`Precision::F64`].
pub const VERSION: u32 = 2;
/// Refuse to allocate for payloads beyond this size (defense against
/// corrupted length headers).
const MAX_PAYLOAD: u64 = 1 << 38;

/// Errors from checkpoint save/load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(io::Error),
    /// Not a checkpoint file.
    BadMagic,
    /// A checkpoint from an unknown (newer) format version.
    BadVersion(u32),
    /// Structurally invalid contents: bad length, CRC mismatch, or a field
    /// that fails validation.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a LogiRec checkpoint file"),
            CheckpointError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (supported: 1..={VERSION})")
            }
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The best-validation snapshot carried inside a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct BestSnapshot {
    /// Validation Recall@10 of the snapshot.
    pub recall: f64,
    /// Tag hyperplane centers at the best epoch.
    pub tags: Embedding,
    /// Item embeddings at the best epoch.
    pub items: Embedding,
    /// User embeddings at the best epoch.
    pub users: Embedding,
}

/// A complete, resumable view of an in-progress training run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Geometry the run trains in (validated against the resuming config).
    pub geometry: Geometry,
    /// Embedding dimension `d` (validated against the resuming config).
    pub dim: usize,
    /// GCN layer count (validated against the resuming config).
    pub layers: usize,
    /// Working precision the run trains in (validated against the resuming
    /// config; version-1 checkpoints decode as [`Precision::F64`]).
    pub precision: Precision,
    /// Completed epochs; training resumes at this epoch index.
    pub epoch: usize,
    /// Raw state of the trainer's master RNG at the end of `epoch`.
    pub rng_state: u64,
    /// Divergence-recovery LR backoff factor (1.0 until a rollback occurs).
    pub lr_scale: f64,
    /// Early-stopping bad-round counter.
    pub bad_rounds: usize,
    /// Per-epoch statistics so far.
    pub history: Vec<EpochStats>,
    /// Recoveries performed so far.
    pub recoveries: Vec<Recovery>,
    /// Current LogiRec++ mining weights, when computed.
    pub alpha: Option<Vec<f64>>,
    /// Best validation snapshot, when one exists.
    pub best: Option<BestSnapshot>,
    /// Current tag hyperplane centers.
    pub tags: Embedding,
    /// Current item embeddings.
    pub items: Embedding,
    /// Current user embeddings.
    pub users: Embedding,
}

/// Serializes `ck` and writes it to `path` atomically and durably
/// (`.tmp` sibling + fsync + rename + directory sync). Returns the number
/// of bytes written.
pub fn save(ck: &Checkpoint, path: &Path) -> Result<u64, CheckpointError> {
    let payload = encode_payload(ck);
    let mut bytes = Vec::with_capacity(24 + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    crate::io::atomic_write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Loads and fully validates a checkpoint written by [`save`].
pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 24 {
        return Err(CheckpointError::Corrupt(format!(
            "file too short for a header ({} bytes)",
            bytes.len()
        )));
    }
    if &bytes[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if !(1..=VERSION).contains(&version) {
        return Err(CheckpointError::BadVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(CheckpointError::Corrupt(format!(
            "implausible payload length {payload_len}"
        )));
    }
    let payload = &bytes[24..];
    if payload.len() as u64 != payload_len {
        return Err(CheckpointError::Corrupt(format!(
            "payload length {} does not match header ({payload_len}); file truncated \
             or trailing garbage",
            payload.len()
        )));
    }
    let crc_stored = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let crc_actual = crc32(payload);
    if crc_stored != crc_actual {
        return Err(CheckpointError::Corrupt(format!(
            "CRC mismatch (stored {crc_stored:#010x}, computed {crc_actual:#010x})"
        )));
    }
    decode_payload(payload, version)
}

// ---------------------------------------------------------------------------
// Payload serialization
// ---------------------------------------------------------------------------

fn encode_payload(ck: &Checkpoint) -> Vec<u8> {
    let mut w = Vec::new();
    w.push(match ck.geometry {
        Geometry::Hyperbolic => 0u8,
        Geometry::Euclidean => 1u8,
    });
    put_u64(&mut w, ck.dim as u64);
    put_u64(&mut w, ck.layers as u64);
    put_u64(&mut w, ck.epoch as u64);
    put_u64(&mut w, ck.rng_state);
    put_f64(&mut w, ck.lr_scale);
    put_u64(&mut w, ck.bad_rounds as u64);

    put_u64(&mut w, ck.history.len() as u64);
    for h in &ck.history {
        put_u64(&mut w, h.epoch as u64);
        put_f64(&mut w, h.rank_loss);
        put_f64(&mut w, h.logic_loss);
        put_opt_f64(&mut w, h.val_recall10);
    }

    put_u64(&mut w, ck.recoveries.len() as u64);
    for r in &ck.recoveries {
        put_u64(&mut w, r.epoch as u64);
        put_str(&mut w, &r.reason);
        match r.action {
            RecoveryAction::SkippedSteps { steps } => {
                w.push(0);
                put_u64(&mut w, steps as u64);
            }
            RecoveryAction::RolledBack { lr_scale } => {
                w.push(1);
                put_f64(&mut w, lr_scale);
            }
            RecoveryAction::RestartedFresh => w.push(2),
            RecoveryAction::Aborted => w.push(3),
        }
    }

    match &ck.alpha {
        None => w.push(0),
        Some(a) => {
            w.push(1);
            put_u64(&mut w, a.len() as u64);
            for &x in a {
                put_f64(&mut w, x);
            }
        }
    }

    match &ck.best {
        None => w.push(0),
        Some(b) => {
            w.push(1);
            put_f64(&mut w, b.recall);
            put_embedding(&mut w, &b.tags);
            put_embedding(&mut w, &b.items);
            put_embedding(&mut w, &b.users);
        }
    }

    put_embedding(&mut w, &ck.tags);
    put_embedding(&mut w, &ck.items);
    put_embedding(&mut w, &ck.users);
    // Version 2: the precision byte rides at the very end so the v1 prefix
    // stays byte-identical and old fields keep their offsets.
    w.push(match ck.precision {
        Precision::F64 => 0u8,
        Precision::F32 => 1u8,
    });
    w
}

fn decode_payload(bytes: &[u8], version: u32) -> Result<Checkpoint, CheckpointError> {
    let mut r = Reader { bytes, pos: 0 };
    let geometry = match r.u8()? {
        0 => Geometry::Hyperbolic,
        1 => Geometry::Euclidean,
        g => return Err(corrupt(format!("unknown geometry tag {g}"))),
    };
    let dim = r.usize_field("dim")?;
    let layers = r.usize_field("layers")?;
    let epoch = r.usize_field("epoch")?;
    let rng_state = r.u64()?;
    let lr_scale = r.f64()?;
    if !(lr_scale.is_finite() && lr_scale > 0.0) {
        return Err(corrupt(format!("invalid lr_scale {lr_scale}")));
    }
    let bad_rounds = r.usize_field("bad_rounds")?;

    let n_history = r.len_field("history length")?;
    let mut history = Vec::with_capacity(n_history);
    for _ in 0..n_history {
        history.push(EpochStats {
            epoch: r.usize_field("history epoch")?,
            rank_loss: r.f64()?,
            logic_loss: r.f64()?,
            val_recall10: r.opt_f64()?,
        });
    }

    let n_recoveries = r.len_field("recovery count")?;
    let mut recoveries = Vec::with_capacity(n_recoveries);
    for _ in 0..n_recoveries {
        let epoch = r.usize_field("recovery epoch")?;
        let reason = r.string()?;
        let action = match r.u8()? {
            0 => RecoveryAction::SkippedSteps { steps: r.usize_field("skipped steps")? },
            1 => RecoveryAction::RolledBack { lr_scale: r.f64()? },
            2 => RecoveryAction::RestartedFresh,
            3 => RecoveryAction::Aborted,
            t => return Err(corrupt(format!("unknown recovery action tag {t}"))),
        };
        recoveries.push(Recovery { epoch, reason, action });
    }

    let alpha = match r.u8()? {
        0 => None,
        1 => {
            let n = r.len_field("alpha length")?;
            let mut a = Vec::with_capacity(n);
            for _ in 0..n {
                a.push(r.f64()?);
            }
            Some(a)
        }
        t => return Err(corrupt(format!("unknown alpha tag {t}"))),
    };

    let best = match r.u8()? {
        0 => None,
        1 => Some(BestSnapshot {
            recall: r.f64()?,
            tags: r.embedding()?,
            items: r.embedding()?,
            users: r.embedding()?,
        }),
        t => return Err(corrupt(format!("unknown best-snapshot tag {t}"))),
    };

    let tags = r.embedding()?;
    let items = r.embedding()?;
    let users = r.embedding()?;
    let precision = if version >= 2 {
        match r.u8()? {
            0 => Precision::F64,
            1 => Precision::F32,
            t => return Err(corrupt(format!("unknown precision tag {t}"))),
        }
    } else {
        Precision::F64
    };
    if r.pos != bytes.len() {
        return Err(corrupt(format!(
            "{} unparsed trailing bytes in payload",
            bytes.len() - r.pos
        )));
    }
    for (name, table) in [("tags", &tags), ("items", &items), ("users", &users)] {
        if !table.all_finite() {
            return Err(corrupt(format!("non-finite parameter in {name} table")));
        }
    }
    Ok(Checkpoint {
        geometry,
        dim,
        layers,
        precision,
        epoch,
        rng_state,
        lr_scale,
        bad_rounds,
        history,
        recoveries,
        alpha,
        best,
        tags,
        items,
        users,
    })
}

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(w: &mut Vec<u8>, v: f64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_f64(w: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => w.push(0),
        Some(x) => {
            w.push(1);
            put_f64(w, x);
        }
    }
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    put_u64(w, s.len() as u64);
    w.extend_from_slice(s.as_bytes());
}

fn put_embedding(w: &mut Vec<u8>, m: &Embedding) {
    put_u64(w, m.rows() as u64);
    put_u64(w, m.dim() as u64);
    for &x in m.as_slice() {
        put_f64(w, x);
    }
}

fn corrupt(msg: String) -> CheckpointError {
    CheckpointError::Corrupt(msg)
}

/// Bounds-checked little-endian cursor over the payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.bytes.len() - self.pos < n {
            return Err(corrupt(format!(
                "payload truncated at offset {} (wanted {n} more bytes)",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            t => Err(corrupt(format!("unknown option tag {t}"))),
        }
    }

    /// A u64 that must fit in usize (field values like epochs/counters).
    fn usize_field(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| corrupt(format!("{what} {v} does not fit in usize")))
    }

    /// A collection length; additionally bounded by the remaining payload
    /// so corrupted lengths cannot trigger enormous allocations.
    fn len_field(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let v = self.usize_field(what)?;
        if v > self.bytes.len() - self.pos {
            return Err(corrupt(format!(
                "{what} {v} exceeds the remaining payload ({} bytes)",
                self.bytes.len() - self.pos
            )));
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        let n = self.len_field("string length")?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| corrupt("invalid UTF-8 string".into()))
    }

    fn embedding(&mut self) -> Result<Embedding, CheckpointError> {
        let rows = self.usize_field("table rows")?;
        let dim = self.usize_field("table dim")?;
        let n = rows
            .checked_mul(dim)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| corrupt(format!("table shape {rows}×{dim} overflows")))?;
        if n > self.bytes.len() - self.pos {
            return Err(corrupt(format!(
                "table shape {rows}×{dim} exceeds the remaining payload"
            )));
        }
        let mut m = Embedding::zeros(rows, dim);
        for x in m.as_mut_slice() {
            *x = self.f64()?;
        }
        Ok(m)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven
// ---------------------------------------------------------------------------

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`, as used in the checkpoint header.
pub fn crc32(bytes: &[u8]) -> u32 {
    // The table is tiny to build; recomputing it per call keeps this
    // dependency-free without statics. Checkpoint writes are epoch-rate.
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_linalg::SplitMix64;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("logirec-ckpt-{name}-{}", std::process::id()))
    }

    fn sample_checkpoint() -> Checkpoint {
        let mut rng = SplitMix64::new(7);
        // Step the RNG mid-stream so the saved state is not a fresh seed.
        for _ in 0..23 {
            rng.next_u64();
        }
        let tags = Embedding::normal(3, 4, 0.1, &mut rng);
        let items = Embedding::normal(5, 4, 0.1, &mut rng);
        let users = Embedding::normal(6, 5, 0.1, &mut rng);
        Checkpoint {
            geometry: Geometry::Hyperbolic,
            dim: 4,
            layers: 2,
            precision: Precision::F64,
            epoch: 11,
            rng_state: rng.state(),
            lr_scale: 0.25,
            bad_rounds: 1,
            history: vec![
                EpochStats { epoch: 9, rank_loss: 0.8, logic_loss: 0.1, val_recall10: None },
                EpochStats {
                    epoch: 10,
                    rank_loss: 0.7,
                    logic_loss: 0.09,
                    val_recall10: Some(0.31),
                },
            ],
            recoveries: vec![
                Recovery {
                    epoch: 4,
                    reason: "non-finite gradients in 2 steps".into(),
                    action: RecoveryAction::SkippedSteps { steps: 2 },
                },
                Recovery {
                    epoch: 7,
                    reason: "item 3 escaped the Poincaré ball".into(),
                    action: RecoveryAction::RolledBack { lr_scale: 0.5 },
                },
            ],
            alpha: Some(vec![0.4, 0.9, 0.1]),
            best: Some(BestSnapshot {
                recall: 0.31,
                tags: tags.clone(),
                items: items.clone(),
                users: users.clone(),
            }),
            tags,
            items,
            users,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let ck = sample_checkpoint();
        let path = tmp("roundtrip");
        save(&ck, &path).expect("save");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded, ck);
        // The restored RNG must continue the exact stream.
        let mut original = SplitMix64::from_state(ck.rng_state);
        let mut restored = SplitMix64::from_state(loaded.rng_state);
        for _ in 0..64 {
            assert_eq!(original.next_u64(), restored.next_u64());
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn round_trip_with_empty_options() {
        let mut ck = sample_checkpoint();
        ck.alpha = None;
        ck.best = None;
        ck.history.clear();
        ck.recoveries.clear();
        let path = tmp("empties");
        save(&ck, &path).expect("save");
        assert_eq!(load(&path).expect("load"), ck);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let path = tmp("magic");
        fs::write(&path, b"NOTACKPT0000000000000000000000").unwrap();
        assert!(matches!(load(&path).unwrap_err(), CheckpointError::BadMagic));

        let ck = sample_checkpoint();
        save(&ck, &path).expect("save");
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 99; // version
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path).unwrap_err(), CheckpointError::BadVersion(99)));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_truncation_at_every_region() {
        let ck = sample_checkpoint();
        let path = tmp("trunc");
        save(&ck, &path).expect("save");
        let bytes = fs::read(&path).unwrap();
        for keep in [0, 7, 23, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            let err = load(&path).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Corrupt(_) | CheckpointError::BadMagic),
                "keep={keep}: {err}"
            );
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_every_single_bit_flip_in_the_payload() {
        let ck = sample_checkpoint();
        let path = tmp("bitflip");
        save(&ck, &path).expect("save");
        let bytes = fs::read(&path).unwrap();
        let mut rng = SplitMix64::new(77);
        // Sample a spread of payload byte positions; every flip must be
        // caught by the CRC.
        for _ in 0..64 {
            let mut corrupted = bytes.clone();
            let pos = 24 + rng.index(bytes.len() - 24);
            corrupted[pos] ^= 1 << rng.index(8);
            fs::write(&path, &corrupted).unwrap();
            assert!(
                matches!(load(&path).unwrap_err(), CheckpointError::Corrupt(_)),
                "bit flip at byte {pos} went undetected"
            );
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn precision_tag_round_trips() {
        let mut ck = sample_checkpoint();
        ck.precision = Precision::F32;
        let path = tmp("precision");
        save(&ck, &path).expect("save");
        let loaded = load(&path).expect("load");
        assert_eq!(loaded.precision, Precision::F32);
        assert_eq!(loaded, ck);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn version1_files_load_as_f64() {
        // Hand-build a pre-precision (version 1) file: the v2 payload minus
        // its trailing precision byte, under a version-1 header.
        let ck = sample_checkpoint();
        let payload = encode_payload(&ck);
        let v1_payload = &payload[..payload.len() - 1];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(v1_payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(v1_payload).to_le_bytes());
        bytes.extend_from_slice(v1_payload);
        let path = tmp("v1");
        fs::write(&path, &bytes).unwrap();
        let loaded = load(&path).expect("v1 checkpoint must load");
        assert_eq!(loaded.precision, Precision::F64);
        assert_eq!(loaded, ck);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn save_replaces_previous_checkpoint_atomically() {
        let path = tmp("replace");
        let mut ck = sample_checkpoint();
        save(&ck, &path).expect("first save");
        ck.epoch = 12;
        save(&ck, &path).expect("second save");
        assert_eq!(load(&path).expect("load").epoch, 12);
        // No .tmp sibling left behind.
        let mut name = path.file_name().expect("file name").to_os_string();
        name.push(".tmp");
        assert!(!path.with_file_name(name).exists(), "temp file left behind");
        let _ = fs::remove_file(&path);
    }
}
