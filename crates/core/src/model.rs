//! The LogiRec model state and its forward/backward passes.
//!
//! Parameters (Section IV-A):
//! * `tags` — hyperplane defining points `c_t ∈ P^d`, one per tag;
//! * `items` — item points `v^P ∈ P^d`;
//! * `users` — user points `u^H ∈ H^d` (ambient `d+1` coordinates).
//!
//! The forward pass maps items into the Lorentz model via `p⁻¹` (Eq. 2),
//! projects users and items to the tangent space at the origin (Eq. 6),
//! runs `L` propagation layers (Eq. 7), and maps the layer sums back onto
//! the hyperboloid (Eq. 8). The backward pass chains the analytic VJPs of
//! each stage in reverse.

use logirec_data::{Dataset, InteractionSet};
use logirec_hyperbolic::{lorentz, maps, poincare};
use logirec_linalg::{ops, Embedding, Scalar, SplitMix64};

use crate::config::{Geometry, LogiRecConfig};
use crate::graph::PropGraph;

/// Cached forward-pass tensors (recomputed every SGD step).
#[derive(Debug, Clone)]
pub struct ForwardState<S: Scalar = f64> {
    /// Items in the carrier space (`p⁻¹(v^P)`; `V × ambient`).
    pub item_carrier: Embedding<S>,
    /// Layer-0 user tangents (`U × d`).
    pub z_u0: Embedding<S>,
    /// Layer-0 item tangents (`V × d`).
    pub z_v0: Embedding<S>,
    /// Final user tangents `Σ_l z_u^l` (`U × d`).
    pub user_final_tan: Embedding<S>,
    /// Final item tangents (`V × d`).
    pub item_final_tan: Embedding<S>,
    /// Final user embeddings in the carrier space (`U × ambient`).
    pub user_final: Embedding<S>,
    /// Final item embeddings in the carrier space (`V × ambient`).
    pub item_final: Embedding<S>,
}

/// The LogiRec / LogiRec++ model, generic over the working precision `S`
/// (`f64` by default — the bit-exact reference path; `f32` for the
/// single-precision training/serving path selected by
/// [`crate::Precision::F32`]).
#[derive(Debug, Clone)]
pub struct LogiRec<S: Scalar = f64> {
    /// Hyperparameters.
    pub cfg: LogiRecConfig,
    /// Tag hyperplane defining points (`S × d`).
    pub tags: Embedding<S>,
    /// Item Poincaré points (`S × d`), or Euclidean points in the ablation.
    pub items: Embedding<S>,
    /// User carrier points (`U × ambient`).
    pub users: Embedding<S>,
    state: Option<ForwardState<S>>,
}

impl<S: Scalar> LogiRec<S> {
    /// Initializes a model for `dataset`.
    ///
    /// Tag centers are seeded by taxonomy level — coarse tags start near
    /// the origin (large derived radius), fine tags farther out (small
    /// radius) — which matches the geometry the hierarchy loss drives
    /// toward and speeds up convergence considerably.
    pub fn new(cfg: LogiRecConfig, dataset: &Dataset) -> Self {
        let mut rng = SplitMix64::new(cfg.seed);
        let dim = cfg.dim;
        let n_tags = dataset.n_tags();
        let max_level = dataset.taxonomy.max_level().max(1) as f64;

        // Tag directions are inherited from the parent (plus noise) so a
        // child's hyperplane starts roughly along its parent's ray — the
        // configuration in which the derived balls nest (Lemma 2) — and
        // norms grow with depth: 0.25 (level 1) … 0.7 (deepest), giving
        // coarse tags large regions and fine tags small ones.
        // Initialization math always runs in f64 — the RNG stream and the
        // derived geometry are precision-independent; the finished tables
        // are rounded into `S` once at the end (identity for `S = f64`).
        let mut tag_rng = rng.fork(1);
        let mut tags: Embedding = Embedding::zeros(n_tags, dim);
        for t in 0..n_tags {
            let level = dataset.taxonomy.level(t) as f64;
            let target = 0.25 + 0.45 * (level - 1.0) / (max_level - 1.0).max(1.0);
            let mut dir: Vec<f64> = (0..dim).map(|_| tag_rng.normal()).collect();
            if let Some(p) = dataset.taxonomy.parent(t) {
                // Parent ids precede children, so its row is final.
                let pdir = tags.row(p).to_vec();
                let pn = ops::norm(&pdir).max(1e-9);
                let dn = ops::norm(&dir).max(1e-9);
                ops::scale(&mut dir, 0.35 / dn);
                ops::axpy(1.0 / pn, &pdir, &mut dir);
            }
            let n = ops::norm(&dir).max(1e-9);
            let row = tags.row_mut(t);
            for (r, d) in row.iter_mut().zip(&dir) {
                *r = d * target / n;
            }
        }

        // Items start near their deepest (most specific) tag's defining
        // point plus noise: membership (Eq. 3) then begins close to
        // satisfied and the tag structure shapes the geometry from the
        // first step.
        let mut items: Embedding =
            Embedding::poincare_burn_in(dataset.n_items(), dim, 0.05, &mut rng.fork(2));
        for v in 0..dataset.n_items() {
            let deepest = dataset.item_tags[v]
                .iter()
                .copied()
                .max_by_key(|&t| dataset.taxonomy.level(t));
            if let Some(t) = deepest {
                let row = items.row_mut(v);
                ops::axpy(1.0, tags.row(t), row);
                poincare::project(row);
            }
        }

        let users: Embedding = match cfg.geometry {
            Geometry::Hyperbolic => {
                let tangent: Embedding = Embedding::normal(dataset.n_users(), dim, 0.05, &mut rng.fork(3));
                let mut u: Embedding = Embedding::zeros(dataset.n_users(), dim + 1);
                for r in 0..u.rows() {
                    let point = lorentz::exp_origin(tangent.row(r));
                    u.row_mut(r).copy_from_slice(&point);
                }
                u
            }
            Geometry::Euclidean => {
                Embedding::normal(dataset.n_users(), dim, 0.05, &mut rng.fork(3))
            }
        };

        Self {
            cfg,
            tags: tags.cast(),
            items: items.cast(),
            users: users.cast(),
            state: None,
        }
    }

    /// Rounds every parameter table into precision `T`, dropping any cached
    /// forward state (re-run [`Self::propagate`] on the result). Casting
    /// `f64 → f64` is bit-exact, so this is also a cheap way to detach a
    /// model from its state.
    pub fn cast<T: Scalar>(&self) -> LogiRec<T> {
        LogiRec {
            cfg: self.cfg.clone(),
            tags: self.tags.cast(),
            items: self.items.cast(),
            users: self.users.cast(),
            state: None,
        }
    }

    /// Reassembles a model from previously trained parameter tables
    /// (used by [`crate::io::load_model`]). Shapes must be consistent with
    /// `cfg`; call [`Self::propagate`] before scoring.
    pub fn from_parts(
        cfg: LogiRecConfig,
        tags: Embedding<S>,
        items: Embedding<S>,
        users: Embedding<S>,
    ) -> Self {
        assert_eq!(tags.dim(), cfg.dim, "tag table width");
        assert_eq!(items.dim(), cfg.dim, "item table width");
        assert_eq!(users.dim(), cfg.ambient_dim(), "user table width");
        Self { cfg, tags, items, users, state: None }
    }

    /// Runs the forward pass against the training graph and caches the
    /// result (required before [`Self::state`], scoring, or backward).
    ///
    /// Builds a throwaway [`PropGraph`]; call sites that propagate in a
    /// loop (the trainer) should build the graph once and use
    /// [`Self::propagate_graph`].
    pub fn propagate(&mut self, adj: &InteractionSet) {
        self.propagate_graph(&PropGraph::build(adj));
    }

    /// [`Self::propagate`] against a pre-built propagation cache.
    pub fn propagate_graph(&mut self, adj: &PropGraph<S>) {
        let fwd_timer = self.cfg.telemetry.timer();
        let dim = self.cfg.dim;
        let (item_carrier, z_u0, z_v0) = match self.cfg.geometry {
            Geometry::Hyperbolic => {
                let threads = self.cfg.train_threads;
                // The `_into` kernels write each row in place: the forward
                // pass performs zero per-row allocations.
                let mut carrier = Embedding::zeros(self.items.rows(), dim + 1);
                crate::parallel::for_each_row(&mut carrier, threads, |v, out| {
                    maps::poincare_to_lorentz_into(self.items.row(v), out);
                });
                let mut z_v0 = Embedding::zeros(self.items.rows(), dim);
                crate::parallel::for_each_row(&mut z_v0, threads, |v, out| {
                    lorentz::log_origin_into(carrier.row(v), out);
                });
                let mut z_u0 = Embedding::zeros(self.users.rows(), dim);
                crate::parallel::for_each_row(&mut z_u0, threads, |u, out| {
                    lorentz::log_origin_into(self.users.row(u), out);
                });
                (carrier, z_u0, z_v0)
            }
            Geometry::Euclidean => (self.items.clone(), self.users.clone(), self.items.clone()),
        };

        let (user_final_tan, item_final_tan) = crate::graph::propagate_forward_graph(
            adj,
            &z_u0,
            &z_v0,
            self.cfg.layers,
            self.cfg.train_threads,
        );

        let (user_final, item_final) = match self.cfg.geometry {
            Geometry::Hyperbolic => {
                let threads = self.cfg.train_threads;
                let mut uf = Embedding::zeros(user_final_tan.rows(), dim + 1);
                crate::parallel::for_each_row(&mut uf, threads, |u, out| {
                    lorentz::exp_origin_into(user_final_tan.row(u), out);
                });
                let mut vf = Embedding::zeros(item_final_tan.rows(), dim + 1);
                crate::parallel::for_each_row(&mut vf, threads, |v, out| {
                    lorentz::exp_origin_into(item_final_tan.row(v), out);
                });
                (uf, vf)
            }
            Geometry::Euclidean => (user_final_tan.clone(), item_final_tan.clone()),
        };

        self.state = Some(ForwardState {
            item_carrier,
            z_u0,
            z_v0,
            user_final_tan,
            item_final_tan,
            user_final,
            item_final,
        });
        self.cfg.telemetry.observe_us("gcn.propagate_us", fwd_timer);
    }

    /// The cached forward state; panics if [`Self::propagate`] has not run.
    pub fn state(&self) -> &ForwardState<S> {
        self.state.as_ref().expect("propagate() must run before accessing state")
    }

    /// True once a forward pass has been cached.
    pub fn has_state(&self) -> bool {
        self.state.is_some()
    }

    /// Backward pass of the ranking head: takes dense ambient gradients
    /// w.r.t. the **final** user/item embeddings and returns gradients
    /// w.r.t. the user parameters (ambient) and item parameters (Poincaré /
    /// Euclidean `d`-dim).
    pub fn backward_rank(
        &self,
        g_user_final: &Embedding<S>,
        g_item_final: &Embedding<S>,
        adj: &InteractionSet,
    ) -> (Embedding<S>, Embedding<S>) {
        self.backward_rank_graph(g_user_final, g_item_final, &PropGraph::build(adj))
    }

    /// [`Self::backward_rank`] against a pre-built propagation cache.
    pub fn backward_rank_graph(
        &self,
        g_user_final: &Embedding<S>,
        g_item_final: &Embedding<S>,
        adj: &PropGraph<S>,
    ) -> (Embedding<S>, Embedding<S>) {
        let st = self.state();
        let dim = self.cfg.dim;
        match self.cfg.geometry {
            Geometry::Hyperbolic => {
                let threads = self.cfg.train_threads;
                let mut g_uft = Embedding::zeros(self.users.rows(), dim);
                crate::parallel::for_each_row(&mut g_uft, threads, |u, out| {
                    lorentz::exp_origin_vjp_into(st.user_final_tan.row(u), g_user_final.row(u), out);
                });
                let mut g_vft = Embedding::zeros(self.items.rows(), dim);
                crate::parallel::for_each_row(&mut g_vft, threads, |v, out| {
                    lorentz::exp_origin_vjp_into(st.item_final_tan.row(v), g_item_final.row(v), out);
                });
                let (g_u0, g_v0) = crate::graph::propagate_backward_graph(
                    adj,
                    &g_uft,
                    &g_vft,
                    self.cfg.layers,
                    self.cfg.train_threads,
                );
                let mut g_users = Embedding::zeros(self.users.rows(), dim + 1);
                crate::parallel::for_each_row(&mut g_users, threads, |u, out| {
                    lorentz::log_origin_vjp_into(self.users.row(u), g_u0.row(u), out);
                });
                let mut g_items = Embedding::zeros(self.items.rows(), dim);
                crate::parallel::for_each_row(&mut g_items, threads, |v, out| {
                    // One d+1 temporary per row: the two chained VJPs have
                    // incompatible widths, so a hand-off buffer is needed.
                    let g_h = lorentz::log_origin_vjp(st.item_carrier.row(v), g_v0.row(v));
                    maps::poincare_to_lorentz_vjp_into(self.items.row(v), &g_h, out);
                });
                (g_users, g_items)
            }
            Geometry::Euclidean => crate::graph::propagate_backward_graph(
                adj,
                g_user_final,
                g_item_final,
                self.cfg.layers,
                self.cfg.train_threads,
            ),
        }
    }

    /// Distance between a propagated user and item in the carrier space.
    pub fn pair_distance(&self, u: usize, v: usize) -> f64 {
        let st = self.state();
        match self.cfg.geometry {
            Geometry::Hyperbolic => {
                lorentz::distance(st.user_final.row(u), st.item_final.row(v)).to_f64()
            }
            Geometry::Euclidean => {
                ops::dist(st.user_final.row(u), st.item_final.row(v)).to_f64()
            }
        }
    }

    /// Distance of a propagated user embedding to the space origin — the
    /// raw granularity score GR_u (Eq. 13).
    pub fn user_origin_distance(&self, u: usize) -> f64 {
        let st = self.state();
        match self.cfg.geometry {
            Geometry::Hyperbolic => lorentz::distance_to_origin(st.user_final.row(u)).to_f64(),
            Geometry::Euclidean => ops::norm(st.user_final.row(u)).to_f64(),
        }
    }

    /// Final item embedding projected to Poincaré coordinates (used for the
    /// Fig. 7/8 visualizations). In the Euclidean ablation the propagated
    /// vector is returned as-is.
    pub fn item_poincare(&self, v: usize) -> Vec<f64> {
        let st = self.state();
        let row = match self.cfg.geometry {
            Geometry::Hyperbolic => maps::lorentz_to_poincare(st.item_final.row(v)),
            Geometry::Euclidean => st.item_final.row(v).to_vec(),
        };
        row.iter().map(|x| x.to_f64()).collect()
    }

    /// Final user embedding projected to Poincaré coordinates.
    pub fn user_poincare(&self, u: usize) -> Vec<f64> {
        let st = self.state();
        let row = match self.cfg.geometry {
            Geometry::Hyperbolic => maps::lorentz_to_poincare(st.user_final.row(u)),
            Geometry::Euclidean => st.user_final.row(u).to_vec(),
        };
        row.iter().map(|x| x.to_f64()).collect()
    }

    /// Checks every parameter table for NaN/∞ — the invariant each
    /// optimizer step must preserve.
    pub fn all_finite(&self) -> bool {
        self.tags.all_finite() && self.items.all_finite() && self.users.all_finite()
    }

    /// Drops the cached forward state (e.g. after restoring parameter
    /// tables from a checkpoint); re-run [`Self::propagate`] before
    /// scoring.
    pub fn clear_state(&mut self) {
        self.state = None;
    }

    /// Appends one user parameter row (carrier coordinates) and, when a
    /// forward state is cached, extends every state tensor in lockstep.
    ///
    /// A freshly folded-in user has no edges in the propagation graph, so
    /// each GCN layer passes its tangent through unchanged and the layer
    /// sum is `L` repeated additions of `z₀` — replicated here exactly as
    /// [`crate::graph::propagate_forward_graph`] computes it, making the
    /// extended state bit-identical to a full re-propagation against the
    /// grown graph. Returns the new user's id.
    pub fn push_user_row(&mut self, row: &[S]) -> usize {
        assert_eq!(row.len(), self.cfg.ambient_dim(), "user row width");
        self.users.push_row(row);
        if let Some(st) = self.state.as_mut() {
            let z0 = match self.cfg.geometry {
                Geometry::Hyperbolic => lorentz::log_origin(row),
                Geometry::Euclidean => row.to_vec(),
            };
            let tan = degree_zero_layer_sum(&z0, self.cfg.layers);
            let final_row = match self.cfg.geometry {
                Geometry::Hyperbolic => lorentz::exp_origin(&tan),
                Geometry::Euclidean => tan.clone(),
            };
            st.z_u0.push_row(&z0);
            st.user_final_tan.push_row(&tan);
            st.user_final.push_row(&final_row);
        }
        self.users.rows() - 1
    }

    /// Appends one item parameter row (Poincaré / Euclidean coordinates),
    /// extending the cached forward state like [`Self::push_user_row`].
    /// Returns the new item's id.
    pub fn push_item_row(&mut self, row: &[S]) -> usize {
        assert_eq!(row.len(), self.cfg.dim, "item row width");
        self.items.push_row(row);
        if let Some(st) = self.state.as_mut() {
            match self.cfg.geometry {
                Geometry::Hyperbolic => {
                    let carrier = maps::poincare_to_lorentz(row);
                    let z0 = lorentz::log_origin(&carrier);
                    let tan = degree_zero_layer_sum(&z0, self.cfg.layers);
                    let final_row = lorentz::exp_origin(&tan);
                    st.item_carrier.push_row(&carrier);
                    st.z_v0.push_row(&z0);
                    st.item_final_tan.push_row(&tan);
                    st.item_final.push_row(&final_row);
                }
                Geometry::Euclidean => {
                    // The Euclidean forward pass uses the item table itself
                    // as both carrier and layer-0 tangent.
                    let tan = degree_zero_layer_sum(row, self.cfg.layers);
                    st.item_carrier.push_row(row);
                    st.z_v0.push_row(row);
                    st.item_final_tan.push_row(&tan);
                    st.item_final.push_row(&tan);
                }
            }
        }
        self.items.rows() - 1
    }
}

/// The final tangent of a degree-0 node: with `L ≥ 1` layers, the layer
/// loop accumulates the unchanged `z₀` once per layer (repeated addition,
/// matching the propagation kernel's rounding exactly); with `L = 0` the
/// forward pass is the identity.
fn degree_zero_layer_sum<S: Scalar>(z0: &[S], layers: usize) -> Vec<S> {
    if layers == 0 {
        return z0.to_vec();
    }
    let mut tan = vec![S::ZERO; z0.len()];
    for _ in 0..layers {
        ops::axpy(S::ONE, z0, &mut tan);
    }
    tan
}

impl<S: Scalar> logirec_eval::Ranker for LogiRec<S> {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        let st = self.state();
        let urow = st.user_final.row(u);
        match self.cfg.geometry {
            Geometry::Hyperbolic => {
                for (v, o) in out.iter_mut().enumerate() {
                    *o = -lorentz::distance(urow, st.item_final.row(v)).to_f64();
                }
            }
            Geometry::Euclidean => {
                for (v, o) in out.iter_mut().enumerate() {
                    *o = -ops::dist(urow, st.item_final.row(v)).to_f64();
                }
            }
        }
    }
}

/// Sanity helper for tests: asserts all item parameters stay in the ball.
pub fn assert_items_in_ball<S: Scalar>(model: &LogiRec<S>) {
    if model.cfg.geometry == Geometry::Hyperbolic {
        for v in 0..model.items.rows() {
            assert!(poincare::in_ball(model.items.row(v)), "item {v} escaped the ball");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale};

    fn tiny_model() -> (LogiRec, Dataset) {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let model = LogiRec::new(LogiRecConfig::test_config(), &ds);
        (model, ds)
    }

    #[test]
    fn init_shapes_match_dataset() {
        let (m, ds) = tiny_model();
        assert_eq!(m.tags.rows(), ds.n_tags());
        assert_eq!(m.items.rows(), ds.n_items());
        assert_eq!(m.users.rows(), ds.n_users());
        assert_eq!(m.users.dim(), m.cfg.dim + 1);
        assert!(m.all_finite());
    }

    #[test]
    fn init_respects_manifolds() {
        let (m, ds) = tiny_model();
        for v in 0..ds.n_items() {
            assert!(poincare::in_ball(m.items.row(v)));
        }
        for u in 0..ds.n_users() {
            assert!(lorentz::on_manifold(m.users.row(u), 1e-9));
        }
        for t in 0..ds.n_tags() {
            let n = ops::norm(m.tags.row(t));
            assert!((0.1..0.95).contains(&n), "tag norm {n}");
        }
    }

    #[test]
    fn tag_init_norm_grows_with_level() {
        let (m, ds) = tiny_model();
        // Flat fixed-width accumulators indexed by taxonomy level — no
        // per-level Vec allocations.
        let mut level_sums = [0.0f64; 5];
        let mut level_counts = [0usize; 5];
        for t in 0..ds.n_tags() {
            let level = ds.taxonomy.level(t);
            level_sums[level] += ops::norm(m.tags.row(t));
            level_counts[level] += 1;
        }
        let avg = |l: usize| level_sums[l] / level_counts[l].max(1) as f64;
        assert!(avg(1) < avg(4));
    }

    #[test]
    fn propagate_produces_manifold_outputs() {
        let (mut m, ds) = tiny_model();
        m.propagate(&ds.train);
        let st = m.state();
        for u in 0..ds.n_users() {
            assert!(lorentz::on_manifold(st.user_final.row(u), 1e-8));
        }
        for v in 0..ds.n_items() {
            assert!(lorentz::on_manifold(st.item_final.row(v), 1e-8));
        }
    }

    #[test]
    fn scoring_requires_state() {
        let (m, _) = tiny_model();
        assert!(!m.has_state());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.state();
        }));
        assert!(result.is_err());
    }

    #[test]
    fn euclidean_variant_has_consistent_shapes() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(2);
        let mut cfg = LogiRecConfig::test_config();
        cfg.geometry = Geometry::Euclidean;
        let mut m: LogiRec = LogiRec::new(cfg, &ds);
        assert_eq!(m.users.dim(), m.cfg.dim);
        m.propagate(&ds.train);
        assert_eq!(m.state().user_final.dim(), m.cfg.dim);
        assert!(m.pair_distance(0, 0) >= 0.0);
    }

    #[test]
    fn backward_rank_matches_finite_differences_through_full_chain() {
        // End-to-end gradient check: loss = d(u_final, v_final) for one
        // pair, differentiated w.r.t. a user parameter (via tangent
        // perturbation) and an item parameter.
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(3);
        let mut cfg = LogiRecConfig::test_config();
        cfg.dim = 4;
        cfg.layers = 2;
        let mut m = LogiRec::new(cfg, &ds);
        m.propagate(&ds.train);

        let (u, v) = (0usize, ds.train.items_of(0)[0]);
        let st = m.state();
        let (gu, gv) = lorentz::distance_vjp(st.user_final.row(u), st.item_final.row(v), 1.0);
        let mut g_user_final = Embedding::zeros(m.users.rows(), m.cfg.dim + 1);
        let mut g_item_final = Embedding::zeros(m.items.rows(), m.cfg.dim + 1);
        g_user_final.row_mut(u).copy_from_slice(&gu);
        g_item_final.row_mut(v).copy_from_slice(&gv);
        let (g_users, g_items) = m.backward_rank(&g_user_final, &g_item_final, &ds.train);

        // Item parameter check (Euclidean coordinates, direct FD).
        let h = 1e-6;
        let probe_item = ds.train.items_of(1)[0];
        for col in 0..2 {
            let mut mp = m.clone();
            mp.items.row_mut(probe_item)[col] += h;
            mp.propagate(&ds.train);
            let fp = mp.pair_distance(u, v);
            let mut mm = m.clone();
            mm.items.row_mut(probe_item)[col] -= h;
            mm.propagate(&ds.train);
            let fm = mm.pair_distance(u, v);
            let num = (fp - fm) / (2.0 * h);
            let ana = g_items.row(probe_item)[col];
            assert!(
                (num - ana).abs() < 1e-4 * (1.0 + num.abs()),
                "item grad[{probe_item}][{col}]: {num} vs {ana}"
            );
        }

        // User parameter check via tangent perturbation (stays on H^d).
        let probe_user = 1usize;
        let z0 = lorentz::log_origin(m.users.row(probe_user));
        for col in 0..2 {
            let mut zp = z0.clone();
            zp[col] += h;
            let mut mp = m.clone();
            mp.users.row_mut(probe_user).copy_from_slice(&lorentz::exp_origin(&zp));
            mp.propagate(&ds.train);
            let fp = mp.pair_distance(u, v);
            let mut zm = z0.clone();
            zm[col] -= h;
            let mut mm = m.clone();
            mm.users.row_mut(probe_user).copy_from_slice(&lorentz::exp_origin(&zm));
            mm.propagate(&ds.train);
            let fm = mm.pair_distance(u, v);
            let num = (fp - fm) / (2.0 * h);
            // Chain the ambient user gradient through exp_origin to tangent
            // coordinates for comparison.
            let ana_tan = lorentz::exp_origin_vjp(&z0, g_users.row(probe_user));
            assert!(
                (num - ana_tan[col]).abs() < 1e-4 * (1.0 + num.abs()),
                "user grad[{probe_user}][{col}]: {num} vs {}",
                ana_tan[col]
            );
        }
    }

    #[test]
    fn pushed_degree_zero_rows_match_full_repropagation() {
        let (mut m, ds) = tiny_model();
        m.propagate(&ds.train);
        let tangent = vec![0.01; m.cfg.dim];
        let u = m.push_user_row(&lorentz::exp_origin(&tangent));
        let v = m.push_item_row(&vec![0.005; m.cfg.dim]);
        assert_eq!(u, ds.n_users());
        assert_eq!(v, ds.n_items());
        let incremental = m.state().clone();

        // Re-propagating against the grown graph (the new rows have no
        // edges) must reproduce the incrementally extended state bit for
        // bit.
        let pairs: Vec<(usize, usize)> = ds.train.iter_pairs().collect();
        let grown = InteractionSet::from_pairs(ds.n_users() + 1, ds.n_items() + 1, &pairs);
        m.propagate(&grown);
        let full = m.state();
        assert_eq!(incremental.user_final, full.user_final);
        assert_eq!(incremental.item_final, full.item_final);
        assert_eq!(incremental.user_final_tan, full.user_final_tan);
        assert_eq!(incremental.item_final_tan, full.item_final_tan);
        assert_eq!(incremental.z_u0, full.z_u0);
        assert_eq!(incremental.z_v0, full.z_v0);
        assert_eq!(incremental.item_carrier, full.item_carrier);
    }

    #[test]
    fn ranker_scores_are_negative_distances() {
        let (mut m, ds) = tiny_model();
        m.propagate(&ds.train);
        let mut out = vec![0.0; ds.n_items()];
        logirec_eval::Ranker::score_user(&m, 0, &mut out);
        for (v, &s) in out.iter().enumerate() {
            assert!((s + m.pair_distance(0, v)).abs() < 1e-12);
        }
    }
}
