//! Property-based tests of metrics, top-K selection, and statistics.

use logirec_eval::ranking::{top_k_indices, top_k_scored};
use logirec_eval::{mean_std, ndcg_at_k, recall_at_k, wilcoxon_signed_rank};
use proptest::prelude::*;

proptest! {
    #[test]
    fn top_k_matches_full_sort(scores in prop::collection::vec(-100.0f64..100.0, 1..200), k in 1usize..30) {
        let top = top_k_indices(&scores, k);
        // Reference: argsort descending, stable by index.
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b))
        });
        idx.truncate(k.min(scores.len()));
        prop_assert_eq!(top, idx);
    }

    #[test]
    fn top_k_scored_is_arrival_order_independent(
        scores in prop::collection::vec(-10.0f64..10.0, 1..150),
        k in 1usize..25,
        perm_seed in 0u64..1_000,
    ) {
        // Quantize so equal scores actually occur and exercise the
        // (score, index) tie-break under permuted arrival.
        let scores: Vec<f64> = scores.iter().map(|s| (s * 4.0).round() / 4.0).collect();
        let mut order: Vec<usize> = (0..scores.len()).collect();
        let mut rng = logirec_linalg::SplitMix64::new(perm_seed);
        rng.shuffle(&mut order);
        let shuffled = top_k_scored(order.iter().map(|&i| (i, scores[i])), k);
        let reference = top_k_indices(&scores, k);
        let items: Vec<usize> = shuffled.iter().map(|&(i, _)| i).collect();
        prop_assert_eq!(&items, &reference, "selection must not depend on arrival order");
        for &(i, s) in &shuffled {
            prop_assert_eq!(s.to_bits(), scores[i].to_bits());
        }
    }

    #[test]
    fn metrics_are_bounded(
        top in prop::collection::btree_set(0usize..50, 0..20),
        truth in prop::collection::btree_set(0usize..50, 0..20),
    ) {
        // Top-k lists are duplicate-free by contract (they are indices of
        // distinct items); order within the set is irrelevant to recall
        // and only shifts NDCG within [0, 1].
        let top: Vec<usize> = top.into_iter().collect();
        let truth: Vec<usize> = truth.into_iter().collect();
        let r = recall_at_k(&top, &truth);
        let n = ndcg_at_k(&top, &truth);
        prop_assert!((0.0..=1.0).contains(&r), "recall {r}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&n), "ndcg {n}");
        // Recall and NDCG are zero together exactly when there are no hits.
        let hits = top.iter().filter(|v| truth.binary_search(v).is_ok()).count();
        prop_assert_eq!(r == 0.0 && !truth.is_empty(), hits == 0 && !truth.is_empty());
    }

    #[test]
    fn ndcg_improves_when_hit_moves_earlier(
        truth_item in 0usize..20,
        pos in 1usize..10,
    ) {
        // A single relevant item at position `pos` vs position `pos-1`.
        let make_list = |p: usize| -> Vec<usize> {
            let mut l: Vec<usize> = (20..30).collect();
            l.insert(p, truth_item);
            l
        };
        let truth = vec![truth_item];
        let later = ndcg_at_k(&make_list(pos), &truth);
        let earlier = ndcg_at_k(&make_list(pos - 1), &truth);
        prop_assert!(earlier > later);
    }

    #[test]
    fn wilcoxon_is_antisymmetric(
        pairs in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 8..100),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        match (wilcoxon_signed_rank(&a, &b), wilcoxon_signed_rank(&b, &a)) {
            (Some(ab), Some(ba)) => {
                prop_assert!((ab.p_two_sided - ba.p_two_sided).abs() < 1e-9);
                prop_assert!((ab.z + ba.z).abs() < 1e-9, "z antisymmetric");
                prop_assert!((ab.w - ba.w).abs() < 1e-9, "min rank sum is symmetric");
            }
            (None, None) => {}
            _ => prop_assert!(false, "one direction degenerate, the other not"),
        }
    }

    #[test]
    fn wilcoxon_detects_uniform_shift(base in prop::collection::vec(0.0f64..1.0, 30..80), shift in 0.01f64..0.5) {
        let shifted: Vec<f64> = base.iter().map(|x| x + shift).collect();
        let w = wilcoxon_signed_rank(&shifted, &base).expect("nonzero diffs");
        prop_assert!(w.significant(0.05), "uniform +{shift} must be significant, p = {}", w.p_two_sided);
        prop_assert!(w.z > 0.0);
    }

    #[test]
    fn mean_std_shift_and_scale(xs in prop::collection::vec(-10.0f64..10.0, 2..50), shift in -5.0f64..5.0) {
        let m = mean_std(&xs);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let ms = mean_std(&shifted);
        prop_assert!((ms.mean - (m.mean + shift)).abs() < 1e-9);
        prop_assert!((ms.std - m.std).abs() < 1e-9, "std is shift-invariant");
        let doubled: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        let md = mean_std(&doubled);
        prop_assert!((md.std - 2.0 * m.std).abs() < 1e-9, "std scales linearly");
    }
}
