//! Statistics: Wilcoxon signed-rank test and mean ± std aggregation.
//!
//! The paper marks LogiRec++'s improvements with `*` "according to the
//! Wilcoxon signed-rank test" and reports every metric as mean ± std over
//! repeated runs; both utilities live here.

/// Outcome of a two-sided Wilcoxon signed-rank test on paired samples.
#[derive(Debug, Clone, Copy)]
pub struct Wilcoxon {
    /// The smaller of W⁺ / W⁻ rank sums.
    pub w: f64,
    /// Number of non-zero-difference pairs actually used.
    pub n_used: usize,
    /// Normal-approximation z statistic (tie-corrected).
    pub z: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
}

impl Wilcoxon {
    /// True when the test rejects equality at the given level.
    pub fn significant(&self, alpha: f64) -> bool {
        self.n_used >= 6 && self.p_two_sided < alpha
    }
}

/// Two-sided Wilcoxon signed-rank test for paired samples `a` vs `b`.
///
/// ```
/// use logirec_eval::wilcoxon_signed_rank;
/// let a: Vec<f64> = (0..30).map(|i| i as f64 + 0.5).collect();
/// let b: Vec<f64> = (0..30).map(|i| i as f64).collect();
/// let w = wilcoxon_signed_rank(&a, &b).unwrap();
/// assert!(w.significant(0.05)); // a uniformly above b
/// ```
///
/// Zero differences are dropped (Wilcoxon's original treatment); ties in
/// `|diff|` receive average ranks with the standard variance correction.
/// Returns `None` when fewer than one non-zero pair remains.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Option<Wilcoxon> {
    assert_eq!(a.len(), b.len(), "paired test requires equal lengths");
    let mut diffs: Vec<f64> =
        a.iter().zip(b).map(|(x, y)| x - y).filter(|d| *d != 0.0).collect();
    let n = diffs.len();
    if n == 0 {
        return None;
    }
    // Rank |diff| ascending with average ranks for ties.
    diffs.sort_by(|x, y| x.abs().partial_cmp(&y.abs()).expect("finite diffs"));
    let mut ranks = vec![0.0; n];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[j + 1].abs() == diffs[i].abs() {
            j += 1;
        }
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }
    let w_plus: f64 =
        diffs.iter().zip(&ranks).filter(|(d, _)| **d > 0.0).map(|(_, r)| *r).sum();
    let total = n as f64 * (n as f64 + 1.0) / 2.0;
    let w_minus = total - w_plus;
    let w = w_plus.min(w_minus);

    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    let z = if var > 0.0 { (w_plus - mean) / var.sqrt() } else { 0.0 };
    let p = 2.0 * (1.0 - std_normal_cdf(z.abs()));
    Some(Wilcoxon { w, n_used: n, z, p_two_sided: p.clamp(0.0, 1.0) })
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7, plenty for significance thresholds).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Mean and sample standard deviation of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std: f64,
}

impl MeanStd {
    /// Formats as the paper's `mm.mm±s.ss` percent style given a scale
    /// factor (100 for fractions → percent).
    pub fn format_percent(&self) -> String {
        format!("{:.2}±{:.2}", self.mean * 100.0, self.std * 100.0)
    }
}

/// Computes mean ± sample std; panics on empty input.
pub fn mean_std(xs: &[f64]) -> MeanStd {
    assert!(!xs.is_empty(), "mean_std of empty slice");
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let std = if xs.len() < 2 {
        0.0
    } else {
        (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)).sqrt()
    };
    MeanStd { mean, std }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn wilcoxon_detects_consistent_improvement() {
        // b is consistently worse than a by a noisy margin.
        let a: Vec<f64> = (0..50).map(|i| 0.5 + 0.01 * (i % 7) as f64 + 0.05).collect();
        let b: Vec<f64> = (0..50).map(|i| 0.5 + 0.01 * (i % 7) as f64).collect();
        let w = wilcoxon_signed_rank(&a, &b).expect("pairs exist");
        assert!(w.significant(0.05), "p = {}", w.p_two_sided);
        assert!(w.z > 0.0);
    }

    #[test]
    fn wilcoxon_accepts_equality_of_identical_noise() {
        // Symmetric differences → no significance.
        let a: Vec<f64> = (0..40).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let b: Vec<f64> = (0..40).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let w = wilcoxon_signed_rank(&a, &b).expect("pairs exist");
        assert!(!w.significant(0.05), "p = {}", w.p_two_sided);
    }

    #[test]
    fn wilcoxon_drops_zero_differences() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 2.0, 2.5, 3.0];
        let w = wilcoxon_signed_rank(&a, &b).expect("pairs exist");
        assert_eq!(w.n_used, 2);
    }

    #[test]
    fn wilcoxon_none_on_all_equal() {
        let a = [1.0, 1.0];
        assert!(wilcoxon_signed_rank(&a, &a).is_none());
    }

    #[test]
    fn wilcoxon_textbook_example() {
        // Classic example (Wilcoxon 1945-style): n = 10 paired samples.
        let a = [125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0];
        let b = [110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0];
        let w = wilcoxon_signed_rank(&a, &b).expect("pairs exist");
        // One zero difference dropped → n = 9; textbook W = 18.
        assert_eq!(w.n_used, 9);
        assert!((w.w - 18.0).abs() < 1e-9, "W = {}", w.w);
    }

    #[test]
    fn mean_std_basics() {
        let m = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((m.std - 2.138).abs() < 1e-3);
        let single = mean_std(&[3.0]);
        assert_eq!(single.std, 0.0);
    }

    #[test]
    fn format_percent_matches_paper_style() {
        let m = MeanStd { mean: 0.0667, std: 0.0005 };
        assert_eq!(m.format_percent(), "6.67±0.05");
    }
}
