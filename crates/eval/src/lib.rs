#![warn(missing_docs)]

//! Evaluation substrate: full-ranking top-K metrics, the Wilcoxon
//! signed-rank significance test, and multi-seed aggregation.
//!
//! Following the paper (Section VI-A2, citing Krichene & Rendle), metrics
//! are computed by ranking **all** items (no sampled negatives), masking the
//! user's known interactions from other splits. Recall@K and NDCG@K are
//! averaged over users with non-empty ground truth; per-user values are kept
//! so two methods can be compared with the Wilcoxon signed-rank test exactly
//! as the paper's `*` markers do.

pub mod metrics;
pub mod ranking;
pub mod stats;

pub use metrics::{ndcg_at_k, recall_at_k};
pub use ranking::{evaluate, evaluate_traced, top_k_scored, EvalResult, Ranker};
pub use stats::{mean_std, wilcoxon_signed_rank, MeanStd};
