//! The full-ranking evaluator.
//!
//! For every user with ground truth in the target split, the evaluator asks
//! the model to score **all** items, masks items the user already
//! interacted with in earlier splits, selects the top-K, and accumulates
//! Recall@K / NDCG@K. Users are processed in parallel with scoped threads.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use logirec_data::{Dataset, Split};
use logirec_obs::Telemetry;

use crate::metrics::{ndcg_at_k, recall_at_k};

/// A trained model that can score every item for a user. Higher is better
/// (distance-based models should negate their distances).
pub trait Ranker: Sync {
    /// Fills `out[v]` with the score of item `v` for user `u`;
    /// `out.len() == n_items`.
    fn score_user(&self, u: usize, out: &mut [f64]);
}

impl<F: Fn(usize, &mut [f64]) + Sync> Ranker for F {
    fn score_user(&self, u: usize, out: &mut [f64]) {
        self(u, out)
    }
}

/// Evaluation output: mean metrics per cutoff plus the per-user Recall
/// vectors used for significance testing.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// `recall[k]` = mean Recall@k over evaluated users.
    pub recall: BTreeMap<usize, f64>,
    /// `ndcg[k]` = mean NDCG@k.
    pub ndcg: BTreeMap<usize, f64>,
    /// Per-user Recall at the largest cutoff, aligned with `users`.
    pub per_user_recall: Vec<f64>,
    /// Per-user NDCG at the largest cutoff, aligned with `users`.
    pub per_user_ndcg: Vec<f64>,
    /// The users that were evaluated (non-empty ground truth).
    pub users: Vec<usize>,
}

impl EvalResult {
    /// Convenience accessor: Recall@k (panics if `k` was not requested).
    pub fn recall_at(&self, k: usize) -> f64 {
        self.recall[&k]
    }

    /// Convenience accessor: NDCG@k.
    pub fn ndcg_at(&self, k: usize) -> f64 {
        self.ndcg[&k]
    }
}

/// Evaluates `ranker` on `split` of `dataset` at the given cutoffs.
///
/// Masking: when evaluating `Test`, items in Train ∪ Validation are removed
/// from the candidate set; when evaluating `Validation`, Train items are
/// removed. `n_threads` ≥ 1 controls the scoped-thread fan-out.
pub fn evaluate(
    ranker: &dyn Ranker,
    dataset: &Dataset,
    split: Split,
    ks: &[usize],
    n_threads: usize,
) -> EvalResult {
    evaluate_traced(ranker, dataset, split, ks, n_threads, &Telemetry::disabled())
}

/// [`evaluate`] with per-phase timing telemetry. Each worker thread records
/// into the `eval.score_user_us` (model scoring) and `eval.rank_metric_us`
/// (masking + top-K + Recall/NDCG) histograms — lock-free relaxed atomics,
/// so the scoped threads never contend — and `eval.users` counts the users
/// evaluated.
pub fn evaluate_traced(
    ranker: &dyn Ranker,
    dataset: &Dataset,
    split: Split,
    ks: &[usize],
    n_threads: usize,
    tel: &Telemetry,
) -> EvalResult {
    assert!(!ks.is_empty(), "at least one cutoff required");
    let h_score = tel.histogram("eval.score_user_us");
    let h_metric = tel.histogram("eval.rank_metric_us");
    let c_users = tel.counter("eval.users");
    let max_k = *ks.iter().max().expect("nonempty");
    let target = dataset.split(split);
    let users: Vec<usize> =
        (0..dataset.n_users()).filter(|&u| !target.items_of(u).is_empty()).collect();
    let n_items = dataset.n_items();

    // Per-user metric rows, written by slot so aggregation happens in a
    // deterministic order afterwards (thread-local partial sums would make
    // the means depend on the thread count through float associativity).
    // Row layout: [recall@k0.., ndcg@k0.., recall@max_k, ndcg@max_k].
    let row_width = 2 * ks.len() + 2;
    let per_user_rows = Mutex::new(vec![0.0f64; users.len() * row_width]);

    let n_threads = n_threads.max(1).min(users.len().max(1));
    let chunk = users.len().div_ceil(n_threads).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = users
            .chunks(chunk)
            .enumerate()
            .map(|(ci, chunk_users)| {
                let per_user_rows = &per_user_rows;
                let offset = ci * chunk;
                let (h_score, h_metric, c_users) =
                    (h_score.clone(), h_metric.clone(), c_users.clone());
                scope.spawn(move || {
                let timed = h_score.is_enabled();
                let mut scores = vec![0.0f64; n_items];
                let mut local = vec![0.0f64; chunk_users.len() * row_width];
                for (slot, &u) in chunk_users.iter().enumerate() {
                    let t0 = timed.then(Instant::now);
                    ranker.score_user(u, &mut scores);
                    let t1 = timed.then(Instant::now);
                    if let (Some(t0), Some(t1)) = (t0, t1) {
                        h_score.record(t1.duration_since(t0).as_micros() as u64);
                    }
                    // Mask known positives from earlier splits.
                    for &v in dataset.train.items_of(u) {
                        scores[v] = f64::NEG_INFINITY;
                    }
                    if split == Split::Test {
                        for &v in dataset.validation.items_of(u) {
                            scores[v] = f64::NEG_INFINITY;
                        }
                    }
                    let top = top_k_indices(&scores, max_k);
                    let truth = dataset.split(split).items_of(u);
                    let row = &mut local[slot * row_width..(slot + 1) * row_width];
                    for (i, &k) in ks.iter().enumerate() {
                        let list = &top[..k.min(top.len())];
                        row[i] = recall_at_k(list, truth);
                        row[ks.len() + i] = ndcg_at_k(list, truth);
                    }
                    row[2 * ks.len()] = recall_at_k(&top, truth);
                    row[2 * ks.len() + 1] = ndcg_at_k(&top, truth);
                    if let Some(t1) = t1 {
                        h_metric.record(t1.elapsed().as_micros() as u64);
                    }
                    c_users.incr();
                }
                    let mut rows = per_user_rows.lock().expect("rows poisoned");
                    let start = offset * row_width;
                    rows[start..start + local.len()].copy_from_slice(&local);
                })
            })
            .collect();
        // Re-raise the first worker panic with its original payload rather
        // than the scope's generic message.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let rows = per_user_rows.into_inner().expect("rows poisoned");
    let n = users.len().max(1) as f64;
    let mut recall_sum = vec![0.0; ks.len()];
    let mut ndcg_sum = vec![0.0; ks.len()];
    let mut per_user_recall = vec![0.0; users.len()];
    let mut per_user_ndcg = vec![0.0; users.len()];
    for slot in 0..users.len() {
        let row = &rows[slot * row_width..(slot + 1) * row_width];
        for i in 0..ks.len() {
            recall_sum[i] += row[i];
            ndcg_sum[i] += row[ks.len() + i];
        }
        per_user_recall[slot] = row[2 * ks.len()];
        per_user_ndcg[slot] = row[2 * ks.len() + 1];
    }
    EvalResult {
        recall: ks.iter().enumerate().map(|(i, &k)| (k, recall_sum[i] / n)).collect(),
        ndcg: ks.iter().enumerate().map(|(i, &k)| (k, ndcg_sum[i] / n)).collect(),
        per_user_recall,
        per_user_ndcg,
        users,
    }
}

/// Indices of the `k` largest scores, best first. Ties break toward the
/// smaller index so results are deterministic.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    // Maintain a min-heap of the best k (value, Reverse(index)) pairs via a
    // sorted insertion buffer — k is tiny (≤ 20 in the paper's protocol), so
    // linear insertion beats a heap's constant factors.
    let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        if s == f64::NEG_INFINITY {
            continue;
        }
        if best.len() < k || s > best[best.len() - 1].0 {
            let mut pos = best
                .binary_search_by(|probe| {
                    probe.0.partial_cmp(&s).expect("no NaN scores").reverse()
                })
                .unwrap_or_else(|e| e);
            // On equal score, keep earlier index first: advance past equals.
            while pos < best.len() && best[pos].0 == s && best[pos].1 < i {
                pos += 1;
            }
            best.insert(pos, (s, i));
            if best.len() > k {
                best.pop();
            }
        }
    }
    best.into_iter().map(|(_, i)| i).collect()
}

/// Top-K selection over an explicit candidate shortlist, in **any** arrival
/// order: keeps the `k` best `(item, score)` pairs under the exact ordering
/// [`top_k_indices`] uses — score descending, ties toward the smaller item
/// index — and skips `NEG_INFINITY` (masked) entries. Feeding every index
/// of a score slice through this function reproduces
/// `top_k_indices(scores, k)` bit for bit, which is what lets an
/// approximate retrieval tier re-rank a shortlist and stay byte-compatible
/// with the exact full-scan path whenever the shortlist covers the catalog.
///
/// Scores must not be NaN (same contract as [`top_k_indices`]).
pub fn top_k_scored(
    candidates: impl IntoIterator<Item = (usize, f64)>,
    k: usize,
) -> Vec<(usize, f64)> {
    if k == 0 {
        return Vec::new();
    }
    // Sorted insertion buffer ordered by (score desc, index asc); unlike
    // `top_k_indices` the acceptance test must compare the index too, since
    // an equal-score candidate with a smaller index arriving late still has
    // to displace the current worst.
    let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
    for (i, s) in candidates {
        if s == f64::NEG_INFINITY {
            continue;
        }
        if best.len() == k {
            let (ws, wi) = best[k - 1];
            if s < ws || (s == ws && i > wi) {
                continue;
            }
        }
        let pos = best.partition_point(|&(bs, bi)| bs > s || (bs == s && bi < i));
        best.insert(pos, (s, i));
        if best.len() > k {
            best.pop();
        }
    }
    best.into_iter().map(|(s, i)| (i, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logirec_data::{DatasetSpec, Scale};

    #[test]
    fn top_k_selects_largest_in_order() {
        let scores = [0.1, 5.0, 3.0, 4.0, -1.0];
        assert_eq!(top_k_indices(&scores, 3), vec![1, 3, 2]);
        assert_eq!(top_k_indices(&scores, 10).len(), 5);
        assert!(top_k_indices(&scores, 0).is_empty());
    }

    #[test]
    fn top_k_skips_masked_scores() {
        let scores = [f64::NEG_INFINITY, 2.0, f64::NEG_INFINITY, 1.0];
        assert_eq!(top_k_indices(&scores, 4), vec![1, 3]);
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        let scores = [1.0, 2.0, 2.0, 2.0];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 2]);
    }

    #[test]
    fn top_k_scored_matches_top_k_indices_over_the_full_range() {
        let scores = [0.1, 5.0, 3.0, 5.0, f64::NEG_INFINITY, 3.0, -1.0];
        for k in 0..=scores.len() + 1 {
            let full = top_k_scored(scores.iter().copied().enumerate(), k);
            let items: Vec<usize> = full.iter().map(|&(i, _)| i).collect();
            assert_eq!(items, top_k_indices(&scores, k), "k={k}");
        }
    }

    #[test]
    fn top_k_scored_late_equal_score_with_smaller_index_displaces_the_worst() {
        // Candidate (item 2, score 2.0) arrives after the buffer is full of
        // equal scores with larger indices: it must still win the seat.
        let got = top_k_scored([(9, 2.0), (7, 2.0), (2, 2.0), (1, 5.0)], 2);
        assert_eq!(got, vec![(1, 5.0), (2, 2.0)]);
    }

    /// An oracle that scores a user's test items highest must achieve
    /// recall = 1, and a random scorer must do much worse.
    #[test]
    fn oracle_beats_random_on_synthetic_data() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(1);
        let oracle = |u: usize, out: &mut [f64]| {
            out.fill(0.0);
            for &v in ds.test.items_of(u) {
                out[v] = 10.0;
            }
        };
        let res = evaluate(&oracle, &ds, Split::Test, &[10, 20], 2);
        assert!(res.recall_at(20) > 0.95, "oracle recall {}", res.recall_at(20));
        assert!(res.ndcg_at(20) > 0.95);

        let anti = |_u: usize, out: &mut [f64]| {
            for (v, o) in out.iter_mut().enumerate() {
                *o = -(v as f64); // fixed arbitrary order
            }
        };
        let res_bad = evaluate(&anti, &ds, Split::Test, &[10, 20], 2);
        assert!(res_bad.recall_at(20) < res.recall_at(20) * 0.8);
    }

    #[test]
    fn masking_excludes_train_items() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(2);
        // Score train items maximally: they must be masked out, so recall
        // stays low.
        let cheater = |u: usize, out: &mut [f64]| {
            out.fill(0.0);
            for &v in ds.train.items_of(u) {
                out[v] = 100.0;
            }
        };
        let res = evaluate(&cheater, &ds, Split::Test, &[10], 1);
        // With all mass on masked items the top-k is arbitrary among 0-score
        // items; recall should be far from 1.
        assert!(res.recall_at(10) < 0.5);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let ds = DatasetSpec::cd(Scale::Tiny).generate(3);
        let scorer = |u: usize, out: &mut [f64]| {
            for (v, o) in out.iter_mut().enumerate() {
                *o = ((u * 31 + v * 17) % 97) as f64;
            }
        };
        let a = evaluate(&scorer, &ds, Split::Test, &[10, 20], 1);
        let b = evaluate(&scorer, &ds, Split::Test, &[10, 20], 4);
        assert!((a.recall_at(10) - b.recall_at(10)).abs() < 1e-12);
        assert!((a.ndcg_at(20) - b.ndcg_at(20)).abs() < 1e-12);
        assert_eq!(a.per_user_recall, b.per_user_recall);
    }

    #[test]
    fn validation_split_masks_only_train() {
        let ds = DatasetSpec::ciao(Scale::Tiny).generate(4);
        let oracle = |u: usize, out: &mut [f64]| {
            out.fill(0.0);
            for &v in ds.validation.items_of(u) {
                out[v] = 10.0;
            }
        };
        let res = evaluate(&oracle, &ds, Split::Validation, &[20], 2);
        assert!(res.recall_at(20) > 0.9);
    }
}
