//! Per-user top-K ranking metrics.

/// Recall@K: fraction of the ground-truth items retrieved in the top-K.
///
/// `top_k` is the ranked recommendation list (best first, already truncated
/// to K, **duplicate-free** — as produced by
/// [`crate::ranking::top_k_indices`]); `truth` is the user's sorted
/// ground-truth item set.
pub fn recall_at_k(top_k: &[usize], truth: &[usize]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let hits = top_k.iter().filter(|v| truth.binary_search(v).is_ok()).count();
    hits as f64 / truth.len() as f64
}

/// NDCG@K with binary relevance:
/// `DCG = Σ_{hits at rank r} 1/log₂(r+1)` (ranks are 1-based), normalized
/// by the ideal DCG of `min(K, |truth|)` leading hits.
pub fn ndcg_at_k(top_k: &[usize], truth: &[usize]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let dcg: f64 = top_k
        .iter()
        .enumerate()
        .filter(|(_, v)| truth.binary_search(v).is_ok())
        .map(|(rank0, _)| 1.0 / ((rank0 + 2) as f64).log2())
        .sum();
    let ideal_hits = truth.len().min(top_k.len().max(1));
    let idcg: f64 = (0..ideal_hits).map(|r| 1.0 / ((r + 2) as f64).log2()).sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let truth = [3, 5, 7];
        let top = [3, 5, 7];
        assert_eq!(recall_at_k(&top, &truth), 1.0);
        assert!((ndcg_at_k(&top, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_scores_zero() {
        assert_eq!(recall_at_k(&[1, 2], &[]), 0.0);
        assert_eq!(ndcg_at_k(&[1, 2], &[]), 0.0);
    }

    #[test]
    fn no_hits_scores_zero() {
        let truth = [10, 11];
        let top = [1, 2, 3];
        assert_eq!(recall_at_k(&top, &truth), 0.0);
        assert_eq!(ndcg_at_k(&top, &truth), 0.0);
    }

    #[test]
    fn recall_counts_fraction_of_truth() {
        let truth = [1, 2, 3, 4];
        let top = [1, 9, 3];
        assert!((recall_at_k(&top, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ndcg_is_position_aware() {
        let truth = [5];
        // Hit at rank 1 vs hit at rank 3.
        let early = ndcg_at_k(&[5, 1, 2], &truth);
        let late = ndcg_at_k(&[1, 2, 5], &truth);
        assert!(early > late);
        assert!((early - 1.0).abs() < 1e-12, "single hit at rank 1 is ideal");
        assert!((late - 1.0 / 4f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn ndcg_idcg_truncates_at_k() {
        // |truth| = 5 but K = 2: ideal is 2 leading hits.
        let truth = [1, 2, 3, 4, 5];
        let top = [1, 2];
        assert!((ndcg_at_k(&top, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recall_with_k_smaller_than_truth_is_bounded() {
        let truth = [1, 2, 3, 4, 5];
        let top = [1, 2];
        assert!((recall_at_k(&top, &truth) - 0.4).abs() < 1e-12);
    }
}
