//! A minimal, fully offline stand-in for the `criterion` benchmark harness.
//!
//! The real `criterion` needs registry access; this workspace must build
//! hermetically, so the subset the bench suite uses is reimplemented with the
//! same names: [`Criterion`] with the builder methods the benches call,
//! [`Bencher::iter`], benchmark groups, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (plain and
//! `name/config/targets` forms).
//!
//! Measurement is deliberately simple: each benchmark warms up for
//! `warm_up_time`, then runs iterations for `measurement_time` and reports
//! the mean wall-clock nanoseconds per iteration on stdout. No statistics,
//! no plots, no baseline comparison — enough to spot order-of-magnitude
//! regressions by eye.

use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{parameter}", function.into()) }
    }

    /// An id consisting of the parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring for the configured
    /// window, and prints the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let end = start + self.measurement;
        let mut iters: u64 = 0;
        while Instant::now() < end {
            std::hint::black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        let ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        println!("{:>14} ns/iter ({iters} iters)", format_ns(ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark harness; mirrors the real crate's builder API.
#[derive(Debug, Clone)]
pub struct Criterion {
    // Accepted for API compatibility; measurement uses a time window, not a
    // sample count, so this only shows up in Debug output.
    #[allow(dead_code)]
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (accepted for API compatibility; this
    /// shim times a single continuous window instead of discrete samples).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets how long each benchmark is measured.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self {
        let id = id.into();
        print!("bench {:<44}", id.label);
        let mut b = Bencher { warm_up: self.warm_up, measurement: self.measurement };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count for the group (API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self {
        let id = id.into();
        print!("bench {:<44}", format!("{}/{}", self.name, id.label));
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
        };
        f(&mut b);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        print!("bench {:<44}", format!("{}/{}", self.name, id.label));
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
        };
        f(&mut b, input);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, either as
/// `criterion_group!(name, target, ...)` or with the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u64;
        fast().bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0, "routine should have been timed at least once");
    }

    #[test]
    fn groups_and_ids_work() {
        let mut c = fast();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 5).label, "f/5");
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_500.0).ends_with("us"));
        assert!(format_ns(3.2e7).ends_with("ms"));
        assert!(format_ns(2.5e9).ends_with('s'));
    }
}
