#![warn(missing_docs)]

//! Tag taxonomy substrate.
//!
//! The paper extracts three *logical relations* from an existing tag
//! taxonomy plus the item–tag matrix (Section IV-B, following Xiong et al.):
//!
//! * **membership** — item `v` carries tag `t`;
//! * **hierarchy** — tag `t_j` is a child of tag `t_i`;
//! * **exclusion** — two tags at the same level that share a parent and have
//!   no common child are assumed mutually exclusive (the assumption the
//!   paper calls *inaccurate and coarse*, motivating LogiRec++'s mining).
//!
//! This crate provides the taxonomy tree, relation extraction, the random
//! taxonomy generator used by the synthetic benchmark datasets, and the tag
//! frequency / exclusion-level machinery behind the consistency weighting
//! (Eq. 11–12).

pub mod generate;
pub mod relations;
pub mod tree;

pub use generate::TaxonomyConfig;
pub use relations::{ExclusionRule, LogicalRelations};
pub use tree::{TagId, Taxonomy};
