//! The taxonomy tree: tags with parent/child links and levels.
//!
//! A taxonomy is a forest of tags rooted at a virtual root (the root is not
//! a tag and never participates in relations). Levels are 1-based: the
//! paper's datasets use η = 4 levels, with level 1 the most abstract (e.g.
//! `<Rock>`) and level 4 the most specific (e.g. `<British Alternative>`).

/// Identifier of a tag; an index into the taxonomy's node table.
pub type TagId = usize;

#[derive(Debug, Clone)]
struct Node {
    parent: Option<TagId>,
    children: Vec<TagId>,
    level: usize,
    name: String,
}

/// An immutable tag taxonomy.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    nodes: Vec<Node>,
    roots: Vec<TagId>,
    max_level: usize,
}

impl Taxonomy {
    /// Builds a taxonomy from `(tag, parent)` records, where `parent = None`
    /// marks a level-1 tag. Records must be supplied in an order where
    /// parents precede children (the generator and loaders do this
    /// naturally); panics otherwise, and panics on self-parenting.
    pub fn from_parents(records: Vec<(String, Option<TagId>)>) -> Self {
        let mut nodes: Vec<Node> = Vec::with_capacity(records.len());
        let mut roots = Vec::new();
        let mut max_level = 0;
        for (id, (name, parent)) in records.into_iter().enumerate() {
            let level = match parent {
                None => 1,
                Some(p) => {
                    assert!(p < id, "parent {p} of tag {id} must precede it");
                    nodes[p].children.push(id);
                    nodes[p].level + 1
                }
            };
            if parent.is_none() {
                roots.push(id);
            }
            max_level = max_level.max(level);
            nodes.push(Node { parent, children: Vec::new(), level, name });
        }
        Self { nodes, roots, max_level }
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the taxonomy has no tags.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Deepest level present (the paper's η; 4 in all benchmark datasets).
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// 1-based level of `tag`.
    pub fn level(&self, tag: TagId) -> usize {
        self.nodes[tag].level
    }

    /// Parent of `tag`, or `None` for level-1 tags.
    pub fn parent(&self, tag: TagId) -> Option<TagId> {
        self.nodes[tag].parent
    }

    /// Direct children of `tag`.
    pub fn children(&self, tag: TagId) -> &[TagId] {
        &self.nodes[tag].children
    }

    /// Human-readable tag name.
    pub fn name(&self, tag: TagId) -> &str {
        &self.nodes[tag].name
    }

    /// Level-1 tags.
    pub fn roots(&self) -> &[TagId] {
        &self.roots
    }

    /// Tags with no children (the most specific concepts).
    pub fn leaves(&self) -> Vec<TagId> {
        (0..self.len()).filter(|&t| self.nodes[t].children.is_empty()).collect()
    }

    /// All tags at a given level.
    pub fn tags_at_level(&self, level: usize) -> Vec<TagId> {
        (0..self.len()).filter(|&t| self.nodes[t].level == level).collect()
    }

    /// The chain of ancestors of `tag`, nearest first (excludes `tag`).
    pub fn ancestors(&self, tag: TagId) -> Vec<TagId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[tag].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// All descendants of `tag` (excludes `tag`), in BFS order.
    pub fn descendants(&self, tag: TagId) -> Vec<TagId> {
        let mut out = Vec::new();
        let mut queue: Vec<TagId> = self.nodes[tag].children.clone();
        while let Some(t) = queue.pop() {
            out.push(t);
            queue.extend_from_slice(&self.nodes[t].children);
        }
        out
    }

    /// True when `ancestor` is a (transitive) ancestor of `tag`.
    pub fn is_ancestor(&self, ancestor: TagId, tag: TagId) -> bool {
        let mut cur = self.nodes[tag].parent;
        while let Some(p) = cur {
            if p == ancestor {
                return true;
            }
            cur = self.nodes[p].parent;
        }
        false
    }

    /// All `(parent, child)` hierarchy edges — the paper's `# Hierarchy`
    /// statistic counts exactly these.
    pub fn hierarchy_edges(&self) -> Vec<(TagId, TagId)> {
        let mut out = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if let Some(p) = n.parent {
                out.push((p, id));
            }
        }
        out
    }

    /// Groups of sibling tags: for each parent (including the virtual root),
    /// the list of its direct children.
    pub fn sibling_groups(&self) -> Vec<Vec<TagId>> {
        let mut groups: Vec<Vec<TagId>> =
            self.nodes.iter().map(|n| n.children.clone()).filter(|c| c.len() > 1).collect();
        if self.roots.len() > 1 {
            groups.push(self.roots.clone());
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixture mirroring Fig. 1 of the paper:
    /// level 1: Rock, Classical; level 2 under Rock: Punk Rock, Alternative
    /// Rock; level 3 under Alternative Rock: British Alt, American Alt.
    pub(crate) fn music() -> Taxonomy {
        Taxonomy::from_parents(vec![
            ("Rock".into(), None),              // 0
            ("Classical".into(), None),         // 1
            ("Punk Rock".into(), Some(0)),      // 2
            ("Alternative Rock".into(), Some(0)), // 3
            ("British Alternative".into(), Some(3)), // 4
            ("American Alternative".into(), Some(3)), // 5
            ("Baroque".into(), Some(1)),        // 6
        ])
    }

    #[test]
    fn levels_are_computed_from_parents() {
        let t = music();
        assert_eq!(t.level(0), 1);
        assert_eq!(t.level(2), 2);
        assert_eq!(t.level(4), 3);
        assert_eq!(t.max_level(), 3);
    }

    #[test]
    fn roots_and_leaves() {
        let t = music();
        assert_eq!(t.roots(), &[0, 1]);
        assert_eq!(t.leaves(), vec![2, 4, 5, 6]);
    }

    #[test]
    fn ancestors_nearest_first() {
        let t = music();
        assert_eq!(t.ancestors(4), vec![3, 0]);
        assert!(t.ancestors(0).is_empty());
        assert!(t.is_ancestor(0, 4));
        assert!(!t.is_ancestor(1, 4));
    }

    #[test]
    fn descendants_cover_subtree() {
        let t = music();
        let mut d = t.descendants(0);
        d.sort_unstable();
        assert_eq!(d, vec![2, 3, 4, 5]);
        assert!(t.descendants(4).is_empty());
    }

    #[test]
    fn hierarchy_edges_match_parents() {
        let t = music();
        let edges = t.hierarchy_edges();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(0, 2)));
        assert!(edges.contains(&(3, 4)));
    }

    #[test]
    fn sibling_groups_include_virtual_root() {
        let t = music();
        let groups = t.sibling_groups();
        // {Punk, Alt}, {British, American}, and the roots {Rock, Classical}.
        assert_eq!(groups.len(), 3);
        assert!(groups.contains(&vec![0, 1]));
        assert!(groups.contains(&vec![2, 3]));
    }

    #[test]
    fn tags_at_level_partition_the_taxonomy() {
        let t = music();
        let total: usize = (1..=t.max_level()).map(|l| t.tags_at_level(l).len()).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_parent_reference_panics() {
        let _ = Taxonomy::from_parents(vec![
            ("child".into(), Some(1)),
            ("parent".into(), None),
        ]);
    }
}
