//! Logical relation extraction (Section IV-B) and the tag-frequency /
//! exclusion-level machinery used by the consistency weighting (Eq. 11–12).

use std::collections::HashMap;

use crate::tree::{TagId, Taxonomy};

/// How exclusion pairs are derived from the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExclusionRule {
    /// All same-parent sibling pairs are exclusive — the raw rule whose
    /// inaccuracy (e.g. `<Heavy Metal>` vs `<Metal>`) motivates LogiRec++.
    AllSiblings,
    /// Sibling pairs are exclusive only when no item carries both tags
    /// ("no common child" veto): overlapping concepts co-occur on items and
    /// are therefore not marked exclusive.
    SiblingsWithoutCommonItems,
}

/// The logical relations extracted from a taxonomy + item–tag matrix:
/// the paper's three (membership / hierarchy / exclusion) plus the
/// *intersection* relation its conclusion lists as future work —
/// overlapping sibling concepts (e.g. `<Heavy Metal>` vs `<Metal>`)
/// evidenced by shared items.
#[derive(Debug, Clone)]
pub struct LogicalRelations {
    /// `(item, tag)` membership pairs — the item–tag matrix Q in COO form.
    pub membership: Vec<(usize, TagId)>,
    /// `(parent, child)` hierarchy pairs.
    pub hierarchy: Vec<(TagId, TagId)>,
    /// `(tag_i, tag_j, level)` exclusion pairs with `tag_i < tag_j`;
    /// `level` is the shared taxonomy level of the pair (used by Eq. 12).
    pub exclusion: Vec<(TagId, TagId, usize)>,
    /// `(tag_i, tag_j, level)` intersection pairs with `tag_i < tag_j`:
    /// same-parent siblings that share at least one item. Under
    /// [`ExclusionRule::SiblingsWithoutCommonItems`] these are exactly the
    /// sibling pairs vetoed out of `exclusion`; under
    /// [`ExclusionRule::AllSiblings`] they are also listed in `exclusion`
    /// (the raw rule's known inaccuracy).
    pub intersection: Vec<(TagId, TagId, usize)>,
}

impl LogicalRelations {
    /// Extracts relations from a taxonomy and per-item tag lists.
    ///
    /// `item_tags[v]` lists the tags of item `v` (its *membership* tags as
    /// recorded in the dataset; ancestors are implied by hierarchy, not
    /// duplicated here — matching how the paper counts `# Membership`).
    pub fn extract(
        taxonomy: &Taxonomy,
        item_tags: &[Vec<TagId>],
        rule: ExclusionRule,
    ) -> Self {
        let membership: Vec<(usize, TagId)> = item_tags
            .iter()
            .enumerate()
            .flat_map(|(v, tags)| tags.iter().map(move |&t| (v, t)))
            .collect();

        let hierarchy = taxonomy.hierarchy_edges();

        // Per-tag item sets for the common-item veto. Items are sorted by
        // construction (enumerate order), so intersection is a merge.
        let mut tag_items: Vec<Vec<usize>> = vec![Vec::new(); taxonomy.len()];
        for &(v, t) in &membership {
            tag_items[t].push(v);
            // Items under a descendant tag are also under every ancestor,
            // which is what makes overlapping *concepts* share items.
            for a in taxonomy.ancestors(t) {
                tag_items[a].push(v);
            }
        }
        for items in &mut tag_items {
            items.sort_unstable();
            items.dedup();
        }

        let mut exclusion = Vec::new();
        let mut intersection = Vec::new();
        for group in taxonomy.sibling_groups() {
            for (idx, &a) in group.iter().enumerate() {
                for &b in &group[idx + 1..] {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    let level = taxonomy.level(lo);
                    let overlaps = sorted_intersect(&tag_items[a], &tag_items[b]);
                    if overlaps {
                        intersection.push((lo, hi, level));
                    }
                    let veto = match rule {
                        ExclusionRule::AllSiblings => false,
                        ExclusionRule::SiblingsWithoutCommonItems => overlaps,
                    };
                    if !veto {
                        exclusion.push((lo, hi, level));
                    }
                }
            }
        }
        Self { membership, hierarchy, exclusion, intersection }
    }

    /// Builds the `(tag_i, tag_j) → level` lookup used by the consistency
    /// score; keys are ordered pairs with `tag_i < tag_j`.
    pub fn exclusion_index(&self) -> HashMap<(TagId, TagId), usize> {
        self.exclusion.iter().map(|&(a, b, l)| ((a, b), l)).collect()
    }

    /// Total relation counts `(membership, hierarchy, exclusion)` — the
    /// bottom three rows of the paper's Table I.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.membership.len(), self.hierarchy.len(), self.exclusion.len())
    }

    /// Intersection pairs as `(tag_i, tag_j)` without levels, for the
    /// extension loss L_Int.
    pub fn intersection_pairs(&self) -> Vec<(TagId, TagId)> {
        self.intersection.iter().map(|&(a, b, _)| (a, b)).collect()
    }
}

/// True when two sorted slices share at least one element.
fn sorted_intersect(a: &[usize], b: &[usize]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Normalized tag frequency (Eq. 11):
/// `TF(t_i, T_u) = log(|T_{u,i}| + 1) / log(|T_u|)`,
/// where `|T_{u,i}|` counts occurrences of tag `t_i` in the user's
/// interacted tag list and `|T_u|` is the list's total length.
///
/// The denominator is clamped to `log 2` so single-tag lists do not divide
/// by `log 1 = 0`.
pub fn tag_frequency(occurrences: usize, list_len: usize) -> f64 {
    let denom = (list_len.max(2) as f64).ln();
    ((occurrences + 1) as f64).ln() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1-style fixture: Rock(0), Classical(1); Punk(2), Alt(3) under
    /// Rock; BritishAlt(4), AmericanAlt(5) under Alt; Baroque(6) under
    /// Classical.
    fn music() -> Taxonomy {
        Taxonomy::from_parents(vec![
            ("Rock".into(), None),
            ("Classical".into(), None),
            ("Punk Rock".into(), Some(0)),
            ("Alternative Rock".into(), Some(0)),
            ("British Alternative".into(), Some(3)),
            ("American Alternative".into(), Some(3)),
            ("Baroque".into(), Some(1)),
        ])
    }

    #[test]
    fn membership_is_flattened_coo() {
        let t = music();
        let item_tags = vec![vec![4], vec![2, 5], vec![6]];
        let r = LogicalRelations::extract(&t, &item_tags, ExclusionRule::AllSiblings);
        assert_eq!(r.membership, vec![(0, 4), (1, 2), (1, 5), (2, 6)]);
    }

    #[test]
    fn hierarchy_matches_tree_edges() {
        let t = music();
        let r = LogicalRelations::extract(&t, &[], ExclusionRule::AllSiblings);
        assert_eq!(r.hierarchy.len(), 5);
    }

    #[test]
    fn all_siblings_rule_emits_every_pair_with_levels() {
        let t = music();
        let r = LogicalRelations::extract(&t, &[], ExclusionRule::AllSiblings);
        // Pairs: (0,1)@1 roots, (2,3)@2, (4,5)@3.
        assert_eq!(r.exclusion.len(), 3);
        let idx = r.exclusion_index();
        assert_eq!(idx.get(&(0, 1)), Some(&1));
        assert_eq!(idx.get(&(2, 3)), Some(&2));
        assert_eq!(idx.get(&(4, 5)), Some(&3));
        assert_eq!(idx.get(&(0, 2)), None, "parent–child pairs are never exclusive");
    }

    #[test]
    fn common_item_veto_removes_overlapping_siblings() {
        let t = music();
        // Item 0 carries both BritishAlt and AmericanAlt → that sibling pair
        // is vetoed. Item 1 under Punk only; item 2 under Baroque.
        let item_tags = vec![vec![4, 5], vec![2], vec![6]];
        let r =
            LogicalRelations::extract(&t, &item_tags, ExclusionRule::SiblingsWithoutCommonItems);
        let idx = r.exclusion_index();
        assert_eq!(idx.get(&(4, 5)), None, "co-occurring siblings not exclusive");
        // Item 0's ancestors include Alt(3) and Rock(0); Punk(2) has item 1;
        // they share no item → still exclusive.
        assert_eq!(idx.get(&(2, 3)), Some(&2));
        // Rock has items {0,1}, Classical has {2} → exclusive.
        assert_eq!(idx.get(&(0, 1)), Some(&1));
    }

    #[test]
    fn ancestor_items_propagate_for_veto() {
        let t = music();
        // One item under BritishAlt and one under Punk; Rock inherits both,
        // so Rock–Classical share nothing, but give Classical the same item
        // via Baroque on item 0 → Rock and Classical co-occur → vetoed.
        let item_tags = vec![vec![4, 6], vec![2]];
        let r =
            LogicalRelations::extract(&t, &item_tags, ExclusionRule::SiblingsWithoutCommonItems);
        let idx = r.exclusion_index();
        assert_eq!(idx.get(&(0, 1)), None);
    }

    #[test]
    fn counts_report_table1_rows() {
        let t = music();
        let item_tags = vec![vec![4], vec![2]];
        let r = LogicalRelations::extract(&t, &item_tags, ExclusionRule::AllSiblings);
        let (m, h, e) = r.counts();
        assert_eq!((m, h, e), (2, 5, 3));
    }

    #[test]
    fn intersection_captures_overlapping_siblings() {
        let t = music();
        // Item 0 carries both BritishAlt(4) and AmericanAlt(5).
        let item_tags = vec![vec![4, 5], vec![2], vec![6]];
        let r =
            LogicalRelations::extract(&t, &item_tags, ExclusionRule::SiblingsWithoutCommonItems);
        assert_eq!(r.intersection, vec![(4, 5, 3)]);
        assert_eq!(r.intersection_pairs(), vec![(4, 5)]);
        // Exclusion and intersection partition the sibling pairs under the
        // veto rule.
        for &(a, b, _) in &r.intersection {
            assert!(!r.exclusion.iter().any(|&(x, y, _)| (x, y) == (a, b)));
        }
    }

    #[test]
    fn all_siblings_rule_keeps_overlaps_in_both_lists() {
        let t = music();
        let item_tags = vec![vec![4, 5]];
        let r = LogicalRelations::extract(&t, &item_tags, ExclusionRule::AllSiblings);
        // The raw rule's known inaccuracy: (4,5) is exclusive *and* the
        // data says they intersect.
        assert!(r.exclusion.iter().any(|&(a, b, _)| (a, b) == (4, 5)));
        assert!(r.intersection.iter().any(|&(a, b, _)| (a, b) == (4, 5)));
    }

    #[test]
    fn tag_frequency_matches_eq11() {
        // |T_u| = 10, tag appears 3 times: ln(4)/ln(10).
        let tf = tag_frequency(3, 10);
        assert!((tf - 4f64.ln() / 10f64.ln()).abs() < 1e-12);
        // Monotone in occurrences.
        assert!(tag_frequency(5, 10) > tag_frequency(2, 10));
    }

    #[test]
    fn tag_frequency_handles_tiny_lists() {
        let tf = tag_frequency(1, 1);
        assert!(tf.is_finite() && tf > 0.0);
    }
}
