//! Random taxonomy generator.
//!
//! The paper's datasets ship 4-level tag taxonomies of very different sizes
//! (28 tags on Ciao up to 3051 on Clothing, Table I). This generator
//! produces a taxonomy with an exact tag count, a chosen depth, and a skewed
//! (realistic) branching structure: parents are sampled with Zipf-like
//! weights so a few concepts grow large subtrees while most stay small —
//! the shape that makes sibling-exclusion counts match the paper's datasets.

use logirec_linalg::SplitMix64;

use crate::tree::Taxonomy;

/// Configuration for [`TaxonomyConfig::generate`].
#[derive(Debug, Clone)]
pub struct TaxonomyConfig {
    /// Exact number of tags to generate.
    pub tags: usize,
    /// Number of levels η (the paper uses 4).
    pub levels: usize,
    /// Per-level geometric growth factor: level `l+1` gets ~`growth` times
    /// as many tags as level `l`. 2.0–3.0 matches the paper's datasets.
    pub growth: f64,
    /// Zipf exponent for parent selection; 0 = uniform (balanced tree),
    /// larger = more skew (a few big subtrees).
    pub parent_skew: f64,
}

impl Default for TaxonomyConfig {
    fn default() -> Self {
        Self { tags: 100, levels: 4, growth: 2.5, parent_skew: 0.8 }
    }
}

impl TaxonomyConfig {
    /// Generates a deterministic random taxonomy.
    ///
    /// Panics when `tags < levels` (each level needs at least one tag) or
    /// `levels == 0`.
    pub fn generate(&self, rng: &mut SplitMix64) -> Taxonomy {
        assert!(self.levels > 0, "taxonomy needs at least one level");
        assert!(self.tags >= self.levels, "need at least one tag per level");

        let sizes = self.level_sizes();
        let mut records: Vec<(String, Option<usize>)> = Vec::with_capacity(self.tags);
        // IDs of the previous level's tags.
        let mut prev: Vec<usize> = Vec::new();
        for (level_idx, &size) in sizes.iter().enumerate() {
            let mut current = Vec::with_capacity(size);
            // Zipf-ish weights over the previous level (by its local order).
            let weights: Vec<f64> = (0..prev.len())
                .map(|i| 1.0 / ((i + 1) as f64).powf(self.parent_skew))
                .collect();
            for j in 0..size {
                let parent = if level_idx == 0 {
                    None
                } else if j < prev.len() {
                    // Guarantee every parent level stays connected downward
                    // where possible: the first `prev.len()` children are
                    // spread one per parent.
                    Some(prev[j])
                } else {
                    Some(prev[rng.weighted_index(&weights)])
                };
                let id = records.len();
                records.push((format!("tag-L{}-{}", level_idx + 1, j), parent));
                current.push(id);
            }
            prev = current;
        }
        Taxonomy::from_parents(records)
    }

    /// Splits `tags` across `levels` proportionally to `growth^level`,
    /// guaranteeing ≥ 1 per level and an exact total.
    fn level_sizes(&self) -> Vec<usize> {
        let raw: Vec<f64> = (0..self.levels).map(|l| self.growth.powi(l as i32)).collect();
        let total: f64 = raw.iter().sum();
        let mut sizes: Vec<usize> =
            raw.iter().map(|w| ((w / total) * self.tags as f64).floor().max(1.0) as usize).collect();
        // Fix rounding drift on the largest level.
        let assigned: usize = sizes.iter().sum();
        let last = self.levels - 1;
        if assigned < self.tags {
            sizes[last] += self.tags - assigned;
        } else {
            let mut excess = assigned - self.tags;
            for s in sizes.iter_mut().rev() {
                let take = excess.min(s.saturating_sub(1));
                *s -= take;
                excess -= take;
                if excess == 0 {
                    break;
                }
            }
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exact_tag_count_and_depth() {
        let mut rng = SplitMix64::new(1);
        for &tags in &[28usize, 379, 510, 3051] {
            let cfg = TaxonomyConfig { tags, levels: 4, ..Default::default() };
            let t = cfg.generate(&mut rng);
            assert_eq!(t.len(), tags, "tag count for {tags}");
            assert_eq!(t.max_level(), 4);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = TaxonomyConfig { tags: 64, ..Default::default() };
        let a = cfg.generate(&mut SplitMix64::new(7));
        let b = cfg.generate(&mut SplitMix64::new(7));
        for t in 0..a.len() {
            assert_eq!(a.parent(t), b.parent(t));
        }
    }

    #[test]
    fn every_non_root_has_valid_parent_one_level_up() {
        let cfg = TaxonomyConfig { tags: 200, ..Default::default() };
        let t = cfg.generate(&mut SplitMix64::new(3));
        for tag in 0..t.len() {
            match t.parent(tag) {
                None => assert_eq!(t.level(tag), 1),
                Some(p) => assert_eq!(t.level(p) + 1, t.level(tag)),
            }
        }
    }

    #[test]
    fn level_sizes_grow_geometrically() {
        let cfg = TaxonomyConfig { tags: 150, levels: 4, growth: 2.5, parent_skew: 0.8 };
        let sizes = cfg.level_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 150);
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "sizes should be nondecreasing: {sizes:?}");
    }

    #[test]
    fn tiny_taxonomy_one_tag_per_level() {
        let cfg = TaxonomyConfig { tags: 4, levels: 4, ..Default::default() };
        let t = cfg.generate(&mut SplitMix64::new(5));
        assert_eq!(t.len(), 4);
        assert_eq!(t.max_level(), 4);
    }

    #[test]
    fn skewed_parents_produce_imbalanced_subtrees() {
        let cfg = TaxonomyConfig { tags: 500, levels: 3, growth: 4.0, parent_skew: 1.2 };
        let t = cfg.generate(&mut SplitMix64::new(11));
        let roots = t.roots();
        let sizes: Vec<usize> = roots.iter().map(|&r| t.descendants(r).len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max >= min * 2, "expected imbalance, got {sizes:?}");
    }
}
