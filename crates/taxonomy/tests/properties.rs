//! Property-based tests of taxonomy generation and relation extraction.

use logirec_linalg::SplitMix64;
use logirec_taxonomy::relations::tag_frequency;
use logirec_taxonomy::{ExclusionRule, LogicalRelations, TaxonomyConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn generated_taxonomy_is_well_formed(tags in 4usize..300, seed in 0u64..500, skew in 0.0f64..1.5) {
        let cfg = TaxonomyConfig { tags, levels: 4, growth: 2.5, parent_skew: skew };
        let t = cfg.generate(&mut SplitMix64::new(seed));
        prop_assert_eq!(t.len(), tags);
        prop_assert_eq!(t.max_level(), 4);
        for tag in 0..t.len() {
            match t.parent(tag) {
                None => prop_assert_eq!(t.level(tag), 1),
                Some(p) => {
                    prop_assert!(p < tag, "parents precede children");
                    prop_assert_eq!(t.level(p) + 1, t.level(tag));
                    prop_assert!(t.children(p).contains(&tag));
                }
            }
            // Ancestor chain terminates at a root with strictly
            // decreasing levels.
            let anc = t.ancestors(tag);
            for w in anc.windows(2) {
                prop_assert_eq!(t.level(w[0]), t.level(w[1]) + 1);
            }
        }
    }

    #[test]
    fn exclusion_pairs_are_siblings_and_ordered(tags in 6usize..120, seed in 0u64..200) {
        let cfg = TaxonomyConfig { tags, levels: 4, growth: 2.5, parent_skew: 0.8 };
        let t = cfg.generate(&mut SplitMix64::new(seed));
        let rel = LogicalRelations::extract(&t, &[], ExclusionRule::AllSiblings);
        for &(a, b, level) in &rel.exclusion {
            prop_assert!(a < b, "pairs are ordered");
            prop_assert_eq!(t.level(a), t.level(b), "exclusive tags share a level");
            prop_assert_eq!(t.level(a), level);
            prop_assert_eq!(t.parent(a), t.parent(b), "exclusive tags share a parent");
            prop_assert!(!t.is_ancestor(a, b) && !t.is_ancestor(b, a));
        }
        // Hierarchy count equals tags − roots in a tree.
        prop_assert_eq!(rel.hierarchy.len(), t.len() - t.roots().len());
    }

    #[test]
    fn common_item_veto_only_removes_pairs(
        tags in 8usize..60,
        seed in 0u64..100,
        n_items in 1usize..50,
    ) {
        let cfg = TaxonomyConfig { tags, levels: 3, growth: 2.5, parent_skew: 0.5 };
        let t = cfg.generate(&mut SplitMix64::new(seed));
        let mut rng = SplitMix64::new(seed + 1);
        let item_tags: Vec<Vec<usize>> =
            (0..n_items).map(|_| vec![rng.index(t.len()), rng.index(t.len())]).collect();
        let all = LogicalRelations::extract(&t, &item_tags, ExclusionRule::AllSiblings);
        let veto =
            LogicalRelations::extract(&t, &item_tags, ExclusionRule::SiblingsWithoutCommonItems);
        prop_assert!(veto.exclusion.len() <= all.exclusion.len());
        // Every vetoed-rule pair also appears under the permissive rule.
        let idx = all.exclusion_index();
        for &(a, b, _) in &veto.exclusion {
            prop_assert!(idx.contains_key(&(a, b)));
        }
    }

    #[test]
    fn tag_frequency_is_monotone_and_bounded(total in 2usize..500, occ in 0usize..500) {
        let occ = occ.min(total);
        let tf = tag_frequency(occ, total);
        prop_assert!(tf >= 0.0 && tf.is_finite());
        if occ < total {
            prop_assert!(tag_frequency(occ + 1, total) > tf, "monotone in occurrences");
        }
        // The full list of one repeated tag has TF ≤ slightly above 1.
        prop_assert!(tag_frequency(total, total) <= 1.01 + 1.0 / (total as f64).ln());
    }
}
