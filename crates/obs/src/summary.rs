//! The human-readable summary sink: an aligned text report of span timing
//! aggregates, counters, gauges, and histogram percentiles.

use crate::metrics::MetricsSnapshot;

/// Wall-clock aggregate for one span kind.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanAgg {
    /// Closed spans of this kind.
    pub count: u64,
    /// Total time across all spans, µs.
    pub total_us: u64,
    /// Total time minus time spent in same-thread child spans, µs — the
    /// wall time attributable to this span kind itself.
    pub self_us: u64,
    /// Longest single span, µs.
    pub max_us: u64,
}

/// Formats microseconds with an adaptive unit.
pub fn fmt_us(us: u64) -> String {
    let us_f = us as f64;
    if us_f >= 1e6 {
        format!("{:.2}s", us_f / 1e6)
    } else if us_f >= 1e3 {
        format!("{:.2}ms", us_f / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Renders the summary table. `spans` is (kind, aggregate) in first-seen
/// order; metric order follows registration order.
pub fn render(spans: &[(&'static str, SpanAgg)], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("== telemetry summary ==\n");

    if !spans.is_empty() {
        out.push_str(&format!(
            "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "count", "total", "self", "mean", "max"
        ));
        for (kind, agg) in spans {
            let mean = agg.total_us.checked_div(agg.count).unwrap_or(0);
            out.push_str(&format!(
                "  {:<22} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                kind,
                agg.count,
                fmt_us(agg.total_us),
                fmt_us(agg.self_us),
                fmt_us(mean),
                fmt_us(agg.max_us)
            ));
        }
    }

    if !metrics.counters.is_empty() {
        out.push_str("counters\n");
        for (name, v) in &metrics.counters {
            out.push_str(&format!("  {name:<30} {v:>12}\n"));
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str("gauges\n");
        for (name, v) in &metrics.gauges {
            out.push_str(&format!("  {name:<30} {v:>12.6}\n"));
        }
    }
    if !metrics.histograms.is_empty() {
        out.push_str(&format!(
            "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "histogram", "count", "mean", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &metrics.histograms {
            let (p50, p95, p99) = h.percentiles();
            out.push_str(&format!(
                "  {:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                name,
                h.count,
                fmt_us(h.mean() as u64),
                fmt_us(p50),
                fmt_us(p95),
                fmt_us(p99),
                fmt_us(h.max)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    #[test]
    fn fmt_us_picks_units() {
        assert_eq!(fmt_us(12), "12µs");
        assert_eq!(fmt_us(1_500), "1.50ms");
        assert_eq!(fmt_us(2_500_000), "2.50s");
    }

    #[test]
    fn render_includes_all_sections() {
        let spans =
            vec![("epoch", SpanAgg { count: 3, total_us: 3_000, self_us: 2_000, max_us: 1_500 })];
        let metrics = MetricsSnapshot {
            counters: vec![("trainer.steps", 42)],
            gauges: vec![("trainer.lr_scale", 0.5)],
            histograms: vec![(
                "batch_us",
                HistogramSnapshot { count: 2, sum: 6, max: 4, buckets: vec![0; 65] },
            )],
        };
        let s = render(&spans, &metrics);
        assert!(s.contains("epoch"));
        assert!(s.contains("trainer.steps"));
        assert!(s.contains("trainer.lr_scale"));
        assert!(s.contains("batch_us"));
        assert!(s.contains("1.00ms"), "{s}"); // epoch mean
    }

    #[test]
    fn render_handles_empty_input() {
        let s = render(&[], &MetricsSnapshot::default());
        assert!(s.contains("telemetry summary"));
    }
}
