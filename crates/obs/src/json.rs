//! A minimal JSON parser, just big enough to validate and inspect the
//! JSONL traces this crate emits (the registry is unavailable, so no
//! serde). Supports objects, arrays, strings with escapes, numbers, bools,
//! and null; rejects trailing garbage.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64; integers up to 2^53 are exact).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (key order not preserved; keys are unique).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an f64, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a u64, when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a bool, when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogates are not emitted by this crate's
                            // writer; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_event_object() {
        let j = parse(r#"{"t_us":42,"kind":"span","name":"epoch","dur_us":10,"ok":true}"#)
            .expect("parse");
        assert_eq!(j.get("t_us").and_then(Json::as_u64), Some(42));
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("span"));
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn round_trips_escapes_and_numbers() {
        let j = parse(r#"{"m":"a\"b\nA","x":-1.5e3,"n":null,"a":[1,2,3]}"#).expect("parse");
        assert_eq!(j.get("m").and_then(Json::as_str), Some("a\"b\nA"));
        assert_eq!(j.get("x").and_then(Json::as_f64), Some(-1500.0));
        assert_eq!(j.get("n"), Some(&Json::Null));
        assert_eq!(j.get("a"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(3.0)])));
    }

    #[test]
    fn writer_output_parses_back() {
        let ev = crate::events::Event {
            t_us: 7,
            kind: "recovery",
            name: "rolled_back".into(),
            fields: vec![
                ("reason", crate::events::Value::Str("tag 3 \"bad\" norm\n".into())),
                ("lr_scale", crate::events::Value::F64(0.25)),
            ],
        };
        let j = parse(&ev.to_json()).expect("parse own output");
        assert_eq!(j.get("reason").and_then(Json::as_str), Some("tag 3 \"bad\" norm\n"));
        assert_eq!(j.get("lr_scale").and_then(Json::as_f64), Some(0.25));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1,}"#).is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }
}
