//! Best-effort peak-RSS tracking sampled from `/proc/self/statm`.
//!
//! Linux-only by nature: off Linux (or in containers without procfs) every
//! function returns `None` and the gauge is simply never set. The peak is
//! a process-global high-water mark over the *sampled* values — call
//! [`sample_peak_rss_bytes`] at natural boundaries (epoch ends, snapshot
//! writes, scrape time) rather than in hot loops; short allocation spikes
//! between samples are invisible, which is the usual trade for a
//! zero-dependency sampler.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::Telemetry;

/// The gauge name used by [`set_peak_rss_gauge`] and the bench bins.
pub const PEAK_RSS_GAUGE: &str = "process.peak_rss_bytes";

/// Process-global high-water mark of sampled RSS, bytes.
static PEAK: AtomicU64 = AtomicU64::new(0);

/// `/proc/self/statm` reports pages; the kernel page size on every target
/// this repo runs on. (Reading the real value needs libc; 4 KiB is correct
/// for the supported x86_64/aarch64 Linux configurations and the metric is
/// best-effort by contract.)
const PAGE_BYTES: u64 = 4096;

/// Current resident set size in bytes; `None` off Linux or when procfs is
/// unreadable.
pub fn current_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * PAGE_BYTES)
}

/// Samples the current RSS, folds it into the process-lifetime peak, and
/// returns the peak so far.
pub fn sample_peak_rss_bytes() -> Option<u64> {
    let cur = current_rss_bytes()?;
    let prev = PEAK.fetch_max(cur, Ordering::Relaxed);
    Some(prev.max(cur))
}

/// Samples the peak and sets the [`PEAK_RSS_GAUGE`] gauge on `tel`.
/// Returns the sampled peak; a no-op `None` when sampling is unavailable
/// (the gauge is left unset rather than set to a lie).
pub fn set_peak_rss_gauge(tel: &Telemetry) -> Option<u64> {
    let peak = sample_peak_rss_bytes()?;
    tel.gauge(PEAK_RSS_GAUGE).set(peak as f64);
    Some(peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_monotone_when_available() {
        let Some(a) = sample_peak_rss_bytes() else {
            return; // not Linux / no procfs: the no-op contract
        };
        assert!(a > 0, "a live process has resident pages");
        // Touch some memory, then re-sample: the peak never decreases.
        let ballast = vec![1u8; 1 << 20];
        std::hint::black_box(&ballast);
        let b = sample_peak_rss_bytes().expect("procfs was readable a moment ago");
        assert!(b >= a, "peak went backwards: {a} -> {b}");
    }

    #[test]
    fn gauge_is_set_from_the_sample() {
        let tel = Telemetry::enabled();
        match set_peak_rss_gauge(&tel) {
            None => assert_eq!(tel.gauge(PEAK_RSS_GAUGE).get(), 0.0),
            Some(peak) => {
                assert_eq!(tel.gauge(PEAK_RSS_GAUGE).get(), peak as f64);
                assert!(peak >= current_rss_bytes().unwrap_or(0) / 2);
            }
        }
    }
}
