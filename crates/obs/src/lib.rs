#![warn(missing_docs)]

//! In-tree observability for the LogiRec workspace: hierarchical spans,
//! lock-free metrics, a ring-buffer event log, and two sinks (JSONL and a
//! human-readable summary). Zero dependencies — the registry is
//! unavailable, so everything is hand-rolled on `std`.
//!
//! ## Design
//!
//! * A [`Telemetry`] handle is an `Option<Arc<_>>`: the default
//!   ([`Telemetry::disabled`]) is a `None` and every operation on it is a
//!   single branch — the instrumented hot paths cost nothing when
//!   telemetry is off (asserted by `crates/bench/benches/obs.rs`).
//! * [`Span`]s time hierarchical phases on the monotonic clock. Nesting is
//!   tracked per thread; ids are allocated at open, events are emitted at
//!   close, so a child's event always precedes its parent's.
//! * [`Counter`] / [`Gauge`] / [`Histogram`] handles record through relaxed
//!   atomics (log₂-bucket histograms), so `parallel.rs` workers and the
//!   evaluator's scoped threads record without contention.
//! * Every event lands in a bounded ring buffer and, when configured, as
//!   one JSON object per line in a JSONL file. [`summary`] renders the
//!   aggregate report.
//!
//! ## Event schema (one JSON object per line)
//!
//! | kind        | emitted on                  | extra fields |
//! |-------------|-----------------------------|--------------|
//! | `span`      | span close                  | `id`, `parent?`, `start_us`, `dur_us`, caller fields |
//! | `counter`   | metric flush                | `value` |
//! | `gauge`     | metric flush                | `value` |
//! | `histogram` | metric flush                | `count`, `sum`, `max`, `p50`, `p99` |
//! | `recovery`  | trainer recovery            | `epoch`, `reason`, `action`, `lr_scale?` |
//! | `health`    | trainer health check        | `epoch`, `ok`, `reason?` |
//! | `info`/`warn` | summary-sink messages     | `msg` |
//!
//! Every event carries `t_us` (µs since the handle was created, monotonic)
//! and `name`.

pub mod events;
pub mod expo;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod rss;
pub mod summary;
pub mod trace;

use std::cell::RefCell;
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub use events::{Event, Value};
pub use expo::Exposition;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use profile::{profile_span_aggs, profile_trace, Profile, ProfileRow};
pub use summary::SpanAgg;
pub use trace::{validate_trace, TraceStats};

use events::EventRing;
use metrics::Registry;

thread_local! {
    /// Per-thread open-span stack: (telemetry instance tag, span id,
    /// accumulated direct-child time in µs). Tagging by instance keeps two
    /// live handles on one thread from adopting each other's spans as
    /// parents; the child accumulator lets a closing span compute its
    /// self-time (duration minus time spent in child spans) without a
    /// post-hoc trace pass.
    static SPAN_STACK: RefCell<Vec<(usize, u64, u64)>> = const { RefCell::new(Vec::new()) };
}

struct Inner {
    start: Instant,
    next_span: AtomicU64,
    registry: Registry,
    span_aggs: Mutex<Vec<(&'static str, SpanAgg)>>,
    ring: Mutex<EventRing>,
    writer: Option<Mutex<BufWriter<fs::File>>>,
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn tag(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    fn emit(&self, ev: Event) {
        if let Some(w) = &self.writer {
            let mut w = w.lock().expect("trace writer poisoned");
            let _ = writeln!(w, "{}", ev.to_json());
        }
        self.ring.lock().expect("event ring poisoned").push(ev);
    }
}

/// A cheap, cloneable telemetry handle. The default is disabled: every
/// record/span call reduces to a branch on `None`.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_enabled()).finish()
    }
}

/// Configures and builds an enabled [`Telemetry`].
#[derive(Debug, Default)]
pub struct Builder {
    jsonl: Option<PathBuf>,
    ring_capacity: usize,
}

impl Builder {
    /// Streams every event as one JSON line into `path` (created/truncated
    /// at build time; parent directories are created).
    pub fn jsonl(mut self, path: impl Into<PathBuf>) -> Self {
        self.jsonl = Some(path.into());
        self
    }

    /// Caps the in-memory event ring (default 4096).
    pub fn ring_capacity(mut self, n: usize) -> Self {
        self.ring_capacity = n;
        self
    }

    /// Builds the handle. Fails only when the JSONL file cannot be created.
    pub fn build(self) -> io::Result<Telemetry> {
        let writer = match &self.jsonl {
            None => None,
            Some(path) => {
                if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                    fs::create_dir_all(dir)?;
                }
                Some(Mutex::new(BufWriter::new(fs::File::create(path)?)))
            }
        };
        let capacity = if self.ring_capacity == 0 { 4096 } else { self.ring_capacity };
        Ok(Telemetry {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                next_span: AtomicU64::new(1),
                registry: Registry::default(),
                span_aggs: Mutex::new(Vec::new()),
                ring: Mutex::new(EventRing::new(capacity)),
                writer,
            })),
        })
    }
}

impl Telemetry {
    /// The no-op handle (also [`Default`]): records nothing, costs a branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle with only the in-memory ring (no JSONL file) —
    /// what tests and `--metrics-summary` without `--trace-json` use.
    pub fn enabled() -> Self {
        Builder::default().build().expect("ring-only telemetry cannot fail")
    }

    /// Starts configuring an enabled handle.
    pub fn builder() -> Builder {
        Builder::default()
    }

    /// True when this handle records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this handle was created (0 when disabled) — the
    /// wall-clock denominator for live profiling coverage.
    pub fn elapsed_us(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.now_us())
    }

    /// Opens a span of the given kind. The span closes (and emits its
    /// event) when dropped; nesting follows lexical scope per thread.
    #[inline]
    pub fn span(&self, kind: &'static str) -> Span {
        match &self.inner {
            None => Span(None),
            Some(inner) => {
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                let tag = inner.tag();
                let parent = SPAN_STACK.with(|s| {
                    let mut v = s.borrow_mut();
                    let parent =
                        v.iter().rev().find(|&&(t, _, _)| t == tag).map(|&(_, id, _)| id);
                    v.push((tag, id, 0));
                    parent
                });
                Span(Some(ActiveSpan {
                    inner: Arc::clone(inner),
                    id,
                    parent,
                    kind,
                    start: Instant::now(),
                    fields: Vec::new(),
                }))
            }
        }
    }

    /// A counter handle (created on first use; cached by the caller).
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.inner.as_ref().map(|i| i.registry.counter(name)))
    }

    /// A gauge handle.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| i.registry.gauge(name)))
    }

    /// A histogram handle (fixed log₂ buckets).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram(self.inner.as_ref().map(|i| i.registry.histogram(name)))
    }

    /// Starts a wall-clock timer; `None`-backed (free) when disabled.
    #[inline]
    pub fn timer(&self) -> Timer {
        Timer(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Records the timer's elapsed µs into the named histogram. Registry
    /// lookup per call — fine at batch granularity; cache a [`Histogram`]
    /// handle for per-row work.
    pub fn observe_us(&self, name: &'static str, t: Timer) {
        if let (Some(start), Some(_)) = (t.0, &self.inner) {
            self.histogram(name).record(start.elapsed().as_micros() as u64);
        }
    }

    /// Emits a free-form event.
    pub fn event(&self, kind: &'static str, name: &str, fields: Vec<(&'static str, Value)>) {
        if let Some(inner) = &self.inner {
            inner.emit(Event { t_us: inner.now_us(), kind, name: name.to_string(), fields });
        }
    }

    /// Summary-sink message: prints to stdout (always, replacing ad-hoc
    /// `println!`) and records an `info` event when enabled.
    pub fn info(&self, msg: impl AsRef<str>) {
        let msg = msg.as_ref();
        println!("{msg}");
        self.event("info", "message", vec![("msg", Value::Str(msg.to_string()))]);
    }

    /// Progress-sink message: prints to stderr (always, replacing ad-hoc
    /// `eprintln!`) and records an `info` event when enabled.
    pub fn progress(&self, msg: impl AsRef<str>) {
        let msg = msg.as_ref();
        eprintln!("{msg}");
        self.event("info", "progress", vec![("msg", Value::Str(msg.to_string()))]);
    }

    /// Structured warning: prints `warning: …` to stderr (always) and
    /// records a `warn` event when enabled.
    pub fn warn(&self, name: &str, msg: impl AsRef<str>) {
        let msg = msg.as_ref();
        eprintln!("warning: {msg}");
        self.event("warn", name, vec![("msg", Value::Str(msg.to_string()))]);
    }

    /// Emits one event per registered metric with its current value (the
    /// "metric flush" events of the schema).
    pub fn flush_metrics(&self) {
        let Some(inner) = &self.inner else { return };
        let snap = inner.registry.snapshot();
        for (name, v) in &snap.counters {
            self.event("counter", name, vec![("value", Value::U64(*v))]);
        }
        for (name, v) in &snap.gauges {
            self.event("gauge", name, vec![("value", Value::F64(*v))]);
        }
        for (name, h) in &snap.histograms {
            self.event(
                "histogram",
                name,
                vec![
                    ("count", Value::U64(h.count)),
                    ("sum", Value::U64(h.sum)),
                    ("max", Value::U64(h.max)),
                    ("p50", Value::U64(h.quantile(0.5))),
                    ("p95", Value::U64(h.quantile(0.95))),
                    ("p99", Value::U64(h.quantile(0.99))),
                ],
            );
        }
    }

    /// A point-in-time snapshot of all metrics (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.as_ref().map_or_else(MetricsSnapshot::default, |i| i.registry.snapshot())
    }

    /// Span aggregates per kind, in first-seen order.
    pub fn span_aggs(&self) -> Vec<(&'static str, SpanAgg)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.span_aggs.lock().expect("span aggs poisoned").clone()
        })
    }

    /// Renders the human-readable summary table.
    pub fn summary(&self) -> String {
        if !self.is_enabled() {
            return "telemetry disabled\n".to_string();
        }
        summary::render(&self.span_aggs(), &self.metrics_snapshot())
    }

    /// The most recent events (bounded by the ring capacity), oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.ring.lock().expect("event ring poisoned").snapshot()
        })
    }

    /// Flushes pending metric events and the JSONL writer. Call at the end
    /// of a run; dropping the last handle also flushes the file buffer.
    pub fn finish(&self) {
        let Some(inner) = &self.inner else { return };
        self.flush_metrics();
        if let Some(w) = &inner.writer {
            let _ = w.lock().expect("trace writer poisoned").flush();
        }
    }
}

/// A started wall-clock timer (or a free placeholder when telemetry is
/// disabled). Pair with [`Telemetry::observe_us`] or
/// [`Timer::elapsed_us`].
#[derive(Debug, Clone, Copy)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Elapsed µs, `None` when the owning telemetry was disabled.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.0.map(|t| t.elapsed().as_micros() as u64)
    }
}

struct ActiveSpan {
    inner: Arc<Inner>,
    id: u64,
    parent: Option<u64>,
    kind: &'static str,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

/// An open span; emits its `span` event when dropped (or explicitly
/// [`Span::close`]d). Disabled handles produce inert spans.
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Attaches a field to the eventual span event.
    pub fn field(&mut self, key: &'static str, v: impl Into<Value>) {
        if let Some(a) = &mut self.0 {
            a.fields.push((key, v.into()));
        }
    }

    /// Closes the span now (same as dropping it; reads better at call
    /// sites that would otherwise need a `drop(..)`).
    pub fn close(self) {}

    /// The span id (None when telemetry is disabled).
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let start_us = a.start.duration_since(a.inner.start).as_micros() as u64;
        let end_us = a.inner.now_us().max(start_us);
        let dur_us = end_us - start_us;

        let tag = a.inner.tag();
        let child_us = SPAN_STACK.with(|s| {
            let mut v = s.borrow_mut();
            let child_us = match v.iter().rposition(|&(t, id, _)| t == tag && id == a.id) {
                Some(pos) => v.remove(pos).2,
                None => 0,
            };
            // Credit this span's whole duration to the nearest still-open
            // enclosing span of the same instance, so that span's eventual
            // self-time excludes the time spent here.
            if let Some(entry) = v.iter_mut().rev().find(|(t, _, _)| *t == tag) {
                entry.2 += dur_us;
            }
            child_us
        });
        let self_us = dur_us.saturating_sub(child_us);

        {
            let mut aggs = a.inner.span_aggs.lock().expect("span aggs poisoned");
            let agg = match aggs.iter_mut().find(|(k, _)| *k == a.kind) {
                Some((_, agg)) => agg,
                None => {
                    aggs.push((a.kind, SpanAgg::default()));
                    &mut aggs.last_mut().expect("just pushed").1
                }
            };
            agg.count += 1;
            agg.total_us += dur_us;
            agg.self_us += self_us;
            agg.max_us = agg.max_us.max(dur_us);
        }

        let mut fields = Vec::with_capacity(a.fields.len() + 4);
        fields.push(("id", Value::U64(a.id)));
        if let Some(p) = a.parent {
            fields.push(("parent", Value::U64(p)));
        }
        fields.push(("start_us", Value::U64(start_us)));
        fields.push(("dur_us", Value::U64(dur_us)));
        fields.extend(a.fields);
        a.inner.emit(Event { t_us: end_us, kind: "span", name: a.kind.to_string(), fields });
    }
}

/// Validates a JSONL trace file on disk (convenience over
/// [`validate_trace`]).
pub fn validate_trace_file(path: &Path) -> Result<TraceStats, String> {
    let content =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    validate_trace(&content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_fully_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut sp = tel.span("epoch");
        sp.field("epoch", 1u64);
        assert_eq!(sp.id(), None);
        sp.close();
        tel.counter("c").incr();
        tel.observe_us("h", tel.timer());
        tel.event("info", "x", vec![]);
        tel.flush_metrics();
        assert!(tel.recent_events().is_empty());
        assert_eq!(tel.summary(), "telemetry disabled\n");
    }

    #[test]
    fn spans_nest_and_emit_child_first() {
        let tel = Telemetry::enabled();
        {
            let mut outer = tel.span("epoch");
            outer.field("epoch", 0u64);
            {
                let _inner = tel.span("batch");
            }
        }
        let events = tel.recent_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "batch");
        assert_eq!(events[1].name, "epoch");
        let batch_parent = events[0]
            .fields
            .iter()
            .find(|(k, _)| *k == "parent")
            .map(|(_, v)| v.clone());
        let epoch_id = events[1]
            .fields
            .iter()
            .find(|(k, _)| *k == "id")
            .map(|(_, v)| v.clone());
        assert_eq!(batch_parent, epoch_id);
        // The emitted pair validates as a well-nested trace.
        let trace: String =
            events.iter().map(|e| e.to_json() + "\n").collect();
        let stats = validate_trace(&trace).expect("valid trace");
        assert_eq!(stats.spans, 2);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let tel = Telemetry::enabled();
        let root = tel.span("train");
        let root_id = root.id().unwrap();
        let a = tel.span("epoch");
        a.close();
        let b = tel.span("epoch");
        b.close();
        root.close();
        let events = tel.recent_events();
        for ev in events.iter().take(2) {
            let parent = ev.fields.iter().find(|(k, _)| *k == "parent").unwrap();
            assert_eq!(parent.1, Value::U64(root_id), "{:?}", ev);
        }
    }

    #[test]
    fn two_instances_do_not_adopt_each_others_spans() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        let _ra = a.span("train");
        let sb = b.span("train");
        // b's span must be a root (no parent from a's stack entry).
        sb.close();
        let ev = &b.recent_events()[0];
        assert!(!ev.fields.iter().any(|(k, _)| *k == "parent"), "{ev:?}");
    }

    #[test]
    fn metric_flush_emits_one_event_per_metric() {
        let tel = Telemetry::enabled();
        tel.counter("a").add(3);
        tel.gauge("b").set(1.5);
        tel.histogram("c").record(7);
        tel.flush_metrics();
        let kinds: Vec<&str> = tel.recent_events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["counter", "gauge", "histogram"]);
        let snap = tel.metrics_snapshot();
        assert_eq!(snap.counters, vec![("a", 3)]);
        assert_eq!(snap.gauges, vec![("b", 1.5)]);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir()
            .join(format!("obs-sink-{}.jsonl", std::process::id()));
        let tel = Telemetry::builder().jsonl(&path).build().expect("build");
        {
            let mut sp = tel.span("epoch");
            sp.field("note", "hello \"world\"");
        }
        tel.counter("x").incr();
        tel.finish();
        let stats = validate_trace_file(&path).expect("valid file");
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.event_kinds["counter"], 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn summary_names_spans_and_metrics() {
        let tel = Telemetry::enabled();
        tel.span("epoch").close();
        tel.counter("trainer.steps").add(10);
        let s = tel.summary();
        assert!(s.contains("epoch") && s.contains("trainer.steps"), "{s}");
    }

    #[test]
    fn concurrent_spans_on_worker_threads_stay_well_formed() {
        let tel = Telemetry::enabled();
        let root = tel.span("train");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tel = tel.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        // Worker threads have their own stacks: these are
                        // roots, not children of "train".
                        let _sp = tel.span("worker");
                    }
                });
            }
        });
        root.close();
        let trace: String =
            tel.recent_events().iter().map(|e| e.to_json() + "\n").collect();
        let stats = validate_trace(&trace).expect("valid");
        assert_eq!(stats.span_count("worker"), 200);
        assert_eq!(stats.span_count("train"), 1);
    }
}
