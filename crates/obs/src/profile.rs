//! Span profiling: attribute wall time to span names.
//!
//! Two sources feed the same report:
//!
//! * [`profile_trace`] aggregates a JSONL trace file offline (the
//!   `trace_profile` binary) — per-span self-time is each span's duration
//!   minus the summed durations of its direct children, so nested spans
//!   never double-count.
//! * [`profile_span_aggs`] converts the live [`SpanAgg`] table of a
//!   running [`crate::Telemetry`] (which tracks self-time incrementally
//!   on the span stack) — what `--profile` prints without a trace file.
//!
//! Coverage is attributed self-time over the trace's wall clock: a healthy
//! instrumented run attributes ≥ 90% of its wall time to named spans, and
//! the remainder is un-instrumented code worth a new span.

use std::collections::BTreeMap;

use crate::json::{self, Json};
use crate::summary::{fmt_us, SpanAgg};

/// Aggregate for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name (`epoch`, `batch`, …).
    pub name: String,
    /// Closed spans of this name.
    pub count: u64,
    /// Summed durations, µs (nested spans overlap their parents here).
    pub total_us: u64,
    /// Summed self-times, µs (duration minus direct children) — disjoint
    /// across names, so these sum to the attributed wall time.
    pub self_us: u64,
    /// Longest single span, µs.
    pub max_us: u64,
}

/// A span-profile report: per-name rows sorted by self-time, plus the
/// wall-clock denominator.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-name aggregates, hottest (largest self-time) first.
    pub rows: Vec<ProfileRow>,
    /// Wall clock of the profiled run in µs (largest event timestamp for
    /// traces; telemetry handle age for live profiles).
    pub wall_us: u64,
    /// Total spans profiled.
    pub spans: u64,
}

impl Profile {
    /// Total self-time across all rows: the wall time attributable to
    /// named spans.
    pub fn attributed_us(&self) -> u64 {
        self.rows.iter().map(|r| r.self_us).sum()
    }

    /// Attributed fraction of wall time. Can exceed 1.0 when spans ran
    /// concurrently on worker threads (each thread's time counts).
    pub fn coverage(&self) -> f64 {
        if self.wall_us == 0 {
            0.0
        } else {
            self.attributed_us() as f64 / self.wall_us as f64
        }
    }

    /// Renders the hot-path table: the top `top` rows by self-time (0 =
    /// all), then the coverage line.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== span profile: {} spans over {} wall ==\n",
            self.spans,
            fmt_us(self.wall_us)
        ));
        out.push_str(&format!(
            "{:<24} {:>8} {:>10} {:>10} {:>7} {:>10}\n",
            "span", "count", "total", "self", "self%", "max"
        ));
        let shown = if top == 0 { self.rows.len() } else { top.min(self.rows.len()) };
        for row in &self.rows[..shown] {
            let pct = if self.wall_us == 0 {
                0.0
            } else {
                100.0 * row.self_us as f64 / self.wall_us as f64
            };
            out.push_str(&format!(
                "  {:<22} {:>8} {:>10} {:>10} {:>6.1}% {:>10}\n",
                row.name,
                row.count,
                fmt_us(row.total_us),
                fmt_us(row.self_us),
                pct,
                fmt_us(row.max_us)
            ));
        }
        if shown < self.rows.len() {
            out.push_str(&format!("  … {} more span kinds\n", self.rows.len() - shown));
        }
        out.push_str(&format!(
            "attributed {} of {} wall ({:.1}% coverage)\n",
            fmt_us(self.attributed_us()),
            fmt_us(self.wall_us),
            100.0 * self.coverage()
        ));
        out
    }
}

fn sort_rows(mut rows: Vec<ProfileRow>) -> Vec<ProfileRow> {
    rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Profiles a JSONL trace (the `--trace-json` format). Malformed lines are
/// errors — run `trace_check` first for detailed diagnostics.
pub fn profile_trace(content: &str) -> Result<Profile, String> {
    struct Rec {
        name_idx: usize,
        dur_us: u64,
    }
    let mut names: Vec<String> = Vec::new();
    let mut spans: BTreeMap<u64, Rec> = BTreeMap::new();
    let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
    let mut wall_us = 0u64;

    for (ln, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = json::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        if let Some(t) = ev.get("t_us").and_then(Json::as_u64) {
            wall_us = wall_us.max(t);
        }
        if ev.get("kind").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: span without \"name\"", ln + 1))?;
        let id = ev
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: span without \"id\"", ln + 1))?;
        let dur_us = ev
            .get("dur_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {}: span without \"dur_us\"", ln + 1))?;
        if let Some(p) = ev.get("parent").and_then(Json::as_u64) {
            *child_us.entry(p).or_insert(0) += dur_us;
        }
        let name_idx = match names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                names.push(name.to_string());
                names.len() - 1
            }
        };
        spans.insert(id, Rec { name_idx, dur_us });
    }

    let mut rows: Vec<ProfileRow> = names
        .iter()
        .map(|n| ProfileRow { name: n.clone(), count: 0, total_us: 0, self_us: 0, max_us: 0 })
        .collect();
    let mut total_spans = 0u64;
    for (id, rec) in &spans {
        let row = &mut rows[rec.name_idx];
        let self_us = rec.dur_us.saturating_sub(child_us.get(id).copied().unwrap_or(0));
        row.count += 1;
        row.total_us += rec.dur_us;
        row.self_us += self_us;
        row.max_us = row.max_us.max(rec.dur_us);
        total_spans += 1;
    }
    Ok(Profile { rows: sort_rows(rows), wall_us, spans: total_spans })
}

/// Converts a live [`SpanAgg`] table (which already tracks incremental
/// self-time) into a profile with an explicit wall-clock denominator —
/// typically [`crate::Telemetry::elapsed_us`].
pub fn profile_span_aggs(aggs: &[(&'static str, SpanAgg)], wall_us: u64) -> Profile {
    let rows: Vec<ProfileRow> = aggs
        .iter()
        .map(|(name, a)| ProfileRow {
            name: (*name).to_string(),
            count: a.count,
            total_us: a.total_us,
            self_us: a.self_us,
            max_us: a.max_us,
        })
        .collect();
    let spans = rows.iter().map(|r| r.count).sum();
    Profile { rows: sort_rows(rows), wall_us, spans }
}

/// Profiles a JSONL trace file on disk.
pub fn profile_trace_file(path: &std::path::Path) -> Result<Profile, String> {
    let content = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    profile_trace(&content)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// epoch(1) [0,100] contains batch(2) [10,40] and batch(3) [50,90];
    /// an unrelated counter event stretches the wall to 120.
    const TRACE: &str = "\
{\"t_us\":40,\"kind\":\"span\",\"name\":\"batch\",\"id\":2,\"parent\":1,\"start_us\":10,\"dur_us\":30}
{\"t_us\":90,\"kind\":\"span\",\"name\":\"batch\",\"id\":3,\"parent\":1,\"start_us\":50,\"dur_us\":40}
{\"t_us\":100,\"kind\":\"span\",\"name\":\"epoch\",\"id\":1,\"start_us\":0,\"dur_us\":100}
{\"t_us\":120,\"kind\":\"counter\",\"name\":\"steps\",\"value\":7}
";

    #[test]
    fn self_time_subtracts_direct_children() {
        let p = profile_trace(TRACE).expect("valid");
        assert_eq!(p.spans, 3);
        assert_eq!(p.wall_us, 120);
        let batch = p.rows.iter().find(|r| r.name == "batch").unwrap();
        assert_eq!(batch.count, 2);
        assert_eq!(batch.total_us, 70);
        assert_eq!(batch.self_us, 70, "leaves keep their full duration");
        assert_eq!(batch.max_us, 40);
        let epoch = p.rows.iter().find(|r| r.name == "epoch").unwrap();
        assert_eq!(epoch.total_us, 100);
        assert_eq!(epoch.self_us, 30, "100 minus the two 30+40 children");
        // Attributed = 70 + 30 = the root's full duration.
        assert_eq!(p.attributed_us(), 100);
        assert!((p.coverage() - 100.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn rows_sort_hottest_first_and_render() {
        let p = profile_trace(TRACE).expect("valid");
        assert_eq!(p.rows[0].name, "batch");
        let r = p.render(1);
        assert!(r.contains("batch"), "{r}");
        assert!(r.contains("… 1 more span kinds"), "{r}");
        assert!(r.contains("coverage"), "{r}");
        let full = p.render(0);
        assert!(full.contains("epoch"), "{full}");
    }

    #[test]
    fn empty_trace_profiles_to_zero_coverage() {
        let p = profile_trace("").expect("empty ok");
        assert_eq!(p.spans, 0);
        assert_eq!(p.coverage(), 0.0);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = profile_trace("{\"kind\":\"span\",\"name\":\"x\",\"dur_us\":1}\n")
            .expect_err("no id");
        assert!(err.contains("line 1"), "{err}");
        assert!(profile_trace("nope\n").is_err());
    }

    #[test]
    fn live_span_aggs_round_trip() {
        let tel = crate::Telemetry::enabled();
        {
            let _outer = tel.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = tel.span("inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let p = profile_span_aggs(&tel.span_aggs(), tel.elapsed_us());
        assert_eq!(p.spans, 2);
        let outer = p.rows.iter().find(|r| r.name == "outer").unwrap();
        let inner = p.rows.iter().find(|r| r.name == "inner").unwrap();
        assert!(outer.self_us < outer.total_us, "inner time subtracted");
        assert!(inner.self_us == inner.total_us, "leaf keeps its duration");
        assert!(p.coverage() > 0.5, "most of the run is inside spans");
    }
}
