//! Lock-free metric primitives: counters, gauges, and log-scale histograms.
//!
//! Handles are cheap `Arc` clones around atomics, so hot loops — including
//! the scoped-thread workers in `parallel.rs` and the evaluator — record
//! without taking any lock. The registry mutex is touched only at
//! handle-creation time (`Telemetry::counter(..)` etc.), never per record.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)` — fixed log₂-scale buckets covering all of
/// `u64`.
pub const N_BUCKETS: usize = 65;

/// A monotonically increasing counter. Disabled handles (from a disabled
/// [`crate::Telemetry`]) are free: `add` is a branch on a `None`.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter (relaxed; counters are aggregates, not
    /// synchronization points).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for disabled handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge storing an `f64` (as raw bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for disabled handles).
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Shared histogram state: fixed log₂ buckets plus exact count/sum/max.
#[derive(Debug)]
pub struct HistogramCore {
    pub(crate) buckets: [AtomicU64; N_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the log₂ bucket for `v`: 0 for 0, else `floor(log2 v) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lower bound (inclusive) of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A log-scale histogram of `u64` samples (typically microseconds or byte
/// counts). Recording is three relaxed atomic RMWs — safe and contention-
/// tolerant from any number of threads.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// An always-recording histogram that belongs to no registry. The
    /// serving layer uses these for latency percentiles that must be
    /// available even when telemetry is disabled.
    pub fn standalone() -> Self {
        Histogram(Some(Arc::new(HistogramCore::new())))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// True when this handle actually records (i.e. telemetry is enabled).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Approximate quantile of the current contents (see
    /// [`HistogramSnapshot::quantile`]). Convenience over `snapshot()`
    /// for single-quantile reads; take one snapshot when reading several.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time snapshot of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::default(),
            Some(h) => {
                let buckets: Vec<u64> =
                    h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
                HistogramSnapshot {
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    max: h.max.load(Ordering::Relaxed),
                    buckets,
                }
            }
        }
    }
}

/// A consistent-enough view of a histogram for reporting.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in [0, 1]) from the log buckets: returns
    /// the midpoint of the bucket containing the q-th sample. Exact for the
    /// bucket, a ≤2× estimate within it — enough to spot tail behavior.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                if i == 0 {
                    return 0;
                }
                let lo = bucket_lower(i);
                // Midpoint of [2^(i-1), 2^i), capped by the observed max.
                return (lo + lo / 2).min(self.max);
            }
        }
        self.max
    }

    /// The standard latency-SLO triple (p50, p95, p99) in one call.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.5), self.quantile(0.95), self.quantile(0.99))
    }
}

/// The metric registry: name → handle, created lazily. Lookup takes the
/// mutex; recording through the returned handles does not.
#[derive(Debug, Default)]
pub struct Registry {
    counters: std::sync::Mutex<Vec<(&'static str, Arc<AtomicU64>)>>,
    gauges: std::sync::Mutex<Vec<(&'static str, Arc<AtomicU64>)>>,
    histograms: std::sync::Mutex<Vec<(&'static str, Arc<HistogramCore>)>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
        let mut v = self.counters.lock().expect("counter registry poisoned");
        if let Some((_, c)) = v.iter().find(|(n, _)| *n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(AtomicU64::new(0));
        v.push((name, Arc::clone(&c)));
        c
    }

    pub(crate) fn gauge(&self, name: &'static str) -> Arc<AtomicU64> {
        let mut v = self.gauges.lock().expect("gauge registry poisoned");
        if let Some((_, g)) = v.iter().find(|(n, _)| *n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(AtomicU64::new(0));
        v.push((name, Arc::clone(&g)));
        g
    }

    pub(crate) fn histogram(&self, name: &'static str) -> Arc<HistogramCore> {
        let mut v = self.histograms.lock().expect("histogram registry poisoned");
        if let Some((_, h)) = v.iter().find(|(n, _)| *n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(HistogramCore::new());
        v.push((name, Arc::clone(&h)));
        h
    }

    /// Snapshots every registered metric, in registration order.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(n, c)| (*n, c.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(n, g)| (*n, f64::from_bits(g.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(n, h)| (*n, Histogram(Some(Arc::clone(h))).snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// All metric values at one point in time.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram name → snapshot.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_log2_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's lower bound maps back into that bucket.
        for i in 1..N_BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_max_and_quantiles() {
        let h = Histogram(Some(Arc::new(HistogramCore::new())));
        for v in [0u64, 1, 1, 2, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1104);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 184.0).abs() < 1.0);
        // Median lands in the bucket of the 3rd sample (value 1, bucket 1).
        assert_eq!(s.quantile(0.5), 1);
        // The top quantile lands in 1000's bucket [512, 1024) → midpoint
        // 768, capped at max.
        let q99 = s.quantile(0.99);
        assert!((512..=1000).contains(&q99), "q99 {q99}");
        assert_eq!(s.quantile(0.0), 0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram(Some(Arc::new(HistogramCore::new()))).snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::default();
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::default();
        h.record(9);
        assert_eq!(h.snapshot().count, 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn registry_deduplicates_by_name() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.fetch_add(2, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 2);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("x", 2)]);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // The lock-free claim: N threads hammering the same counter and
        // histogram through shared handles must account for every record.
        let r = Registry::default();
        let c = Counter(Some(r.counter("hits")));
        let h = Histogram(Some(r.histogram("lat")));
        const THREADS: usize = 8;
        const PER: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER {
                        c.incr();
                        h.record((t as u64) * 1000 + i % 7);
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER);
        let s = h.snapshot();
        assert_eq!(s.count, THREADS as u64 * PER);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }
}
